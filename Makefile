GO ?= go

.PHONY: all build vet test race chaos bench-gate check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability and protocol layers are the concurrency-heavy ones;
# keep them race-clean without paying for a full-tree race run.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/transport/...

# Fault-injection suite under the race detector: the resilience layer's
# retry/failover paths plus the netsim link-loss scheduling.
chaos:
	$(GO) test -race -timeout 10m ./internal/resilience/... ./internal/netsim/... ./internal/storage/...

# Per-phase benchmark regression gate: deterministic virtual-clock
# scenarios checked against the committed baselines at zero tolerance.
# Re-record after a deliberate perf change with:
#   go run ./cmd/iplsbench -baseline-out cmd/iplsbench/testdata/baselines/sim.json gate
bench-gate:
	$(GO) run -race ./cmd/iplsbench -baseline cmd/iplsbench/testdata/baselines/sim.json gate

check: build vet test race chaos bench-gate
