GO ?= go

.PHONY: all build vet test race chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability and protocol layers are the concurrency-heavy ones;
# keep them race-clean without paying for a full-tree race run.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/transport/...

# Fault-injection suite under the race detector: the resilience layer's
# retry/failover paths plus the netsim link-loss scheduling.
chaos:
	$(GO) test -race -timeout 10m ./internal/resilience/... ./internal/netsim/... ./internal/storage/...

check: build vet test race chaos
