GO ?= go

.PHONY: all build vet test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability and protocol layers are the concurrency-heavy ones;
# keep them race-clean without paying for a full-tree race run.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/transport/...

check: build vet test race
