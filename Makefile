GO ?= go

.PHONY: all build vet test race fuzz-smoke chaos chaos-tests chaos-churn chaos-soak bench-gate profile vuln check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Storage tests run twice: once per BlockStore backend. IPLS_STORE=fs
# points the storage suite at the content-addressed disk backend (blocks
# land in t.TempDir(), so the tree is cleaned up with the test).
test:
	$(GO) test ./...
	IPLS_STORE=fs $(GO) test ./internal/storage/...

# The observability and protocol layers are the concurrency-heavy ones;
# keep them race-clean without paying for a full-tree race run. The crypto
# packages joined the list when the multiexp went parallel: the
# differential suite must hold with concurrent Commit/Extend callers.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/transport/...
	$(GO) test -race ./internal/group/... ./internal/pedersen/...

# Short fuzz passes: the parallel multiexp against the sequential one
# (the differential harness's randomized arm) and the scenario-plan
# parser (never panics; String∘Parse is a fixpoint). CI runs these as
# smoke tests; let them run longer locally with FUZZTIME.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -fuzz=FuzzMultiExpParallel -fuzztime $(FUZZTIME) ./internal/group
	$(GO) test -fuzz=FuzzParseScenario -fuzztime $(FUZZTIME) ./internal/scenario

# Fault-injection suite under the race detector: the resilience layer's
# retry/failover paths, the netsim link-loss scheduling, and the
# membership-churn scenario.
chaos: chaos-tests chaos-churn

chaos-tests:
	$(GO) test -race -timeout 10m ./internal/resilience/... ./internal/netsim/... ./internal/storage/...
	IPLS_STORE=fs $(GO) test -race -timeout 10m ./internal/storage/...

# Membership-churn scenario under the race detector: the ChurnRunner
# tests (standby takeover, checkpoint bootstrap, repair) plus one full
# end-to-end run — storage departure, aggregator crash with failover,
# trainer crash and checkpoint-bootstrapped rejoin.
chaos-churn:
	$(GO) test -race -timeout 10m -run 'Churn|Absent|Standby' ./internal/core
	$(GO) run -race ./cmd/iplssim -rounds 4 -trainers 8 -partitions 2 -aggregators 1 -storage-nodes 6 \
		-churn "depart:ipfs-03@iter1,crash:agg-p0-0@iter1,crash:trainer-05@iter1,rejoin:trainer-05@iter2,rejoin:agg-p0-0@iter3"

# Composed-scenario soak under the race detector: one plan string drives
# membership churn, a storage slow window, a partition that opens and
# heals, and a Byzantine trainer whose tampered uploads the BatchVerify
# fallback must catch and quarantine — all in verifiable mode. The run
# fails on any panic, on an unhealed partition, and (via -min-accuracy)
# on a final model that did not converge despite the faults.
chaos-soak:
	$(GO) run -race ./cmd/iplssim -rounds 5 -trainers 8 -partitions 2 -aggregators 1 \
		-storage-nodes 6 -providers 2 -verifiable -min-accuracy 0.9 \
		-scenario "crash:trainer-05@iter0,rejoin:trainer-05@iter2,slow:ipfs-00@iter0..1:5ms,partition:mainline|ipfs-01@iter1..2,corrupt:trainer-01@iter1..2"

# Per-phase benchmark regression gate: deterministic virtual-clock
# scenarios checked against the committed baselines at zero tolerance.
# Re-record after a deliberate perf change with:
#   go run ./cmd/iplsbench -baseline-out cmd/iplsbench/testdata/baselines/sim.json gate
bench-gate:
	$(GO) run -race ./cmd/iplsbench -baseline cmd/iplsbench/testdata/baselines/sim.json gate

# Phase-labeled CPU and heap profiles of the commitment bench (the
# paper's dominant cost). Slice by phase with:
#   go tool pprof -tags cpu.pprof
#   go tool pprof -tag_focus=phase=pedersen_commit cpu.pprof
profile:
	$(GO) run ./cmd/iplsbench -cpuprofile cpu.pprof -memprofile mem.pprof profile

# Known-vulnerability scan of the module graph and reachable call paths.
# Network-dependent (fetches the vuln DB), so it is a separate CI job
# rather than part of `check`.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

check: build vet test race chaos bench-gate
