// Benchmarks regenerating the paper's evaluation (one per figure) plus the
// ablations documented in DESIGN.md. Simulated delays are reported through
// b.ReportMetric as sim-seconds/op; cryptographic costs are wall-clock.
package ipls_test

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"ipls/internal/baseline"
	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/group"
	"ipls/internal/ml"
	"ipls/internal/model"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
)

// BenchmarkFig1Providers regenerates Figure 1: per-iteration delays for 16
// trainers, 1.3 MB partitions and 10 Mbps links, across provider counts
// plus the naive-indirect and direct baselines.
func BenchmarkFig1Providers(b *testing.B) {
	base := core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		BandwidthMbps:           10,
	}
	run := func(b *testing.B, cfg core.SimConfig) {
		var res *core.SimResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = core.Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.GradAggDelay.Seconds(), "agg-sim-s")
		b.ReportMetric(res.UploadDelayMean.Seconds(), "upload-sim-s")
		b.ReportMetric(res.TotalDelay.Seconds(), "total-sim-s")
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.ProvidersPerAggregator = p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) { run(b, cfg) })
	}
	naive := base
	naive.StorageNodes = 8
	b.Run("P=8-naive", func(b *testing.B) { run(b, naive) })
	direct := base
	direct.Direct = true
	b.Run("direct", func(b *testing.B) { run(b, direct) })
}

// BenchmarkFig2Aggregators regenerates Figure 2: delays and per-aggregator
// traffic versus the number of aggregators per partition.
func BenchmarkFig2Aggregators(b *testing.B) {
	for _, a := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("A=%d", a), func(b *testing.B) {
			var res *core.SimResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Simulate(core.SimConfig{
					Trainers:                16,
					Partitions:              4,
					AggregatorsPerPartition: a,
					PartitionBytes:          1_100_000,
					StorageNodes:            8,
					BandwidthMbps:           20,
					StorageBandwidthMbps:    200,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.GradAggDelay.Seconds(), "grad-sim-s")
			b.ReportMetric(res.SyncDelay.Seconds(), "sync-sim-s")
			b.ReportMetric(float64(res.BytesPerAggregator)/1e6, "MB-per-agg")
		})
	}
}

// fig3Vector builds a quantized parameter vector of size n.
func fig3Vector(b *testing.B, f *scalar.Field, n int) []*big.Int {
	b.Helper()
	quant, err := scalar.NewQuantizer(f, scalar.DefaultShift)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	enc, err := quant.EncodeVec(vec)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// BenchmarkFig3Commit regenerates Figure 3: SHA-256 hashing versus Pedersen
// commitment time over the model parameters, per curve and strategy.
// Per-element costs are size-independent, so moderate n suffices to place
// the curves; cmd/iplsbench fig3 measures the paper's full size range.
func BenchmarkFig3Commit(b *testing.B) {
	sizes := []int{256, 1024, 4096}
	curves := []struct {
		name     string
		params   *pedersen.Params
		strategy group.MultiExpStrategy
	}{}
	k1, err := pedersen.Setup(group.Secp256k1(), 0, "bench-fig3")
	if err != nil {
		b.Fatal(err)
	}
	r1, err := pedersen.Setup(group.Secp256r1(), 0, "bench-fig3")
	if err != nil {
		b.Fatal(err)
	}
	r1f, err := pedersen.Setup(group.Secp256r1Fast(), 0, "bench-fig3")
	if err != nil {
		b.Fatal(err)
	}
	curves = append(curves,
		struct {
			name     string
			params   *pedersen.Params
			strategy group.MultiExpStrategy
		}{"secp256k1-naive", k1, group.StrategyNaive},
		struct {
			name     string
			params   *pedersen.Params
			strategy group.MultiExpStrategy
		}{"secp256r1-naive", r1, group.StrategyNaive},
		struct {
			name     string
			params   *pedersen.Params
			strategy group.MultiExpStrategy
		}{"secp256r1-pippenger", r1, group.StrategyPippenger},
		struct {
			name     string
			params   *pedersen.Params
			strategy group.MultiExpStrategy
		}{"secp256r1-fast-naive", r1f, group.StrategyNaive},
	)
	for _, n := range sizes {
		for _, c := range curves {
			vec := fig3Vector(b, c.params.Field(), n)
			if err := c.params.Extend(n); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", c.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.params.CommitWith(vec, c.strategy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("sha256/n=%d", n), func(b *testing.B) {
			vec := fig3Vector(b, k1.Field(), n)
			block := model.Block{Values: vec}
			data, err := block.Encode()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				sha256.Sum256(data)
			}
		})
	}
}

// BenchmarkMultiExp ablates the multi-exponentiation strategies the paper
// cites as future optimization work ([27, 28]).
func BenchmarkMultiExp(b *testing.B) {
	curve := group.Secp256k1()
	field := scalar.NewField(curve.N)
	const n = 1024
	vec := fig3Vector(b, field, n)
	points := make([]group.Point, n)
	for i := range points {
		points[i] = curve.HashToPoint("bench-multiexp", i)
	}
	for _, s := range []group.MultiExpStrategy{group.StrategyNaive, group.StrategyWindowed, group.StrategyPippenger} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := curve.MultiScalarMult(points, vec, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines reports the per-round traffic and cumulative storage
// of blockchain-based FL versus this work.
func BenchmarkBaselines(b *testing.B) {
	b.Run("bcfl", func(b *testing.B) {
		var last baseline.Summary
		for i := 0; i < b.N; i++ {
			reports, _, err := baseline.BCFLCosts(baseline.BCFLConfig{
				Rounds: 10, Trainers: 16, ChainNodes: 8, UpdateBytes: 1 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = baseline.Summarize(reports)
		}
		b.ReportMetric(float64(last.FinalStoredBytes)/1e6, "stored-MB")
		b.ReportMetric(float64(last.TotalTransferBytes)/1e6, "moved-MB")
	})
	b.Run("ipls", func(b *testing.B) {
		var last baseline.Summary
		for i := 0; i < b.N; i++ {
			reports, err := baseline.IPLSCosts(baseline.IPLSConfig{
				Rounds: 10, Trainers: 16, Partitions: 4, AggregatorsPerPartition: 2,
				Replicas: 2, UpdateBytes: 1 << 20, MergeAndDownload: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = baseline.Summarize(reports)
		}
		b.ReportMetric(float64(last.FinalStoredBytes)/1e6, "stored-MB")
		b.ReportMetric(float64(last.TotalTransferBytes)/1e6, "moved-MB")
	})
}

// benchSession builds an in-memory protocol stack for end-to-end benches.
func benchSession(b *testing.B, verifiable bool) (*core.Session, map[string][]float64) {
	b.Helper()
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  fmt.Sprintf("bench-%v", verifiable),
		ModelDim:                256,
		Partitions:              4,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		Verifiable:              verifiable,
		TTrain:                  10 * time.Second,
		TSync:                   10 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	sess, _, _, err := core.NewLocalStack(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	deltas := make(map[string][]float64)
	for _, tr := range cfg.Trainers {
		d := make([]float64, 256)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		deltas[tr] = d
	}
	return sess, deltas
}

// BenchmarkIterationEndToEnd measures one full protocol iteration (4
// trainers, 4 partitions, 256 parameters) in plain and verifiable modes.
func BenchmarkIterationEndToEnd(b *testing.B) {
	for _, verifiable := range []bool{false, true} {
		b.Run(fmt.Sprintf("verifiable=%v", verifiable), func(b *testing.B) {
			sess, deltas := benchSession(b, verifiable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.RunIteration(context.Background(), i, deltas, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectoryVerify measures the directory's update-verification
// cost (recommit + compare) for a 64-element partition.
func BenchmarkDirectoryVerify(b *testing.B) {
	params, err := pedersen.Setup(group.Secp256r1Fast(), 65, "bench-verify")
	if err != nil {
		b.Fatal(err)
	}
	field := params.Field()
	vec := fig3Vector(b, field, 65)
	com, err := params.Commit(vec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := params.Verify(vec, com)
		if err != nil || !ok {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkQuantizeBlock measures gradient quantization + encoding, the
// trainer-side fixed cost per partition.
func BenchmarkQuantizeBlock(b *testing.B) {
	field := scalar.NewField(group.Secp256k1().N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	part := make([]float64, 1024)
	for i := range part {
		part[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block, err := model.Quantize(quant, part)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := block.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalTraining measures one trainer's per-round SGD cost, for
// scale against the protocol overheads.
func BenchmarkLocalTraining(b *testing.B) {
	data := ml.Blobs(240, 8, 4, 1.0, 4)
	m := ml.NewLogistic(8, 4)
	global := m.Params()
	cfg := ml.SGDConfig{LearningRate: 0.2, Epochs: 2, BatchSize: 32, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ml.LocalDelta(m, data, global, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectoryPublish measures gradient-publication cost including
// commitment accumulation.
func BenchmarkDirectoryPublish(b *testing.B) {
	params, err := pedersen.Setup(group.Secp256r1Fast(), 16, "bench-publish")
	if err != nil {
		b.Fatal(err)
	}
	vec := fig3Vector(b, params.Field(), 16)
	com, err := params.Commit(vec)
	if err != nil {
		b.Fatal(err)
	}
	dir := directory.New(params, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := dir.Publish(context.Background(), directory.Record{
			Addr: directory.Addr{
				Uploader:  fmt.Sprintf("t%d", i),
				Partition: 0,
				Iter:      i, // fresh address every time
				Type:      directory.TypeGradient,
			},
			CID:        "0000000000000000000000000000000000000000000000000000000000000000",
			Node:       "s0",
			Commitment: com,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
