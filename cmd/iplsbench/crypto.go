package main

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"time"

	"ipls/internal/group"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
)

// cryptoExperiment benchmarks the parallel + precomputed crypto hot path
// against the sequential baselines: parallel vs sequential Pippenger
// (the ISSUE's reported n=4096 speedup), fixed-base-table commits vs
// per-call table builds, and one batched random-linear-combination
// verification vs the per-upload Verify loop it replaces.
func cryptoExperiment() error {
	fmt.Printf("== Crypto hot path: parallel + precomputed (secp256k1, GOMAXPROCS=%d) ==\n",
		runtime.GOMAXPROCS(0))
	curve := group.Secp256k1()
	field := scalar.NewField(curve.N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(4))
	randVec := func(n int) ([]*big.Int, error) {
		v := make([]*big.Int, n)
		for i := range v {
			s, err := quant.Encode(rng.NormFloat64())
			if err != nil {
				return nil, err
			}
			v[i] = s
		}
		return v, nil
	}

	fmt.Printf("%-8s %14s %14s %10s\n", "n", "pippenger", "parallel", "speedup")
	for _, n := range []int{256, 1024, 4096} {
		points := make([]group.Point, n)
		for i := range points {
			points[i] = curve.HashToPoint("crypto", i)
		}
		scalars, err := randVec(n)
		if err != nil {
			return err
		}
		start := time.Now()
		seq, err := curve.MultiScalarMult(points, scalars, group.StrategyPippenger)
		if err != nil {
			return err
		}
		seqDur := time.Since(start)
		start = time.Now()
		par, err := curve.MultiScalarMult(points, scalars, group.StrategyParallel)
		if err != nil {
			return err
		}
		parDur := time.Since(start)
		if !par.Equal(seq) {
			return fmt.Errorf("crypto: parallel multiexp disagrees with sequential at n=%d", n)
		}
		speedup := float64(seqDur) / float64(parDur)
		fmt.Printf("%-8d %14s %14s %9.2fx\n", n, round(seqDur), round(parDur), speedup)
		recordGauge("bench_crypto_parallel_speedup", speedup, "n", fmt.Sprint(n))
	}

	fmt.Printf("\n%-8s %14s %14s\n", "commit n", "per-call", "precomputed")
	params, err := pedersen.Setup(curve, 512, "crypto-bench")
	if err != nil {
		return err
	}
	for _, n := range []int{64, 256, 512} {
		v, err := randVec(n)
		if err != nil {
			return err
		}
		start := time.Now()
		base, err := params.CommitWith(v, group.StrategyPippenger)
		if err != nil {
			return err
		}
		baseDur := time.Since(start)
		start = time.Now()
		pre, err := params.CommitWith(v, group.StrategyPrecomputed)
		if err != nil {
			return err
		}
		preDur := time.Since(start)
		if !pre.Equal(base) {
			return fmt.Errorf("crypto: precomputed commit disagrees at n=%d", n)
		}
		fmt.Printf("%-8d %14s %14s\n", n, round(baseDur), round(preDur))
		recordGauge("bench_crypto_precomputed_seconds", preDur.Seconds(), "n", fmt.Sprint(n))
	}

	fmt.Printf("\n%-10s %14s %14s\n", "uploads", "verify loop", "batch verify")
	const vecLen = 128
	for _, m := range []int{4, 16} {
		vecs := make([][]*big.Int, m)
		cs := make([]pedersen.Commitment, m)
		for j := 0; j < m; j++ {
			if vecs[j], err = randVec(vecLen); err != nil {
				return err
			}
			if cs[j], err = params.Commit(vecs[j]); err != nil {
				return err
			}
		}
		start := time.Now()
		for j := 0; j < m; j++ {
			ok, err := params.Verify(vecs[j], cs[j])
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("crypto: honest upload %d rejected", j)
			}
		}
		loopDur := time.Since(start)
		start = time.Now()
		ok, err := params.BatchVerify(vecs, cs)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("crypto: honest batch of %d rejected", m)
		}
		batchDur := time.Since(start)
		fmt.Printf("%-10d %14s %14s\n", m, round(loopDur), round(batchDur))
		recordGauge("bench_crypto_batch_verify_seconds", batchDur.Seconds(), "m", fmt.Sprint(m))
	}
	return nil
}
