package main

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"time"

	"ipls/internal/baseline"
	"ipls/internal/core"
	"ipls/internal/gossip"
	"ipls/internal/group"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// multiExp ablates the multi-exponentiation strategies: the paper's naive
// implementation against the optimizations it cites as future work
// (Möller '01 windowing; Pippenger buckets).
func multiExp() error {
	fmt.Println("== Multi-exponentiation ablation (secp256k1) ==")
	fmt.Printf("%-8s %14s %14s %14s\n", "n", "naive", "windowed", "pippenger")
	curve := group.Secp256k1()
	field := scalar.NewField(curve.N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{64, 256, 1024, 4096} {
		points := make([]group.Point, n)
		scalars := make([]*big.Int, n)
		for i := range points {
			points[i] = curve.HashToPoint("multiexp", i)
			s, err := quant.Encode(rng.NormFloat64())
			if err != nil {
				return err
			}
			scalars[i] = s
		}
		times := make(map[group.MultiExpStrategy]time.Duration)
		for _, strat := range []group.MultiExpStrategy{group.StrategyNaive, group.StrategyWindowed, group.StrategyPippenger} {
			start := time.Now()
			if _, err := curve.MultiScalarMult(points, scalars, strat); err != nil {
				return err
			}
			times[strat] = time.Since(start)
		}
		fmt.Printf("%-8d %14s %14s %14s\n", n,
			round(times[group.StrategyNaive]),
			round(times[group.StrategyWindowed]),
			round(times[group.StrategyPippenger]))
	}
	return nil
}

// baselines compares per-round traffic and cumulative storage between
// blockchain-based FL and this work (§I's motivation, quantified).
func baselines(rounds int) error {
	fmt.Println("== Blockchain-FL vs decentralized-storage FL ==")
	fmt.Printf("   %d rounds, 16 trainers, 1 MiB updates, 8 chain/storage nodes\n", rounds)
	update := int64(1 << 20)
	bcfl, ledger, err := baseline.BCFLCosts(baseline.BCFLConfig{
		Rounds: rounds, Trainers: 16, ChainNodes: 8, UpdateBytes: update,
	})
	if err != nil {
		return err
	}
	ipls, err := baseline.IPLSCosts(baseline.IPLSConfig{
		Rounds: rounds, Trainers: 16, Partitions: 4, AggregatorsPerPartition: 2,
		Replicas: 2, UpdateBytes: update, MergeAndDownload: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %18s %18s %18s %18s\n", "round",
		"BCFL transfer MB", "BCFL stored MB", "IPLS transfer MB", "IPLS stored MB")
	step := rounds / 5
	if step == 0 {
		step = 1
	}
	for r := 0; r < rounds; r += step {
		fmt.Printf("%-8d %18.1f %18.1f %18.1f %18.1f\n", r,
			mb(bcfl[r].TransferBytes), mb(bcfl[r].StoredBytes),
			mb(ipls[r].TransferBytes), mb(ipls[r].StoredBytes))
	}
	sb, si := baseline.Summarize(bcfl), baseline.Summarize(ipls)
	fmt.Printf("totals: BCFL %.1f MB moved / %.1f MB stored; IPLS %.1f MB moved / %.1f MB stored\n",
		mb(sb.TotalTransferBytes), mb(sb.FinalStoredBytes),
		mb(si.TotalTransferBytes), mb(si.FinalStoredBytes))
	if err := ledger.Verify(); err != nil {
		return err
	}

	// Per-iteration delay comparison at equal bandwidth (10 Mbps).
	bcflDelay, err := baseline.BCFLDelay(baseline.BCFLDelayConfig{
		Trainers: 16, ChainNodes: 8, UpdateBytes: update, BandwidthMbps: 10,
	})
	if err != nil {
		return err
	}
	iplsDelay, err := core.Simulate(core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          update,
		StorageNodes:            16,
		ProvidersPerAggregator:  4,
		BandwidthMbps:           10,
	})
	if err != nil {
		return err
	}
	fmt.Printf("per-iteration delay at 10 Mbps: BCFL broadcast %v (total %v) vs this work %v (%.1fx)\n",
		round(bcflDelay.BroadcastDelay), round(bcflDelay.TotalDelay), round(iplsDelay.TotalDelay),
		float64(bcflDelay.TotalDelay)/float64(iplsDelay.TotalDelay))
	return nil
}

// converge demonstrates the §V claim that the decentralized protocol's
// convergence equals centralized FedAvg, on IID and label-skewed splits.
func converge(rounds int) error {
	fmt.Println("== Convergence: decentralized vs centralized FedAvg ==")
	for _, split := range []string{"iid", "non-iid"} {
		task, eval, err := buildMLTask(split == "non-iid")
		if err != nil {
			return err
		}
		fmt.Printf("-- %s split, 8 trainers, softmax regression --\n", split)
		fmt.Printf("%-8s %12s %12s %16s\n", "round", "acc (dec)", "loss", "max |dec-cen|")
		for r := 0; r < rounds; r++ {
			cen, err := task.CentralizedRound(r)
			if err != nil {
				return err
			}
			metrics, _, err := task.RunRound(context.Background(), nil)
			if err != nil {
				return err
			}
			worst := 0.0
			for i, g := range task.Global() {
				if d := math.Abs(g - cen[i]); d > worst {
					worst = d
				}
			}
			acc, _, err := task.Evaluate(eval)
			if err != nil {
				return err
			}
			fmt.Printf("%-8d %12.3f %12.4f %16.2e\n", r, acc, metrics.Loss, worst)
		}
	}
	fmt.Println("max |dec-cen| stays at fixed-point quantization noise (~1e-7): the aggregates are identical")
	return nil
}

// quantAblation sweeps the fixed-point shift — the one numerical design
// choice this reproduction makes — and measures the deviation from exact
// centralized FedAvg it induces, justifying the 24-bit default.
func quantAblation() error {
	fmt.Println("== Fixed-point quantization ablation ==")
	fmt.Printf("%-8s %18s %14s %12s\n", "shift", "max |dec - cen|", "theory 2^-s", "accuracy")
	for _, shift := range []uint{8, 12, 16, 24, 40} {
		worst, acc, err := runQuantTrial(shift)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %18.2e %14.2e %12.3f\n", shift, worst, math.Pow(2, -float64(shift)), acc)
	}
	fmt.Println("the deviation tracks the 2^-shift quantization step; at the default 24 bits it is")
	fmt.Println("~1e-8 — far below SGD noise — while leaving >200 bits of summation headroom")
	return nil
}

func runQuantTrial(shift uint) (worst, acc float64, err error) {
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: fmt.Sprintf("quant-%d", shift), ModelDim: m.Dim(), Partitions: 4,
		Trainers: names, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
		QuantShift:   shift,
		TTrain:       5 * time.Second, TSync: 5 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	sess, _, _, err := core.NewLocalStack(cfg, 1)
	if err != nil {
		return 0, 0, err
	}
	splits, err := data.SplitIID(trainers, 78)
	if err != nil {
		return 0, 0, err
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	task, err := core.NewTask(sess, m, locals,
		ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}, m.Params())
	if err != nil {
		return 0, 0, err
	}
	for r := 0; r < 3; r++ {
		cen, err := task.CentralizedRound(r)
		if err != nil {
			return 0, 0, err
		}
		if _, _, err := task.RunRound(context.Background(), nil); err != nil {
			return 0, 0, err
		}
		for i, g := range task.Global() {
			if d := math.Abs(g - cen[i]); d > worst {
				worst = d
			}
		}
	}
	acc, _, err = task.Evaluate(data)
	return worst, acc, err
}

// gossipVsFL compares purely decentralized gossip learning (the intro's
// category (i) baseline, [5-7]) with this work's centralized-equivalent
// aggregation on IID and label-skewed data.
func gossipVsFL(rounds int) error {
	fmt.Println("== Gossip learning vs decentralized-storage FL ==")
	const peers = 8
	for _, split := range []string{"iid", "non-iid"} {
		data := ml.Blobs(480, 4, 4, 0.8, 77)
		var splits []*ml.Dataset
		var err error
		if split == "non-iid" {
			splits, err = data.SplitLabelSkew(peers, 1, 78)
		} else {
			splits, err = data.SplitIID(peers, 78)
		}
		if err != nil {
			return err
		}
		m := ml.NewLogistic(4, 4)
		initial := m.Params()
		sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}

		res, err := gossip.Run(m, splits, data, initial, gossip.Config{
			Degree: 1, Rounds: rounds, SGD: sgd, Seed: 79,
		})
		if err != nil {
			return err
		}

		global := append([]float64(nil), initial...)
		fedAcc := make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			roundSGD := sgd
			roundSGD.Seed = int64(r)
			next, _, err := ml.FedAvgRound(m, global, splits, roundSGD)
			if err != nil {
				return err
			}
			global = next
			if err := m.SetParams(global); err != nil {
				return err
			}
			fedAcc[r] = ml.Accuracy(m, data)
		}

		fmt.Printf("-- %s split, %d peers, gossip degree 1 --\n", split, peers)
		fmt.Printf("%-8s %14s %14s %16s\n", "round", "gossip acc", "this work", "gossip gap")
		for r := 0; r < rounds; r++ {
			g := res.PerRound[r]
			fmt.Printf("%-8d %14.3f %14.3f %16.2f\n", r, g.MeanAccuracy, fedAcc[r], g.Disagreement)
		}
	}
	fmt.Println("'gossip gap' is the max parameter distance between peers — gossip never forms one")
	fmt.Println("model, and on skewed data its accuracy trails the exact FedAvg this protocol computes")
	return nil
}

// verifyMatrix runs every malicious behavior with and without verifiable
// aggregation, reporting detection (§IV / §III-A).
func verifyMatrix() error {
	fmt.Println("== Malicious-aggregator detection matrix ==")
	fmt.Printf("%-16s %-12s %-10s %-10s %-22s\n", "behavior", "verifiable", "detected", "blocked", "recovered-by-peer")
	for _, verifiable := range []bool{false, true} {
		for _, b := range []core.Behavior{core.BehaviorDropGradient, core.BehaviorAlterGradient, core.BehaviorForgeUpdate} {
			for _, peers := range []int{1, 2} {
				detected, blocked, recovered, err := runMaliciousRound(verifiable, b, peers)
				if err != nil {
					return err
				}
				label := "sole aggregator"
				if peers == 2 {
					label = "peer aggregator present"
				}
				fmt.Printf("%-16s %-12v %-10v %-10v %-22s\n",
					b, verifiable, detected, blocked, boolWord(recovered, label))
			}
		}
	}
	return nil
}

func boolWord(b bool, context string) string {
	if b {
		return "yes (" + context + ")"
	}
	return "no (" + context + ")"
}

func runMaliciousRound(verifiable bool, b core.Behavior, aggsPerPartition int) (detected, blocked, recovered bool, err error) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  fmt.Sprintf("verify-%v-%v-%d", verifiable, b, aggsPerPartition),
		ModelDim:                24,
		Partitions:              2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: aggsPerPartition,
		StorageNodes:            []string{"s0", "s1"},
		Verifiable:              verifiable,
		TTrain:                  2 * time.Second,
		TSync:                   500 * time.Millisecond,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return false, false, false, err
	}
	sess, _, _, err := core.NewLocalStack(cfg, 1)
	if err != nil {
		return false, false, false, err
	}
	rng := rand.New(rand.NewSource(3))
	deltas := make(map[string][]float64)
	for _, tr := range cfg.Trainers {
		d := make([]float64, 24)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		deltas[tr] = d
	}
	evil := core.AggregatorID(0, 0)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]core.Behavior{evil: b})
	if err != nil {
		return false, false, false, err
	}
	detected = res.Detected()
	blocked = len(res.Incomplete) > 0
	for _, rep := range res.Reports {
		if len(rep.TookOverFor) > 0 {
			recovered = true
		}
	}
	return detected, blocked, recovered, nil
}

// faults exercises the availability mechanisms: aggregator dropout takeover
// and storage-node failure with replication (§III-D, §VI).
func faults() error {
	fmt.Println("== Fault injection ==")

	// Aggregator dropout.
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "faults-agg", ModelDim: 24, Partitions: 2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1", "s2"},
		TTrain:                  2 * time.Second,
		TSync:                   400 * time.Millisecond,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess, _, _, err := core.NewLocalStack(cfg, 2)
	if err != nil {
		return err
	}
	deltas := make(map[string][]float64)
	for _, tr := range cfg.Trainers {
		deltas[tr] = make([]float64, 24)
	}
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]core.Behavior{core.AggregatorID(0, 1): core.BehaviorDropout})
	if err != nil {
		return err
	}
	fmt.Printf("aggregator dropout: completed=%v, takeover by %s\n",
		len(res.Incomplete) == 0, res.Reports[core.AggregatorID(0, 0)].TookOverFor)

	// Storage-node failure with replication.
	cfg2, err := core.NewConfig(core.TaskSpec{
		TaskID: "faults-store", ModelDim: 24, Partitions: 2,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		TTrain:                  2 * time.Second, TSync: 2 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess2, net2, _, err := core.NewLocalStack(cfg2, 2)
	if err != nil {
		return err
	}
	for _, tr := range cfg2.Trainers {
		if err := sess2.TrainerUpload(context.Background(), tr, 0, make([]float64, 24)); err != nil {
			return err
		}
	}
	if err := net2.Fail("s0"); err != nil {
		return err
	}
	ok := true
	for _, ref := range cfg2.AllAggregators() {
		if _, err := sess2.AggregatorRun(context.Background(), ref.ID, ref.Partition, 0, core.BehaviorHonest); err != nil {
			ok = false
		}
	}
	if _, err := sess2.TrainerCollect(context.Background(), 0); err != nil {
		ok = false
	}
	fmt.Printf("storage node failure with 2x replication: round completed=%v\n", ok)
	return nil
}

func buildMLTask(nonIID bool) (*core.Task, *ml.Dataset, error) {
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "converge", ModelDim: m.Dim(), Partitions: 4,
		Trainers: names, AggregatorsPerPartition: 2,
		StorageNodes:           []string{"s0", "s1", "s2", "s3"},
		ProvidersPerAggregator: 2,
		Verifiable:             true,
		TTrain:                 5 * time.Second, TSync: 5 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	sess, _, _, err := core.NewLocalStack(cfg, 1)
	if err != nil {
		return nil, nil, err
	}
	var splits []*ml.Dataset
	if nonIID {
		splits, err = data.SplitLabelSkew(trainers, 2, 78)
	} else {
		splits, err = data.SplitIID(trainers, 78)
	}
	if err != nil {
		return nil, nil, err
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	task, err := core.NewTask(sess, m, locals,
		ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}, m.Params())
	if err != nil {
		return nil, nil, err
	}
	return task, data, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }

// churnExperiment drives an ML task through a churn plan — storage
// departures, aggregator crashes and trainer crash/rejoin — and reports
// convergence together with the repair and failover counters. The default
// plan exercises every event kind; -churn substitutes another.
func churnExperiment(planText string, rounds int) error {
	fmt.Println("== Churn-tolerant training ==")
	plan, err := storage.ParseChurnPlan(planText)
	if err != nil {
		return err
	}
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	stores := make([]string, 6)
	for i := range stores {
		stores[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "churn-bench", ModelDim: m.Dim(), Partitions: 2,
		Trainers: names, AggregatorsPerPartition: 1,
		StorageNodes: stores,
		TTrain:       400 * time.Millisecond, TSync: 5 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess, net, _, err := core.NewLocalStack(cfg, 2)
	if err != nil {
		return err
	}
	net.SetPlacement(storage.PlacementRendezvous)
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	net.SetMetrics(reg)
	splits, err := data.SplitIID(trainers, 78)
	if err != nil {
		return err
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	task, err := core.NewTask(sess, m, locals,
		ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}, m.Params())
	if err != nil {
		return err
	}
	runner := core.NewChurnRunner(task, net, plan)
	runner.SetMetrics(reg)
	fmt.Printf("plan: %d events over %d rounds\n", len(plan.Events()), rounds)
	fmt.Printf("%-8s %10s %10s %10s  %s\n", "round", "loss", "accuracy", "applied", "churn")
	for r := 0; r < rounds; r++ {
		metrics, _, applied, err := runner.RunRound(context.Background())
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		acc, _, err := task.Evaluate(data)
		if err != nil {
			return err
		}
		churned := "-"
		if len(applied) > 0 {
			churned = fmt.Sprint(applied)
		}
		fmt.Printf("%-8d %10.4f %10.3f %10v  %s\n", r, metrics.Loss, acc, metrics.Applied, churned)
	}
	underRepl := int64(reg.Gauge("under_replicated_blocks").Value())
	fmt.Printf("repair: %d blocks re-replicated, %d under-replicated after final scan\n",
		reg.Counter("repair_blocks_total").Value(), underRepl)
	fmt.Printf("failover: %d standby takeovers, %d trainer bootstraps\n",
		reg.Counter("standby_takeover_total").Value(),
		reg.Counter("trainer_bootstraps_total").Value())
	recordGauge("churn_under_replicated_final", float64(underRepl))
	recordGauge("churn_repaired_blocks", float64(reg.Counter("repair_blocks_total").Value()))
	return nil
}
