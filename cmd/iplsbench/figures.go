package main

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"ipls/internal/core"
	"ipls/internal/group"
	"ipls/internal/model"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
)

// fig1 regenerates Figure 1: aggregation delay (top) and upload delay
// (bottom) for 16 trainers, partition size 1.3 MB, one aggregator per
// partition, 10 Mbps links, and a variable number of IPFS providers, plus
// the "naive" (no merge-and-download) and "direct" ([17]) baselines at 8
// nodes.
func fig1() error {
	fmt.Println("== Figure 1: merge-and-download provider sweep ==")
	fmt.Println("   16 trainers, 1.3 MB partition, 1 aggregator, 10 Mbps")
	fmt.Printf("%-12s %14s %14s %14s\n", "providers", "agg delay", "upload delay", "total")
	base := core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		BandwidthMbps:           10,
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.ProvidersPerAggregator = p
		res, err := core.Simulate(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-12d %14s %14s %14s\n", p,
			round(res.GradAggDelay), round(res.UploadDelayMean), round(res.TotalDelay))
		providers := strconv.Itoa(p)
		recordGauge("bench_delay_seconds", res.GradAggDelay.Seconds(),
			"experiment", "fig1", "metric", "agg", "providers", providers)
		recordGauge("bench_delay_seconds", res.TotalDelay.Seconds(),
			"experiment", "fig1", "metric", "total", "providers", providers)
	}
	naive := base
	naive.StorageNodes = 8
	resNaive, err := core.Simulate(naive)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s %14s\n", "8 (naive)",
		round(resNaive.GradAggDelay), round(resNaive.UploadDelayMean), round(resNaive.TotalDelay))
	direct := base
	direct.Direct = true
	resDirect, err := core.Simulate(direct)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s %14s\n", "8 (direct)",
		round(resDirect.GradAggDelay), round(resDirect.UploadDelayMean), round(resDirect.TotalDelay))
	fmt.Printf("analytic optimum |P| = sqrt(16) = %.1f\n", core.OptimalProviders(16, 10, 10))
	return nil
}

// fig2 regenerates Figure 2: total aggregation delay (top) and data
// received per aggregator (bottom) for 16 trainers, 8 IPFS nodes, 4
// partitions of 1.1 MB, 20 Mbps participant links and |A_i| in {1, 2, 4},
// without merge-and-download.
func fig2() error {
	fmt.Println("== Figure 2: aggregators-per-partition sweep ==")
	fmt.Println("   16 trainers, 8 IPFS nodes, 4 x 1.1 MB partitions, 20 Mbps, no merge")
	fmt.Printf("%-8s %14s %14s %14s %16s\n", "|A_i|", "grad agg", "sync", "total", "MB/aggregator")
	for _, a := range []int{1, 2, 4} {
		res, err := core.Simulate(core.SimConfig{
			Trainers:                16,
			Partitions:              4,
			AggregatorsPerPartition: a,
			PartitionBytes:          1_100_000,
			StorageNodes:            8,
			BandwidthMbps:           20,
			StorageBandwidthMbps:    200,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %14s %14s %14s %16.2f\n", a,
			round(res.GradAggDelay), round(res.SyncDelay),
			round(res.GradAggDelay+res.SyncDelay),
			float64(res.BytesPerAggregator)/1e6)
		aggs := strconv.Itoa(a)
		recordGauge("bench_delay_seconds", (res.GradAggDelay + res.SyncDelay).Seconds(),
			"experiment", "fig2", "metric", "total", "aggregators", aggs)
		recordGauge("bench_bytes_per_aggregator", float64(res.BytesPerAggregator),
			"experiment", "fig2", "aggregators", aggs)
	}
	fmt.Println("expected bytes: (16/|A_i| + |A_i| - 1) x 1.1 MB")
	return nil
}

// fig3 regenerates Figure 3: time to compute a SHA-256 hash and a Pedersen
// commitment (secp256k1, secp256r1) over the model parameters, as the
// model size grows. The paper's implementation is the naive
// multi-exponentiation; the optimized column shows the headroom from
// Pippenger's algorithm (the future work it cites).
func fig3(maxParams int) error {
	fmt.Println("== Figure 3: commitment cost vs model size ==")
	fmt.Printf("%-10s %12s %16s %16s %16s\n",
		"params", "sha256", "k1 naive", "r1 naive", "r1 pippenger")
	sizes := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	rng := rand.New(rand.NewSource(1))

	k1, err := pedersen.Setup(group.Secp256k1(), 0, "fig3")
	if err != nil {
		return err
	}
	r1, err := pedersen.Setup(group.Secp256r1(), 0, "fig3")
	if err != nil {
		return err
	}
	quant, err := scalar.NewQuantizer(k1.Field(), scalar.DefaultShift)
	if err != nil {
		return err
	}
	for _, n := range sizes {
		if n > maxParams {
			fmt.Printf("%-10d (skipped; raise -max-params to measure)\n", n)
			continue
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = rng.NormFloat64()
		}
		enc, err := quant.EncodeVec(vec)
		if err != nil {
			return err
		}
		block := model.Block{Values: append(enc, enc[0])}
		data, err := block.Encode()
		if err != nil {
			return err
		}

		start := time.Now()
		sha256.Sum256(data)
		hashTime := time.Since(start)

		naiveBudget := n <= 100_000 // naive generic EC beyond 10^5 takes minutes per point
		k1Naive, r1Naive := time.Duration(0), time.Duration(0)
		if naiveBudget {
			start = time.Now()
			if _, err := k1.CommitWith(enc, group.StrategyNaive); err != nil {
				return err
			}
			k1Naive = time.Since(start)
			start = time.Now()
			if _, err := r1.CommitWith(enc, group.StrategyNaive); err != nil {
				return err
			}
			r1Naive = time.Since(start)
		}
		start = time.Now()
		if _, err := r1.CommitWith(enc, group.StrategyPippenger); err != nil {
			return err
		}
		pip := time.Since(start)

		naiveK1 := "-"
		naiveR1 := "-"
		if naiveBudget {
			naiveK1 = round(k1Naive).String()
			naiveR1 = round(r1Naive).String()
		}
		fmt.Printf("%-10d %12s %16s %16s %16s\n", n, round(hashTime), naiveK1, naiveR1, round(pip))
	}
	fmt.Println("note: commitment cost is linear in model size and dominates SHA-256 by ~5 orders of magnitude,")
	fmt.Println("      matching the paper's finding that commitments become the bottleneck for multi-million-parameter models")
	return nil
}

// straggler quantifies the partial-asynchrony benefit of the §III-D
// t_train schedule: slow trainers either hold the whole iteration hostage
// (no cutoff) or miss the round while everyone else proceeds on time.
func straggler() error {
	fmt.Println("== Stragglers and the t_train cutoff (§III-D) ==")
	fmt.Println("   16 trainers (2 at 1/10th bandwidth), 4 providers, 1.3 MB, 10 Mbps")
	base := core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		ProvidersPerAggregator:  4,
		BandwidthMbps:           10,
	}
	fair, err := core.Simulate(base)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %14s %10s\n", "scenario", "total delay", "missed")
	fmt.Printf("%-28s %14s %10d\n", "no stragglers", round(fair.TotalDelay), 0)
	slow := base
	slow.SlowTrainers = 2
	slow.SlowFactor = 10
	noCut, err := core.Simulate(slow)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %14s %10d\n", "2 stragglers, no cutoff", round(noCut.TotalDelay), noCut.MissedGradients)
	for _, extra := range []time.Duration{time.Second, 3 * time.Second} {
		cut := slow
		cut.TTrainCutoff = fair.TotalDelay + extra
		res, err := core.Simulate(cut)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %14s %10d\n",
			fmt.Sprintf("2 stragglers, t_train=%v", round(cut.TTrainCutoff)),
			round(res.TotalDelay), res.MissedGradients)
	}
	fmt.Println("the t_train schedule bounds the iteration at the cost of dropping late gradients;")
	fmt.Println("the averaging counter keeps the aggregate a correct mean over the trainers that made it")
	return nil
}

// analyticModel compares the §III-E closed form τ = S(T/(dP) + P/b) against
// the discrete-event simulation.
func analyticModel() error {
	fmt.Println("== S III-E analytic model vs simulation ==")
	fmt.Printf("%-12s %14s %14s %10s\n", "providers", "simulated", "analytic", "ratio")
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := core.Simulate(core.SimConfig{
			Trainers:                16,
			Partitions:              1,
			AggregatorsPerPartition: 1,
			PartitionBytes:          1_300_000,
			StorageNodes:            16,
			ProvidersPerAggregator:  p,
			BandwidthMbps:           10,
		})
		if err != nil {
			return err
		}
		want := core.AnalyticAggregationDelay(1_300_000, 16, p, 10, 10)
		got := res.TotalDelay.Seconds()
		fmt.Printf("%-12d %13.2fs %13.2fs %10.3f\n", p, got, want, got/want)
	}
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
