package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"time"

	"ipls/internal/core"
	"ipls/internal/distdir"
	"ipls/internal/group"
	"ipls/internal/mimc"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// dirLoad quantifies the §VI directory-load reductions: request batching
// (one round trip per trainer instead of one per partition) and sharding
// the directory maps across the storage nodes.
func dirLoad() error {
	fmt.Println("== Directory load reduction (§VI) ==")
	const (
		trainers   = 16
		partitions = 8
	)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	build := func(taskID string, shards int) (*core.Session, *distdir.Sharded, error) {
		cfg, err := core.NewConfig(core.TaskSpec{
			TaskID:                  taskID,
			ModelDim:                partitions * 8,
			Partitions:              partitions,
			Trainers:                names,
			AggregatorsPerPartition: 1,
			StorageNodes:            []string{"s0", "s1", "s2", "s3"},
			TTrain:                  10 * time.Second,
			TSync:                   10 * time.Second,
			PollInterval:            time.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		field := scalar.NewField(cfg.Curve.N)
		net := storage.NewNetwork(field, 1)
		for _, id := range cfg.StorageNodes {
			net.AddNode(id)
		}
		sharded, err := distdir.New(cfg.TaskID, shards, nil, net)
		if err != nil {
			return nil, nil, err
		}
		for p := 0; p < cfg.Spec.Partitions; p++ {
			for _, agg := range cfg.Aggregators[p] {
				for _, tr := range cfg.TrainersOf(p, agg) {
					sharded.SetAssignment(p, tr, agg)
				}
			}
		}
		sess, err := core.NewSession(cfg, net, sharded)
		if err != nil {
			return nil, nil, err
		}
		return sess, sharded, nil
	}

	fmt.Printf("%-10s %12s %12s %12s %24s\n",
		"shards", "records", "requests", "lookups", "busiest shard ops (max)")
	for _, shards := range []int{1, 2, 4, 8} {
		sess, sharded, err := build(fmt.Sprintf("dirload-%d", shards), shards)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(6))
		deltas := make(map[string][]float64)
		for _, tr := range names {
			d := make([]float64, partitions*8)
			for i := range d {
				d[i] = rng.NormFloat64()
			}
			deltas[tr] = d
		}
		if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
			return err
		}
		agg := sharded.Stats()
		maxOps := 0
		for _, st := range sharded.ShardStats() {
			if ops := st.Requests + st.Lookups; ops > maxOps {
				maxOps = ops
			}
		}
		fmt.Printf("%-10d %12d %12d %12d %24d\n",
			shards, agg.Publishes, agg.Requests, agg.Lookups, maxOps)
	}
	fmt.Printf("without batching a trainer would issue %d publish requests per iteration; with it, 1\n", partitions)
	fmt.Println("sharding then divides the remaining per-host request load across the storage nodes")
	return nil
}

// placement compares ring-successor and rendezvous replica placement —
// §VI's "uniform allocation of gradients to nodes ... based on the hash of
// the gradients and the nodes id's".
func placement() error {
	fmt.Println("== Replica placement (§VI uniform allocation) ==")
	const (
		nodes    = 8
		blocks   = 800
		replicas = 2
	)
	for _, policy := range []struct {
		name string
		p    storage.Placement
	}{
		{"ring-successor", storage.PlacementRing},
		{"rendezvous", storage.PlacementRendezvous},
	} {
		field := scalar.NewField(group.Secp256k1().N)
		net := storage.NewNetwork(field, replicas)
		for i := 0; i < nodes; i++ {
			net.AddNode(fmt.Sprintf("node-%02d", i))
		}
		net.SetPlacement(policy.p)
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < blocks; i++ {
			data := make([]byte, 32)
			rng.Read(data)
			// All trainers upload to the same primary (the provider
			// hotspot scenario).
			if _, err := net.Put(context.Background(), "node-00", data); err != nil {
				return err
			}
		}
		fmt.Printf("%-16s replica counts:", policy.name)
		minC, maxC := 1<<30, 0
		for i := 1; i < nodes; i++ {
			nd, err := net.Node(fmt.Sprintf("node-%02d", i))
			if err != nil {
				return err
			}
			c := nd.StoredBlocks()
			fmt.Printf(" %4d", c)
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		fmt.Printf("   (min %d, max %d)\n", minC, maxC)
	}
	fmt.Println("rendezvous hashing spreads replicas uniformly and makes the replica set")
	fmt.Println("unpredictable to colluding storage nodes; ring placement concentrates them")
	return nil
}

// hashCost compares SHA-256 with the proof-friendly MiMC hash (§VI: replace
// the storage hash with a proof-friendly one so aggregators can prove that
// CID and commitment bind the same gradients).
func hashCost() error {
	fmt.Println("== Proof-friendly hash (§VI): MiMC vs SHA-256 ==")
	h, err := mimc.New(group.Secp256k1().N, "hashcost")
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s\n", h)
	fmt.Printf("%-12s %14s %14s %12s\n", "block bytes", "sha256", "mimc", "slowdown")
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		data := make([]byte, n)
		rng.Read(data)
		start := time.Now()
		const shaReps = 2000
		for i := 0; i < shaReps; i++ {
			sha256.Sum256(data)
		}
		shaTime := time.Since(start) / shaReps
		start = time.Now()
		h.Sum(data)
		mimcTime := time.Since(start)
		slowdown := float64(mimcTime) / float64(shaTime+1)
		fmt.Printf("%-12d %14s %14s %11.0fx\n", n, shaTime, mimcTime.Round(time.Microsecond), slowdown)
	}
	fmt.Println("MiMC is orders of magnitude slower natively — the price of a circuit of only")
	fmt.Printf("~%d field multiplications per element, which is what makes delegated ZK\n", h.Rounds())
	fmt.Println("verification of hash/commitment consistency feasible (the paper's [29, 30] route)")
	return nil
}
