package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ipls/internal/core"
	"ipls/internal/netsim"
	"ipls/internal/obs"
	"ipls/internal/scenario"
	"ipls/internal/storage"
)

// mustLossWindows compiles a scenario-plan string into the netsim loss
// windows it schedules — the gate's partition scenario is driven by the
// same grammar `iplssim -scenario` takes.
func mustLossWindows(plan string) []netsim.LossWindow {
	p, err := scenario.Parse(plan)
	if err != nil {
		panic(err)
	}
	return p.LossWindows()
}

// The per-phase benchmark gate: each scenario below runs one protocol
// iteration over the netsim virtual clock with span emission on, folds
// the span stream through obs.BreakdownTrace into per-phase budgets
// (upload, merge_download, sync_wait, ... — the axes of the paper's
// Figs. 5-8), and either records them as a JSON baseline (-baseline-out)
// or checks them against a committed one (-baseline), failing with a
// per-phase delta table when any phase regresses beyond -tolerance.
//
// Because the clock is virtual and the simulator is deterministic, the
// folded budgets are exact: record followed by check on the same tree
// passes with zero delta at zero tolerance, and any change to the byte
// flows or scheduling of a phase moves exactly the budgets it affects.

// gateScenarios are the gated benchmark configurations. Names are stable
// identifiers committed inside baselines — renaming one invalidates the
// baseline on purpose.
var gateScenarios = []struct {
	name string
	cfg  core.SimConfig
}{
	{
		// Fig. 1 working point: merge-and-download with 4 providers.
		// Exercises upload, merge_download, fetch_gradients, aggregate.
		name: "fig1-merge-p4",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              1,
			AggregatorsPerPartition: 1,
			PartitionBytes:          1_300_000,
			StorageNodes:            16,
			ProvidersPerAggregator:  4,
			BandwidthMbps:           10,
		},
	},
	{
		// Fig. 2 working point: 2 aggregators per partition, no merge.
		// Exercises the sync_wait phase the paper's Fig. 7 isolates.
		name: "fig2-sync-a2",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              4,
			AggregatorsPerPartition: 2,
			PartitionBytes:          1_100_000,
			StorageNodes:            8,
			BandwidthMbps:           20,
			StorageBandwidthMbps:    200,
		},
	},
	{
		// The direct-communication baseline ([17]): no storage network,
		// upload and aggregate only. Cheap canary for the transfer core.
		name: "direct",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              1,
			AggregatorsPerPartition: 1,
			PartitionBytes:          1_300_000,
			BandwidthMbps:           10,
			Direct:                  true,
		},
	},
	{
		// Membership churn: a storage departure remaps placement, a
		// crashed aggregator is executed by a standby after the failover
		// timeout, a crashed trainer misses the iteration and a rejoining
		// one bootstraps the checkpoint first. Exercises the bootstrap and
		// takeover phases on top of upload/sync.
		name: "churn",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              2,
			AggregatorsPerPartition: 2,
			PartitionBytes:          1_100_000,
			StorageNodes:            8,
			BandwidthMbps:           20,
			FailoverTimeout:         2 * time.Second,
			Churn: []storage.ChurnEvent{
				{Kind: storage.ChurnDepart, Node: "ipfs-03"},
				{Kind: storage.ChurnCrash, Node: "agg-p0-0"},
				{Kind: storage.ChurnCrash, Node: "trainer-06"},
				{Kind: storage.ChurnRejoin, Node: "trainer-07"},
			},
		},
	},
	{
		// Quorum rounds (§III-D graceful degradation): two stragglers run
		// at a twentieth of everyone's bandwidth, and the aggregator stops
		// waiting at 3/4 of each provider group once the quorum wait
		// passes. Exercises the WaitQuorum cut on the upload_wait and
		// merge_download phases.
		name: "quorum",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              1,
			AggregatorsPerPartition: 1,
			PartitionBytes:          1_300_000,
			StorageNodes:            16,
			ProvidersPerAggregator:  4,
			BandwidthMbps:           10,
			SlowTrainers:            2,
			SlowFactor:              20,
			QuorumFraction:          0.75,
			QuorumWait:              3 * time.Second,
		},
	},
	{
		// A timed partition window compiled from the scenario grammar
		// severs two storage nodes mid-iteration; uploads and merge
		// downloads touching them stall and resume when the window closes.
		// Exercises the LossWindow path end-to-end from a plan string.
		name: "partition",
		cfg: core.SimConfig{
			Trainers:                16,
			Partitions:              2,
			AggregatorsPerPartition: 2,
			PartitionBytes:          1_100_000,
			StorageNodes:            8,
			BandwidthMbps:           20,
			StorageBandwidthMbps:    200,
			LinkLoss: mustLossWindows(
				"partition:mainline|ipfs-02+ipfs-03@400ms..1200ms,slow:trainer-01@0s..800ms:0.25"),
		},
	},
}

// runGateScenarios simulates every scenario and folds its spans into a
// fresh baseline. Spans are re-sessioned under the scenario name so a
// -span-out dump keeps the scenarios' traces distinct.
func runGateScenarios(spanOut string) (obs.Baseline, error) {
	base := obs.Baseline{Version: obs.BaselineVersion, Scenarios: make(map[string]obs.ScenarioBudget)}
	var dump []obs.Span
	for _, sc := range gateScenarios {
		col := &obs.SpanCollector{}
		cfg := sc.cfg
		cfg.Spans = col
		if _, err := core.Simulate(cfg); err != nil {
			return base, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		spans := col.Spans()
		for i := range spans {
			spans[i].Context.Session = sc.name
		}
		breakdowns := obs.BreakdownTrace(spans)
		if len(breakdowns) == 0 {
			return base, fmt.Errorf("scenario %s: produced no traces", sc.name)
		}
		base.Scenarios[sc.name] = obs.NewScenarioBudget(breakdowns)
		if spanOut != "" {
			dump = append(dump, spans...)
		}
	}
	if spanOut != "" {
		f, err := os.Create(spanOut)
		if err != nil {
			return base, fmt.Errorf("span-out: %w", err)
		}
		w := obs.NewSpanJSONLWriter(f)
		for _, s := range dump {
			w.EmitSpan(s)
		}
		if err := w.Close(); err != nil {
			f.Close()
			return base, fmt.Errorf("span-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return base, fmt.Errorf("span-out: %w", err)
		}
		fmt.Printf("spans: %d spans written to %s\n", w.Emitted(), spanOut)
	}
	return base, nil
}

// gateOptions carries the gate's flag values.
type gateOptions struct {
	baseline    string  // check mode: committed baseline to compare against
	baselineOut string  // record mode: where to write the fresh baseline
	tolerance   float64 // allowed relative regression per phase metric
	spanOut     string  // optional span JSONL dump of the gate run
}

// runGate executes record and/or check mode. In check mode it prints one
// delta table per scenario and returns a non-nil error naming the
// regressed phases when any budget is exceeded.
func runGate(out io.Writer, opts gateOptions) error {
	if opts.baseline == "" && opts.baselineOut == "" {
		return fmt.Errorf("gate needs -baseline (check) or -baseline-out (record)")
	}
	if opts.tolerance < 0 {
		return fmt.Errorf("-tolerance must be non-negative, got %v", opts.tolerance)
	}
	got, err := runGateScenarios(opts.spanOut)
	if err != nil {
		return err
	}
	if opts.baselineOut != "" {
		f, err := os.Create(opts.baselineOut)
		if err != nil {
			return fmt.Errorf("baseline-out: %w", err)
		}
		if err := obs.WriteBaseline(f, got); err != nil {
			f.Close()
			return fmt.Errorf("baseline-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("baseline-out: %w", err)
		}
		fmt.Fprintf(out, "baseline: %d scenario budgets written to %s\n", len(got.Scenarios), opts.baselineOut)
	}
	if opts.baseline == "" {
		return nil
	}
	f, err := os.Open(opts.baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base, err := obs.ReadBaseline(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("baseline %s: %w", opts.baseline, err)
	}
	var violations []string
	for i, r := range obs.CompareBaselines(base, got, opts.tolerance) {
		if i > 0 {
			fmt.Fprintln(out)
		}
		obs.WriteBudgetReport(out, r)
		violations = append(violations, r.Violations()...)
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench gate: %d budget violation(s): %s",
			len(violations), strings.Join(violations, "; "))
	}
	fmt.Fprintf(out, "\nbench gate: all %d scenarios within budget (tolerance %.1f%%)\n",
		len(base.Scenarios), opts.tolerance*100)
	return nil
}
