package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipls/internal/obs"
)

const committedBaseline = "testdata/baselines/sim.json"

// TestGateRecordIsDeterministic: the virtual clock makes baselines exact,
// so recording twice yields byte-identical JSON.
func TestGateRecordIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	var out bytes.Buffer
	if err := runGate(&out, gateOptions{baselineOut: a}); err != nil {
		t.Fatal(err)
	}
	if err := runGate(&out, gateOptions{baselineOut: b}); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("two records differ:\n%s\nvs\n%s", ab, bb)
	}
}

// TestGateRecordCheckRoundTrip: `-baseline-out` then `-baseline` on the
// same tree passes with zero delta at zero tolerance — the acceptance
// contract of the gate.
func TestGateRecordCheckRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out bytes.Buffer
	if err := runGate(&out, gateOptions{baselineOut: path}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runGate(&out, gateOptions{baseline: path, tolerance: 0}); err != nil {
		t.Fatalf("fresh record did not pass its own check: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") || strings.Contains(out.String(), "FAIL") {
		t.Fatalf("expected all-PASS report:\n%s", out.String())
	}
}

// TestGateCommittedBaselinePasses is the repo-level golden test: the
// committed baselines under testdata/baselines must match what the
// current simulator produces, exactly. If a deliberate change moves a
// phase budget, re-record with:
//
//	go run ./cmd/iplsbench -baseline-out cmd/iplsbench/testdata/baselines/sim.json gate
func TestGateCommittedBaselinePasses(t *testing.T) {
	var out bytes.Buffer
	if err := runGate(&out, gateOptions{baseline: committedBaseline, tolerance: 0}); err != nil {
		t.Fatalf("committed baseline check failed: %v\n%s", err, out.String())
	}
	// Every committed scenario shows up in the report.
	for _, sc := range gateScenarios {
		if !strings.Contains(out.String(), "scenario "+sc.name+": PASS") {
			t.Fatalf("scenario %s missing or failing:\n%s", sc.name, out.String())
		}
	}
}

// TestGateTamperedBaselineFails: tightening any single phase budget below
// the measured value makes check mode fail, and the error names the
// phase. Covers the per-phase half of the acceptance criteria.
func TestGateTamperedBaselineFails(t *testing.T) {
	f, err := os.Open(committedBaseline)
	if err != nil {
		t.Fatal(err)
	}
	base, err := obs.ReadBaseline(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(t *testing.T, scenario, phase string, mutate func(*obs.PhaseBudget)) {
		t.Helper()
		sc, ok := base.Scenarios[scenario]
		if !ok {
			t.Fatalf("no scenario %s in committed baseline", scenario)
		}
		phases := make(map[string]obs.PhaseBudget, len(sc.Phases))
		for k, v := range sc.Phases {
			phases[k] = v
		}
		pb, ok := phases[phase]
		if !ok {
			t.Fatalf("no phase %s in scenario %s", phase, scenario)
		}
		mutate(&pb)
		phases[phase] = pb
		mutated := base
		mutated.Scenarios = map[string]obs.ScenarioBudget{}
		for k, v := range base.Scenarios {
			mutated.Scenarios[k] = v
		}
		sc.Phases = phases
		mutated.Scenarios[scenario] = sc

		path := filepath.Join(t.TempDir(), "tampered.json")
		out, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteBaseline(out, mutated); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}

		var report bytes.Buffer
		checkErr := runGate(&report, gateOptions{baseline: path, tolerance: 0})
		if checkErr == nil {
			t.Fatalf("tightened %s/%s budget passed the check:\n%s", scenario, phase, report.String())
		}
		if !strings.Contains(checkErr.Error(), phase) {
			t.Fatalf("error does not name phase %s: %v", phase, checkErr)
		}
		if !strings.Contains(checkErr.Error(), scenario) {
			t.Fatalf("error does not name scenario %s: %v", scenario, checkErr)
		}
		if !strings.Contains(report.String(), "FAIL") {
			t.Fatalf("report does not FAIL:\n%s", report.String())
		}
	}

	t.Run("merge_download max", func(t *testing.T) {
		tamper(t, "fig1-merge-p4", "merge_download", func(pb *obs.PhaseBudget) { pb.Max /= 2 })
	})
	t.Run("sync_wait p50", func(t *testing.T) {
		tamper(t, "fig2-sync-a2", "sync_wait", func(pb *obs.PhaseBudget) { pb.P50 /= 2 })
	})
	t.Run("upload_wait bytes", func(t *testing.T) {
		// A zero-byte budget that the run exceeds: force bytes negative-
		// proof by tightening the download phase's bytes instead.
		tamper(t, "fig2-sync-a2", "download", func(pb *obs.PhaseBudget) { pb.Bytes /= 2 })
	})
}

// TestGateToleranceAbsorbsRegression: a tightened budget within the
// tolerance passes; beyond it fails.
func TestGateToleranceAbsorbsRegression(t *testing.T) {
	f, err := os.Open(committedBaseline)
	if err != nil {
		t.Fatal(err)
	}
	base, err := obs.ReadBaseline(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sc := base.Scenarios["fig1-merge-p4"]
	md := sc.Phases["merge_download"]
	md.Max = md.Max * 95 / 100 // run exceeds the budget by ~5.3%
	md.P50 = md.P50 * 95 / 100
	sc.Phases["merge_download"] = md
	base.Scenarios["fig1-merge-p4"] = sc
	path := filepath.Join(t.TempDir(), "tight.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteBaseline(out, base); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runGate(&buf, gateOptions{baseline: path, tolerance: 0.10}); err != nil {
		t.Fatalf("10%% tolerance should absorb a ~5%% regression: %v", err)
	}
	buf.Reset()
	if err := runGate(&buf, gateOptions{baseline: path, tolerance: 0.01}); err == nil {
		t.Fatalf("1%% tolerance should not absorb a ~5%% regression:\n%s", buf.String())
	}
}

func TestGateSpanOutDump(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "gate.spans")
	var out bytes.Buffer
	if err := runGate(&out, gateOptions{baselineOut: filepath.Join(dir, "b.json"), spanOut: spanPath}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans dumped")
	}
	// Traces are re-sessioned per scenario so the dump keeps them apart.
	sessions := map[string]bool{}
	for _, s := range spans {
		sessions[s.Context.Session] = true
	}
	for _, sc := range gateScenarios {
		if !sessions[sc.name] {
			t.Fatalf("no spans for scenario %s in dump (sessions: %v)", sc.name, sessions)
		}
	}
}

func TestGateCLIWiring(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cli.json")
	// Flags without an experiment name imply the gate.
	if err := run([]string{"-baseline-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", out, "-tolerance", "0", "gate"}); err != nil {
		t.Fatal(err)
	}
	// The gate without either flag is an error, as are gate flags on a
	// normal experiment.
	if err := run([]string{"gate"}); err == nil {
		t.Fatal("gate without -baseline/-baseline-out must fail")
	}
	if err := run([]string{"-baseline", out, "fig1"}); err == nil {
		t.Fatal("-baseline with a non-gate experiment must fail")
	}
	if err := run([]string{"-baseline", out, "-tolerance", "-1", "gate"}); err == nil {
		t.Fatal("negative tolerance must fail")
	}
	if err := run([]string{"-baseline", filepath.Join(dir, "missing.json"), "gate"}); err == nil {
		t.Fatal("missing baseline file must fail")
	}
}
