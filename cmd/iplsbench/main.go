// Command iplsbench regenerates every figure of the paper's evaluation
// (§V) plus the extension experiments documented in DESIGN.md.
//
// Usage:
//
//	iplsbench fig1       Fig. 1: aggregation/upload delay vs providers
//	iplsbench fig2       Fig. 2: delays and traffic vs aggregators/partition
//	iplsbench fig3       Fig. 3: SHA-256 vs Pedersen commitment time
//	iplsbench model      §III-E analytic τ model vs simulation
//	iplsbench multiexp   multi-exponentiation strategies (future work [27,28])
//	iplsbench crypto     parallel + precomputed hot path: speedups, batch verify
//	iplsbench baseline   blockchain-FL vs this work, storage & traffic
//	iplsbench converge   decentralized vs centralized FedAvg convergence
//	iplsbench verify     malicious-aggregator detection matrix
//	iplsbench faults     dropout / storage-failure recovery
//	iplsbench churn      membership churn: departures, failover, repair (-churn)
//	iplsbench dirload    directory load reduction: batching + sharding (§VI)
//	iplsbench hash       proof-friendly MiMC hash vs SHA-256 (§VI)
//	iplsbench profile    commitment bench under the resource meter (-cpuprofile/-memprofile)
//	iplsbench all        everything above
//
// The per-phase regression gate runs deterministic virtual-clock
// scenarios and records or checks per-phase latency budgets:
//
//	iplsbench -baseline-out testdata/baselines/sim.json gate   # record
//	iplsbench -baseline testdata/baselines/sim.json gate       # check
//	iplsbench -baseline sim.json -tolerance 0.05 gate          # 5% slack
//
// Check mode prints a per-phase delta table per scenario and exits
// non-zero naming every phase that exceeds its budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ipls/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iplsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iplsbench", flag.ContinueOnError)
	maxParams := fs.Int("max-params", 100_000, "largest model size for fig3")
	rounds := fs.Int("rounds", 10, "FL rounds for converge/baseline experiments")
	churn := fs.String("churn",
		"depart:ipfs-03@iter1,crash:agg-p0-0@iter1,crash:t5@iter1,rejoin:t5@iter2,rejoin:agg-p0-0@iter3",
		"churn experiment: plan of KIND:NAME@iterN events (depart|crash|rejoin)")
	metricsOut := fs.String("metrics-out", "", "write the run's datapoints and per-experiment wall time to this file as JSON")
	baseline := fs.String("baseline", "", "gate: check the run's per-phase budgets against this baseline JSON, exiting non-zero on regression")
	baselineOut := fs.String("baseline-out", "", "gate: record the run's per-phase budgets to this baseline JSON")
	tolerance := fs.Float64("tolerance", 0, "gate: allowed relative regression per phase metric (0.05 = 5%; the virtual clock is exact, so 0 works)")
	spanOut := fs.String("span-out", "", "gate: also dump the scenarios' causal spans to this file as JSON Lines (analyze with iplstrace)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (phase-labeled; inspect with `go tool pprof -tags`)")
	memProfile := fs.String("memprofile", "", "write a heap profile of the run to this file")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: iplsbench [flags] <fig1|fig2|fig3|model|multiexp|crypto|baseline|converge|verify|faults|churn|dirload|hash|store|profile|gate|all>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	finishProfiles, err := profileOutputs(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := finishProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "iplsbench:", perr)
		}
	}()
	gateOpts := gateOptions{baseline: *baseline, baselineOut: *baselineOut, tolerance: *tolerance, spanOut: *spanOut}
	// The gate is its own mode: `iplsbench gate` with at least one of
	// -baseline/-baseline-out, or just the flags with no experiment name.
	if fs.NArg() == 0 && (gateOpts.baseline != "" || gateOpts.baselineOut != "") {
		return runGate(os.Stdout, gateOpts)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment expected")
	}
	if fs.Arg(0) == "gate" {
		return runGate(os.Stdout, gateOpts)
	}
	if gateOpts.baseline != "" || gateOpts.baselineOut != "" || gateOpts.spanOut != "" {
		return fmt.Errorf("-baseline/-baseline-out/-span-out only apply to the gate experiment")
	}
	experiments := map[string]func() error{
		"fig1":      fig1,
		"fig2":      fig2,
		"fig3":      func() error { return fig3(*maxParams) },
		"model":     analyticModel,
		"multiexp":  multiExp,
		"crypto":    cryptoExperiment,
		"baseline":  func() error { return baselines(*rounds) },
		"converge":  func() error { return converge(*rounds) },
		"verify":    verifyMatrix,
		"faults":    faults,
		"churn":     func() error { return churnExperiment(*churn, 4) },
		"dirload":   dirLoad,
		"hash":      hashCost,
		"placement": placement,
		"straggler": straggler,
		"gossip":    func() error { return gossipVsFL(*rounds) },
		"quant":     quantAblation,
		"profile":   func() error { return profileExperiment(*maxParams) },
		"store":     storeExperiment,
	}
	// Each run exports exactly one snapshot, so start from a fresh registry.
	benchReg = obs.NewRegistry()
	timed := func(key string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return err
		}
		recordGauge("bench_experiment_seconds", time.Since(start).Seconds(), "experiment", key)
		return nil
	}
	name := fs.Arg(0)
	if name == "all" {
		for _, key := range []string{"fig1", "fig2", "fig3", "model", "multiexp", "crypto", "baseline", "converge", "verify", "faults", "churn", "dirload", "hash", "placement", "straggler", "gossip", "quant", "store", "profile"} {
			if err := timed(key, experiments[key]); err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			fmt.Println()
		}
		return writeMetrics(*metricsOut)
	}
	exp, ok := experiments[name]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err := timed(name, exp); err != nil {
		return err
	}
	return writeMetrics(*metricsOut)
}

// writeMetrics dumps the bench registry as JSON when -metrics-out is set.
func writeMetrics(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := benchReg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	fmt.Printf("metrics: snapshot written to %s\n", path)
	return nil
}
