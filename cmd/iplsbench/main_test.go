package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ipls/internal/obs"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"warp-drive"}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	if err := run(nil); err == nil {
		t.Fatal("expected missing-argument error")
	}
	if err := run([]string{"-bogus-flag", "fig1"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestFastExperimentsRun(t *testing.T) {
	// The simulation- and accounting-based experiments are cheap enough
	// to smoke-test; the crypto-heavy ones are exercised via benchmarks.
	for _, name := range []string{"fig1", "fig2", "model", "verify", "faults", "dirload"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run([]string{name}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBaselineAndConvergeWithFewRounds(t *testing.T) {
	if err := run([]string{"-rounds", "2", "baseline"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-rounds", "1", "converge"}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsOutExportsDatapoints checks that -metrics-out writes a JSON
// snapshot carrying both the experiment's datapoints and its wall time.
func TestMetricsOutExportsDatapoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-metrics-out", path, "fig1"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges[`bench_experiment_seconds{experiment="fig1"}`] <= 0 {
		t.Fatalf("missing experiment wall time: %v", snap.Gauges)
	}
	key := `bench_delay_seconds{experiment="fig1",metric="total",providers="4"}`
	if snap.Gauges[key] <= 0 {
		t.Fatalf("missing fig1 datapoint %s: %v", key, snap.Gauges)
	}
}

func TestRound(t *testing.T) {
	if round(1234567*time.Nanosecond) != time.Millisecond {
		t.Fatalf("round() = %v", round(1234567*time.Nanosecond))
	}
}

func TestRunMaliciousRoundMatrixEntry(t *testing.T) {
	detected, blocked, recovered, err := runMaliciousRound(true, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Fatal("verifiable mode must detect")
	}
	if blocked {
		t.Fatal("peer present: the round must be recovered, not blocked")
	}
	if !recovered {
		t.Fatal("peer should have taken over")
	}
}
