package main

import "ipls/internal/obs"

// benchReg collects machine-readable datapoints alongside the printed
// tables. Experiments publish gauges through recordGauge, the driver adds
// per-experiment wall time, and -metrics-out serializes the registry as
// JSON. run() resets it so each invocation exports exactly one run.
var benchReg = obs.NewRegistry()

// recordGauge publishes one experiment datapoint, e.g.
//
//	recordGauge("bench_delay_seconds", 1.93,
//	        "experiment", "fig1", "metric", "total", "providers", "4")
func recordGauge(name string, v float64, labelPairs ...string) {
	benchReg.Gauge(name, labelPairs...).Set(v)
}
