package main

import (
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ipls/internal/group"
	"ipls/internal/obs"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
)

// The profile experiment: the commitment bench (the paper's dominant
// cost, Fig. 3) run under the resource meter, with the crypto accounting
// hooks wired into the bench registry and optional phase-labeled
// CPU/heap profiles (-cpuprofile/-memprofile). `go tool pprof -tags`
// then slices samples by phase=pedersen_commit / phase=multiexp and
// strategy=..., which is what the ROADMAP's hot-path work needs to see
// before sharding anything.

// wireCryptoAccounting mirrors the group/pedersen accounting hooks into
// the bench registry as crypto_ops_total{op=...} and
// crypto_op_inputs_total{op=...}. The returned func detaches the hooks.
func wireCryptoAccounting(reg *obs.Registry) func() {
	hook := func(op string, n int) func() {
		reg.Counter("crypto_ops_total", "op", op).Inc()
		reg.Counter("crypto_op_inputs_total", "op", op).Add(int64(n))
		return nil
	}
	group.SetAccount(hook)
	pedersen.SetAccount(hook)
	return func() {
		group.SetAccount(nil)
		pedersen.SetAccount(nil)
	}
}

// commitVector builds a deterministic quantized gradient of n params.
func commitVector(params *pedersen.Params, n int) ([]*big.Int, error) {
	rng := rand.New(rand.NewSource(7))
	quant, err := scalar.NewQuantizer(params.Field(), scalar.DefaultShift)
	if err != nil {
		return nil, err
	}
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	return quant.EncodeVec(vec)
}

// commitBudget measures reps commits of an n-param vector under the
// runtime meter and folds them into a one-phase scenario budget
// ("pedersen_commit" with wall/cpu/alloc per commit). The gate
// acceptance test uses record-then-compare over this fold to prove an
// injected allocation regression in the commit path trips the alloc
// dimension.
func commitBudget(n, reps int) (obs.ScenarioBudget, error) {
	params, err := pedersen.Setup(group.Secp256r1Fast(), n, "iplsbench-profile")
	if err != nil {
		return obs.ScenarioBudget{}, err
	}
	vec, err := commitVector(params, n)
	if err != nil {
		return obs.ScenarioBudget{}, err
	}
	meter := obs.RuntimeMeter{}
	var breakdowns []obs.IterationBreakdown
	t0 := time.Unix(0, 0).UTC()
	for i := 0; i < reps; i++ {
		before := meter.Sample()
		start := time.Now()
		if _, err := params.Commit(vec); err != nil {
			return obs.ScenarioBudget{}, err
		}
		wall := time.Since(start)
		d := meter.Sample().Sub(before)
		// One synthetic single-span trace per commit: the fold then
		// reuses the exact breakdown/budget path the simulator gate uses.
		ctx := obs.SpanContext{Session: "commit", Iter: i, SpanID: obs.NewSpanID()}
		breakdowns = append(breakdowns, obs.Breakdown([]obs.Span{{
			Name: "pedersen_commit", Actor: "bench", Context: ctx,
			Start: t0, End: t0.Add(wall),
			CPUNanos: d.CPUNanos, AllocBytes: d.AllocBytes,
		}}))
	}
	return obs.NewScenarioBudget(breakdowns), nil
}

// profileExperiment runs the commitment bench under the meter and
// prints per-size wall/cpu/alloc tables.
func profileExperiment(maxParams int) error {
	fmt.Println("== profile: commitment bench under the resource meter ==")
	detach := wireCryptoAccounting(benchReg)
	defer detach()
	fmt.Printf("%-10s %14s %14s %16s\n", "params", "wall/commit", "cpu/commit", "alloc/commit")
	for _, n := range []int{1_000, 10_000, 100_000} {
		if n > maxParams {
			fmt.Printf("%-10d (skipped; raise -max-params to measure)\n", n)
			continue
		}
		budget, err := commitBudget(n, 3)
		if err != nil {
			return err
		}
		p := budget.Phases["pedersen_commit"]
		fmt.Printf("%-10d %14s %14s %15dB\n", n, p.P50.Round(time.Microsecond), p.CPU.Round(time.Microsecond), p.Alloc)
		label := fmt.Sprintf("%d", n)
		recordGauge("bench_commit_seconds", p.P50.Seconds(), "experiment", "profile", "params", label)
		recordGauge("bench_commit_cpu_seconds", p.CPU.Seconds(), "experiment", "profile", "params", label)
		recordGauge("bench_commit_alloc_bytes", float64(p.Alloc), "experiment", "profile", "params", label)
	}
	return nil
}

// profileOutputs starts a CPU profile and/or arranges a heap profile
// dump around the run; the returned func finishes both.
func profileOutputs(cpuOut, memOut string) (func() error, error) {
	var cpuFile *os.File
	if cpuOut != "" {
		f, err := os.Create(cpuOut)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			fmt.Printf("profile: cpu profile written to %s\n", cpuOut)
		}
		if memOut != "" {
			f, err := os.Create(memOut)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			fmt.Printf("profile: heap profile written to %s\n", memOut)
		}
		return nil
	}, nil
}
