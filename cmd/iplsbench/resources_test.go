package main

import (
	"strings"
	"testing"

	"ipls/internal/obs"
	"ipls/internal/pedersen"
)

// TestInjectedAllocRegressionTripsGate is the acceptance test for the
// gate's resource dimensions: record a commit budget, inject an
// allocation regression into the pedersen commit path, re-measure, and
// the comparison must fail on the commit phase's alloc row. The
// injection is sized relative to the measured base (3x plus a fixed
// margin) and the tolerance is generous (100%), so real-process noise
// in the runtime meter cannot flake the verdict either way.
func TestInjectedAllocRegressionTripsGate(t *testing.T) {
	const n, reps = 256, 3
	base, err := commitBudget(n, reps)
	if err != nil {
		t.Fatal(err)
	}
	phase, ok := base.Phases["pedersen_commit"]
	if !ok {
		t.Fatalf("budget has no pedersen_commit phase: %+v", base)
	}
	if phase.Alloc <= 0 {
		t.Fatalf("base alloc not measured (%d); runtime/metrics unavailable?", phase.Alloc)
	}

	pedersen.InjectCommitAlloc(3*phase.Alloc + 1<<20)
	defer pedersen.InjectCommitAlloc(0)
	regressed, err := commitBudget(n, reps)
	if err != nil {
		t.Fatal(err)
	}

	r := obs.CompareBudget("commit-bench", base, regressed, 1.0)
	if r.OK() {
		t.Fatalf("injected alloc regression passed the gate:\nbase %+v\nregressed %+v",
			phase, regressed.Phases["pedersen_commit"])
	}
	named := false
	for _, v := range r.Violations() {
		if strings.Contains(v, "pedersen_commit") && strings.Contains(v, "alloc") {
			named = true
		}
	}
	if !named {
		t.Fatalf("violations do not name pedersen_commit/alloc: %v", r.Violations())
	}
}

// TestCommitBudgetWithoutInjectionPasses guards the flip side: at the
// same generous tolerance, two clean measurements stay within budget on
// the alloc dimension (wall/cpu rows are noise-exempted by comparing
// alloc only).
func TestCommitBudgetWithoutInjectionPasses(t *testing.T) {
	const n, reps = 256, 3
	base, err := commitBudget(n, reps)
	if err != nil {
		t.Fatal(err)
	}
	again, err := commitBudget(n, reps)
	if err != nil {
		t.Fatal(err)
	}
	b := base.Phases["pedersen_commit"].Alloc
	g := again.Phases["pedersen_commit"].Alloc
	if b <= 0 || g <= 0 {
		t.Fatalf("alloc not measured: base=%d again=%d", b, g)
	}
	// Allocation per commit is near-deterministic; 2x covers GC-assist
	// variation without admitting the 3x injection above.
	if g > 2*b {
		t.Fatalf("clean re-measurement drifted: base=%d again=%d", b, g)
	}
}

func TestProfileExperimentRuns(t *testing.T) {
	benchReg = obs.NewRegistry()
	if err := profileExperiment(1000); err != nil {
		t.Fatal(err)
	}
	snap := benchReg.Snapshot()
	if snap.Counters[`crypto_ops_total{op="pedersen_commit"}`] == 0 {
		t.Fatalf("accounting hook did not count commits: %v", snap.Counters)
	}
	found := false
	for k := range snap.Gauges {
		if strings.HasPrefix(k, "bench_commit_cpu_seconds") {
			found = true
		}
	}
	if !found {
		t.Fatalf("profile experiment published no cpu gauges: %v", snap.Gauges)
	}
}
