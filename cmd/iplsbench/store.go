package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ipls/internal/cid"
	"ipls/internal/storage"
)

// storeExperiment prices the BlockStore backends: in-memory, the
// content-addressed disk store (atomic write + integrity re-hash on read),
// and the disk store behind the LRU cache. It also measures the restart
// path — reopening a populated directory rebuilds the CID index, which is
// what lets a rejoining node serve its blocks without re-replication.
func storeExperiment() error {
	fmt.Println("== BlockStore backends: memory vs content-addressed disk ==")
	const (
		blocks    = 256
		blockSize = 16 << 10
	)
	rng := rand.New(rand.NewSource(13))
	payloads := make([][]byte, blocks)
	for i := range payloads {
		payloads[i] = make([]byte, blockSize)
		rng.Read(payloads[i])
	}

	dir, err := os.MkdirTemp("", "iplsbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	backends := []struct {
		name string
		open func() (storage.BlockStore, error)
	}{
		{"mem", func() (storage.BlockStore, error) { return storage.NewMemStore(), nil }},
		{"fs", func() (storage.BlockStore, error) { return storage.OpenFSStore(dir + "/fs") }},
		{"fs+cache", func() (storage.BlockStore, error) {
			bs, err := storage.OpenFSStore(dir + "/fs-cache")
			if err != nil {
				return nil, err
			}
			return storage.NewCachedStore(bs, blocks), nil
		}},
	}

	fmt.Printf("%d blocks of %d KiB each\n", blocks, blockSize>>10)
	fmt.Printf("%-10s %12s %12s %12s\n", "backend", "put MB/s", "get MB/s", "reopen")
	ctx := context.Background()
	totalMB := float64(blocks*blockSize) / 1e6
	for _, b := range backends {
		bs, err := b.open()
		if err != nil {
			return err
		}
		cids := make([]cid.CID, blocks)
		start := time.Now()
		for i, p := range payloads {
			if cids[i], err = bs.Put(ctx, p); err != nil {
				return err
			}
		}
		putRate := totalMB / time.Since(start).Seconds()
		start = time.Now()
		for _, c := range cids {
			if _, err := bs.Get(ctx, c); err != nil {
				return err
			}
		}
		getRate := totalMB / time.Since(start).Seconds()
		if err := bs.Close(); err != nil {
			return err
		}
		// Restart: reopening a disk store rescans the fanout into the CID
		// index. The memory backend has nothing to reopen.
		reopenStr := "-"
		if b.name != "mem" {
			start = time.Now()
			re, err := b.open()
			if err != nil {
				return err
			}
			reopen := time.Since(start)
			reopenStr = reopen.Round(10 * time.Microsecond).String()
			keys, err := re.Keys(ctx)
			if err != nil {
				return err
			}
			if len(keys) != blocks {
				return fmt.Errorf("%s: reopen found %d of %d blocks", b.name, len(keys), blocks)
			}
			re.Close()
			recordGauge("bench_store_reopen_seconds", reopen.Seconds(), "experiment", "store", "backend", b.name)
		}
		fmt.Printf("%-10s %12.1f %12.1f %12s\n", b.name, putRate, getRate, reopenStr)
		recordGauge("bench_store_mbps", putRate, "experiment", "store", "backend", b.name, "op", "put")
		recordGauge("bench_store_mbps", getRate, "experiment", "store", "backend", b.name, "op", "get")
	}
	fmt.Println("the disk backend buys restart durability (reopen serves every block, no")
	fmt.Println("re-replication) at the cost of fsync-free file I/O plus an integrity re-hash")
	fmt.Println("per read; the LRU cache claws the hot-read cost back to near-memory rates")
	return nil
}
