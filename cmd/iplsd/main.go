// Command iplsd runs the protocol's roles as separate networked processes,
// communicating over TCP — the deployment the paper targets, where the
// task launcher (bootstrapper) hosts only the lightweight directory while
// trainers and aggregators run elsewhere.
//
// All parties must be started with identical task flags; the configuration
// (partitioning, T_ij assignments, providers) is derived deterministically
// from them, so no extra coordination channel is needed.
//
//	iplsd serve      -listen 127.0.0.1:7000 [task flags]
//	iplsd trainer    -addr 127.0.0.1:7000 -index 0 [task flags]
//	iplsd aggregator -addr 127.0.0.1:7000 -partition 0 -slot 0 [task flags]
//
// A single-process demo of the same wiring:
//
//	iplsd demo [task flags]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/identity"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/scalar"
	"ipls/internal/storage"
	"ipls/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iplsd:", err)
		os.Exit(1)
	}
}

// taskFlags holds the flags every party must share.
type taskFlags struct {
	task        string
	trainers    int
	partitions  int
	aggregators int
	storage     int
	providers   int
	verifiable  bool
	signed      bool
	curve       string
	rounds      int
	seed        int64
	lr          float64
	epochs      int
	batch       int
}

func registerTaskFlags(fs *flag.FlagSet) *taskFlags {
	tf := &taskFlags{}
	fs.StringVar(&tf.task, "task", "iplsd-task", "task identifier (shared)")
	fs.IntVar(&tf.trainers, "trainers", 4, "number of trainers (shared)")
	fs.IntVar(&tf.partitions, "partitions", 2, "model partitions (shared)")
	fs.IntVar(&tf.aggregators, "aggregators", 1, "aggregators per partition (shared)")
	fs.IntVar(&tf.storage, "storage-nodes", 3, "storage nodes (shared)")
	fs.IntVar(&tf.providers, "providers", 0, "providers per aggregator (shared)")
	fs.BoolVar(&tf.verifiable, "verifiable", false, "verifiable aggregation (shared)")
	fs.BoolVar(&tf.signed, "signed", false, "authenticate participants with Ed25519-signed records (shared)")
	fs.StringVar(&tf.curve, "curve", "secp256r1-fast", "commitment curve (shared)")
	fs.IntVar(&tf.rounds, "rounds", 5, "FL rounds (shared)")
	fs.Int64Var(&tf.seed, "seed", 7, "dataset seed (shared)")
	fs.Float64Var(&tf.lr, "lr", 0.2, "SGD learning rate (shared)")
	fs.IntVar(&tf.epochs, "epochs", 2, "local epochs per round (shared)")
	fs.IntVar(&tf.batch, "batch", 32, "SGD batch size (shared)")
	return tf
}

// buildConfig expands shared flags into the deterministic task wiring.
func (tf *taskFlags) buildConfig() (*core.Config, ml.Model, error) {
	m := ml.NewLogistic(8, 4)
	names := make([]string, tf.trainers)
	for i := range names {
		names[i] = fmt.Sprintf("trainer-%02d", i)
	}
	nodes := make([]string, tf.storage)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  tf.task,
		ModelDim:                m.Dim(),
		Partitions:              tf.partitions,
		Trainers:                names,
		AggregatorsPerPartition: tf.aggregators,
		StorageNodes:            nodes,
		ProvidersPerAggregator:  tf.providers,
		Verifiable:              tf.verifiable,
		Curve:                   tf.curve,
		TTrain:                  2 * time.Minute,
		TSync:                   30 * time.Second,
		PollInterval:            10 * time.Millisecond,
	})
	return cfg, m, err
}

// localData deterministically derives trainer idx's shard.
func (tf *taskFlags) localData(idx int) (*ml.Dataset, error) {
	data := ml.Blobs(60*tf.trainers, 8, 4, 1.2, tf.seed)
	splits, err := data.SplitIID(tf.trainers, tf.seed+1)
	if err != nil {
		return nil, err
	}
	return splits[idx], nil
}

func (tf *taskFlags) sgd() ml.SGDConfig {
	return ml.SGDConfig{LearningRate: tf.lr, Epochs: tf.epochs, BatchSize: tf.batch}
}

// attachKey gives the session the signing key for the one role this
// process plays (demo key derivation; production would load a key file).
func (tf *taskFlags) attachKey(sess *core.Session, id string) {
	if !tf.signed {
		return
	}
	ring := identity.NewKeyring()
	ring.Add(identity.Deterministic(tf.task, id))
	sess.SetKeyring(ring)
}

// introspection is a process's observability bundle: a metrics registry,
// a bounded event ring for /events, a bounded span ring for /spans (plus
// an optional span JSONL file), and the HTTP server exposing them (with
// /healthz, /buildinfo and optionally /debug/pprof/) when -metrics-addr
// is set.
type introspection struct {
	reg     *obs.Registry
	rec     *core.Recorder
	spans   *obs.SpanCollector
	sink    obs.SpanSink
	spanW   *obs.SpanJSONLWriter
	spanF   *os.File
	sampler *obs.SpanSampler
	srv     *obs.HTTPServer
}

// startIntrospection builds the bundle, serving it over HTTP when addr is
// non-empty. spanOut streams spans to a JSONL file (empty disables);
// spanSample filters the file through a head/tail sampler ("slowest=N,rate=F",
// seeded for reproducibility) while the in-memory /spans ring keeps
// everything; pprof mounts the profiling handlers; health (optional) backs
// /healthz.
func startIntrospection(addr, spanOut, spanSample string, seed int64, pprof bool, health func() error) (*introspection, error) {
	in := &introspection{
		reg:   obs.NewRegistry(),
		rec:   core.NewRecorder(1024),
		spans: obs.NewSpanCollector(4096),
	}
	sinks := obs.MultiSpanSink{in.spans}
	if spanOut != "" {
		f, err := os.Create(spanOut)
		if err != nil {
			return nil, fmt.Errorf("span-out: %w", err)
		}
		in.spanF = f
		in.spanW = obs.NewSpanJSONLWriter(f)
		var fileSink obs.SpanSink = in.spanW
		slowest, rate, err := obs.ParseSpanSample(spanSample)
		if err != nil {
			in.close()
			return nil, err
		}
		if slowest > 0 || rate < 1 {
			in.sampler = obs.NewSpanSampler(in.spanW, slowest, rate, seed)
			fileSink = in.sampler
		}
		sinks = append(sinks, fileSink)
	} else if spanSample != "" {
		return nil, fmt.Errorf("-span-sample needs -span-out")
	}
	in.sink = sinks
	if addr == "" {
		return in, nil
	}
	srv, err := obs.StartHTTP(addr, obs.HandlerConfig{
		Registry: in.reg,
		Events:   func() any { return in.rec.Events() },
		Spans:    func() any { return in.spans.Spans() },
		// One process usually carries one node, but the scoreboard shape
		// is the same either way: split the registry by node label and
		// roll up. A cluster-wide board comes from merging several
		// processes' /metrics.json scrapes the same way.
		Scoreboard: func() any { return obs.MergeSnapshots(obs.SplitByLabel(in.reg.Snapshot(), "node"), 5) },
		Health:     health,
		Pprof:      pprof,
	})
	if err != nil {
		in.close()
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	in.srv = srv
	fmt.Printf("iplsd: introspection on http://%s/metrics (/events, /spans, /scoreboard, /buildinfo, /healthz)\n", srv.Addr)
	return in, nil
}

func (in *introspection) close() {
	if in.srv != nil {
		in.srv.Close()
	}
	if in.sampler != nil {
		in.sampler.Flush()
		seen, _ := in.sampler.Stats()
		fmt.Printf("iplsd: span-out kept %d of %d spans\n", in.spanW.Emitted(), seen)
	}
	if in.spanW != nil {
		if err := in.spanW.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "iplsd: span-out flush: %v\n", err)
		}
	}
	if in.spanF != nil {
		in.spanF.Close()
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: iplsd <serve|trainer|aggregator|demo> [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "trainer":
		return trainer(args[1:])
	case "aggregator":
		return aggregator(args[1:])
	case "demo":
		return demo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// serve hosts the storage network and the directory service — the
// bootstrapper's side of the deployment.
func serve(args []string) error {
	fs := flag.NewFlagSet("iplsd serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7000", "TCP listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /events and /healthz on this address (empty disables)")
	spanOut := fs.String("span-out", "", "write storage-side causal spans to this file as JSON Lines (analyze with iplstrace)")
	spanSample := fs.String("span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/ on the -metrics-addr endpoint")
	snapshotFile := fs.String("snapshot-file", "", "restore the directory from this file if it exists; save on shutdown")
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return err
	}
	var dir *directory.Service
	if *snapshotFile != "" {
		if data, err := os.ReadFile(*snapshotFile); err == nil {
			dir, err = directory.Restore(data, params, netw)
			if err != nil {
				return fmt.Errorf("restore snapshot %s: %w", *snapshotFile, err)
			}
			fmt.Printf("iplsd: directory restored from %s\n", *snapshotFile)
		}
	}
	if dir == nil {
		dir = directory.New(params, netw)
		cfg.ApplyAssignments(dir)
	}
	if tf.signed {
		_, reg := identity.DeterministicSetup(tf.task, cfg.ParticipantIDs())
		dir.SetRegistry(reg)
	}
	srv := transport.NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		return err
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		return err
	}
	in, err := startIntrospection(*metricsAddr, *spanOut, *spanSample, tf.seed, *pprofFlag, nil)
	if err != nil {
		return err
	}
	defer in.close()
	netw.SetMetrics(in.reg)
	netw.SetSpans(in.sink)
	srv.SetMetrics(in.reg)
	srv.SetTracer(in.rec)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("iplsd: serving task %q on %s (verifiable=%v)\n", tf.task, addr, tf.verifiable)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("iplsd: shutting down")
	if *snapshotFile != "" {
		data, err := dir.Snapshot()
		if err == nil {
			err = os.WriteFile(*snapshotFile, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "iplsd: snapshot failed: %v\n", err)
		} else {
			fmt.Printf("iplsd: directory snapshot saved to %s\n", *snapshotFile)
		}
	}
	return srv.Close()
}

// trainer runs one trainer's FL loop against a remote server.
func trainer(args []string) error {
	fs := flag.NewFlagSet("iplsd trainer", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "server address")
	index := fs.Int("index", 0, "trainer index in [0, trainers)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /events and /healthz on this address (empty disables)")
	spanOut := fs.String("span-out", "", "write causal spans to this file as JSON Lines (analyze with iplstrace)")
	spanSample := fs.String("span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/ on the -metrics-addr endpoint")
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, m, err := tf.buildConfig()
	if err != nil {
		return err
	}
	if *index < 0 || *index >= len(cfg.Trainers) {
		return fmt.Errorf("trainer index %d out of range", *index)
	}
	me := cfg.Trainers[*index]
	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		return err
	}
	tf.attachKey(sess, me)
	in, err := startIntrospection(*metricsAddr, *spanOut, *spanSample, tf.seed, *pprofFlag, nil)
	if err != nil {
		return err
	}
	defer in.close()
	sess.SetMetrics(in.reg)
	sess.SetTracer(in.rec)
	sess.SetSpans(in.sink)
	// Real processes meter actual CPU/alloc; spans carry the deltas.
	sess.SetResourceMeter(obs.RuntimeMeter{})
	client.SetMetrics(in.reg)
	local, err := tf.localData(*index)
	if err != nil {
		return err
	}
	global := m.Params()
	fmt.Printf("iplsd: trainer %s starting (%d examples, %d rounds)\n", me, local.Len(), tf.rounds)
	for round := 0; round < tf.rounds; round++ {
		sgd := tf.sgd()
		sgd.Seed = ml.ParticipantSeed(int64(round), *index)
		delta, loss, err := ml.LocalDelta(m, local, global, sgd)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		if err := sess.TrainerUpload(context.Background(), me, round, delta); err != nil {
			return fmt.Errorf("round %d upload: %w", round, err)
		}
		avg, err := sess.TrainerCollect(context.Background(), round)
		if err != nil {
			return fmt.Errorf("round %d collect: %w", round, err)
		}
		for i := range global {
			global[i] += avg[i]
		}
		if err := m.SetParams(global); err != nil {
			return err
		}
		fmt.Printf("iplsd: %s round %d done (local loss %.4f, local acc %.3f)\n",
			me, round, loss, ml.Accuracy(m, local))
	}
	return nil
}

// aggregator runs one aggregator role against a remote server.
func aggregator(args []string) error {
	fs := flag.NewFlagSet("iplsd aggregator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "server address")
	partition := fs.Int("partition", 0, "partition this aggregator serves")
	slot := fs.Int("slot", 0, "aggregator slot j within the partition")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /events and /healthz on this address (empty disables)")
	spanOut := fs.String("span-out", "", "write causal spans to this file as JSON Lines (analyze with iplstrace)")
	spanSample := fs.String("span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/ on the -metrics-addr endpoint")
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	if *partition < 0 || *partition >= cfg.Spec.Partitions {
		return fmt.Errorf("partition %d out of range", *partition)
	}
	if *slot < 0 || *slot >= len(cfg.Aggregators[*partition]) {
		return fmt.Errorf("slot %d out of range", *slot)
	}
	me := cfg.Aggregators[*partition][*slot]
	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		return err
	}
	tf.attachKey(sess, me)
	in, err := startIntrospection(*metricsAddr, *spanOut, *spanSample, tf.seed, *pprofFlag, nil)
	if err != nil {
		return err
	}
	defer in.close()
	sess.SetMetrics(in.reg)
	sess.SetTracer(in.rec)
	sess.SetSpans(in.sink)
	// Real processes meter actual CPU/alloc; spans carry the deltas.
	sess.SetResourceMeter(obs.RuntimeMeter{})
	client.SetMetrics(in.reg)
	fmt.Printf("iplsd: aggregator %s starting (%d rounds)\n", me, tf.rounds)
	for round := 0; round < tf.rounds; round++ {
		rep, err := sess.AggregatorRun(context.Background(), me, *partition, round, core.BehaviorHonest)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("iplsd: %s round %d: %d gradients, %d merges, published=%v\n",
			me, round, rep.GradientsAggregated, rep.MergeDownloads, rep.PublishedGlobal)
	}
	return nil
}

// demo runs server, trainers and aggregators in one process over loopback
// TCP — a smoke test for the networked deployment.
func demo(args []string) error {
	fs := flag.NewFlagSet("iplsd demo", flag.ContinueOnError)
	metricsAddr := fs.String("metrics-addr", "", "serve the demo server's /metrics, /events and /healthz on this address (empty disables)")
	spanOut := fs.String("span-out", "", "write the demo server's storage-side spans to this file as JSON Lines")
	spanSample := fs.String("span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/ on the -metrics-addr endpoint")
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return err
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)
	srv := transport.NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		return err
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		return err
	}
	in, err := startIntrospection(*metricsAddr, *spanOut, *spanSample, tf.seed, *pprofFlag, nil)
	if err != nil {
		return err
	}
	defer in.close()
	netw.SetMetrics(in.reg)
	netw.SetSpans(in.sink)
	srv.SetMetrics(in.reg)
	srv.SetTracer(in.rec)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("iplsd demo: server on %s\n", addr)

	var wg sync.WaitGroup
	errs := make(chan error, tf.trainers+cfg.Spec.Partitions*tf.aggregators)
	for i := 0; i < tf.trainers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{"-addr", addr, "-index", fmt.Sprint(i)}
			args = append(args, sharedArgs(tf)...)
			if err := trainer(args); err != nil {
				errs <- fmt.Errorf("trainer %d: %w", i, err)
			}
		}()
	}
	for p := 0; p < tf.partitions; p++ {
		for j := 0; j < tf.aggregators; j++ {
			p, j := p, j
			wg.Add(1)
			go func() {
				defer wg.Done()
				args := []string{"-addr", addr, "-partition", fmt.Sprint(p), "-slot", fmt.Sprint(j)}
				args = append(args, sharedArgs(tf)...)
				if err := aggregator(args); err != nil {
					errs <- fmt.Errorf("aggregator p%d-%d: %w", p, j, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Println("iplsd demo: all roles completed")
	return nil
}

func sharedArgs(tf *taskFlags) []string {
	return []string{
		"-task", tf.task,
		"-trainers", fmt.Sprint(tf.trainers),
		"-partitions", fmt.Sprint(tf.partitions),
		"-aggregators", fmt.Sprint(tf.aggregators),
		"-storage-nodes", fmt.Sprint(tf.storage),
		"-providers", fmt.Sprint(tf.providers),
		"-verifiable=" + fmt.Sprint(tf.verifiable),
		"-signed=" + fmt.Sprint(tf.signed),
		"-curve", tf.curve,
		"-rounds", fmt.Sprint(tf.rounds),
		"-seed", fmt.Sprint(tf.seed),
		"-lr", fmt.Sprint(tf.lr),
		"-epochs", fmt.Sprint(tf.epochs),
		"-batch", fmt.Sprint(tf.batch),
	}
}
