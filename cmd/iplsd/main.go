// Command iplsd runs the protocol's roles as separate networked processes,
// communicating over TCP — the deployment the paper targets, where the
// task launcher (bootstrapper) hosts only the lightweight directory while
// trainers and aggregators run elsewhere.
//
// All parties must be started with identical task flags; the configuration
// (partitioning, T_ij assignments, providers) is derived deterministically
// from them, so no extra coordination channel is needed.
//
//	iplsd serve      -listen 127.0.0.1:7000 [task flags]
//	iplsd trainer    -addr 127.0.0.1:7000 -index 0 [task flags]
//	iplsd aggregator -addr 127.0.0.1:7000 -partition 0 -slot 0 [task flags]
//
// A single-process demo of the same wiring:
//
//	iplsd demo [task flags]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/identity"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/scalar"
	"ipls/internal/storage"
	"ipls/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iplsd:", err)
		os.Exit(1)
	}
}

// taskFlags holds the flags every party must share.
type taskFlags struct {
	task        string
	trainers    int
	partitions  int
	aggregators int
	storage     int
	providers   int
	verifiable  bool
	signed      bool
	curve       string
	rounds      int
	seed        int64
	lr          float64
	epochs      int
	batch       int
}

func registerTaskFlags(fs *flag.FlagSet) *taskFlags {
	tf := &taskFlags{}
	fs.StringVar(&tf.task, "task", "iplsd-task", "task identifier (shared)")
	fs.IntVar(&tf.trainers, "trainers", 4, "number of trainers (shared)")
	fs.IntVar(&tf.partitions, "partitions", 2, "model partitions (shared)")
	fs.IntVar(&tf.aggregators, "aggregators", 1, "aggregators per partition (shared)")
	fs.IntVar(&tf.storage, "storage-nodes", 3, "storage nodes (shared)")
	fs.IntVar(&tf.providers, "providers", 0, "providers per aggregator (shared)")
	fs.BoolVar(&tf.verifiable, "verifiable", false, "verifiable aggregation (shared)")
	fs.BoolVar(&tf.signed, "signed", false, "authenticate participants with Ed25519-signed records (shared)")
	fs.StringVar(&tf.curve, "curve", "secp256r1-fast", "commitment curve (shared)")
	fs.IntVar(&tf.rounds, "rounds", 5, "FL rounds (shared)")
	fs.Int64Var(&tf.seed, "seed", 7, "dataset seed (shared)")
	fs.Float64Var(&tf.lr, "lr", 0.2, "SGD learning rate (shared)")
	fs.IntVar(&tf.epochs, "epochs", 2, "local epochs per round (shared)")
	fs.IntVar(&tf.batch, "batch", 32, "SGD batch size (shared)")
	return tf
}

// buildConfig expands shared flags into the deterministic task wiring.
func (tf *taskFlags) buildConfig() (*core.Config, ml.Model, error) {
	m := ml.NewLogistic(8, 4)
	names := make([]string, tf.trainers)
	for i := range names {
		names[i] = fmt.Sprintf("trainer-%02d", i)
	}
	nodes := make([]string, tf.storage)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  tf.task,
		ModelDim:                m.Dim(),
		Partitions:              tf.partitions,
		Trainers:                names,
		AggregatorsPerPartition: tf.aggregators,
		StorageNodes:            nodes,
		ProvidersPerAggregator:  tf.providers,
		Verifiable:              tf.verifiable,
		Curve:                   tf.curve,
		TTrain:                  2 * time.Minute,
		TSync:                   30 * time.Second,
		PollInterval:            10 * time.Millisecond,
	})
	return cfg, m, err
}

// localData deterministically derives trainer idx's shard.
func (tf *taskFlags) localData(idx int) (*ml.Dataset, error) {
	data := ml.Blobs(60*tf.trainers, 8, 4, 1.2, tf.seed)
	splits, err := data.SplitIID(tf.trainers, tf.seed+1)
	if err != nil {
		return nil, err
	}
	return splits[idx], nil
}

func (tf *taskFlags) sgd() ml.SGDConfig {
	return ml.SGDConfig{LearningRate: tf.lr, Epochs: tf.epochs, BatchSize: tf.batch}
}

// attachKey gives the session the signing key for the one role this
// process plays (demo key derivation; production would load a key file).
func (tf *taskFlags) attachKey(sess *core.Session, id string) {
	if !tf.signed {
		return
	}
	ring := identity.NewKeyring()
	ring.Add(identity.Deterministic(tf.task, id))
	sess.SetKeyring(ring)
}

// obsFlags holds the observability flags shared by every subcommand:
// the introspection endpoint, span JSONL output (with sampling and
// size-capped rotation), and the live alerting knobs (watchdog deadline,
// straggler factor, declarative rules from thresholds or a bench-gate
// baseline file).
type obsFlags struct {
	metricsAddr     string
	spanOut         string
	spanSample      string
	rotateMB        int
	pprof           bool
	stuckAfter      time.Duration
	stragglerFactor float64
	alertWindow     time.Duration
	alertFor        time.Duration
	alertPhaseMax   time.Duration
	alertBudget     string
	alertScenario   string
	alertBurn       float64
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	of := &obsFlags{}
	fs.StringVar(&of.metricsAddr, "metrics-addr", "", "serve /metrics, /events, /alerts, /readyz … on this address (empty disables)")
	fs.StringVar(&of.spanOut, "span-out", "", "write causal spans to this file as JSON Lines (analyze with iplstrace)")
	fs.StringVar(&of.spanSample, "span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
	fs.IntVar(&of.rotateMB, "rotate-mb", 0, "rotate the -span-out file at this size in MiB, keeping one predecessor (0 = unbounded)")
	fs.BoolVar(&of.pprof, "pprof", false, "expose /debug/pprof/ on the -metrics-addr endpoint")
	fs.DurationVar(&of.stuckAfter, "stuck-after", 0, "raise the stuck_round alert when no phase heartbeat arrives for this long (0 disables)")
	fs.Float64Var(&of.stragglerFactor, "straggler-factor", 3, "flag actors whose phase latency exceeds this multiple of the window p90")
	fs.DurationVar(&of.alertWindow, "alert-window", 30*time.Second, "sliding-window width for alert rules and /alerts dashboards")
	fs.DurationVar(&of.alertFor, "alert-for", 0, "hold an alert condition this long before firing")
	fs.DurationVar(&of.alertPhaseMax, "alert-phase-max", 0, "fire phase_latency_max when any phase's windowed max latency exceeds this (0 disables)")
	fs.StringVar(&of.alertBudget, "alert-budget", "", "derive per-phase alert rules from this bench-gate baseline file")
	fs.StringVar(&of.alertScenario, "alert-scenario", "sim-merge", "scenario inside -alert-budget to take phase budgets from")
	fs.Float64Var(&of.alertBurn, "alert-burn", 2, "burn-rate multiple of the -alert-budget phase budgets before firing")
	return of
}

// introspection is a process's observability bundle: a metrics registry,
// a bounded event ring for /events, a bounded span ring for /spans (plus
// an optional span JSONL file), the alert monitor and round watchdog
// behind /alerts, the readiness probe behind /readyz and /healthz, and
// the HTTP server exposing them when -metrics-addr is set.
type introspection struct {
	reg      *obs.Registry
	rec      *core.Recorder
	spans    *obs.SpanCollector
	sink     obs.SpanSink
	spanW    *obs.SpanJSONLWriter
	spanF    *obs.RotatingFile
	sampler  *obs.SpanSampler
	mon      *obs.Monitor
	watch    *core.Watchdog
	ready    *obs.Readiness
	srv      *obs.HTTPServer
	evalStop chan struct{}
}

// startIntrospection builds the bundle. Alert transitions are mirrored
// into the event ring (alert-firing / alert-resolved), the watchdog
// rides the span fan-out so every phase span is a heartbeat, and a
// 1s ticker evaluates the rules against wall time.
func startIntrospection(of *obsFlags, seed int64) (*introspection, error) {
	in := &introspection{
		reg:   obs.NewRegistry(),
		rec:   core.NewRecorder(1024),
		spans: obs.NewSpanCollector(4096),
		ready: obs.NewReadiness(),
	}
	in.mon = obs.NewMonitor(obs.MonitorConfig{
		Window:  of.alertWindow,
		Metrics: in.reg,
		OnTransition: func(a obs.Alert) {
			kind := core.EventAlertFiring
			if a.State != obs.AlertFiring {
				kind = core.EventAlertResolved
			}
			in.rec.Emit(core.Event{
				Time: time.Now(), Kind: kind, Actor: "watchdog",
				Detail: fmt.Sprintf("%s: value %.4f limit %.4f", a.Rule.Name, a.Value, a.Limit),
			})
		},
	})
	in.watch = core.NewWatchdog(in.mon, core.WatchdogConfig{
		StuckAfter:      of.stuckAfter,
		StragglerFactor: of.stragglerFactor,
	})
	if of.alertPhaseMax > 0 {
		if err := in.mon.AddRule(obs.AlertRule{
			Name:      "phase_latency_max",
			Metric:    obs.MetricPhaseLatency,
			Stat:      "max",
			Threshold: of.alertPhaseMax.Seconds(),
			For:       of.alertFor,
		}); err != nil {
			return nil, err
		}
	}
	if of.alertBudget != "" {
		f, err := os.Open(of.alertBudget)
		if err != nil {
			return nil, fmt.Errorf("alert-budget: %w", err)
		}
		base, err := obs.ReadBaseline(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("alert-budget: %w", err)
		}
		rules, err := obs.RulesFromBaseline(base, of.alertScenario, of.alertBurn, of.alertWindow, of.alertFor)
		if err != nil {
			return nil, err
		}
		for _, r := range rules {
			if err := in.mon.AddRule(r); err != nil {
				return nil, err
			}
		}
	}
	sinks := obs.MultiSpanSink{in.spans, in.watch}
	if of.spanOut != "" {
		f, err := obs.NewRotatingFile(of.spanOut, int64(of.rotateMB)<<20)
		if err != nil {
			return nil, fmt.Errorf("span-out: %w", err)
		}
		in.spanF = f
		in.spanW = obs.NewSpanJSONLWriter(f)
		var fileSink obs.SpanSink = in.spanW
		slowest, rate, err := obs.ParseSpanSample(of.spanSample)
		if err != nil {
			in.close()
			return nil, err
		}
		if slowest > 0 || rate < 1 {
			in.sampler = obs.NewSpanSampler(in.spanW, slowest, rate, seed)
			fileSink = in.sampler
		}
		sinks = append(sinks, fileSink)
	} else if of.spanSample != "" {
		return nil, fmt.Errorf("-span-sample needs -span-out")
	}
	in.sink = sinks
	in.evalStop = make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-in.evalStop:
				return
			case <-tick.C:
				in.watch.Evaluate(time.Now())
			}
		}
	}()
	if of.metricsAddr == "" {
		return in, nil
	}
	srv, err := obs.StartHTTP(of.metricsAddr, obs.HandlerConfig{
		Registry: in.reg,
		Events:   func() any { return in.rec.Events() },
		Spans:    func() any { return in.spans.Spans() },
		// One process usually carries one node, but the scoreboard shape
		// is the same either way: split the registry by node label and
		// roll up. A cluster-wide board comes from merging several
		// processes' /metrics.json scrapes the same way.
		Scoreboard: func() any { return obs.MergeSnapshots(obs.SplitByLabel(in.reg.Snapshot(), "node"), 5) },
		Alerts:     func() any { return in.watch.Status(time.Now()) },
		Health:     in.ready.Check,
		Readiness:  in.ready,
		Pprof:      of.pprof,
	})
	if err != nil {
		in.close()
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	in.srv = srv
	fmt.Printf("iplsd: introspection on http://%s/metrics (/events, /spans, /scoreboard, /alerts, /buildinfo, /healthz, /readyz)\n", srv.Addr)
	return in, nil
}

func (in *introspection) close() {
	if in.evalStop != nil {
		close(in.evalStop)
		in.evalStop = nil
	}
	if in.srv != nil {
		in.srv.Close()
	}
	if in.sampler != nil {
		in.sampler.Flush()
		seen, _ := in.sampler.Stats()
		fmt.Printf("iplsd: span-out kept %d of %d spans\n", in.spanW.Emitted(), seen)
	}
	if in.spanW != nil {
		if err := in.spanW.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "iplsd: span-out flush: %v\n", err)
		}
	}
	if in.spanF != nil {
		in.spanF.Close()
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: iplsd <serve|trainer|aggregator|demo> [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "trainer":
		return trainer(args[1:])
	case "aggregator":
		return aggregator(args[1:])
	case "demo":
		return demo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// serve hosts the storage network and the directory service — the
// bootstrapper's side of the deployment.
func serve(args []string) error {
	fs := flag.NewFlagSet("iplsd serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7000", "TCP listen address")
	of := registerObsFlags(fs)
	snapshotFile := fs.String("snapshot-file", "", "restore the directory from this file if it exists; save on shutdown (defaults to <store-dir>/directory.json when -store-dir is set)")
	storeDir := fs.String("store-dir", "", "durable state root: content-addressed blocks under <dir>/blocks survive restarts and are re-served without re-replication (empty = in-memory)")
	cacheBlocks := fs.Int("cache-blocks", 256, "per-node LRU block-cache capacity over the -store-dir disk backend (0 disables)")
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	field := scalar.NewField(cfg.Curve.N)
	storeCfg := storage.StoreConfig{}
	if *storeDir != "" {
		storeCfg = storage.StoreConfig{
			Backend:     storage.BackendFS,
			Dir:         filepath.Join(*storeDir, "blocks"),
			CacheBlocks: *cacheBlocks,
		}
		if *snapshotFile == "" {
			*snapshotFile = filepath.Join(*storeDir, "directory.json")
		}
	}
	netw := storage.NewNetworkWithStore(field, 2, storeCfg)
	defer netw.Close()
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return err
	}
	var dir *directory.Service
	if *snapshotFile != "" {
		dir, err = directory.RestoreFile(*snapshotFile, params, netw)
		if err != nil {
			return fmt.Errorf("restore snapshot %s: %w", *snapshotFile, err)
		}
		if dir != nil {
			fmt.Printf("iplsd: directory restored from %s\n", *snapshotFile)
		}
	}
	if dir == nil {
		dir = directory.New(params, netw)
	}
	// Assignments are config, not state: (re)apply so a config change
	// between runs takes effect and a fresh boot starts assigned.
	cfg.ApplyAssignments(dir)
	if tf.signed {
		_, reg := identity.DeterministicSetup(tf.task, cfg.ParticipantIDs())
		dir.SetRegistry(reg)
	}
	srv := transport.NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		return err
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		return err
	}
	in, err := startIntrospection(of, tf.seed)
	if err != nil {
		return err
	}
	defer in.close()
	// Readiness composition: the server is ready when storage can meet
	// its replication target and the directory answers lookups.
	in.ready.Register("storage", netw.Health)
	in.ready.Register("directory", func() error {
		// A directory rejecting more publishes than it accepts is
		// screening everything out — stale assignments or key mismatch.
		if st := dir.Stats(); st.Rejections > 0 && st.Rejections > st.Publishes {
			return fmt.Errorf("directory: %d rejections against %d accepted publishes", st.Rejections, st.Publishes)
		}
		return nil
	})
	netw.SetMetrics(in.reg)
	netw.SetSpans(in.sink)
	srv.SetMetrics(in.reg)
	srv.SetTracer(in.rec)
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("iplsd: serving task %q on %s (verifiable=%v)\n", tf.task, addr, tf.verifiable)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("iplsd: shutting down")
	if *snapshotFile != "" {
		if err := dir.SaveSnapshotFile(*snapshotFile); err != nil {
			fmt.Fprintf(os.Stderr, "iplsd: snapshot failed: %v\n", err)
		} else {
			fmt.Printf("iplsd: directory snapshot saved to %s\n", *snapshotFile)
		}
	}
	return srv.Close()
}

// trainer runs one trainer's FL loop against a remote server.
func trainer(args []string) error {
	fs := flag.NewFlagSet("iplsd trainer", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "server address")
	index := fs.Int("index", 0, "trainer index in [0, trainers)")
	of := registerObsFlags(fs)
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, m, err := tf.buildConfig()
	if err != nil {
		return err
	}
	if *index < 0 || *index >= len(cfg.Trainers) {
		return fmt.Errorf("trainer index %d out of range", *index)
	}
	me := cfg.Trainers[*index]
	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		return err
	}
	tf.attachKey(sess, me)
	in, err := startIntrospection(of, tf.seed)
	if err != nil {
		return err
	}
	defer in.close()
	in.ready.Register("round_progressing", func() error { return in.watch.Check(time.Now()) })
	sess.SetMetrics(in.reg)
	sess.SetTracer(in.rec)
	sess.SetSpans(in.sink)
	// Real processes meter actual CPU/alloc; spans carry the deltas.
	sess.SetResourceMeter(obs.RuntimeMeter{})
	client.SetMetrics(in.reg)
	local, err := tf.localData(*index)
	if err != nil {
		return err
	}
	global := m.Params()
	fmt.Printf("iplsd: trainer %s starting (%d examples, %d rounds)\n", me, local.Len(), tf.rounds)
	for round := 0; round < tf.rounds; round++ {
		sgd := tf.sgd()
		sgd.Seed = ml.ParticipantSeed(int64(round), *index)
		delta, loss, err := ml.LocalDelta(m, local, global, sgd)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		if err := sess.TrainerUpload(context.Background(), me, round, delta); err != nil {
			return fmt.Errorf("round %d upload: %w", round, err)
		}
		avg, err := sess.TrainerCollect(context.Background(), round)
		if err != nil {
			return fmt.Errorf("round %d collect: %w", round, err)
		}
		for i := range global {
			global[i] += avg[i]
		}
		if err := m.SetParams(global); err != nil {
			return err
		}
		fmt.Printf("iplsd: %s round %d done (local loss %.4f, local acc %.3f)\n",
			me, round, loss, ml.Accuracy(m, local))
	}
	return nil
}

// aggregator runs one aggregator role against a remote server.
func aggregator(args []string) error {
	fs := flag.NewFlagSet("iplsd aggregator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "server address")
	partition := fs.Int("partition", 0, "partition this aggregator serves")
	slot := fs.Int("slot", 0, "aggregator slot j within the partition")
	of := registerObsFlags(fs)
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	if *partition < 0 || *partition >= cfg.Spec.Partitions {
		return fmt.Errorf("partition %d out of range", *partition)
	}
	if *slot < 0 || *slot >= len(cfg.Aggregators[*partition]) {
		return fmt.Errorf("slot %d out of range", *slot)
	}
	me := cfg.Aggregators[*partition][*slot]
	client, err := transport.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		return err
	}
	tf.attachKey(sess, me)
	in, err := startIntrospection(of, tf.seed)
	if err != nil {
		return err
	}
	defer in.close()
	in.ready.Register("round_progressing", func() error { return in.watch.Check(time.Now()) })
	sess.SetMetrics(in.reg)
	sess.SetTracer(in.rec)
	sess.SetSpans(in.sink)
	// Real processes meter actual CPU/alloc; spans carry the deltas.
	sess.SetResourceMeter(obs.RuntimeMeter{})
	client.SetMetrics(in.reg)
	fmt.Printf("iplsd: aggregator %s starting (%d rounds)\n", me, tf.rounds)
	for round := 0; round < tf.rounds; round++ {
		rep, err := sess.AggregatorRun(context.Background(), me, *partition, round, core.BehaviorHonest)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("iplsd: %s round %d: %d gradients, %d merges, published=%v\n",
			me, round, rep.GradientsAggregated, rep.MergeDownloads, rep.PublishedGlobal)
	}
	return nil
}

// demo runs server, trainers and aggregators in one process over loopback
// TCP — a smoke test for the networked deployment.
func demo(args []string) error {
	fs := flag.NewFlagSet("iplsd demo", flag.ContinueOnError)
	of := registerObsFlags(fs)
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, _, err := tf.buildConfig()
	if err != nil {
		return err
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return err
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)
	srv := transport.NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		return err
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		return err
	}
	in, err := startIntrospection(of, tf.seed)
	if err != nil {
		return err
	}
	defer in.close()
	in.ready.Register("storage", netw.Health)
	netw.SetMetrics(in.reg)
	netw.SetSpans(in.sink)
	srv.SetMetrics(in.reg)
	srv.SetTracer(in.rec)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("iplsd demo: server on %s\n", addr)

	var wg sync.WaitGroup
	errs := make(chan error, tf.trainers+cfg.Spec.Partitions*tf.aggregators)
	for i := 0; i < tf.trainers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{"-addr", addr, "-index", fmt.Sprint(i)}
			args = append(args, sharedArgs(tf)...)
			if err := trainer(args); err != nil {
				errs <- fmt.Errorf("trainer %d: %w", i, err)
			}
		}()
	}
	for p := 0; p < tf.partitions; p++ {
		for j := 0; j < tf.aggregators; j++ {
			p, j := p, j
			wg.Add(1)
			go func() {
				defer wg.Done()
				args := []string{"-addr", addr, "-partition", fmt.Sprint(p), "-slot", fmt.Sprint(j)}
				args = append(args, sharedArgs(tf)...)
				if err := aggregator(args); err != nil {
					errs <- fmt.Errorf("aggregator p%d-%d: %w", p, j, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Println("iplsd demo: all roles completed")
	return nil
}

func sharedArgs(tf *taskFlags) []string {
	return []string{
		"-task", tf.task,
		"-trainers", fmt.Sprint(tf.trainers),
		"-partitions", fmt.Sprint(tf.partitions),
		"-aggregators", fmt.Sprint(tf.aggregators),
		"-storage-nodes", fmt.Sprint(tf.storage),
		"-providers", fmt.Sprint(tf.providers),
		"-verifiable=" + fmt.Sprint(tf.verifiable),
		"-signed=" + fmt.Sprint(tf.signed),
		"-curve", tf.curve,
		"-rounds", fmt.Sprint(tf.rounds),
		"-seed", fmt.Sprint(tf.seed),
		"-lr", fmt.Sprint(tf.lr),
		"-epochs", fmt.Sprint(tf.epochs),
		"-batch", fmt.Sprint(tf.batch),
	}
}
