package main

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipls/internal/core"
	"ipls/internal/obs"
)

func parseTaskFlags(t *testing.T, args []string) *taskFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf := registerTaskFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestBuildConfigDeterministic(t *testing.T) {
	args := []string{"-trainers", "6", "-partitions", "3", "-aggregators", "2", "-verifiable"}
	a := parseTaskFlags(t, args)
	b := parseTaskFlags(t, args)
	ca, _, err := a.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	cb, _, err := b.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Two independently derived configs must agree on the whole wiring —
	// that is what lets parties coordinate with flags alone.
	if ca.TaskID != cb.TaskID || ca.Spec != cb.Spec || len(ca.Trainers) != len(cb.Trainers) {
		t.Fatal("configs differ")
	}
	for p := 0; p < ca.Spec.Partitions; p++ {
		for _, tr := range ca.Trainers {
			if ca.Assignment[p][tr] != cb.Assignment[p][tr] {
				t.Fatalf("assignment differs for %s partition %d", tr, p)
			}
		}
	}
}

func TestLocalDataDeterministicAndDisjoint(t *testing.T) {
	tf := parseTaskFlags(t, []string{"-trainers", "4"})
	d0a, err := tf.localData(0)
	if err != nil {
		t.Fatal(err)
	}
	d0b, err := tf.localData(0)
	if err != nil {
		t.Fatal(err)
	}
	if d0a.Len() != d0b.Len() {
		t.Fatal("local data not deterministic")
	}
	for i := range d0a.X {
		for j := range d0a.X[i] {
			if d0a.X[i][j] != d0b.X[i][j] {
				t.Fatal("local data not deterministic")
			}
		}
	}
	total := 0
	for i := 0; i < 4; i++ {
		d, err := tf.localData(i)
		if err != nil {
			t.Fatal(err)
		}
		total += d.Len()
	}
	if total != 60*4 {
		t.Fatalf("shards do not cover the dataset: %d", total)
	}
}

func TestSharedArgsRoundTrip(t *testing.T) {
	orig := parseTaskFlags(t, []string{
		"-task", "roundtrip", "-trainers", "5", "-partitions", "3",
		"-aggregators", "2", "-storage-nodes", "4", "-providers", "1",
		"-verifiable", "-rounds", "7", "-seed", "13", "-lr", "0.5",
		"-epochs", "3", "-batch", "8",
	})
	re := parseTaskFlags(t, sharedArgs(orig))
	if *orig != *re {
		t.Fatalf("sharedArgs round trip mismatch:\n%+v\n%+v", orig, re)
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run([]string{"fly"}); err == nil {
		t.Fatal("expected unknown-subcommand error")
	}
}

func TestTrainerAggregatorValidation(t *testing.T) {
	if err := trainer([]string{"-index", "99", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("expected index range error")
	}
	if err := aggregator([]string{"-partition", "99", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("expected partition range error")
	}
	if err := aggregator([]string{"-partition", "0", "-slot", "99", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("expected slot range error")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	err := demo([]string{
		"-trainers", "2", "-partitions", "2", "-aggregators", "1",
		"-storage-nodes", "2", "-rounds", "1", "-verifiable",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// testObsFlags builds an obsFlags with defaults as if parsed from an
// empty command line, overriding the given fields.
func testObsFlags(addr, spanOut, spanSample string, pprof bool) *obsFlags {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	of := registerObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		panic(err)
	}
	of.metricsAddr, of.spanOut, of.spanSample, of.pprof = addr, spanOut, spanSample, pprof
	return of
}

func TestStartIntrospectionServes(t *testing.T) {
	in, err := startIntrospection(testObsFlags("127.0.0.1:0", "", "", false), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer in.close()
	in.reg.Counter("bytes_uploaded_total", "node", "ipfs-00").Add(77)
	in.rec.Emit(core.Event{Kind: core.EventGradientUploaded, Actor: "trainer-00", Bytes: 77})

	get := func(path string) string {
		resp, err := http.Get("http://" + in.srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `bytes_uploaded_total{node="ipfs-00"} 77`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/events"); !strings.Contains(body, `"gradient-uploaded"`) || !strings.Contains(body, "trainer-00") {
		t.Fatalf("/events missing trace event:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
}

func TestStartIntrospectionSpansAndPprof(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "role.spans")
	in, err := startIntrospection(testObsFlags("127.0.0.1:0", spanPath, "", true), 0)
	if err != nil {
		t.Fatal(err)
	}
	in.sink.EmitSpan(obs.Span{
		Name:    "upload",
		Actor:   "trainer-00",
		Context: obs.SpanContext{Session: "d", Iter: 0, SpanID: obs.NewSpanID()},
	})

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + in.srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/spans"); code != 200 || !strings.Contains(body, `"upload"`) {
		t.Fatalf("/spans = %d %q", code, body)
	}
	if code, body := get("/buildinfo"); code != 200 || !strings.Contains(body, "go_version") {
		t.Fatalf("/buildinfo = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof not mounted with -pprof: %d", code)
	}

	// close() flushes the span JSONL file.
	in.close()
	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "upload" {
		t.Fatalf("span file = %+v", spans)
	}
}

func TestStartIntrospectionPprofOffByDefault(t *testing.T) {
	in, err := startIntrospection(testObsFlags("127.0.0.1:0", "", "", false), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer in.close()
	resp, err := http.Get("http://" + in.srv.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof reachable without -pprof: %d", resp.StatusCode)
	}
}

func TestStartIntrospectionDisabled(t *testing.T) {
	in, err := startIntrospection(testObsFlags("", "", "", false), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer in.close()
	if in.srv != nil {
		t.Fatal("no HTTP server expected when the address is empty")
	}
	// The bundle must still work as a metrics/trace target.
	in.reg.Counter("x").Inc()
	in.rec.Emit(core.Event{Kind: core.EventTakeover})
	if in.rec.Count(core.EventTakeover) != 1 {
		t.Fatal("recorder inert")
	}
}

func TestDemoWithIntrospectionEndpoint(t *testing.T) {
	err := demo([]string{
		"-trainers", "2", "-partitions", "1", "-aggregators", "1",
		"-storage-nodes", "2", "-rounds", "1",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDemoSignedEndToEnd(t *testing.T) {
	err := demo([]string{
		"-task", "signed-demo", "-trainers", "2", "-partitions", "1",
		"-aggregators", "1", "-storage-nodes", "2", "-rounds", "1",
		"-verifiable", "-signed",
	})
	if err != nil {
		t.Fatal(err)
	}
}
