// Command iplsmon is a live terminal dashboard over a running node's
// introspection endpoint: it polls /metrics.json and /alerts and renders
// per-phase sliding-window latencies, firing alert rules and the
// straggler list, refreshing in place. With -once it prints a single
// snapshot and exits; with -json it emits the combined document for
// scripting, so `iplsmon -addr HOST:PORT -once -json | jq .alerts`
// works as a health probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"ipls/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iplsmon:", err)
		os.Exit(1)
	}
}

// monSnapshot is the combined polled state of one refresh.
type monSnapshot struct {
	Addr    string           `json:"addr"`
	At      time.Time        `json:"at"`
	Health  obs.HealthStatus `json:"health"`
	Metrics obs.Snapshot     `json:"metrics"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iplsmon", flag.ContinueOnError)
	addr := fs.String("addr", "", "introspection address (host:port) to poll")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "poll once and exit instead of refreshing")
	asJSON := fs.Bool("json", false, "emit the combined snapshot as JSON (implies no dashboard chrome)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required (e.g. 127.0.0.1:9090)")
	}
	client := &http.Client{Timeout: *timeout}

	if *once {
		snap, err := poll(client, *addr)
		if err != nil {
			return err
		}
		return render(stdout, snap, *asJSON, false)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		snap, err := poll(client, *addr)
		if err != nil {
			fmt.Fprintf(stdout, "\033[2J\033[H(poll %s: %v)\n", *addr, err)
		} else if err := render(stdout, snap, *asJSON, !*asJSON); err != nil {
			return err
		}
		select {
		case <-interrupt:
			return nil
		case <-tick.C:
		}
	}
}

// poll fetches /alerts and /metrics.json from the node.
func poll(client *http.Client, addr string) (monSnapshot, error) {
	snap := monSnapshot{Addr: addr, At: time.Now()}
	if err := getJSON(client, "http://"+addr+"/alerts", &snap.Health); err != nil {
		return snap, err
	}
	if err := getJSON(client, "http://"+addr+"/metrics.json", &snap.Metrics); err != nil {
		return snap, err
	}
	return snap, nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// render writes one refresh. clear prepends the ANSI clear-screen
// sequence for live mode.
func render(w io.Writer, snap monSnapshot, asJSON, clear bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	var b strings.Builder
	if clear {
		b.WriteString("\033[2J\033[H")
	}
	fmt.Fprintf(&b, "iplsmon %s  %s  firing=%d  stragglers=%d\n",
		snap.Addr, snap.At.Format("15:04:05"), len(snap.Health.Firing), len(snap.Health.Stragglers))

	// Per-phase sliding windows, phase_latency first, then other series.
	keys := make([]string, 0, len(snap.Health.Windows))
	for k := range snap.Health.Windows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		pi := strings.HasPrefix(keys[i], obs.MetricPhaseLatency)
		pj := strings.HasPrefix(keys[j], obs.MetricPhaseLatency)
		if pi != pj {
			return pi
		}
		return keys[i] < keys[j]
	})
	if len(keys) > 0 {
		fmt.Fprintf(&b, "\n%-34s %7s %9s %9s %9s %9s\n", "window", "count", "rate/s", "p50", "p90", "max")
		for _, k := range keys {
			ws := snap.Health.Windows[k]
			fmt.Fprintf(&b, "%-34s %7d %9.2f %9s %9s %9s\n",
				k, ws.Count, ws.Rate, fmtSeconds(ws.P50), fmtSeconds(ws.P90), fmtSeconds(ws.Max))
		}
	}

	if len(snap.Health.Alerts) > 0 {
		fmt.Fprintf(&b, "\n%-34s %-8s %12s %12s  %s\n", "alert", "state", "value", "limit", "since")
		for _, a := range snap.Health.Alerts {
			since := ""
			if !a.Since.IsZero() {
				since = a.Since.Format("15:04:05")
			}
			fmt.Fprintf(&b, "%-34s %-8s %12.4f %12.4f  %s\n",
				a.Rule.Name, a.State, a.Value, a.Limit, since)
		}
	}

	if len(snap.Health.Stragglers) > 0 {
		fmt.Fprintf(&b, "\n%-20s %-18s %9s %9s %7s\n", "straggler", "phase", "last", "p90", "ratio")
		for _, s := range snap.Health.Stragglers {
			fmt.Fprintf(&b, "%-20s %-18s %9s %9s %6.1fx\n",
				s.Actor, s.Phase, fmtSeconds(s.LastSeconds), fmtSeconds(s.P90Seconds), s.Ratio)
		}
	}

	// Headline cumulative counters, if present.
	var counters []string
	for _, name := range []string{
		"gradients_uploaded_total", "globals_published_total",
		"merge_downloads_total", "alerts_fired_total",
	} {
		total := int64(0)
		found := false
		for k, v := range snap.Metrics.Counters {
			if k == name || strings.HasPrefix(k, name+"{") {
				total += v
				found = true
			}
		}
		if found {
			counters = append(counters, fmt.Sprintf("%s=%d", name, total))
		}
	}
	if len(counters) > 0 {
		fmt.Fprintf(&b, "\n%s\n", strings.Join(counters, "  "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtSeconds renders a duration in seconds compactly (µs/ms/s).
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
