package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ipls/internal/obs"
)

func startMonitoredEndpoint(t *testing.T) string {
	t.Helper()
	base := time.Unix(0, 0).UTC()
	now := base.Add(time.Minute)

	mon := obs.NewMonitor(obs.MonitorConfig{Window: 30 * time.Second})
	if err := mon.AddRule(obs.AlertRule{
		Name: "slow_upload", Metric: obs.MetricPhaseLatency, Phase: "upload",
		Stat: "max", Threshold: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	mon.Observe(now, obs.MetricPhaseLatency, "upload", 4.2)
	mon.Evaluate(now)

	reg := obs.NewRegistry()
	reg.Counter("iterations_total").Inc()

	srv, err := obs.StartHTTP("127.0.0.1:0", obs.HandlerConfig{
		Registry: reg,
		Alerts:   func() any { return mon.Status(now) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr
}

func TestRunOnceJSON(t *testing.T) {
	addr := startMonitoredEndpoint(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", addr, "-once", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var snap monSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("output is not a single JSON document: %v\n%s", err, buf.String())
	}
	if len(snap.Health.Firing) != 1 || snap.Health.Firing[0] != "slow_upload" {
		t.Fatalf("firing = %v, want the injected alert", snap.Health.Firing)
	}
	var alert *obs.Alert
	for i := range snap.Health.Alerts {
		if snap.Health.Alerts[i].Rule.Name == "slow_upload" {
			alert = &snap.Health.Alerts[i]
		}
	}
	if alert == nil || alert.State != obs.AlertFiring || alert.Value != 4.2 {
		t.Fatalf("alerts = %+v, want slow_upload firing at 4.2", snap.Health.Alerts)
	}
	if snap.Health.Windows["phase_latency/upload"].Count != 1 {
		t.Fatalf("windows = %+v", snap.Health.Windows)
	}
	if len(snap.Metrics.Counters) == 0 {
		t.Fatalf("metrics snapshot empty: %+v", snap.Metrics)
	}
}

func TestRunOnceHumanReadable(t *testing.T) {
	addr := startMonitoredEndpoint(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", addr, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slow_upload", "firing", "phase_latency/upload"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Fatal("-once output contains screen-clear escapes")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-once"}, &buf); err == nil {
		t.Fatal("missing -addr accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-once", "-timeout", "100ms", "-json"}, &buf); err == nil {
		t.Fatal("unreachable endpoint did not error")
	}
}
