// Command iplssim runs a complete federated-learning task end to end on an
// in-memory deployment of the protocol: synthetic data is split across
// trainers, each round the trainers compute local SGD deltas, the deltas
// flow through the decentralized storage network and aggregators, and the
// global model advances. Optionally a malicious aggregator is injected.
//
// Example:
//
//	iplssim -trainers 16 -partitions 4 -aggregators 2 -rounds 10 \
//	        -verifiable -split non-iid -malicious alter-gradient
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ipls/internal/core"
	"ipls/internal/dag"
	"ipls/internal/directory"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/scalar"
	"ipls/internal/scenario"
	"ipls/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iplssim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iplssim", flag.ContinueOnError)
	var (
		trainers    = fs.Int("trainers", 16, "number of trainers")
		partitions  = fs.Int("partitions", 4, "model partitions")
		aggregators = fs.Int("aggregators", 2, "aggregators per partition (|A_i|)")
		storeNodes  = fs.Int("storage-nodes", 8, "storage nodes")
		providers   = fs.Int("providers", 2, "providers per aggregator (0 = no merge-and-download)")
		rounds      = fs.Int("rounds", 10, "FL rounds")
		verifiable  = fs.Bool("verifiable", false, "enable Pedersen-commitment verification")
		curve       = fs.String("curve", "secp256r1-fast", "commitment curve")
		split       = fs.String("split", "iid", "data split: iid | non-iid")
		modelKind   = fs.String("model", "logistic", "model: logistic | mlp")
		malicious   = fs.String("malicious", "", "inject behavior on agg-p0-0: drop-gradient | alter-gradient | forge-update | dropout")
		seed        = fs.Int64("seed", 42, "dataset seed")
		cleanup     = fs.Bool("cleanup", false, "garbage-collect each iteration's blocks after the round")
		storeDir    = fs.String("store-dir", "", "durable state root: content-addressed blocks under <dir>/blocks and a directory snapshot, restored on the next run (empty = in-memory)")
		cacheBlocks = fs.Int("cache-blocks", 256, "per-node LRU block-cache capacity over the -store-dir disk backend (0 disables)")
		gc          = fs.Bool("gc", false, "after each round, sweep blocks from superseded iterations by keep-set (retains the current round and the churn checkpoint DAG)")
		screen      = fs.Float64("screen", 0, "drop trainer gradients with L2 norm above this bound (0 = off; incompatible with -verifiable)")
		scenarioStr = fs.String("scenario", "", "composed fault scenario: comma-separated events over one grammar, e.g. depart:ipfs-03@iter2,crash:trainer-05@iter1,rejoin:trainer-05@iter3,slow:ipfs-00@iter1..2:50ms,flaky:ipfs-02@iter0:0.3,partition:mainline|ipfs-01+trainer-02@iter3..4,corrupt:trainer-01@iter2,late:trainer-03@iter1")
		faults      = fs.String("faults", "", "alias for -scenario (legacy fault grammar is a subset); comma-appended to it")
		churn       = fs.String("churn", "", "alias for -scenario (legacy churn grammar is a subset); comma-appended to it")
		quorum      = fs.Float64("quorum", 0, "quorum fraction in (0,1): aggregators proceed with ceil(q*n) of n gradients after -quorum-wait (incompatible with -verifiable)")
		quorumWait  = fs.Duration("quorum-wait", 200*time.Millisecond, "how long aggregators wait for stragglers before closing a quorum round")
		minAccuracy = fs.Float64("min-accuracy", 0, "fail the run if the final model accuracy is below this bound (0 = off; the chaos-soak convergence gate)")
		spanSample  = fs.String("span-sample", "", "sample spans before -span-out: slowest=N,rate=F (off = keep everything)")
		trace       = fs.Bool("trace", false, "print the protocol event timeline of the first round")
		traceOut    = fs.String("trace-out", "", "write the full protocol event stream to this file as JSON Lines")
		spanOut     = fs.String("span-out", "", "write causal spans to this file as JSON Lines (analyze with iplstrace)")
		rotateMB    = fs.Int("rotate-mb", 0, "rotate the -trace-out/-span-out JSONL files at this size in MiB, keeping one predecessor (0 = unbounded)")
		metricsOut  = fs.String("metrics-out", "", "write the final metrics registry snapshot to this file as JSON")
		summary     = fs.Bool("summary", false, "print per-iteration latency/byte summaries folded from the trace")
		scoreboard  = fs.Bool("scoreboard", false, "print the cluster scoreboard after the run: per-node metrics rolled up into percentiles and top-K outliers")
		watch       = fs.Bool("watch", false, "run the round watchdog over the span stream and print a health summary after the run")
		stuckAfter  = fs.Duration("stuck-after", 10*time.Second, "watchdog heartbeat deadline for the stuck_round alert (with -watch)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -churn and -faults stay as aliases: their legacy grammars are
	// subsets of the scenario grammar, so the three flags concatenate
	// into one composed plan.
	var parts []string
	for _, s := range []string{*scenarioStr, *churn, *faults} {
		if s != "" {
			parts = append(parts, s)
		}
	}
	splan, err := scenario.Parse(strings.Join(parts, ","))
	if err != nil {
		return err
	}
	if !splan.Empty() && *malicious != "" {
		return fmt.Errorf("-scenario drives participant behaviors itself; drop -malicious")
	}

	data := ml.Blobs(60**trainers, 8, 4, 1.2, *seed)
	var m ml.Model
	switch *modelKind {
	case "logistic":
		m = ml.NewLogistic(8, 4)
	case "mlp":
		m = ml.NewMLP(8, 16, 4, *seed)
	default:
		return fmt.Errorf("unknown model %q", *modelKind)
	}

	names := make([]string, *trainers)
	for i := range names {
		names[i] = fmt.Sprintf("trainer-%02d", i)
	}
	nodes := make([]string, *storeNodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	// Under a scenario the schedule deadlines do real work: crashed or
	// partitioned trainers cost a full t_train wait, and standby failover
	// adds another, so the generous fault-free t_train would stall those
	// rounds for minutes.
	tTrain, tSync := time.Minute, 2*time.Second
	if !splan.Empty() || *quorum > 0 {
		tTrain, tSync = 2*time.Second, 10*time.Second
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  "iplssim",
		ModelDim:                m.Dim(),
		Partitions:              *partitions,
		Trainers:                names,
		AggregatorsPerPartition: *aggregators,
		StorageNodes:            nodes,
		ProvidersPerAggregator:  *providers,
		Verifiable:              *verifiable,
		Curve:                   *curve,
		ScreenNorm:              *screen,
		TTrain:                  tTrain,
		TSync:                   tSync,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return err
	}
	// The plain session over the raw network backs keep-set GC; the FL task
	// itself runs over the resilience layer built below.
	var (
		gcSess *core.Session
		net    *storage.Network
		dir    *directory.Service
	)
	if *storeDir != "" {
		stack, err := core.OpenDurableStack(cfg, core.DurableOptions{
			StoreDir: *storeDir, CacheBlocks: *cacheBlocks, Replicas: 2,
		})
		if err != nil {
			return err
		}
		defer stack.Close()
		gcSess, net, dir = stack.Session, stack.Network, stack.Dir
		if stack.Restored() {
			fmt.Printf("restored durable state from %s\n", *storeDir)
		}
	} else {
		gcSess, net, dir, err = core.NewLocalStack(cfg, 2)
		if err != nil {
			return err
		}
	}
	net.SetFaultSeed(*seed) // flaky-node coin flips reproduce under -seed

	// The session runs over the resilience layer: injected faults are
	// absorbed by retries, replica failover and degraded merges instead of
	// failing the round. The jitter seed keeps fault runs reproducible.
	reg := obs.NewRegistry()
	pol := resilience.DefaultPolicy()
	pol.BaseBackoff = 2 * time.Millisecond
	pol.MaxBackoff = 20 * time.Millisecond
	pol.Seed = *seed
	pol.Metrics = reg
	field := scalar.NewField(cfg.Curve.N)
	client := resilience.Wrap(net, field, pol)
	sess, err := core.NewSession(cfg, client.Storage(), resilience.WrapDirectory(dir, pol))
	if err != nil {
		return err
	}

	var splits []*ml.Dataset
	if *split == "non-iid" {
		splits, err = data.SplitLabelSkew(*trainers, 2, *seed+1)
	} else {
		splits, err = data.SplitIID(*trainers, *seed+1)
	}
	if err != nil {
		return err
	}
	locals := make(map[string]*ml.Dataset, *trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	task, err := core.NewTask(sess, m, locals,
		ml.SGDConfig{LearningRate: 0.2, Epochs: 2, BatchSize: 32}, m.Params())
	if err != nil {
		return err
	}

	var runner *core.ScenarioRunner
	if !splan.Empty() || *quorum > 0 {
		runner = core.NewScenarioRunner(task, net, splan)
		runner.SetQuorum(*quorum, *quorumWait)
		runner.Churn().SetMetrics(reg)
	}

	var behaviors map[string]core.Behavior
	if *malicious != "" {
		b, err := parseBehavior(*malicious)
		if err != nil {
			return err
		}
		behaviors = map[string]core.Behavior{core.AggregatorID(0, 0): b}
		fmt.Printf("injecting %s on %s\n", b, core.AggregatorID(0, 0))
	}

	sess.SetMetrics(reg)
	net.SetMetrics(reg)

	// Compose the requested trace consumers: an in-memory recorder for the
	// -trace timeline and -summary folding, and a JSONL file sink for
	// -trace-out. The JSONL sink streams, so long runs stay bounded.
	var (
		recorder *core.Recorder
		sink     *core.JSONLTracer
		tracers  core.MultiTracer
	)
	if *trace || *summary {
		recorder = &core.Recorder{}
		tracers = append(tracers, recorder)
	}
	if *traceOut != "" {
		f, err := obs.NewRotatingFile(*traceOut, int64(*rotateMB)<<20)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		sink = core.NewJSONLTracer(f)
		tracers = append(tracers, sink)
	}
	if len(tracers) > 0 {
		sess.SetTracer(tracers)
	}
	var spanSink *obs.SpanJSONLWriter
	var sampler *obs.SpanSampler
	var spanSinks obs.MultiSpanSink
	var wd *core.Watchdog
	if *watch {
		wd = core.NewWatchdog(obs.NewMonitor(obs.MonitorConfig{Metrics: reg}),
			core.WatchdogConfig{StuckAfter: *stuckAfter})
		spanSinks = append(spanSinks, wd)
	}
	if *spanOut != "" {
		f, err := obs.NewRotatingFile(*spanOut, int64(*rotateMB)<<20)
		if err != nil {
			return fmt.Errorf("span-out: %w", err)
		}
		defer f.Close()
		spanSink = obs.NewSpanJSONLWriter(f)
		var fileSink obs.SpanSink = spanSink
		slowest, rate, err := obs.ParseSpanSample(*spanSample)
		if err != nil {
			return err
		}
		if slowest > 0 || rate < 1 {
			sampler = obs.NewSpanSampler(spanSink, slowest, rate, *seed)
			fileSink = sampler
		}
		spanSinks = append(spanSinks, fileSink)
	} else if *spanSample != "" {
		return fmt.Errorf("-span-sample needs -span-out")
	}
	if len(spanSinks) > 0 {
		sess.SetSpans(spanSinks)
		// The storage network emits the "merge" spans that hang under the
		// aggregators' merge_download spans.
		net.SetSpans(spanSinks)
	}

	fmt.Printf("model=%s dim=%d trainers=%d partitions=%d |A_i|=%d verifiable=%v split=%s\n",
		*modelKind, m.Dim(), *trainers, *partitions, *aggregators, *verifiable, *split)
	start := 0
	if *storeDir != "" {
		// Catch up on rounds a previous process life completed: replay their
		// published updates into the model and continue numbering after them.
		replayed, err := task.Resume(context.Background())
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		if replayed > 0 {
			fmt.Printf("resumed: replayed %d completed rounds, continuing at round %d\n", replayed, task.Round())
		}
		start = task.Round()
	}
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "round", "loss", "accuracy", "applied", "detected")
	var finalAcc float64
	for r := start; r < start+*rounds; r++ {
		var metrics core.RoundMetrics
		if runner != nil {
			var injected []string
			metrics, _, injected, err = runner.RunRound(context.Background())
			for _, ev := range injected {
				fmt.Printf("scenario round %d: %s\n", r, ev)
			}
		} else {
			metrics, _, err = task.RunRound(context.Background(), behaviors)
		}
		if r == 0 && *trace && recorder != nil {
			fmt.Println("-- round 0 event timeline --")
			for _, e := range recorder.Events() {
				fmt.Println("  " + e.String())
			}
		}
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		acc, _, err := task.Evaluate(data)
		if err != nil {
			return err
		}
		finalAcc = acc
		extra := ""
		if metrics.LateFolded > 0 {
			extra = fmt.Sprintf("   (+%d late delta(s) folded)", metrics.LateFolded)
		}
		fmt.Printf("%-8d %10.4f %10.3f %10v %10v%s\n", r, metrics.Loss, acc, metrics.Applied, metrics.Detected, extra)
		if *cleanup {
			if _, err := sess.CleanupIteration(context.Background(), r); err != nil {
				return fmt.Errorf("cleanup round %d: %w", r, err)
			}
		}
		if *gc {
			opts := core.GCOptions{KeepIters: []int{r}}
			if runner != nil {
				if ref, ok := runner.Churn().Checkpoint(); ok {
					opts.KeepRoots = []dag.Ref{ref}
				}
			}
			rep, err := gcSess.GCSuperseded(context.Background(), opts)
			if err != nil {
				return fmt.Errorf("gc round %d: %w", r, err)
			}
			fmt.Printf("gc round %d: %d scanned, %d kept, %d collected, %.1f KB freed\n",
				r, rep.Scanned, rep.Kept, rep.Collected, float64(rep.BytesFreed)/1e3)
		}
	}
	if runner != nil {
		healed, err := runner.Finish(context.Background())
		if err != nil {
			return err
		}
		for _, ev := range healed {
			fmt.Printf("scenario end: %s\n", ev)
		}
	}
	stats := dir.Stats()
	fmt.Printf("directory traffic: %d publishes (%d requests), %d lookups, %d verifications, %d rejections\n",
		stats.Publishes, stats.Requests, stats.Lookups, stats.Verifications, stats.Rejections)
	if stats.Expunged > 0 || len(dir.Quarantined()) > 0 {
		var banned []string
		for tr, from := range dir.Quarantined() {
			banned = append(banned, fmt.Sprintf("%s (from iter %d)", tr, from))
		}
		fmt.Printf("byzantine: %d gradient(s) expunged, quarantined: %s\n",
			stats.Expunged, strings.Join(banned, ", "))
	}
	if !splan.FaultPlan().Empty() {
		var retries, failovers int64
		for _, op := range []string{"put", "get", "merge_get", "fetch", "publish", "publish_batch", "lookup", "update"} {
			retries += reg.Counter("rpc_retries_total", "op", op).Value()
		}
		for _, op := range []string{"get", "merge_get"} {
			failovers += reg.Counter("failovers_total", "op", op).Value()
		}
		fmt.Printf("resilience: %d retries, %d failovers under the fault plan\n", retries, failovers)
	}
	if runner != nil {
		fmt.Printf("churn: %d events, %d standby takeovers, %d trainer bootstraps, %d blocks repaired, %d under-replicated\n",
			reg.Counter("churn_events_total").Value(),
			reg.Counter("standby_takeover_total").Value(),
			reg.Counter("trainer_bootstraps_total").Value(),
			reg.Counter("repair_blocks_total").Value(),
			int64(reg.Gauge("under_replicated_blocks").Value()))
	}
	fmt.Printf("storage footprint after run: %.2f MB across %d nodes\n",
		float64(net.TotalStoredBytes())/1e6, len(cfg.StorageNodes))
	if *summary && recorder != nil {
		fmt.Printf("%-6s %8s %12s %12s %8s %8s %8s\n",
			"iter", "events", "latency", "up-bytes", "down-MB", "merges", "takeover")
		for _, s := range core.SummarizeTrace(recorder.Events()) {
			fmt.Printf("%-6d %8d %12s %12d %8.3f %8d %8d\n",
				s.Iter, s.Events, s.Latency.Round(time.Microsecond), s.BytesUploaded,
				float64(s.BytesDownloaded)/1e6, s.MergeDownloads, s.Takeovers)
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("trace: %d events written to %s (%d dropped)\n", sink.Emitted(), *traceOut, sink.Dropped())
	}
	if spanSink != nil {
		if sampler != nil {
			sampler.Flush() // release the retained slowest spans
		}
		if err := spanSink.Close(); err != nil {
			return fmt.Errorf("span-out: %w", err)
		}
		if sampler != nil {
			seen, passed := sampler.Stats()
			fmt.Printf("spans: %d of %d sampled, %d written to %s (%d dropped)\n",
				passed, seen, spanSink.Emitted(), *spanOut, spanSink.Dropped())
		} else {
			fmt.Printf("spans: %d spans written to %s (%d dropped)\n", spanSink.Emitted(), *spanOut, spanSink.Dropped())
		}
	}
	if wd != nil {
		wd.Evaluate(time.Now())
		st := wd.Status(time.Now())
		fmt.Printf("watchdog: %d heartbeat phases, max gap %v, %d firing alerts, %d stragglers\n",
			len(st.Windows), wd.MaxGap().Round(time.Millisecond), len(st.Firing), len(st.Stragglers))
		for _, name := range st.Firing {
			fmt.Printf("  firing: %s\n", name)
		}
		for _, s := range st.Stragglers {
			fmt.Printf("  straggler: %s %s %.1fx the window p90\n", s.Actor, s.Phase, s.Ratio)
		}
	}
	if *scoreboard {
		fmt.Println("-- cluster scoreboard --")
		obs.WriteScoreboard(os.Stdout, obs.MergeSnapshots(obs.SplitByLabel(reg.Snapshot(), "node"), 5))
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Printf("metrics: snapshot written to %s\n", *metricsOut)
	}
	if q := reg.Counter("quorum_proceed_total").Value(); q > 0 {
		fmt.Printf("quorum: %d round-phase(s) closed early at %g of the gradient set\n", q, *quorum)
	}
	if *minAccuracy > 0 && finalAcc < *minAccuracy {
		return fmt.Errorf("final accuracy %.3f below the -min-accuracy bound %.3f", finalAcc, *minAccuracy)
	}
	return nil
}

func parseBehavior(s string) (core.Behavior, error) {
	switch s {
	case "drop-gradient":
		return core.BehaviorDropGradient, nil
	case "alter-gradient":
		return core.BehaviorAlterGradient, nil
	case "forge-update":
		return core.BehaviorForgeUpdate, nil
	case "dropout":
		return core.BehaviorDropout, nil
	default:
		return 0, fmt.Errorf("unknown behavior %q", s)
	}
}
