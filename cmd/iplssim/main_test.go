package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipls/internal/core"
	"ipls/internal/obs"
)

func TestParseBehavior(t *testing.T) {
	cases := map[string]core.Behavior{
		"drop-gradient":  core.BehaviorDropGradient,
		"alter-gradient": core.BehaviorAlterGradient,
		"forge-update":   core.BehaviorForgeUpdate,
		"dropout":        core.BehaviorDropout,
	}
	for s, want := range cases {
		got, err := parseBehavior(s)
		if err != nil || got != want {
			t.Errorf("parseBehavior(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseBehavior("nonsense"); err == nil {
		t.Fatal("expected error for unknown behavior")
	}
}

func TestRunSmallHonestJob(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "1",
		"-storage-nodes", "2", "-providers", "1", "-rounds", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifiableMaliciousJob(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "2",
		"-storage-nodes", "2", "-providers", "0", "-rounds", "1",
		"-verifiable", "-malicious", "alter-gradient", "-model", "mlp",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-model", "transformer"}); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if err := run([]string{"-malicious", "nonsense", "-rounds", "1"}); err == nil {
		t.Fatal("expected unknown-behavior error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

// TestRunExportsTraceAndMetrics drives a simulated multi-node run and
// checks the exported artifacts: the JSONL trace must parse and fold into
// non-empty per-iteration summaries, and the metrics snapshot must show
// non-zero upload bytes, merge savings and aggregation-latency samples.
func TestRunExportsTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "2",
		"-storage-nodes", "3", "-providers", "1", "-rounds", "2",
		"-trace-out", tracePath, "-metrics-out", metricsPath, "-summary",
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := core.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	sums := core.SummarizeTrace(events)
	if len(sums) != 2 {
		t.Fatalf("trace covers %d iterations, want 2", len(sums))
	}
	for _, s := range sums {
		if s.BytesUploaded == 0 || s.GradientUploads == 0 {
			t.Fatalf("iteration %d summary empty: %+v", s.Iter, s)
		}
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var uploaded int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "bytes_uploaded_total") {
			uploaded += v
		}
	}
	if uploaded == 0 {
		t.Fatal("snapshot has zero bytes_uploaded_total")
	}
	if snap.Counters["merge_bytes_saved_total"] == 0 {
		t.Fatal("snapshot has zero merge_bytes_saved_total")
	}
	lat, ok := snap.Histograms["aggregation_latency_seconds"]
	if !ok || lat.Count == 0 {
		t.Fatal("snapshot missing aggregation latency observations")
	}
}

// TestRunExportsSpans is the acceptance path for causal tracing: a
// multi-node, multi-iteration run with -span-out yields a span file whose
// per-iteration critical-path phases sum exactly to the end-to-end
// latency, with the cross-role causality (aggregate → upload links,
// merge under merge_download) intact.
func TestRunExportsSpans(t *testing.T) {
	dir := t.TempDir()
	spanPath := filepath.Join(dir, "run.spans")
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "2",
		"-storage-nodes", "3", "-providers", "1", "-rounds", "3",
		"-span-out", spanPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}

	breakdowns := obs.BreakdownTrace(spans)
	if len(breakdowns) != 3 {
		t.Fatalf("breakdowns cover %d iterations, want 3", len(breakdowns))
	}
	for _, b := range breakdowns {
		if b.Latency <= 0 {
			t.Fatalf("iter %d latency %v", b.Iter, b.Latency)
		}
		var sum time.Duration
		for _, p := range b.Phases {
			sum += p.Duration
		}
		if sum != b.Latency {
			t.Fatalf("iter %d phases sum to %v, latency %v", b.Iter, sum, b.Latency)
		}
	}

	for iter := 0; iter < 3; iter++ {
		tree := obs.BuildTree(spans, "iplssim", iter)
		if tree.Orphans != 0 {
			t.Fatalf("iter %d: %d orphaned spans", iter, tree.Orphans)
		}
		agg := tree.Find("aggregate")
		if agg == nil || len(agg.Span.Links) == 0 {
			t.Fatalf("iter %d aggregate has no causal links to uploads", iter)
		}
		md := tree.Find("merge_download")
		if md == nil || len(md.Children) == 0 || md.Children[0].Span.Name != "merge" {
			t.Fatalf("iter %d merge span not under merge_download", iter)
		}
	}
}

func TestRunNonIIDSplit(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "1",
		"-storage-nodes", "2", "-rounds", "1", "-split", "non-iid",
	})
	if err != nil {
		t.Fatal(err)
	}
}
