package main

import (
	"testing"

	"ipls/internal/core"
)

func TestParseBehavior(t *testing.T) {
	cases := map[string]core.Behavior{
		"drop-gradient":  core.BehaviorDropGradient,
		"alter-gradient": core.BehaviorAlterGradient,
		"forge-update":   core.BehaviorForgeUpdate,
		"dropout":        core.BehaviorDropout,
	}
	for s, want := range cases {
		got, err := parseBehavior(s)
		if err != nil || got != want {
			t.Errorf("parseBehavior(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseBehavior("nonsense"); err == nil {
		t.Fatal("expected error for unknown behavior")
	}
}

func TestRunSmallHonestJob(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "1",
		"-storage-nodes", "2", "-providers", "1", "-rounds", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifiableMaliciousJob(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "2",
		"-storage-nodes", "2", "-providers", "0", "-rounds", "1",
		"-verifiable", "-malicious", "alter-gradient", "-model", "mlp",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-model", "transformer"}); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if err := run([]string{"-malicious", "nonsense", "-rounds", "1"}); err == nil {
		t.Fatal("expected unknown-behavior error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunNonIIDSplit(t *testing.T) {
	err := run([]string{
		"-trainers", "4", "-partitions", "2", "-aggregators", "1",
		"-storage-nodes", "2", "-rounds", "1", "-split", "non-iid",
	})
	if err != nil {
		t.Fatal(err)
	}
}
