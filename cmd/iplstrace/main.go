// Command iplstrace analyzes span traces recorded by iplssim/iplsd
// (-span-out): it folds each iteration's span tree into a critical path
// and per-phase latency breakdown — the shape of the paper's §V latency
// figures, computed from a recorded run — and can export the spans in
// Chrome trace-event format for Perfetto / chrome://tracing.
//
// Several input files merge into one stream, so per-node span files from
// a distributed run can be analyzed together:
//
//	iplstrace run-node1.spans run-node2.spans
//	iplstrace -json run.spans
//	iplstrace -chrome trace.json run.spans
//	iplstrace -tree run.spans
//	iplstrace -resources run.spans          per-phase cpu/alloc + actor outliers
//	iplstrace -resources -top 10 run.spans
//
// With -baseline the folded breakdowns are compared against a scenario
// budget recorded by `iplsbench -baseline-out` instead of printed,
// exiting non-zero with a per-phase delta table on regression:
//
//	iplstrace -baseline sim.json -scenario fig1-merge-p4 run.spans
//	iplstrace -baseline sim.json -tolerance 0.05 run.spans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ipls/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iplstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iplstrace", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit the per-iteration breakdowns as JSON instead of a table")
		chrome    = fs.String("chrome", "", "write the spans in Chrome trace-event format to this file (open in Perfetto)")
		tree      = fs.Bool("tree", false, "print each iteration's span tree instead of the breakdown")
		resources = fs.Bool("resources", false, "print per-phase CPU/alloc attribution and per-actor hottest/slowest tables instead of the latency breakdown")
		top       = fs.Int("top", 5, "number of actors in the -resources hottest/slowest tables")
		baseline  = fs.String("baseline", "", "compare the folded breakdowns against this baseline JSON (from iplsbench -baseline-out), exiting non-zero on regression")
		scenario  = fs.String("scenario", "", "scenario name inside -baseline to compare against (optional when the baseline has exactly one)")
		tolerance = fs.Float64("tolerance", 0, "allowed relative regression per phase metric when checking -baseline (0.05 = 5%)")
	)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: iplstrace [flags] span-file.jsonl [more-files...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no span files given")
	}
	if *baseline != "" && (*jsonOut || *tree || *resources) {
		return fmt.Errorf("-baseline is incompatible with -json/-tree/-resources")
	}
	if *baseline == "" && (*scenario != "" || *tolerance != 0) {
		return fmt.Errorf("-scenario/-tolerance only apply with -baseline")
	}

	var spans []obs.Span
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		part, err := obs.ReadSpanJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, part...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in input")
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return fmt.Errorf("chrome export: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "chrome trace: %d spans written to %s\n", len(spans), *chrome)
	}

	if *tree {
		printTrees(out, spans)
		return nil
	}

	breakdowns := obs.BreakdownTrace(spans)
	if *resources {
		printResources(out, spans, breakdowns, *top)
		return nil
	}
	if *baseline != "" {
		return checkBaseline(out, breakdowns, *baseline, *scenario, *tolerance)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(breakdowns)
	}
	printBreakdowns(out, breakdowns)
	return nil
}

// checkBaseline folds the breakdowns into a scenario budget and compares
// it against one scenario of a recorded baseline, reusing the same
// comparator and delta-table renderer as the iplsbench gate.
func checkBaseline(out io.Writer, breakdowns []obs.IterationBreakdown, path, scenario string, tolerance float64) error {
	if tolerance < 0 {
		return fmt.Errorf("-tolerance must be non-negative, got %v", tolerance)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base, err := obs.ReadBaseline(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if scenario == "" {
		if len(base.Scenarios) != 1 {
			names := make([]string, 0, len(base.Scenarios))
			for name := range base.Scenarios {
				names = append(names, name)
			}
			sort.Strings(names)
			return fmt.Errorf("baseline has %d scenarios (%s): pick one with -scenario",
				len(base.Scenarios), strings.Join(names, ", "))
		}
		for name := range base.Scenarios {
			scenario = name
		}
	}
	budget, ok := base.Scenarios[scenario]
	if !ok {
		return fmt.Errorf("baseline has no scenario %q", scenario)
	}
	report := obs.CompareBudget(scenario, budget, obs.NewScenarioBudget(breakdowns), tolerance)
	obs.WriteBudgetReport(out, report)
	if v := report.Violations(); len(v) > 0 {
		return fmt.Errorf("%d budget violation(s): %s", len(v), strings.Join(v, "; "))
	}
	return nil
}

// printBreakdowns renders the per-iteration phase tables. Phase durations
// sum to the iteration latency by construction (untraced stretches are
// charged to the "(untraced)" phase).
func printBreakdowns(out io.Writer, breakdowns []obs.IterationBreakdown) {
	for i, b := range breakdowns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "%s iter %d: %d spans, latency %s\n",
			orUnnamed(b.Session), b.Iter, b.Spans, b.Latency.Round(time.Microsecond))
		fmt.Fprintf(out, "  %-18s %12s %7s %5s %12s\n", "phase", "time", "frac", "segs", "bytes")
		for _, p := range b.Phases {
			fmt.Fprintf(out, "  %-18s %12s %6.1f%% %5d %12d\n",
				p.Phase, p.Duration.Round(time.Microsecond), p.Fraction*100, p.Segments, p.Bytes)
		}
	}
}

// printResources renders the resource-attribution view: per-iteration
// phase tables with the cpu/alloc columns, then cross-trace per-actor
// roll-ups — the hottest actors by CPU charged to their spans and the
// slowest by span time. This is the single-file cousin of the cluster
// scoreboard: same question ("where do cycles and bytes go, and who is
// the outlier"), answered from a recorded span stream.
func printResources(out io.Writer, spans []obs.Span, breakdowns []obs.IterationBreakdown, top int) {
	for i, b := range breakdowns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "%s iter %d: %d spans, latency %s\n",
			orUnnamed(b.Session), b.Iter, b.Spans, b.Latency.Round(time.Microsecond))
		fmt.Fprintf(out, "  %-18s %12s %7s %12s %12s\n", "phase", "time", "frac", "cpu", "alloc")
		for _, p := range b.Phases {
			fmt.Fprintf(out, "  %-18s %12s %6.1f%% %12s %11dB\n",
				p.Phase, p.Duration.Round(time.Microsecond), p.Fraction*100,
				time.Duration(p.CPUNanos).Round(time.Microsecond), p.AllocBytes)
		}
	}

	type actorAgg struct {
		cpu   int64
		alloc int64
		busy  time.Duration
	}
	actors := make(map[string]*actorAgg)
	for _, s := range spans {
		name := s.Actor
		if name == "" {
			name = "(unattributed)"
		}
		a := actors[name]
		if a == nil {
			a = &actorAgg{}
			actors[name] = a
		}
		a.cpu += s.CPUNanos
		a.alloc += s.AllocBytes
		a.busy += s.Duration()
	}
	names := make([]string, 0, len(actors))
	for n := range actors {
		names = append(names, n)
	}
	table := func(title, valueHeader string, value func(a *actorAgg) int64, render func(a *actorAgg) string) {
		sort.Slice(names, func(i, j int) bool {
			vi, vj := value(actors[names[i]]), value(actors[names[j]])
			if vi != vj {
				return vi > vj
			}
			return names[i] < names[j]
		})
		fmt.Fprintf(out, "\n%s\n  %-24s %14s\n", title, "actor", valueHeader)
		for i, n := range names {
			if top > 0 && i >= top {
				break
			}
			fmt.Fprintf(out, "  %-24s %14s\n", n, render(actors[n]))
		}
	}
	table(fmt.Sprintf("hottest actors (top %d by span CPU)", top), "cpu",
		func(a *actorAgg) int64 { return a.cpu },
		func(a *actorAgg) string { return time.Duration(a.cpu).Round(time.Microsecond).String() })
	table(fmt.Sprintf("slowest actors (top %d by span time)", top), "busy",
		func(a *actorAgg) int64 { return int64(a.busy) },
		func(a *actorAgg) string { return a.busy.Round(time.Microsecond).String() })
	table(fmt.Sprintf("heaviest actors (top %d by span alloc)", top), "alloc",
		func(a *actorAgg) int64 { return a.alloc },
		func(a *actorAgg) string { return fmt.Sprintf("%dB", a.alloc) })
}

// printTrees renders each trace's span forest with indentation.
func printTrees(out io.Writer, spans []obs.Span) {
	for i, k := range obs.TraceKeys(spans) {
		if i > 0 {
			fmt.Fprintln(out)
		}
		t := obs.BuildTree(spans, k.Session, k.Iter)
		fmt.Fprintf(out, "%s iter %d: %d spans", orUnnamed(k.Session), k.Iter, t.Size())
		if t.Orphans > 0 {
			fmt.Fprintf(out, " (%d orphaned)", t.Orphans)
		}
		fmt.Fprintln(out)
		t.Walk(func(n *obs.SpanNode, depth int) {
			line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth+1), n.Span.Name)
			if n.Span.Actor != "" {
				line += " [" + n.Span.Actor + "]"
			}
			line += " " + n.Span.Duration().Round(time.Microsecond).String()
			if n.Span.Bytes > 0 {
				line += fmt.Sprintf(" %dB", n.Span.Bytes)
			}
			if len(n.Span.Links) > 0 {
				line += fmt.Sprintf(" links=%d", len(n.Span.Links))
			}
			fmt.Fprintln(out, line)
		})
	}
}

func orUnnamed(session string) string {
	if session == "" {
		return "(unnamed)"
	}
	return session
}
