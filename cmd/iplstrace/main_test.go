package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipls/internal/obs"
)

// writeSpanFile writes a small two-iteration trace split across files the
// way a distributed run produces them: the aggregator-side spans in one
// file, the storage-side merge span in another.
func writeSpanFiles(t *testing.T, dir string) (string, string) {
	t.Helper()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	at := func(ms int64) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	mk := func(iter int, id, parent, name, actor string, s, e int64) obs.Span {
		return obs.Span{
			Name: name, Actor: actor,
			Context: obs.SpanContext{Session: "run", Iter: iter, SpanID: id, Parent: parent},
			Start:   at(s), End: at(e),
		}
	}
	aggSide := []obs.Span{
		mk(0, "it0", "", "iteration", "session", 0, 100),
		mk(0, "agg0", "it0", "aggregate", "agg-p0-0", 10, 90),
		mk(0, "md0", "agg0", "merge_download", "agg-p0-0", 20, 60),
		mk(1, "it1", "", "iteration", "session", 0, 80),
	}
	storeSide := []obs.Span{
		mk(0, "m0", "md0", "merge", "ipfs-00", 25, 55),
	}
	write := func(name string, spans []obs.Span) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := obs.NewSpanJSONLWriter(f)
		for _, s := range spans {
			w.EmitSpan(s)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("agg.spans", aggSide), write("store.spans", storeSide)
}

func TestRunBreakdownTable(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "run iter 0") || !strings.Contains(text, "run iter 1") {
		t.Fatalf("missing iteration headers:\n%s", text)
	}
	// The storage-side merge span merged in and lands on the critical path.
	if !strings.Contains(text, "merge") {
		t.Fatalf("merged multi-file stream lost the merge span:\n%s", text)
	}
	if !strings.Contains(text, "latency 100ms") {
		t.Fatalf("iteration latency missing:\n%s", text)
	}
}

func TestRunJSONBreakdown(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-json", aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	var breakdowns []obs.IterationBreakdown
	if err := json.Unmarshal(out.Bytes(), &breakdowns); err != nil {
		t.Fatalf("-json output not valid JSON: %v", err)
	}
	if len(breakdowns) != 2 {
		t.Fatalf("breakdowns = %d, want 2", len(breakdowns))
	}
	var sum time.Duration
	for _, p := range breakdowns[0].Phases {
		sum += p.Duration
	}
	if sum != breakdowns[0].Latency || breakdowns[0].Latency != 100*time.Millisecond {
		t.Fatalf("phase sum %v vs latency %v", sum, breakdowns[0].Latency)
	}
}

func TestRunTreeView(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-tree", aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// The cross-file merge span nests under merge_download: deeper indent.
	mdLine, mLine := "", ""
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "merge_download") {
			mdLine = line
		} else if strings.Contains(line, "merge ") {
			mLine = line
		}
	}
	if mdLine == "" || mLine == "" {
		t.Fatalf("tree view missing merge spans:\n%s", text)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(mLine) <= indent(mdLine) {
		t.Fatalf("merge not nested under merge_download:\n%s", text)
	}
	if !strings.Contains(text, "[ipfs-00]") {
		t.Fatalf("actor missing from tree:\n%s", text)
	}
}

func TestRunChromeExport(t *testing.T) {
	dir := t.TempDir()
	aggFile, storeFile := writeSpanFiles(t, dir)
	chromePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-chrome", chromePath, aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	var complete int
	for _, e := range trace.TraceEvents {
		if e.Phase == "X" {
			complete++
		}
	}
	if complete != 5 {
		t.Fatalf("chrome X events = %d, want 5", complete)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no input files must error")
	}
	if err := run([]string{"/does/not/exist.spans"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.spans")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty span stream must error")
	}
}
