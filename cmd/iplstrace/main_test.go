package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipls/internal/obs"
)

// writeSpanFile writes a small two-iteration trace split across files the
// way a distributed run produces them: the aggregator-side spans in one
// file, the storage-side merge span in another.
func writeSpanFiles(t *testing.T, dir string) (string, string) {
	t.Helper()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	at := func(ms int64) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	mk := func(iter int, id, parent, name, actor string, s, e int64) obs.Span {
		return obs.Span{
			Name: name, Actor: actor,
			Context: obs.SpanContext{Session: "run", Iter: iter, SpanID: id, Parent: parent},
			Start:   at(s), End: at(e),
		}
	}
	aggSide := []obs.Span{
		mk(0, "it0", "", "iteration", "session", 0, 100),
		mk(0, "agg0", "it0", "aggregate", "agg-p0-0", 10, 90),
		mk(0, "md0", "agg0", "merge_download", "agg-p0-0", 20, 60),
		mk(1, "it1", "", "iteration", "session", 0, 80),
	}
	storeSide := []obs.Span{
		mk(0, "m0", "md0", "merge", "ipfs-00", 25, 55),
	}
	write := func(name string, spans []obs.Span) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := obs.NewSpanJSONLWriter(f)
		for _, s := range spans {
			w.EmitSpan(s)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("agg.spans", aggSide), write("store.spans", storeSide)
}

func TestRunBreakdownTable(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "run iter 0") || !strings.Contains(text, "run iter 1") {
		t.Fatalf("missing iteration headers:\n%s", text)
	}
	// The storage-side merge span merged in and lands on the critical path.
	if !strings.Contains(text, "merge") {
		t.Fatalf("merged multi-file stream lost the merge span:\n%s", text)
	}
	if !strings.Contains(text, "latency 100ms") {
		t.Fatalf("iteration latency missing:\n%s", text)
	}
}

func TestRunJSONBreakdown(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-json", aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	var breakdowns []obs.IterationBreakdown
	if err := json.Unmarshal(out.Bytes(), &breakdowns); err != nil {
		t.Fatalf("-json output not valid JSON: %v", err)
	}
	if len(breakdowns) != 2 {
		t.Fatalf("breakdowns = %d, want 2", len(breakdowns))
	}
	var sum time.Duration
	for _, p := range breakdowns[0].Phases {
		sum += p.Duration
	}
	if sum != breakdowns[0].Latency || breakdowns[0].Latency != 100*time.Millisecond {
		t.Fatalf("phase sum %v vs latency %v", sum, breakdowns[0].Latency)
	}
}

func TestRunTreeView(t *testing.T) {
	aggFile, storeFile := writeSpanFiles(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-tree", aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// The cross-file merge span nests under merge_download: deeper indent.
	mdLine, mLine := "", ""
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "merge_download") {
			mdLine = line
		} else if strings.Contains(line, "merge ") {
			mLine = line
		}
	}
	if mdLine == "" || mLine == "" {
		t.Fatalf("tree view missing merge spans:\n%s", text)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(mLine) <= indent(mdLine) {
		t.Fatalf("merge not nested under merge_download:\n%s", text)
	}
	if !strings.Contains(text, "[ipfs-00]") {
		t.Fatalf("actor missing from tree:\n%s", text)
	}
}

func TestRunChromeExport(t *testing.T) {
	dir := t.TempDir()
	aggFile, storeFile := writeSpanFiles(t, dir)
	chromePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-chrome", chromePath, aggFile, storeFile}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	var complete int
	for _, e := range trace.TraceEvents {
		if e.Phase == "X" {
			complete++
		}
	}
	if complete != 5 {
		t.Fatalf("chrome X events = %d, want 5", complete)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no input files must error")
	}
	if err := run([]string{"/does/not/exist.spans"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.spans")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty span stream must error")
	}
}

// writeBaselineFile folds the fixture span files into a baseline with the
// given scenario names so the -baseline path has something real to check
// against.
func writeBaselineFile(t *testing.T, dir string, spans []obs.Span, scenarios ...string) string {
	t.Helper()
	budget := obs.NewScenarioBudget(obs.BreakdownTrace(spans))
	base := obs.Baseline{Version: obs.BaselineVersion, Scenarios: map[string]obs.ScenarioBudget{}}
	for _, name := range scenarios {
		base.Scenarios[name] = budget
	}
	path := filepath.Join(dir, "base.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteBaseline(f, base); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func readSpans(t *testing.T, paths ...string) []obs.Span {
	t.Helper()
	var spans []obs.Span
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		part, err := obs.ReadSpanJSONL(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, part...)
	}
	return spans
}

func TestRunBaselineCheck(t *testing.T) {
	dir := t.TempDir()
	aggFile, storeFile := writeSpanFiles(t, dir)
	spans := readSpans(t, aggFile, storeFile)

	t.Run("single scenario inferred", func(t *testing.T) {
		base := writeBaselineFile(t, t.TempDir(), spans, "run")
		var out bytes.Buffer
		if err := run([]string{"-baseline", base, aggFile, storeFile}, &out); err != nil {
			t.Fatalf("self-check failed: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "scenario run: PASS") {
			t.Fatalf("missing PASS line:\n%s", out.String())
		}
	})
	t.Run("multi scenario needs -scenario", func(t *testing.T) {
		base := writeBaselineFile(t, t.TempDir(), spans, "a", "b")
		err := run([]string{"-baseline", base, aggFile, storeFile}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-scenario") {
			t.Fatalf("want pick-a-scenario error, got %v", err)
		}
		var out bytes.Buffer
		if err := run([]string{"-baseline", base, "-scenario", "b", aggFile, storeFile}, &out); err != nil {
			t.Fatalf("named-scenario check failed: %v\n%s", err, out.String())
		}
	})
	t.Run("unknown scenario", func(t *testing.T) {
		base := writeBaselineFile(t, t.TempDir(), spans, "run")
		err := run([]string{"-baseline", base, "-scenario", "nope", aggFile, storeFile}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "nope") {
			t.Fatalf("want unknown-scenario error, got %v", err)
		}
	})
	t.Run("regression fails naming phase", func(t *testing.T) {
		budget := obs.NewScenarioBudget(obs.BreakdownTrace(spans))
		merge := budget.Phases["merge"]
		merge.Max /= 2
		budget.Phases["merge"] = merge
		base := obs.Baseline{Version: obs.BaselineVersion, Scenarios: map[string]obs.ScenarioBudget{"run": budget}}
		path := filepath.Join(t.TempDir(), "tight.json")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteBaseline(f, base); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		checkErr := run([]string{"-baseline", path, aggFile, storeFile}, &out)
		if checkErr == nil || !strings.Contains(checkErr.Error(), "merge") {
			t.Fatalf("want merge violation, got %v\n%s", checkErr, out.String())
		}
		if !strings.Contains(out.String(), "FAIL") {
			t.Fatalf("report should FAIL:\n%s", out.String())
		}
	})
	t.Run("flag conflicts", func(t *testing.T) {
		base := writeBaselineFile(t, t.TempDir(), spans, "run")
		if err := run([]string{"-baseline", base, "-json", aggFile}, &bytes.Buffer{}); err == nil {
			t.Fatal("-baseline with -json must fail")
		}
		if err := run([]string{"-baseline", base, "-tree", aggFile}, &bytes.Buffer{}); err == nil {
			t.Fatal("-baseline with -tree must fail")
		}
		if err := run([]string{"-scenario", "run", aggFile}, &bytes.Buffer{}); err == nil {
			t.Fatal("-scenario without -baseline must fail")
		}
		if err := run([]string{"-baseline", base, "-tolerance", "-0.1", aggFile}, &bytes.Buffer{}); err == nil {
			t.Fatal("negative tolerance must fail")
		}
	})
}
