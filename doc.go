// Package ipls is a from-scratch Go reproduction of "Towards Efficient
// Decentralized Federated Learning" (Pappas, Papadopoulos, Chatzopoulos,
// Panagou, Lalis, Vavalis — ICDCS 2022): a decentralized federated-learning
// protocol in which participants communicate indirectly through a
// content-addressed storage network, aggregation is accelerated by
// provider-side merge-and-download, and malicious aggregators are defeated
// by homomorphic Pedersen vector commitments.
//
// The implementation lives under internal/:
//
//   - internal/core       — the protocol engine (runtime + virtual-time sim)
//   - internal/directory  — the directory service (addr → CID, accumulators)
//   - internal/storage    — the IPFS-like storage network
//   - internal/pedersen   — Pedersen vector commitments
//   - internal/group      — secp256k1 / secp256r1 elliptic-curve groups
//   - internal/scalar     — field arithmetic and fixed-point quantization
//   - internal/netsim     — discrete-event network emulator
//   - internal/model      — parameter partitioning and block encoding
//   - internal/ml         — datasets, classifiers, SGD, FedAvg reference
//   - internal/transport  — TCP (net/rpc) deployment
//   - internal/baseline   — blockchain-FL and direct-communication baselines
//   - internal/chain      — hash-chained ledger for the BCFL baseline
//
// This package itself is the public API: a curated facade (ipls.go) over
// the implementation — TaskSpec/Config/Session/Task for the protocol,
// StorageNetwork/DirectoryService/ShardedDirectory for backends,
// Server/Dial for TCP deployment, Simulate for the evaluation harness, and
// the ML, identity, gossip-baseline and storage-market entry points.
//
// Executables: cmd/iplsbench regenerates every figure of the paper's
// evaluation, cmd/iplssim drives end-to-end FL jobs, and cmd/iplsd runs the
// roles as TCP-networked processes. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package ipls
