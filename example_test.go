package ipls_test

import (
	"context"
	"fmt"
	"time"

	"ipls"
)

// Example runs one verifiable iteration through the public API.
func Example() {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "readme",
		ModelDim:                4,
		Partitions:              2,
		Trainers:                []string{"alice", "bob"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"ipfs-0"},
		Verifiable:              true,
		TTrain:                  time.Second,
		TSync:                   time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sess, _, _, err := ipls.NewLocalStack(cfg, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sess.RunIteration(context.Background(), 0, map[string][]float64{
		"alice": {2, 2, 2, 2},
		"bob":   {4, 4, 4, 4},
	}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("average = %.0f, cheating detected = %v\n", res.AvgDelta[0], res.Detected())
	// Output: average = 3, cheating detected = false
}
