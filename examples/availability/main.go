// Availability demo: the §VI mechanisms that keep protocol data alive on
// an unreliable storage network, working together —
//
//   - rendezvous-hash replica placement (uniform, collusion-resistant),
//   - Filecoin-style storage deals with retrieval audits and slashing,
//   - content routing around failed nodes,
//   - Merkle-DAG chunking for large objects,
//   - anti-entropy repair after a permanent departure (Depart + RepairScan).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := ipls.NewStorageNetworkOpts(ipls.StorageNetworkOptions{CurveName: "secp256k1", Replicas: 2})
	if err != nil {
		return err
	}
	net.SetPlacement(ipls.PlacementRendezvous)
	nodes := make([]string, 6)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("ipfs-%d", i)
		net.AddNode(nodes[i])
	}

	// A "large model checkpoint" stored as a chunked Merkle DAG.
	rng := rand.New(rand.NewSource(1))
	checkpoint := make([]byte, 300_000)
	rng.Read(checkpoint)
	root, err := net.PutDAG(context.Background(), "ipfs-0", checkpoint, 64*1024)
	if err != nil {
		return err
	}
	fmt.Printf("stored a %d-byte checkpoint as a Merkle DAG, root %s (%d blocks)\n",
		root.Size, root.CID.Short(), len(nodes))

	// Storage deals: the task launcher pays nodes to keep gradient blocks
	// alive; nodes post collateral and are audited every epoch.
	market, err := ipls.NewStorageMarket(net, ipls.DealsConfig{
		PricePerEpoch:    5,
		Collateral:       200,
		DurationEpochs:   4,
		AuditProbability: 1,
	}, 7)
	if err != nil {
		return err
	}
	market.Fund(ipls.MarketClient, 10_000)
	for _, n := range nodes {
		market.Fund(n, 1_000)
	}

	gradient := []byte("a gradient partition that must stay available")
	c, err := net.Put(context.Background(), "ipfs-1", gradient)
	if err != nil {
		return err
	}
	honest, err := market.Propose("ipfs-1", c)
	if err != nil {
		return err
	}
	flaky, err := market.Propose("ipfs-2", c) // ipfs-2 never stored it!
	if err != nil {
		return err
	}
	fmt.Printf("opened deals %d (honest holder) and %d (node without the block)\n", honest.ID, flaky.ID)

	for epoch := 1; epoch <= 4; epoch++ {
		for _, res := range market.AdvanceEpoch(context.Background()) {
			verdict := "passed"
			if !res.Passed {
				verdict = fmt.Sprintf("FAILED, slashed %d", res.Slashed)
			}
			fmt.Printf("epoch %d: audit deal %d on %s: %s\n", epoch, res.DealID, res.Node, verdict)
		}
	}
	b1, _ := market.Balance("ipfs-1")
	b2, _ := market.Balance("ipfs-2")
	fmt.Printf("balances after 4 epochs: honest ipfs-1 %d (earned), flaky ipfs-2 %d (slashed)\n", b1, b2)

	// Node failures: replication + content routing keep data reachable.
	if err := net.Fail("ipfs-0"); err != nil {
		return err
	}
	if err := net.Fail("ipfs-1"); err != nil {
		return err
	}
	restored, err := net.GetDAG(context.Background(), "ipfs-3", root)
	if err != nil {
		return fmt.Errorf("checkpoint unrecoverable: %w", err)
	}
	fmt.Printf("after failing 2 of 6 nodes the %d-byte checkpoint still reassembles bit-exactly: %v\n",
		len(restored), string(restored[:8]) == string(checkpoint[:8]) && len(restored) == len(checkpoint))
	if got, err := net.Fetch(context.Background(), c); err == nil && string(got) == string(gradient) {
		fmt.Println("the gradient block is likewise still retrievable via content routing")
	} else {
		fmt.Println("the gradient block's replica set was wiped out — with replication factor 2,")
		fmt.Println("losing both holders loses the block (raise the factor or add storage deals)")
	}

	// Permanent membership change: the crashed nodes come back, but ipfs-5
	// leaves for good. A departure silently erodes the replication factor
	// of every block it held — until an anti-entropy RepairScan copies the
	// survivors' replicas onto fresh live nodes.
	if err := net.Recover("ipfs-0"); err != nil {
		return err
	}
	if err := net.Recover("ipfs-1"); err != nil {
		return err
	}
	if err := net.Depart("ipfs-5"); err != nil {
		return err
	}
	eroded := len(net.UnderReplicated())
	fmt.Printf("ipfs-5 departed permanently, leaving %d blocks below replication factor\n", eroded)
	rep, err := net.RepairScan(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("repair scan: %d blocks scanned, %d under-replicated, %d replica copies created, %d lost\n",
		rep.Scanned, rep.UnderReplicated, rep.Repaired, rep.Lost)
	if rep.Remaining != 0 {
		return fmt.Errorf("repair left %d blocks under-replicated", rep.Remaining)
	}
	if remaining := len(net.UnderReplicated()); remaining != 0 {
		return fmt.Errorf("under-replicated census disagrees with the repair report: %d blocks", remaining)
	}
	restored, err = net.GetDAG(context.Background(), "ipfs-3", root)
	if err != nil {
		return fmt.Errorf("checkpoint unreadable after repair: %w", err)
	}
	fmt.Printf("replication factor restored on the 5 remaining nodes; the checkpoint still reassembles bit-exactly: %v\n",
		len(restored) == len(checkpoint))
	return nil
}
