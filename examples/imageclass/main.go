// Image-classification-style federated learning: 16 trainers with
// label-skewed (non-IID) local data train an MLP collaboratively over the
// decentralized protocol, with verifiable aggregation enabled. The run
// also tracks the centralized FedAvg reference every round to show the
// aggregates are identical up to fixed-point quantization — the paper's
// "convergence and accuracy are exactly the same as traditional FL" claim.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		trainers = 16
		rounds   = 12
		classes  = 4
		features = 16 // 4x4 "images"
	)
	// A synthetic image-like workload: clustered points in a
	// 16-dimensional pixel space, non-linearly separable enough to need
	// the MLP.
	data := ipls.Blobs(1600, features, classes, 1.6, 99)
	mlp := ipls.NewMLP(features, 12, classes, 100)

	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("edge-device-%02d", i)
	}
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "imageclass",
		ModelDim:                mlp.Dim(),
		Partitions:              4,
		Trainers:                names,
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"},
		ProvidersPerAggregator:  3,
		Verifiable:              true,
		TTrain:                  time.Minute,
		TSync:                   5 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess, _, _, err := ipls.NewLocalStack(cfg, 2)
	if err != nil {
		return err
	}

	// Pathological non-IID split: each edge device holds shards of at
	// most two classes.
	splits, err := data.SplitLabelSkew(trainers, 2, 101)
	if err != nil {
		return err
	}
	locals := make(map[string]*ipls.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	task, err := ipls.NewTask(sess, mlp, locals,
		ipls.SGDConfig{LearningRate: 0.15, Epochs: 3, BatchSize: 16}, mlp.Params())
	if err != nil {
		return err
	}

	fmt.Printf("non-IID federated MLP: %d params, %d partitions, %d trainers\n",
		mlp.Dim(), cfg.Spec.Partitions, trainers)
	fmt.Printf("%-8s %10s %10s %18s\n", "round", "loss", "accuracy", "|dec - central|")
	for r := 0; r < rounds; r++ {
		central, err := task.CentralizedRound(r)
		if err != nil {
			return err
		}
		metrics, _, err := task.RunRound(context.Background(), nil)
		if err != nil {
			return err
		}
		worst := 0.0
		for i, g := range task.Global() {
			if d := math.Abs(g - central[i]); d > worst {
				worst = d
			}
		}
		acc, _, err := task.Evaluate(data)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10.4f %10.3f %18.2e\n", metrics.Round, metrics.Loss, acc, worst)
	}
	acc, loss, err := task.Evaluate(data)
	if err != nil {
		return err
	}
	fmt.Printf("final: accuracy %.3f, loss %.4f after %d rounds\n", acc, loss, task.Round())
	return nil
}
