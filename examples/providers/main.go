// Merge-and-download provider sweep: reproduces the trade-off of §III-E by
// simulating one iteration for a range of provider counts, and compares
// the measured delays with the paper's analytic model
// τ = S·(|T|/(d·P) + P/b), whose optimum is P* = sqrt(b·|T|/d).
//
// It then runs the same sweep through the *real* protocol engine (not the
// network simulator) to show merge-and-download reduces the number of
// blocks an aggregator downloads without changing the aggregate.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const trainers = 16
	fmt.Println("virtual-time sweep (16 trainers, 1.3 MB partition, 10 Mbps):")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "providers", "upload", "aggregation", "total", "analytic")
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := ipls.Simulate(ipls.SimConfig{
			Trainers:                trainers,
			Partitions:              1,
			AggregatorsPerPartition: 1,
			PartitionBytes:          1_300_000,
			StorageNodes:            16,
			ProvidersPerAggregator:  p,
			BandwidthMbps:           10,
		})
		if err != nil {
			return err
		}
		analytic := ipls.AnalyticAggregationDelay(1_300_000, trainers, p, 10, 10)
		fmt.Printf("%-10d %12s %12s %12s %11.2fs\n", p,
			res.UploadDelayMean.Round(10*time.Millisecond),
			res.GradAggDelay.Round(10*time.Millisecond),
			res.TotalDelay.Round(10*time.Millisecond),
			analytic)
	}
	fmt.Printf("analytic optimum: P* = %.1f providers\n\n", ipls.OptimalProviders(trainers, 10, 10))

	fmt.Println("real protocol engine (merge-downloads per aggregator):")
	fmt.Printf("%-10s %16s %16s\n", "providers", "merge-downloads", "aggregate match")
	var reference []float64
	for _, p := range []int{0, 1, 2, 4} {
		cfg, err := ipls.NewConfig(ipls.TaskSpec{
			TaskID:                  fmt.Sprintf("providers-%d", p),
			ModelDim:                64,
			Partitions:              1,
			Trainers:                trainerNames(trainers),
			AggregatorsPerPartition: 1,
			StorageNodes:            nodeNames(8),
			ProvidersPerAggregator:  p,
			TTrain:                  5 * time.Second,
			TSync:                   5 * time.Second,
			PollInterval:            time.Millisecond,
		})
		if err != nil {
			return err
		}
		sess, _, _, err := ipls.NewLocalStack(cfg, 1)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(5))
		deltas := make(map[string][]float64)
		for _, tr := range cfg.Trainers {
			d := make([]float64, 64)
			for i := range d {
				d[i] = rng.NormFloat64()
			}
			deltas[tr] = d
		}
		res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
		if err != nil {
			return err
		}
		if reference == nil {
			reference = res.AvgDelta
		}
		match := "identical"
		for i := range reference {
			if reference[i] != res.AvgDelta[i] {
				match = "DIFFERS"
				break
			}
		}
		merges := 0
		for _, rep := range res.Reports {
			merges += rep.MergeDownloads
		}
		label := fmt.Sprint(p)
		if p == 0 {
			label = "0 (off)"
		}
		fmt.Printf("%-10s %16d %16s\n", label, merges, match)
	}
	return nil
}

func trainerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%02d", i)
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	return out
}
