// Quickstart: one verifiable federated-learning iteration on an in-memory
// deployment of the protocol, exercising the whole public surface —
// configuration, the local stack, trainer upload, aggregation with
// merge-and-download, commitment verification and update collection.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The task launcher (bootstrapper) declares the task. Everything
	// else — aggregator identities, trainer-to-aggregator assignment,
	// provider placement — is derived deterministically, so every
	// participant computes the same wiring.
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "quickstart",
		ModelDim:                100,
		Partitions:              4,
		Trainers:                []string{"alice", "bob", "carol", "dave"},
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"ipfs-0", "ipfs-1", "ipfs-2", "ipfs-3"},
		ProvidersPerAggregator:  2,
		Verifiable:              true,
		TTrain:                  5 * time.Second,
		TSync:                   5 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return err
	}

	// 2. Wire up an in-memory deployment: a replicated storage network,
	// the directory service and a protocol session.
	sess, _, dir, err := ipls.NewLocalStack(cfg, 2)
	if err != nil {
		return err
	}

	// 3. Each trainer produces a model delta (here: random stand-ins for
	// locally computed gradients; see examples/imageclass for real SGD).
	rng := rand.New(rand.NewSource(1))
	deltas := make(map[string][]float64)
	for _, tr := range cfg.Trainers {
		d := make([]float64, cfg.Spec.Dim)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		deltas[tr] = d
	}

	// 4. Run the iteration: trainers upload quantized, committed gradient
	// partitions; aggregators merge-and-download, synchronize, and
	// publish verified global updates; trainers collect the average.
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		return err
	}

	fmt.Printf("iteration complete: %d partitions updated\n", cfg.Spec.Partitions)
	fmt.Printf("averaged delta[0..4] = %.4f %.4f %.4f %.4f\n",
		res.AvgDelta[0], res.AvgDelta[1], res.AvgDelta[2], res.AvgDelta[3])
	for _, ref := range cfg.AllAggregators() {
		rep := res.Reports[ref.ID]
		fmt.Printf("  %-10s partition %d: %d gradients, %d merge-downloads, published=%v\n",
			ref.ID, ref.Partition, rep.GradientsAggregated, rep.MergeDownloads, rep.PublishedGlobal)
	}
	stats := dir.Stats()
	fmt.Printf("directory: %d publishes, %d lookups, %d commitment verifications, %d rejections\n",
		stats.Publishes, stats.Lookups, stats.Verifications, stats.Rejections)
	return nil
}
