// Quorum demo: graceful degradation when a trainer straggles. A
// 4-trainer task runs with quorum 0.75, so each aggregator closes its
// gradient wait at 3-of-4 once the quorum wait passes instead of
// blocking until the full t_train deadline. The straggler's delta is
// not lost: it lands after the cut, is stashed, and folds into the next
// round's global model with an age-discounted weight.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "quorum-demo",
		ModelDim:                36,
		Partitions:              2,
		Trainers:                []string{"alice", "bob", "carol", "dave"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"ipfs-0", "ipfs-1", "ipfs-2", "ipfs-3"},
		// t_train is the fault-free wait: a full second per partition.
		// The quorum cut below is what keeps straggler rounds fast.
		TTrain:       time.Second,
		TSync:        5 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess, net, _, err := ipls.NewLocalStack(cfg, 2)
	if err != nil {
		return err
	}

	// A real FL task: logistic regression on Gaussian blobs, split IID
	// across the four trainers.
	m := ipls.NewLogistic(8, 4)
	data := ipls.Blobs(240, 8, 4, 1.2, 7)
	splits, err := data.SplitIID(len(cfg.Trainers), 8)
	if err != nil {
		return err
	}
	locals := make(map[string]*ipls.Dataset)
	for i, tr := range cfg.Trainers {
		locals[tr] = splits[i]
	}
	task, err := ipls.NewTask(sess, m, locals,
		ipls.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}, m.Params())
	if err != nil {
		return err
	}

	// The scenario: dave misses the upload window in round 0. With
	// quorum 0.75 the aggregators proceed at ceil(0.75·4) = 3 of 4 once
	// the 50ms quorum wait passes.
	plan, err := ipls.ParseScenario("late:dave@iter0")
	if err != nil {
		return err
	}
	runner := ipls.NewScenarioRunner(task, net, plan)
	runner.SetQuorum(0.75, 50*time.Millisecond)

	ctx := context.Background()
	for round := 0; round < 3; round++ {
		start := time.Now()
		metrics, res, _, err := runner.RunRound(ctx)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("round %d: loss %.4f, applied=%v in %v",
			round, metrics.Loss, metrics.Applied, time.Since(start).Round(time.Millisecond))
		if metrics.LateFolded > 0 {
			line += fmt.Sprintf("  (+%d late delta folded, age-discounted)", metrics.LateFolded)
		}
		if round == 0 {
			line += fmt.Sprintf("  [quorum round: %d of %d partitions closed at 3-of-4]",
				cfg.Spec.Partitions-len(res.Incomplete), cfg.Spec.Partitions)
		}
		fmt.Println(line)
	}

	acc, loss, err := task.Evaluate(data)
	if err != nil {
		return err
	}
	fmt.Printf("final model: accuracy %.3f, loss %.4f — dave's round-0 work was not discarded,\n", acc, loss)
	fmt.Println("it advanced the round-1 model at weight 0.5/n (one round late, lateDecay 0.5)")
	return nil
}
