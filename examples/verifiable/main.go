// Verifiable aggregation demo: the same malicious aggregator attacks the
// task twice — once with plain aggregation (the attack silently poisons
// the model) and once with Pedersen-commitment verification (the attack is
// detected, the forged update rejected, and — when a peer aggregator
// exists — the round is recovered without it).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"ipls"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, verifiable := range []bool{false, true} {
		fmt.Printf("=== verifiable aggregation: %v ===\n", verifiable)
		for _, behavior := range []ipls.Behavior{
			ipls.BehaviorDropGradient,
			ipls.BehaviorAlterGradient,
			ipls.BehaviorForgeUpdate,
		} {
			if err := attack(verifiable, behavior); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

func attack(verifiable bool, behavior ipls.Behavior) error {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  fmt.Sprintf("attack-%v-%s", verifiable, behavior),
		ModelDim:                32,
		Partitions:              2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 2, // a peer exists and can take over
		StorageNodes:            []string{"s0", "s1"},
		Verifiable:              verifiable,
		TTrain:                  3 * time.Second,
		TSync:                   600 * time.Millisecond,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		return err
	}
	sess, _, _, err := ipls.NewLocalStack(cfg, 1)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(7))
	deltas := make(map[string][]float64)
	trueAvg := make([]float64, cfg.Spec.Dim)
	for _, tr := range cfg.Trainers {
		d := make([]float64, cfg.Spec.Dim)
		for i := range d {
			d[i] = rng.NormFloat64()
			trueAvg[i] += d[i] / float64(len(cfg.Trainers))
		}
		deltas[tr] = d
	}

	evil := ipls.AggregatorID(0, 0)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]ipls.Behavior{evil: behavior})
	if err != nil {
		return err
	}

	poisoned := "n/a (round blocked)"
	if res.AvgDelta != nil {
		worst := 0.0
		for i := range trueAvg {
			if d := math.Abs(res.AvgDelta[i] - trueAvg[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-4 {
			poisoned = fmt.Sprintf("POISONED (max error %.3g)", worst)
		} else {
			poisoned = fmt.Sprintf("correct (max error %.3g)", worst)
		}
	}
	fmt.Printf("%-16s detected=%-5v rejected=%-5v result: %s\n",
		behavior, res.Detected(), res.Reports[evil].GlobalRejected, poisoned)
	return nil
}
