module ipls

go 1.22
