// Package baseline implements the systems the paper positions itself
// against, so the evaluation can compare them quantitatively:
//
//   - Blockchain-based FL (flexibly coupled BCFL, [19]): trainers broadcast
//     their updates to every blockchain node, which stores them forever.
//   - Direct-communication IPLS ([17]): trainers send gradients straight to
//     aggregators — the "direct" series of Fig. 1 (simulated via
//     core.SimConfig.Direct).
//
// The BCFL model here is deliberately generous (proof-of-authority, no
// consensus traffic), so the reported overheads are lower bounds.
package baseline

import (
	"fmt"

	"ipls/internal/chain"
)

// CostReport captures one round's communication and cumulative storage.
type CostReport struct {
	Round int
	// TransferBytes is the network volume moved during the round.
	TransferBytes int64
	// StoredBytes is the total storage consumed across the whole system
	// after the round (cumulative for BCFL; ephemeral for IPLS).
	StoredBytes int64
}

// BCFLConfig parameterizes the blockchain-based FL baseline.
type BCFLConfig struct {
	Rounds      int
	Trainers    int
	ChainNodes  int   // full nodes replicating the ledger
	UpdateBytes int64 // size of one model update / gradient vector
}

// BCFLCosts simulates the blockchain baseline round by round on a real
// hash-chained ledger: every trainer update is appended (and hence
// broadcast to and stored by every chain node), plus one aggregated global
// model per round.
func BCFLCosts(cfg BCFLConfig) ([]CostReport, *chain.Chain, error) {
	if cfg.Rounds <= 0 || cfg.Trainers <= 0 || cfg.ChainNodes <= 0 || cfg.UpdateBytes <= 0 {
		return nil, nil, fmt.Errorf("baseline: invalid BCFL config %+v", cfg)
	}
	ledger := chain.New()
	reports := make([]CostReport, 0, cfg.Rounds)
	payload := make([]byte, cfg.UpdateBytes)
	for r := 0; r < cfg.Rounds; r++ {
		// One block per round: all trainer updates plus the new global.
		payloads := make([][]byte, 0, cfg.Trainers+1)
		for t := 0; t < cfg.Trainers+1; t++ {
			payloads = append(payloads, payload)
		}
		ledger.Append(payloads)
		// Every update travels to every chain node (gossip floor:
		// each node receives each payload once).
		transfer := int64(cfg.Trainers+1) * cfg.UpdateBytes * int64(cfg.ChainNodes)
		stored := ledger.TotalPayloadBytes() * int64(cfg.ChainNodes)
		reports = append(reports, CostReport{Round: r, TransferBytes: transfer, StoredBytes: stored})
	}
	return reports, ledger, nil
}

// IPLSConfig parameterizes the cost model of this paper's protocol.
type IPLSConfig struct {
	Rounds                  int
	Trainers                int
	Partitions              int
	AggregatorsPerPartition int
	Replicas                int   // storage replication factor
	UpdateBytes             int64 // full model update size (all partitions)
	MergeAndDownload        bool
}

// IPLSCosts computes the per-round costs of the decentralized storage
// protocol. Gradients and updates are ephemeral — needed "only for a short
// period of time" (§VI) — so storage does not accumulate across rounds.
func IPLSCosts(cfg IPLSConfig) ([]CostReport, error) {
	if cfg.Rounds <= 0 || cfg.Trainers <= 0 || cfg.Partitions <= 0 ||
		cfg.AggregatorsPerPartition <= 0 || cfg.UpdateBytes <= 0 {
		return nil, fmt.Errorf("baseline: invalid IPLS config %+v", cfg)
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	partBytes := cfg.UpdateBytes / int64(cfg.Partitions)
	aggsTotal := cfg.Partitions * cfg.AggregatorsPerPartition
	trainersPerAgg := (cfg.Trainers + cfg.AggregatorsPerPartition - 1) / cfg.AggregatorsPerPartition

	reports := make([]CostReport, 0, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		var transfer int64
		// Trainers upload every partition once (plus replication).
		transfer += int64(cfg.Trainers) * cfg.UpdateBytes * int64(replicas)
		// Aggregators download their gradients: merged (one
		// partition-sized block per provider group, bounded by one per
		// aggregator here) or one per trainer.
		if cfg.MergeAndDownload {
			transfer += int64(aggsTotal) * partBytes
		} else {
			transfer += int64(aggsTotal) * int64(trainersPerAgg) * partBytes
		}
		// Sync: each aggregator uploads one partial and downloads
		// |A_i|-1 partials.
		if cfg.AggregatorsPerPartition > 1 {
			transfer += int64(aggsTotal) * partBytes * int64(replicas)                      // partial uploads
			transfer += int64(aggsTotal) * int64(cfg.AggregatorsPerPartition-1) * partBytes // partial downloads
		}
		// Global updates are uploaded once per partition and downloaded
		// by every trainer.
		transfer += int64(cfg.Partitions) * partBytes * int64(replicas)
		transfer += int64(cfg.Trainers) * cfg.UpdateBytes

		// Live storage during the round: gradients + partials + updates,
		// all discarded afterwards.
		var stored int64
		stored += int64(cfg.Trainers) * cfg.UpdateBytes * int64(replicas)
		if cfg.AggregatorsPerPartition > 1 {
			stored += int64(aggsTotal) * partBytes * int64(replicas)
		}
		stored += int64(cfg.Partitions) * partBytes * int64(replicas)

		reports = append(reports, CostReport{Round: r, TransferBytes: transfer, StoredBytes: stored})
	}
	return reports, nil
}

// Summary aggregates a cost series.
type Summary struct {
	TotalTransferBytes int64
	FinalStoredBytes   int64
}

// Summarize folds a report series into totals.
func Summarize(reports []CostReport) Summary {
	var s Summary
	for _, r := range reports {
		s.TotalTransferBytes += r.TransferBytes
	}
	if len(reports) > 0 {
		s.FinalStoredBytes = reports[len(reports)-1].StoredBytes
	}
	return s
}
