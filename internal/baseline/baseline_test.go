package baseline

import (
	"testing"
)

func TestBCFLStorageGrowsLinearly(t *testing.T) {
	reports, ledger, err := BCFLCosts(BCFLConfig{
		Rounds: 10, Trainers: 16, ChainNodes: 8, UpdateBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 10 {
		t.Fatalf("got %d reports", len(reports))
	}
	// Storage must accumulate every round — the core BCFL pathology.
	for i := 1; i < len(reports); i++ {
		if reports[i].StoredBytes <= reports[i-1].StoredBytes {
			t.Fatalf("round %d: BCFL storage did not grow", i)
		}
	}
	wantPerRound := int64(17) * (1 << 20) * 8 // (16+1 updates)·1MiB·8 nodes
	if reports[0].StoredBytes != wantPerRound {
		t.Fatalf("round 0 stored = %d, want %d", reports[0].StoredBytes, wantPerRound)
	}
	if reports[9].StoredBytes != 10*wantPerRound {
		t.Fatalf("round 9 stored = %d, want %d", reports[9].StoredBytes, 10*wantPerRound)
	}
	if err := ledger.Verify(); err != nil {
		t.Fatal(err)
	}
	if ledger.Len() != 11 { // genesis + 10
		t.Fatalf("ledger length %d", ledger.Len())
	}
}

func TestIPLSStorageIsEphemeral(t *testing.T) {
	reports, err := IPLSCosts(IPLSConfig{
		Rounds: 10, Trainers: 16, Partitions: 4, AggregatorsPerPartition: 2,
		Replicas: 2, UpdateBytes: 1 << 20, MergeAndDownload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].StoredBytes != reports[0].StoredBytes {
			t.Fatalf("IPLS storage should be flat across rounds: %d vs %d",
				reports[i].StoredBytes, reports[0].StoredBytes)
		}
	}
}

func TestIPLSBeatsBCFLOnBothAxes(t *testing.T) {
	const rounds, trainers, update = 20, 16, int64(1 << 20)
	bcfl, _, err := BCFLCosts(BCFLConfig{Rounds: rounds, Trainers: trainers, ChainNodes: 8, UpdateBytes: update})
	if err != nil {
		t.Fatal(err)
	}
	ipls, err := IPLSCosts(IPLSConfig{
		Rounds: rounds, Trainers: trainers, Partitions: 4,
		AggregatorsPerPartition: 2, Replicas: 2, UpdateBytes: update, MergeAndDownload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb, si := Summarize(bcfl), Summarize(ipls)
	if si.TotalTransferBytes >= sb.TotalTransferBytes {
		t.Fatalf("IPLS transfer %d should be below BCFL %d",
			si.TotalTransferBytes, sb.TotalTransferBytes)
	}
	if si.FinalStoredBytes >= sb.FinalStoredBytes {
		t.Fatalf("IPLS storage %d should be below BCFL %d",
			si.FinalStoredBytes, sb.FinalStoredBytes)
	}
	// The gap must widen with rounds: BCFL stored grows ~linearly.
	if sb.FinalStoredBytes < 10*si.FinalStoredBytes {
		t.Fatalf("expected an order-of-magnitude storage gap after %d rounds", rounds)
	}
}

func TestMergeReducesTransfer(t *testing.T) {
	base := IPLSConfig{
		Rounds: 1, Trainers: 16, Partitions: 4,
		AggregatorsPerPartition: 1, Replicas: 1, UpdateBytes: 1 << 20,
	}
	noMerge, err := IPLSCosts(base)
	if err != nil {
		t.Fatal(err)
	}
	merged := base
	merged.MergeAndDownload = true
	withMerge, err := IPLSCosts(merged)
	if err != nil {
		t.Fatal(err)
	}
	if withMerge[0].TransferBytes >= noMerge[0].TransferBytes {
		t.Fatalf("merge-and-download should reduce transfer: %d vs %d",
			withMerge[0].TransferBytes, noMerge[0].TransferBytes)
	}
}

func TestCostValidation(t *testing.T) {
	if _, _, err := BCFLCosts(BCFLConfig{}); err == nil {
		t.Fatal("expected BCFL validation error")
	}
	if _, err := IPLSCosts(IPLSConfig{}); err == nil {
		t.Fatal("expected IPLS validation error")
	}
	if s := Summarize(nil); s.TotalTransferBytes != 0 || s.FinalStoredBytes != 0 {
		t.Fatal("empty summary should be zero")
	}
}
