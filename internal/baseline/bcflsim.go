package baseline

import (
	"fmt"
	"time"

	"ipls/internal/netsim"
)

// BCFLDelayConfig parameterizes a virtual-time simulation of one
// blockchain-FL round: every trainer broadcasts its update to every chain
// node (the flexibly-coupled BCFL pattern of [19]), then the aggregating
// miner — which already holds a replica — computes and broadcasts the new
// global model to all nodes.
type BCFLDelayConfig struct {
	Trainers      int
	ChainNodes    int
	UpdateBytes   int64
	BandwidthMbps float64
}

// BCFLDelayResult reports the simulated round delay.
type BCFLDelayResult struct {
	// BroadcastDelay is when the last trainer update reached the last
	// chain node.
	BroadcastDelay time.Duration
	// TotalDelay additionally includes the global-model broadcast.
	TotalDelay time.Duration
	// BytesPerChainNode is the volume each chain node received.
	BytesPerChainNode int64
}

// BCFLDelay simulates one BCFL round in virtual time, for comparison with
// the decentralized-storage protocol's core.Simulate.
func BCFLDelay(cfg BCFLDelayConfig) (*BCFLDelayResult, error) {
	if cfg.Trainers <= 0 || cfg.ChainNodes <= 0 || cfg.UpdateBytes <= 0 || cfg.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("baseline: invalid BCFL delay config %+v", cfg)
	}
	env := netsim.NewEnv()
	bw := netsim.Mbps(cfg.BandwidthMbps)
	trainers := make([]*netsim.Node, cfg.Trainers)
	for i := range trainers {
		trainers[i] = env.AddNode(fmt.Sprintf("trainer-%02d", i), bw, bw)
	}
	chain := make([]*netsim.Node, cfg.ChainNodes)
	for i := range chain {
		chain[i] = env.AddNode(fmt.Sprintf("chain-%02d", i), bw, bw)
	}

	var broadcastDone time.Duration
	allIn := env.NewCounter(cfg.Trainers * cfg.ChainNodes)
	for t := range trainers {
		t := t
		env.Go(fmt.Sprintf("bcast-%d", t), func() {
			// Gossip floor: the trainer ships its update once to each
			// chain node (real gossip relays node-to-node, which costs
			// the same aggregate volume).
			for n := range chain {
				env.Transfer(trainers[t], chain[n], cfg.UpdateBytes)
				allIn.Add()
			}
			if env.Now() > broadcastDone {
				broadcastDone = env.Now()
			}
		})
	}
	var totalDone time.Duration
	env.Go("miner", func() {
		allIn.Wait()
		// The miner aggregates locally (it holds every update) and
		// broadcasts the new global model block to its peers.
		for n := 1; n < len(chain); n++ {
			env.Transfer(chain[0], chain[n], cfg.UpdateBytes)
		}
		totalDone = env.Now()
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	var per int64
	for _, n := range chain {
		per += n.BytesReceived
	}
	return &BCFLDelayResult{
		BroadcastDelay:    broadcastDone,
		TotalDelay:        totalDone,
		BytesPerChainNode: per / int64(cfg.ChainNodes),
	}, nil
}
