package baseline

import (
	"testing"
	"time"

	"ipls/internal/core"
)

func TestBCFLDelayScalesWithChainNodes(t *testing.T) {
	base := BCFLDelayConfig{Trainers: 16, ChainNodes: 4, UpdateBytes: 1_300_000, BandwidthMbps: 10}
	small, err := BCFLDelay(base)
	if err != nil {
		t.Fatal(err)
	}
	big := base
	big.ChainNodes = 8
	large, err := BCFLDelay(big)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcasting to twice the nodes roughly doubles every trainer's
	// upload volume.
	if large.TotalDelay < time.Duration(float64(small.TotalDelay)*3/2) {
		t.Fatalf("BCFL delay should grow with chain size: %v -> %v", small.TotalDelay, large.TotalDelay)
	}
	if large.BytesPerChainNode < small.BytesPerChainNode {
		t.Fatal("per-node volume should not shrink with more nodes")
	}
}

func TestBCFLSlowerThanMergeAndDownload(t *testing.T) {
	// The §I comparison in delay terms: same trainers, same update size,
	// same bandwidth.
	bcfl, err := BCFLDelay(BCFLDelayConfig{
		Trainers: 16, ChainNodes: 8, UpdateBytes: 1_300_000, BandwidthMbps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ipls, err := core.Simulate(core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		ProvidersPerAggregator:  4,
		BandwidthMbps:           10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bcfl.TotalDelay <= ipls.TotalDelay {
		t.Fatalf("BCFL (%v) should be slower than merge-and-download (%v)",
			bcfl.TotalDelay, ipls.TotalDelay)
	}
	// And the gap should be substantial (every update moves 8x).
	if bcfl.TotalDelay < 3*ipls.TotalDelay {
		t.Fatalf("expected a multi-x gap: BCFL %v vs IPLS %v", bcfl.TotalDelay, ipls.TotalDelay)
	}
}

func TestBCFLDelayValidation(t *testing.T) {
	if _, err := BCFLDelay(BCFLDelayConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBCFLDelayDeterministic(t *testing.T) {
	cfg := BCFLDelayConfig{Trainers: 8, ChainNodes: 4, UpdateBytes: 100_000, BandwidthMbps: 20}
	a, err := BCFLDelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BCFLDelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
