// Package chain is a minimal hash-chained ledger used as the substrate for
// the blockchain-based federated learning (BCFL) baseline the paper's
// introduction argues against: "miners have to store all updates into the
// blockchain, and those who serve as aggregators have to download and
// aggregate every single update".
//
// It is a proof-of-authority append-only chain: no mining, just integrity.
// That is deliberately generous to the baseline — real consensus would only
// add cost — so the storage/communication comparison in the evaluation is a
// lower bound on BCFL overhead.
package chain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Hash is a SHA-256 block hash.
type Hash [sha256.Size]byte

// Block is one ledger entry holding opaque payloads (model updates).
type Block struct {
	Index    int
	Prev     Hash
	Payloads [][]byte
	Hash     Hash
}

// Chain is an append-only hash-chained ledger.
type Chain struct {
	blocks []Block
}

// ErrInvalid indicates chain validation failed.
var ErrInvalid = errors.New("chain: validation failed")

// New creates a chain holding only the genesis block.
func New() *Chain {
	genesis := Block{Index: 0}
	genesis.Hash = blockHash(genesis)
	return &Chain{blocks: []Block{genesis}}
}

func blockHash(b Block) Hash {
	h := sha256.New()
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(b.Index))
	h.Write(idx[:])
	h.Write(b.Prev[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(b.Payloads)))
	h.Write(n[:])
	for _, p := range b.Payloads {
		ph := sha256.Sum256(p)
		h.Write(ph[:])
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Append adds a block holding the given payloads and returns it.
func (c *Chain) Append(payloads [][]byte) Block {
	copied := make([][]byte, len(payloads))
	for i, p := range payloads {
		copied[i] = append([]byte(nil), p...)
	}
	b := Block{
		Index:    len(c.blocks),
		Prev:     c.blocks[len(c.blocks)-1].Hash,
		Payloads: copied,
	}
	b.Hash = blockHash(b)
	c.blocks = append(c.blocks, b)
	return b
}

// Len returns the number of blocks, including genesis.
func (c *Chain) Len() int { return len(c.blocks) }

// Head returns the most recent block.
func (c *Chain) Head() Block { return c.blocks[len(c.blocks)-1] }

// BlockAt returns block i.
func (c *Chain) BlockAt(i int) (Block, error) {
	if i < 0 || i >= len(c.blocks) {
		return Block{}, fmt.Errorf("chain: no block %d", i)
	}
	return c.blocks[i], nil
}

// Verify re-validates every hash link; any tampering breaks it.
func (c *Chain) Verify() error {
	for i, b := range c.blocks {
		if b.Index != i {
			return fmt.Errorf("%w: block %d has index %d", ErrInvalid, i, b.Index)
		}
		if i > 0 && !bytes.Equal(b.Prev[:], c.blocks[i-1].Hash[:]) {
			return fmt.Errorf("%w: block %d prev-link broken", ErrInvalid, i)
		}
		if blockHash(b) != b.Hash {
			return fmt.Errorf("%w: block %d hash mismatch", ErrInvalid, i)
		}
	}
	return nil
}

// TotalPayloadBytes is the cumulative payload volume a full node stores.
func (c *Chain) TotalPayloadBytes() int64 {
	var total int64
	for _, b := range c.blocks {
		for _, p := range b.Payloads {
			total += int64(len(p))
		}
	}
	return total
}

// TamperPayload mutates a stored payload in place — a test hook showing
// Verify catches it.
func (c *Chain) TamperPayload(block, payload int) error {
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("chain: no block %d", block)
	}
	b := &c.blocks[block]
	if payload < 0 || payload >= len(b.Payloads) {
		return fmt.Errorf("chain: block %d has no payload %d", block, payload)
	}
	b.Payloads[payload][0] ^= 0xff
	return nil
}
