package chain

import (
	"errors"
	"testing"
)

func TestAppendAndVerify(t *testing.T) {
	c := New()
	if c.Len() != 1 {
		t.Fatalf("fresh chain length %d", c.Len())
	}
	for i := 0; i < 5; i++ {
		c.Append([][]byte{[]byte("update-a"), []byte("update-b")})
	}
	if c.Len() != 6 {
		t.Fatalf("chain length %d after 5 appends", c.Len())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.Head().Index != 5 {
		t.Fatalf("head index %d", c.Head().Index)
	}
}

func TestHashChaining(t *testing.T) {
	c := New()
	b1 := c.Append([][]byte{[]byte("x")})
	b2 := c.Append([][]byte{[]byte("y")})
	if b2.Prev != b1.Hash {
		t.Fatal("prev link not set to previous hash")
	}
	got, err := c.BlockAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != b1.Hash {
		t.Fatal("BlockAt returned wrong block")
	}
	if _, err := c.BlockAt(99); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestTamperingDetected(t *testing.T) {
	c := New()
	c.Append([][]byte{[]byte("honest update")})
	c.Append([][]byte{[]byte("another update")})
	if err := c.TamperPayload(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampering not detected: %v", err)
	}
}

func TestTamperValidation(t *testing.T) {
	c := New()
	c.Append([][]byte{[]byte("p")})
	if err := c.TamperPayload(9, 0); err == nil {
		t.Fatal("expected block range error")
	}
	if err := c.TamperPayload(1, 9); err == nil {
		t.Fatal("expected payload range error")
	}
}

func TestAppendCopiesPayloads(t *testing.T) {
	c := New()
	p := []byte("mutable")
	c.Append([][]byte{p})
	p[0] = 'X'
	if err := c.Verify(); err != nil {
		t.Fatal("external mutation must not affect the chain")
	}
}

func TestTotalPayloadBytes(t *testing.T) {
	c := New()
	c.Append([][]byte{make([]byte, 100), make([]byte, 50)})
	c.Append([][]byte{make([]byte, 25)})
	if got := c.TotalPayloadBytes(); got != 175 {
		t.Fatalf("TotalPayloadBytes = %d, want 175", got)
	}
}

func TestDistinctPayloadsDistinctHashes(t *testing.T) {
	a := New()
	a.Append([][]byte{[]byte("one")})
	b := New()
	b.Append([][]byte{[]byte("two")})
	if a.Head().Hash == b.Head().Hash {
		t.Fatal("different payloads hashed identically")
	}
}
