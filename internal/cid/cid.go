// Package cid provides content identifiers for the decentralized storage
// network. As in IPFS, a CID is the SHA-256 hash of the content: parties who
// know a CID can both locate the data and verify its integrity (§III-C).
package cid

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CID is a hex-encoded SHA-256 content identifier.
type CID string

// Size is the length of the binary digest in bytes.
const Size = sha256.Size

// Sum computes the CID of data.
func Sum(data []byte) CID {
	h := sha256.Sum256(data)
	return CID(hex.EncodeToString(h[:]))
}

// Verify reports whether data hashes to c.
func Verify(data []byte, c CID) bool {
	return Sum(data) == c
}

// Parse validates that s is a well-formed CID.
func Parse(s string) (CID, error) {
	if len(s) != Size*2 {
		return "", fmt.Errorf("cid: expected %d hex characters, got %d", Size*2, len(s))
	}
	if _, err := hex.DecodeString(s); err != nil {
		return "", fmt.Errorf("cid: %w", err)
	}
	return CID(s), nil
}

// String returns the hex form of the CID.
func (c CID) String() string { return string(c) }

// Short returns a truncated prefix for logging.
func (c CID) Short() string {
	if len(c) <= 12 {
		return string(c)
	}
	return string(c[:12])
}
