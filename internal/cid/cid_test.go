package cid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	check := func(data []byte) bool {
		return Sum(data) == Sum(append([]byte(nil), data...))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumKnownVector(t *testing.T) {
	// SHA-256("abc")
	want := CID("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
	if got := Sum([]byte("abc")); got != want {
		t.Fatalf("Sum(abc) = %s, want %s", got, want)
	}
}

func TestVerify(t *testing.T) {
	data := []byte("gradient partition bytes")
	c := Sum(data)
	if !Verify(data, c) {
		t.Fatal("Verify rejected matching data")
	}
	if Verify([]byte("tampered"), c) {
		t.Fatal("Verify accepted tampered data")
	}
}

func TestDistinctDataDistinctCID(t *testing.T) {
	check := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return Sum(a) != Sum(b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParse(t *testing.T) {
	c := Sum([]byte("x"))
	got, err := Parse(string(c))
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("Parse round trip mismatch")
	}
	if _, err := Parse("abc"); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Parse(strings.Repeat("zz", Size)); err == nil {
		t.Fatal("expected hex error")
	}
}

func TestShort(t *testing.T) {
	c := Sum([]byte("x"))
	if len(c.Short()) != 12 {
		t.Fatalf("Short() length = %d", len(c.Short()))
	}
	if !strings.HasPrefix(string(c), c.Short()) {
		t.Fatal("Short() is not a prefix")
	}
	if CID("abc").Short() != "abc" {
		t.Fatal("Short() of a short CID should be itself")
	}
	if c.String() != string(c) {
		t.Fatal("String() mismatch")
	}
}
