package core

import (
	"context"
	"testing"

	"ipls/internal/obs"
)

// TestBatchVerifyAcceptsHonestMerges checks that with verifiability on,
// an honest round's merged downloads are accepted through the single
// random-linear-combination batch check: the batch counter moves, no batch
// fails, merges are accepted, and the aggregate stays exact.
func TestBatchVerifyAcceptsHonestMerges(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.Verifiable = true
		ts.ProvidersPerAggregator = 1 // all of an aggregator's gradients on one node
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	net.SetMetrics(reg)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 61)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("aggregate off by %v", diff)
	}
	snap := reg.Snapshot()
	if snap.Counters["batch_verify_total"] == 0 {
		t.Fatal("batch_verify_total stayed zero with verifiable merges")
	}
	if got := snap.Counters["batch_verify_fail_total"]; got != 0 {
		t.Fatalf("batch_verify_fail_total = %d on an honest round", got)
	}
	if snap.Counters["merge_downloads_total"] == 0 {
		t.Fatal("merge_downloads_total stayed zero — merges were not accepted")
	}
	merges := 0
	for _, rep := range res.Reports {
		merges += rep.MergeDownloads
	}
	if merges == 0 {
		t.Fatal("no aggregator reported an accepted merge")
	}
}

// TestBatchVerifyFallbackOnCheat is the batch-path half of the cheating-
// provider contract: a failed batch falls back to per-group verification,
// the cheating merges are rejected, and the round still completes with
// the exact aggregate from individual downloads.
func TestBatchVerifyFallbackOnCheat(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.Verifiable = true
		ts.ProvidersPerAggregator = 1
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	for _, node := range sess.Config().StorageNodes {
		if err := net.CheatMerges(node); err != nil {
			t.Fatal(err)
		}
	}
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 62)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("cheating provider corrupted the aggregate by %v", diff)
	}
	snap := reg.Snapshot()
	if snap.Counters["batch_verify_fail_total"] == 0 {
		t.Fatal("batch_verify_fail_total stayed zero with a cheating provider")
	}
	for id, rep := range res.Reports {
		if rep.MergeDownloads != 0 {
			t.Fatalf("%s accepted a cheating merge through the batch path", id)
		}
	}
}
