package core

import (
	"fmt"
	"math/big"

	"ipls/internal/model"
	"ipls/internal/scalar"
)

// Behavior models what an aggregator does with the gradients it collected —
// honest aggregation, or one of the malicious deviations from §III-A
// ("malicious aggregators that can either drop or alter the gradients
// received by trainers").
type Behavior int

// Aggregator behaviors.
const (
	// BehaviorHonest follows the protocol.
	BehaviorHonest Behavior = iota + 1
	// BehaviorDropGradient omits one trainer's gradient from the
	// aggregate (e.g. a lazy aggregator saving bandwidth).
	BehaviorDropGradient
	// BehaviorAlterGradient perturbs the aggregate's values (e.g. a
	// competitor poisoning the model).
	BehaviorAlterGradient
	// BehaviorForgeUpdate publishes an arbitrary fabricated update.
	BehaviorForgeUpdate
	// BehaviorDropout models an aggregator that crashes before doing any
	// work; peers must take over its trainer set (§III-D).
	BehaviorDropout
)

// String names the behavior.
func (b Behavior) String() string {
	switch b {
	case BehaviorHonest:
		return "honest"
	case BehaviorDropGradient:
		return "drop-gradient"
	case BehaviorAlterGradient:
		return "alter-gradient"
	case BehaviorForgeUpdate:
		return "forge-update"
	case BehaviorDropout:
		return "dropout"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Malicious reports whether the behavior actively corrupts data (dropout is
// a crash fault, not a data fault).
func (b Behavior) Malicious() bool {
	return b == BehaviorDropGradient || b == BehaviorAlterGradient || b == BehaviorForgeUpdate
}

// applyBehavior corrupts (or not) the collected gradient blocks and returns
// the aggregate the aggregator will claim as its partial update.
func applyBehavior(f *scalar.Field, blocks []model.Block, b Behavior) (model.Block, error) {
	switch b {
	case BehaviorHonest, BehaviorDropout, 0:
		return model.Sum(f, blocks...)
	case BehaviorDropGradient:
		if len(blocks) > 1 {
			return model.Sum(f, blocks[:len(blocks)-1]...)
		}
		// With a single gradient, "dropping" means claiming a zero
		// contribution but keeping the counter so averaging still
		// divides by the full count.
		sum, err := model.Sum(f, blocks...)
		if err != nil {
			return model.Block{}, err
		}
		for i := 0; i < len(sum.Values)-1; i++ {
			sum.Values[i] = new(big.Int)
		}
		return sum, nil
	case BehaviorAlterGradient:
		sum, err := model.Sum(f, blocks...)
		if err != nil {
			return model.Block{}, err
		}
		// Shift the first coordinate by a large constant: a targeted
		// poisoning of one model weight.
		sum.Values[0] = f.Add(sum.Values[0], new(big.Int).Lsh(big.NewInt(1), 40))
		return sum, nil
	case BehaviorForgeUpdate:
		sum, err := model.Sum(f, blocks...)
		if err != nil {
			return model.Block{}, err
		}
		forged := make([]*big.Int, len(sum.Values))
		for i := range forged {
			forged[i] = f.Reduce(big.NewInt(int64(1_000_003*i + 7)))
		}
		// Keep the counter plausible so the forgery is only detectable
		// cryptographically, not by sanity-checking the divisor.
		forged[len(forged)-1] = sum.Values[len(sum.Values)-1]
		return model.Block{Values: forged}, nil
	default:
		return model.Block{}, fmt.Errorf("core: unknown behavior %v", b)
	}
}
