package core

import (
	"context"
	"fmt"

	"ipls/internal/dag"
	"ipls/internal/model"
	"ipls/internal/storage"
)

// SaveCheckpoint stores a global parameter vector in the storage network as
// a chunked Merkle DAG, so a joining trainer can bootstrap the current
// model from any replica and verify every chunk against the root CID.
func SaveCheckpoint(ctx context.Context, net *storage.Network, nodeID string, params []float64) (dag.Ref, error) {
	return net.PutDAG(ctx, nodeID, model.EncodeFloats(params), 0)
}

// LoadCheckpoint reassembles and decodes a checkpoint.
func LoadCheckpoint(ctx context.Context, net *storage.Network, nodeID string, ref dag.Ref) ([]float64, error) {
	data, err := net.GetDAG(ctx, nodeID, ref)
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	return model.DecodeFloats(data)
}

// Checkpoint stores the task's current global model in the storage network.
func (t *Task) Checkpoint(ctx context.Context, net *storage.Network, nodeID string) (dag.Ref, error) {
	return SaveCheckpoint(ctx, net, nodeID, t.global)
}

// Restore replaces the task's global model with a stored checkpoint.
func (t *Task) Restore(ctx context.Context, net *storage.Network, nodeID string, ref dag.Ref) error {
	params, err := LoadCheckpoint(ctx, net, nodeID, ref)
	if err != nil {
		return err
	}
	if len(params) != t.model.Dim() {
		return fmt.Errorf("core: checkpoint has %d params, model wants %d", len(params), t.model.Dim())
	}
	copy(t.global, params)
	return nil
}
