package core

import (
	"context"
	"math/rand"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	sess, net, _ := testStack(t, nil)
	rng := rand.New(rand.NewSource(70))
	params := make([]float64, 1000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	ref, err := SaveCheckpoint(context.Background(), net, "s0", params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(context.Background(), net, "s0", ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(params) {
		t.Fatal("length mismatch")
	}
	for i := range got {
		if got[i] != params[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	_ = sess
}

func TestTaskCheckpointRestore(t *testing.T) {
	task, _ := newMLTask(t, false, 1, false)
	// Run two rounds, checkpoint, run one more, restore.
	for i := 0; i < 2; i++ {
		if _, _, err := task.RunRound(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	saved := task.Global()

	// Reuse the trusty in-memory network from a fresh stack for storage.
	_, net, _ := testStack(t, nil)
	ref, err := task.Checkpoint(context.Background(), net, "s0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := task.RunRound(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	moved := task.Global()
	changed := false
	for i := range moved {
		if moved[i] != saved[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("round 3 did not move the model — restore test is vacuous")
	}
	if err := task.Restore(context.Background(), net, "s0", ref); err != nil {
		t.Fatal(err)
	}
	restored := task.Global()
	for i := range restored {
		if restored[i] != saved[i] {
			t.Fatalf("element %d not restored", i)
		}
	}
}

func TestRestoreRejectsWrongDim(t *testing.T) {
	task, _ := newMLTask(t, false, 1, false)
	_, net, _ := testStack(t, nil)
	ref, err := SaveCheckpoint(context.Background(), net, "s0", make([]float64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Restore(context.Background(), net, "s0", ref); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
