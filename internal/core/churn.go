package core

import (
	"context"
	"fmt"

	"ipls/internal/dag"
	"ipls/internal/obs"
	"ipls/internal/storage"
)

// ChurnRunner drives a Task across rounds under a storage.ChurnPlan,
// turning scheduled membership change into concrete protocol reactions:
//
//   - storage-node events (depart/crash/rejoin) are applied to the
//     storage network directly;
//   - a crashed aggregator becomes a dropout, and when every aggregator
//     of a partition is down, a live peer from another partition stands
//     by and takes the partition over (§III-D);
//   - a crashed trainer sits out its rounds; on rejoin it bootstraps
//     from the latest checkpoint DAG instead of iteration 0;
//   - after every round the advanced global model is checkpointed to a
//     live storage node and a RepairScan restores the replication factor
//     eroded by departures.
type ChurnRunner struct {
	task *Task
	net  *storage.Network
	plan *storage.ChurnPlan

	crashedAggs     map[string]bool
	crashedTrainers map[string]bool
	checkpoint      dag.Ref
	hasCheckpoint   bool

	churnEvents *obs.Counter
	bootstraps  *obs.Counter
}

// NewChurnRunner wires a runner over a task, its storage network and a
// parsed churn plan. net may be nil (direct backends); storage-node
// events then fail as unknown participants.
func NewChurnRunner(task *Task, net *storage.Network, plan *storage.ChurnPlan) *ChurnRunner {
	return &ChurnRunner{
		task:            task,
		net:             net,
		plan:            plan,
		crashedAggs:     make(map[string]bool),
		crashedTrainers: make(map[string]bool),
	}
}

// SetMetrics points the runner's instrumentation at a registry (nil
// detaches).
func (r *ChurnRunner) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		r.churnEvents = nil
		r.bootstraps = nil
		return
	}
	r.churnEvents = reg.Counter("churn_events_total")
	r.bootstraps = reg.Counter("trainer_bootstraps_total")
}

// Checkpoint returns the latest checkpoint reference and whether one has
// been taken.
func (r *ChurnRunner) Checkpoint() (dag.Ref, bool) { return r.checkpoint, r.hasCheckpoint }

// RunRound applies the plan's events for the task's current round, runs
// the round with the induced absences and standbys, checkpoints the
// global model onto a live storage node and repairs replication. It
// returns the round's metrics and result plus human-readable
// descriptions of the churn applied.
func (r *ChurnRunner) RunRound(ctx context.Context) (RoundMetrics, *IterationResult, []string, error) {
	return r.RunRoundOpts(ctx, RoundOptions{})
}

// RunRoundOpts is RunRound with extra round options merged on top of the
// churn-induced ones — the scenario engine layers fault injections
// (partitions, Byzantine uploads, stragglers, quorum) over a churn plan
// this way. Churn-induced dropouts and absences win over the extras.
func (r *ChurnRunner) RunRoundOpts(ctx context.Context, extra RoundOptions) (RoundMetrics, *IterationResult, []string, error) {
	round := r.task.Round()
	applied, rest, err := r.plan.ApplyStorage(r.net, round)
	if err != nil {
		return RoundMetrics{}, nil, applied, err
	}
	for _, ev := range rest {
		desc, err := r.applyRoleEvent(ctx, round, ev)
		if err != nil {
			return RoundMetrics{}, nil, applied, err
		}
		applied = append(applied, desc)
	}
	r.churnEvents.Add(int64(len(applied)))

	var behaviors map[string]Behavior
	if len(r.crashedAggs) > 0 || len(extra.Behaviors) > 0 {
		behaviors = make(map[string]Behavior, len(r.crashedAggs)+len(extra.Behaviors))
		for agg, b := range extra.Behaviors {
			behaviors[agg] = b
		}
		for agg := range r.crashedAggs {
			behaviors[agg] = BehaviorDropout
		}
	}
	absent := r.crashedTrainers
	if len(extra.Absent) > 0 {
		absent = make(map[string]bool, len(r.crashedTrainers)+len(extra.Absent))
		for tr, v := range extra.Absent {
			if v {
				absent[tr] = true
			}
		}
		for tr := range r.crashedTrainers {
			absent[tr] = true
		}
	}
	standbys, err := r.standbys()
	if err != nil {
		return RoundMetrics{}, nil, applied, err
	}
	for p, standby := range extra.Standbys {
		if _, taken := standbys[p]; !taken {
			if standbys == nil {
				standbys = make(map[int]string)
			}
			standbys[p] = standby
		}
	}
	metrics, res, err := r.task.RunRoundOpts(ctx, RoundOptions{
		Behaviors:  behaviors,
		Absent:     absent,
		Standbys:   standbys,
		Late:       extra.Late,
		Corrupt:    extra.Corrupt,
		Quorum:     extra.Quorum,
		QuorumWait: extra.QuorumWait,
	})
	if err != nil {
		return metrics, res, applied, err
	}
	if r.net != nil {
		if node := r.liveStorageNode(); node != "" {
			ref, err := r.task.Checkpoint(ctx, r.net, node)
			if err != nil {
				return metrics, res, applied, fmt.Errorf("core: churn checkpoint round %d: %w", round, err)
			}
			r.checkpoint = ref
			r.hasCheckpoint = true
		}
		if _, err := r.net.RepairScan(ctx); err != nil {
			return metrics, res, applied, fmt.Errorf("core: churn repair round %d: %w", round, err)
		}
	}
	return metrics, res, applied, nil
}

// applyRoleEvent handles a churn event naming a protocol role rather
// than a storage node.
func (r *ChurnRunner) applyRoleEvent(ctx context.Context, round int, ev storage.ChurnEvent) (string, error) {
	cfg := r.task.session.cfg
	switch ev.Kind {
	case storage.ChurnCrash:
		if p, ok := aggregatorPartition(cfg, ev.Node); ok {
			r.crashedAggs[ev.Node] = true
			return fmt.Sprintf("crash %s (partition %d aggregator)", ev.Node, p), nil
		}
		if isTrainer(cfg, ev.Node) {
			r.crashedTrainers[ev.Node] = true
			return fmt.Sprintf("crash %s (trainer)", ev.Node), nil
		}
	case storage.ChurnRejoin:
		if r.crashedAggs[ev.Node] {
			delete(r.crashedAggs, ev.Node)
			return fmt.Sprintf("rejoin %s (aggregator back in rotation)", ev.Node), nil
		}
		if r.crashedTrainers[ev.Node] {
			delete(r.crashedTrainers, ev.Node)
			return r.bootstrapTrainer(ctx, round, ev.Node)
		}
		if isTrainer(cfg, ev.Node) {
			return "", fmt.Errorf("core: churn rejoin %q at iter %d: trainer never crashed", ev.Node, ev.Iter)
		}
	case storage.ChurnDepart:
		return "", fmt.Errorf("core: churn depart %q: depart targets a storage node", ev.Node)
	}
	return "", fmt.Errorf("core: churn %s %q: unknown participant", ev.Kind, ev.Node)
}

// bootstrapTrainer brings a rejoining trainer up to date from the latest
// checkpoint DAG — the §VI joining-party path — instead of replaying
// from iteration 0. The loaded parameters are CID-verified per chunk by
// the DAG layer and must match the task's model dimension.
func (r *ChurnRunner) bootstrapTrainer(ctx context.Context, round int, trainer string) (string, error) {
	if r.net == nil || !r.hasCheckpoint {
		return fmt.Sprintf("rejoin %s (trainer, no checkpoint yet)", trainer), nil
	}
	node := r.liveStorageNode()
	if node == "" {
		return "", fmt.Errorf("core: churn rejoin %s: no live storage node to bootstrap from", trainer)
	}
	params, err := LoadCheckpoint(ctx, r.net, node, r.checkpoint)
	if err != nil {
		return "", fmt.Errorf("core: churn rejoin %s: %w", trainer, err)
	}
	if len(params) != r.task.session.cfg.Spec.Dim {
		return "", fmt.Errorf("core: churn rejoin %s: checkpoint has %d params, model wants %d",
			trainer, len(params), r.task.session.cfg.Spec.Dim)
	}
	r.bootstraps.Inc()
	r.task.session.emit(EventTrainerRejoin, trainer, round, -1,
		"bootstrapped %d params from checkpoint %s", len(params), r.checkpoint.CID.Short())
	return fmt.Sprintf("rejoin %s (trainer, bootstrapped %d params from checkpoint %s)",
		trainer, len(params), r.checkpoint.CID.Short()), nil
}

// standbys picks, for every partition whose entire aggregator set is
// crashed, a live aggregator from another partition to stand by for it.
// Partitions with at least one live aggregator need none: the surviving
// peer's phase-4 takeover already covers crashed peers.
func (r *ChurnRunner) standbys() (map[int]string, error) {
	cfg := r.task.session.cfg
	var out map[int]string
	for p := 0; p < cfg.Spec.Partitions; p++ {
		allCrashed := true
		for _, agg := range cfg.Aggregators[p] {
			if !r.crashedAggs[agg] {
				allCrashed = false
				break
			}
		}
		if !allCrashed {
			continue
		}
		standby := ""
		for _, ref := range cfg.AllAggregators() {
			if ref.Partition != p && !r.crashedAggs[ref.ID] {
				standby = ref.ID
				break
			}
		}
		if standby == "" {
			return nil, fmt.Errorf("core: churn: no live aggregator left to stand by for partition %d", p)
		}
		if out == nil {
			out = make(map[int]string)
		}
		out[p] = standby
	}
	return out, nil
}

// liveStorageNode returns a live storage node for checkpoints, or "".
func (r *ChurnRunner) liveStorageNode() string {
	if r.net == nil {
		return ""
	}
	if live := r.net.LiveNodes(); len(live) > 0 {
		return live[0]
	}
	return ""
}

// aggregatorPartition resolves an aggregator ID to its partition.
func aggregatorPartition(cfg *Config, id string) (int, bool) {
	for _, ref := range cfg.AllAggregators() {
		if ref.ID == id {
			return ref.Partition, true
		}
	}
	return 0, false
}

// isTrainer reports whether id is one of the task's trainers.
func isTrainer(cfg *Config, id string) bool {
	for _, tr := range cfg.Trainers {
		if tr == id {
			return true
		}
	}
	return false
}
