package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/storage"
)

func TestIterationWithAbsentTrainer(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.TTrain = 300 * time.Millisecond
		ts.TSync = 3 * time.Second
	})
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 1)
	absent := "t3"
	delete(deltas, absent)
	wantAvg := make([]float64, 24)
	for _, d := range deltas {
		for i := range d {
			wantAvg[i] += d[i] / float64(len(deltas))
		}
	}
	res, err := sess.RunIterationOpts(context.Background(), 0, deltas, nil, IterationOptions{AllowAbsent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions: %v", res.Incomplete)
	}
	if d := maxAbsDiff(res.AvgDelta, wantAvg); d > 1e-3 {
		t.Fatalf("average over present trainers off by %v", d)
	}
	// Without AllowAbsent the same call is rejected up front.
	if _, err := sess.RunIteration(context.Background(), 1, deltas, nil); err == nil {
		t.Fatal("missing delta must fail without AllowAbsent")
	}
}

func TestStandbyTakeoverCompletesPartition(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.Partitions = 2
		ts.TTrain = 300 * time.Millisecond
		ts.TSync = 4 * time.Second
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 2)
	res, err := sess.RunIterationOpts(context.Background(), 0, deltas,
		map[string]Behavior{"agg-p0-0": BehaviorDropout},
		IterationOptions{Standbys: map[int]string{0: "agg-p1-0"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions despite standby: %v", res.Incomplete)
	}
	if d := maxAbsDiff(res.AvgDelta, wantAvg); d > 1e-3 {
		t.Fatalf("average off by %v after takeover", d)
	}
	rep := res.Takeovers[0]
	if rep == nil {
		t.Fatal("no takeover report for partition 0")
	}
	if rep.ExecutedBy != "agg-p1-0" || rep.ID != "agg-p0-0" || !rep.PublishedGlobal {
		t.Fatalf("unexpected takeover report %+v", rep)
	}
	if got := reg.Counter("standby_takeover_total").Value(); got != 1 {
		t.Fatalf("standby_takeover_total = %d, want 1", got)
	}
}

func TestStandbyStaysQuietWhenPartitionHealthy(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.Partitions = 2
		ts.TTrain = 300 * time.Millisecond
		ts.TSync = 4 * time.Second
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 3)
	res, err := sess.RunIterationOpts(context.Background(), 0, deltas, nil,
		IterationOptions{Standbys: map[int]string{0: "agg-p1-0", 1: "agg-p0-0"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Takeovers) != 0 {
		t.Fatalf("healthy partitions produced takeovers: %+v", res.Takeovers)
	}
	if got := reg.Counter("standby_takeover_total").Value(); got != 0 {
		t.Fatalf("standby_takeover_total = %d, want 0", got)
	}
	if d := maxAbsDiff(res.AvgDelta, wantAvg); d > 1e-3 {
		t.Fatalf("average off by %v", d)
	}
}

// newChurnTask builds an ML task over named ipfs storage nodes with
// replication, sized so churn leaves live capacity.
func newChurnTask(t *testing.T) (*Task, *storage.Network, *ml.Dataset) {
	t.Helper()
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	stores := make([]string, 6)
	for i := range stores {
		stores[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	ts := TaskSpec{
		TaskID:                  "churn-task",
		ModelDim:                m.Dim(),
		Partitions:              2,
		Trainers:                names,
		AggregatorsPerPartition: 1,
		StorageNodes:            stores,
		TTrain:                  400 * time.Millisecond,
		TSync:                   5 * time.Second,
		PollInterval:            time.Millisecond,
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	sess, net, _, err := NewLocalStack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPlacement(storage.PlacementRendezvous)
	splits, err := data.SplitIID(trainers, 78)
	if err != nil {
		t.Fatal(err)
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}
	task, err := NewTask(sess, m, locals, sgd, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	return task, net, data
}

// TestChurnRunnerEndToEnd is the issue's acceptance scenario: a
// storage-node departure, an aggregator crash and a trainer crash+rejoin
// across a multi-round run that still converges, with replication fully
// repaired and the failover/repair counters nonzero.
func TestChurnRunnerEndToEnd(t *testing.T) {
	task, net, data := newChurnTask(t)
	reg := obs.NewRegistry()
	task.session.SetMetrics(reg)
	net.SetMetrics(reg)
	plan, err := storage.ParseChurnPlan(
		"depart:ipfs-03@iter1,crash:agg-p0-0@iter1,crash:t5@iter1,rejoin:t5@iter2,rejoin:agg-p0-0@iter3")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewChurnRunner(task, net, plan)
	runner.SetMetrics(reg)

	accStart, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 4; round++ {
		metrics, res, applied, err := runner.RunRound(ctx)
		if err != nil {
			t.Fatalf("round %d (churn %v): %v", round, applied, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied (churn %v, incomplete %v)", round, applied, res.Incomplete)
		}
		switch round {
		case 1:
			if len(applied) != 3 {
				t.Fatalf("round 1 churn = %v, want 3 events", applied)
			}
			rep := res.Takeovers[0]
			if rep == nil || rep.ExecutedBy != "agg-p1-0" {
				t.Fatalf("round 1: no standby takeover for partition 0: %+v", res.Takeovers)
			}
		case 2:
			if len(applied) != 1 {
				t.Fatalf("round 2 churn = %v, want the trainer rejoin", applied)
			}
		}
	}
	if task.Round() != 4 {
		t.Fatalf("completed %d rounds, want 4", task.Round())
	}

	accEnd, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if accEnd < 0.85 || accEnd <= accStart {
		t.Fatalf("did not converge under churn: %v -> %v", accStart, accEnd)
	}
	if got := len(net.UnderReplicated()); got != 0 {
		t.Fatalf("%d blocks under-replicated after final repair", got)
	}
	if got := reg.Gauge("under_replicated_blocks").Value(); got != 0 {
		t.Fatalf("under_replicated_blocks = %v, want 0", got)
	}
	if got := reg.Counter("repair_blocks_total").Value(); got == 0 {
		t.Fatal("repair_blocks_total = 0, want > 0")
	}
	if got := reg.Counter("standby_takeover_total").Value(); got == 0 {
		t.Fatal("standby_takeover_total = 0, want > 0")
	}
	if got := reg.Counter("trainer_bootstraps_total").Value(); got != 1 {
		t.Fatalf("trainer_bootstraps_total = %d, want 1", got)
	}
	if got := reg.Counter("churn_events_total").Value(); got != 5 {
		t.Fatalf("churn_events_total = %d, want 5", got)
	}
	if _, ok := runner.Checkpoint(); !ok {
		t.Fatal("no checkpoint taken")
	}
}

func TestChurnRunnerRejectsUnknownParticipant(t *testing.T) {
	task, net, _ := newChurnTask(t)
	plan, err := storage.ParseChurnPlan("crash:nobody@iter0")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewChurnRunner(task, net, plan)
	if _, _, _, err := runner.RunRound(context.Background()); err == nil {
		t.Fatal("unknown participant must fail the round")
	}
	plan2, err := storage.ParseChurnPlan("depart:t3@iter0")
	if err != nil {
		t.Fatal(err)
	}
	runner2 := NewChurnRunner(task, net, plan2)
	if _, _, _, err := runner2.RunRound(context.Background()); err == nil {
		t.Fatal("depart of a non-storage participant must fail")
	}
}
