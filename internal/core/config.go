// Package core implements the modified IPLS protocol that is the paper's
// contribution: decentralized federated learning over a content-addressed
// storage network (§III) with optional verifiable aggregation against
// malicious aggregators (§IV).
//
// The package provides two execution engines over the same protocol logic:
//
//   - Session: a concurrent runtime in which trainers and aggregators run
//     as goroutines against pluggable storage and directory backends
//     (in-memory or TCP), used by the examples, the integration tests and
//     the convergence experiments.
//   - Simulate: a virtual-time execution over the netsim discrete-event
//     network emulator, used to regenerate the paper's delay figures.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"ipls/internal/group"
	"ipls/internal/model"
	"ipls/internal/scalar"
)

// TaskSpec is what the task launcher (the bootstrapper, §II) declares about
// a federated-learning task. NewConfig expands it into the full wiring.
type TaskSpec struct {
	// TaskID names the task; it domain-separates the commitment
	// generators so different tasks never share parameters.
	TaskID string
	// ModelDim is the total number of model parameters.
	ModelDim int
	// Partitions is the number of segments the parameter vector is split
	// into (§II).
	Partitions int
	// Trainers lists trainer IDs.
	Trainers []string
	// AggregatorsPerPartition is |A_i|, the number of aggregators
	// responsible for each partition.
	AggregatorsPerPartition int
	// StorageNodes lists the IDs of the decentralized storage nodes.
	StorageNodes []string
	// ProvidersPerAggregator is |P_ij|: how many storage nodes serve as
	// merge-and-download providers for each aggregator. Zero disables
	// merge-and-download (gradients are downloaded one by one).
	ProvidersPerAggregator int
	// Verifiable enables Pedersen-commitment verification (§IV).
	Verifiable bool
	// Curve names the commitment curve (see group.ByName). Empty means
	// secp256r1-fast.
	Curve string
	// QuantShift is the fixed-point fractional bit count (0 = default).
	QuantShift uint
	// TTrain bounds the trainer upload phase and TSync the whole
	// iteration (the two schedule timestamps of §III-D). Zero values get
	// generous defaults.
	TTrain, TSync time.Duration
	// PollInterval is how often runtime actors poll the directory.
	PollInterval time.Duration
	// ScreenNorm, when positive, makes aggregators drop trainer gradients
	// whose L2 norm exceeds it — a basic defence against poisoning
	// trainers, which the paper explicitly leaves as future work
	// (§III-A). Screening is incompatible with Verifiable: dropping a
	// gradient that the directory has already folded into the partition
	// accumulator would make every honest update fail verification
	// (range proofs would be needed to reconcile the two; see §VI).
	ScreenNorm float64
}

// Config is the fully expanded wiring of a task, shared by every
// participant. The bootstrapper derives it deterministically from the
// TaskSpec, so all parties agree on assignments without communication.
type Config struct {
	TaskID     string
	Spec       model.Spec
	Trainers   []string
	Verifiable bool
	Curve      *group.Curve
	QuantShift uint

	// Aggregators maps partition -> ordered aggregator IDs (A_i).
	Aggregators map[int][]string
	// Assignment maps partition -> trainer -> aggregator (the T_ij sets).
	Assignment map[int]map[string]string
	// Providers maps aggregator ID -> its provider storage nodes (P_ij).
	Providers map[string][]string
	// StorageNodes lists all storage node IDs.
	StorageNodes []string
	// MergeAndDownload enables provider-side pre-aggregation.
	MergeAndDownload bool

	TTrain, TSync time.Duration
	PollInterval  time.Duration
	ScreenNorm    float64
}

// NewConfig validates a TaskSpec and deterministically expands it.
func NewConfig(ts TaskSpec) (*Config, error) {
	if ts.TaskID == "" {
		return nil, fmt.Errorf("core: task ID required")
	}
	spec := model.Spec{Dim: ts.ModelDim, Partitions: ts.Partitions}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(ts.Trainers) == 0 {
		return nil, fmt.Errorf("core: at least one trainer required")
	}
	seen := make(map[string]bool, len(ts.Trainers))
	for _, tr := range ts.Trainers {
		if tr == "" || seen[tr] {
			return nil, fmt.Errorf("core: trainer IDs must be unique and non-empty")
		}
		seen[tr] = true
	}
	if ts.AggregatorsPerPartition <= 0 {
		return nil, fmt.Errorf("core: need at least one aggregator per partition")
	}
	if ts.AggregatorsPerPartition > len(ts.Trainers) {
		return nil, fmt.Errorf("core: more aggregators per partition (%d) than trainers (%d)",
			ts.AggregatorsPerPartition, len(ts.Trainers))
	}
	if len(ts.StorageNodes) == 0 {
		return nil, fmt.Errorf("core: at least one storage node required")
	}
	if ts.ProvidersPerAggregator > len(ts.StorageNodes) {
		return nil, fmt.Errorf("core: %d providers per aggregator but only %d storage nodes",
			ts.ProvidersPerAggregator, len(ts.StorageNodes))
	}
	if ts.ScreenNorm < 0 {
		return nil, fmt.Errorf("core: screen norm must be non-negative, got %v", ts.ScreenNorm)
	}
	if ts.ScreenNorm > 0 && ts.Verifiable {
		return nil, fmt.Errorf("core: gradient screening is incompatible with verifiable aggregation " +
			"(a dropped gradient would invalidate the partition accumulator; see §VI)")
	}
	curveName := ts.Curve
	if curveName == "" {
		curveName = "secp256r1-fast"
	}
	curve, err := group.ByName(curveName)
	if err != nil {
		return nil, err
	}
	shift := ts.QuantShift
	if shift == 0 {
		shift = scalar.DefaultShift
	}
	tTrain := ts.TTrain
	if tTrain == 0 {
		tTrain = 30 * time.Second
	}
	tSync := ts.TSync
	if tSync == 0 {
		tSync = 60 * time.Second
	}
	poll := ts.PollInterval
	if poll == 0 {
		poll = 2 * time.Millisecond
	}

	cfg := &Config{
		TaskID:           ts.TaskID,
		Spec:             spec,
		Trainers:         append([]string(nil), ts.Trainers...),
		Verifiable:       ts.Verifiable,
		Curve:            curve,
		QuantShift:       shift,
		Aggregators:      make(map[int][]string, ts.Partitions),
		Assignment:       make(map[int]map[string]string, ts.Partitions),
		Providers:        make(map[string][]string),
		StorageNodes:     append([]string(nil), ts.StorageNodes...),
		MergeAndDownload: ts.ProvidersPerAggregator > 0,
		TTrain:           tTrain,
		TSync:            tSync,
		PollInterval:     poll,
		ScreenNorm:       ts.ScreenNorm,
	}

	providerCursor := 0
	for p := 0; p < ts.Partitions; p++ {
		aggs := make([]string, ts.AggregatorsPerPartition)
		for j := range aggs {
			aggs[j] = AggregatorID(p, j)
		}
		cfg.Aggregators[p] = aggs
		// Trainers round-robin over the partition's aggregators: the
		// T_ij are disjoint and cover T (§II).
		assign := make(map[string]string, len(ts.Trainers))
		for i, tr := range ts.Trainers {
			assign[tr] = aggs[i%len(aggs)]
		}
		cfg.Assignment[p] = assign
		// Providers round-robin over storage nodes.
		for _, agg := range aggs {
			if ts.ProvidersPerAggregator > 0 {
				provs := make([]string, ts.ProvidersPerAggregator)
				for k := range provs {
					provs[k] = ts.StorageNodes[providerCursor%len(ts.StorageNodes)]
					providerCursor++
				}
				cfg.Providers[agg] = provs
			}
		}
	}
	return cfg, nil
}

// AggregatorID names the j-th aggregator of partition p (A_pj in the
// paper's notation).
func AggregatorID(p, j int) string {
	return fmt.Sprintf("agg-p%d-%d", p, j)
}

// TrainersOf returns, in stable order, the trainer set T_ij assigned to an
// aggregator for a partition.
func (c *Config) TrainersOf(partition int, aggregator string) []string {
	var out []string
	for tr, agg := range c.Assignment[partition] {
		if agg == aggregator {
			out = append(out, tr)
		}
	}
	sort.Strings(out)
	return out
}

// UploadNode returns the storage node a trainer uploads its gradient for a
// partition to. With merge-and-download the trainer must use one of its
// aggregator's providers (§III-E); otherwise gradients spread over all
// storage nodes by a stable hash.
func (c *Config) UploadNode(partition int, trainer string) string {
	if c.MergeAndDownload {
		agg := c.Assignment[partition][trainer]
		provs := c.Providers[agg]
		if len(provs) > 0 {
			return provs[stableIndex(trainer, len(provs))]
		}
	}
	return c.StorageNodes[stableIndex(trainer+"/"+fmt.Sprint(partition), len(c.StorageNodes))]
}

// AggregatorHome returns the storage node an aggregator uses for its own
// uploads (partial and global updates).
func (c *Config) AggregatorHome(aggregator string) string {
	if provs := c.Providers[aggregator]; len(provs) > 0 {
		return provs[0]
	}
	return c.StorageNodes[stableIndex(aggregator, len(c.StorageNodes))]
}

// AllAggregators returns every aggregator ID with its partition, in
// partition-major order.
func (c *Config) AllAggregators() []AggregatorRef {
	var out []AggregatorRef
	for p := 0; p < c.Spec.Partitions; p++ {
		for _, a := range c.Aggregators[p] {
			out = append(out, AggregatorRef{Partition: p, ID: a})
		}
	}
	return out
}

// ParticipantIDs returns every trainer and aggregator ID, the set whose
// public keys an authenticated task registers with the directory.
func (c *Config) ParticipantIDs() []string {
	out := append([]string(nil), c.Trainers...)
	for _, ref := range c.AllAggregators() {
		out = append(out, ref.ID)
	}
	return out
}

// AggregatorRef identifies one aggregator role instance.
type AggregatorRef struct {
	Partition int
	ID        string
}

func stableIndex(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
