package core

import (
	"fmt"
	"testing"
	"time"
)

func baseSpec() TaskSpec {
	trainers := make([]string, 8)
	for i := range trainers {
		trainers[i] = fmt.Sprintf("trainer-%d", i)
	}
	return TaskSpec{
		TaskID:                  "test-task",
		ModelDim:                40,
		Partitions:              4,
		Trainers:                trainers,
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1", "s2", "s3"},
		ProvidersPerAggregator:  2,
		TTrain:                  time.Second,
		TSync:                   time.Second,
		PollInterval:            time.Millisecond,
	}
}

func TestNewConfigExpandsAssignments(t *testing.T) {
	cfg, err := NewConfig(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		aggs := cfg.Aggregators[p]
		if len(aggs) != 2 {
			t.Fatalf("partition %d has %d aggregators", p, len(aggs))
		}
		// T_ij must partition the trainer set: disjoint and covering.
		seen := make(map[string]bool)
		for _, agg := range aggs {
			for _, tr := range cfg.TrainersOf(p, agg) {
				if seen[tr] {
					t.Fatalf("trainer %s assigned twice for partition %d", tr, p)
				}
				seen[tr] = true
			}
		}
		if len(seen) != 8 {
			t.Fatalf("partition %d covers %d trainers, want 8", p, len(seen))
		}
	}
}

func TestNewConfigProviders(t *testing.T) {
	cfg, err := NewConfig(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.MergeAndDownload {
		t.Fatal("providers configured but merge-and-download disabled")
	}
	for _, ref := range cfg.AllAggregators() {
		provs := cfg.Providers[ref.ID]
		if len(provs) != 2 {
			t.Fatalf("aggregator %s has %d providers", ref.ID, len(provs))
		}
	}
	// Trainers must upload to one of their aggregator's providers.
	for p := 0; p < cfg.Spec.Partitions; p++ {
		for _, tr := range cfg.Trainers {
			node := cfg.UploadNode(p, tr)
			agg := cfg.Assignment[p][tr]
			found := false
			for _, prov := range cfg.Providers[agg] {
				if prov == node {
					found = true
				}
			}
			if !found {
				t.Fatalf("trainer %s uploads partition %d to %s, not a provider of %s",
					tr, p, node, agg)
			}
		}
	}
}

func TestNewConfigNoProviders(t *testing.T) {
	ts := baseSpec()
	ts.ProvidersPerAggregator = 0
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MergeAndDownload {
		t.Fatal("merge-and-download should be disabled without providers")
	}
	node := cfg.UploadNode(0, "trainer-0")
	found := false
	for _, s := range cfg.StorageNodes {
		if s == node {
			found = true
		}
	}
	if !found {
		t.Fatalf("upload node %s not a storage node", node)
	}
}

func TestNewConfigValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*TaskSpec)
	}{
		{"empty task id", func(ts *TaskSpec) { ts.TaskID = "" }},
		{"zero dim", func(ts *TaskSpec) { ts.ModelDim = 0 }},
		{"zero partitions", func(ts *TaskSpec) { ts.Partitions = 0 }},
		{"no trainers", func(ts *TaskSpec) { ts.Trainers = nil }},
		{"dup trainers", func(ts *TaskSpec) { ts.Trainers = []string{"a", "a"} }},
		{"empty trainer id", func(ts *TaskSpec) { ts.Trainers = []string{""} }},
		{"zero aggregators", func(ts *TaskSpec) { ts.AggregatorsPerPartition = 0 }},
		{"too many aggregators", func(ts *TaskSpec) { ts.AggregatorsPerPartition = 100 }},
		{"no storage", func(ts *TaskSpec) { ts.StorageNodes = nil }},
		{"too many providers", func(ts *TaskSpec) { ts.ProvidersPerAggregator = 100 }},
		{"bad curve", func(ts *TaskSpec) { ts.Curve = "curve9000" }},
	}
	for _, tt := range mutations {
		ts := baseSpec()
		tt.mut(&ts)
		if _, err := NewConfig(ts); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestNewConfigDefaults(t *testing.T) {
	ts := baseSpec()
	ts.TTrain, ts.TSync, ts.PollInterval = 0, 0, 0
	ts.Curve = ""
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTrain == 0 || cfg.TSync == 0 || cfg.PollInterval == 0 {
		t.Fatal("defaults not applied")
	}
	if cfg.Curve.Name != "secp256r1-fast" {
		t.Fatalf("default curve = %s", cfg.Curve.Name)
	}
	if cfg.QuantShift == 0 {
		t.Fatal("default shift not applied")
	}
}

func TestAggregatorID(t *testing.T) {
	if AggregatorID(2, 1) != "agg-p2-1" {
		t.Fatalf("AggregatorID = %s", AggregatorID(2, 1))
	}
}

func TestUploadNodeDeterministic(t *testing.T) {
	cfg, err := NewConfig(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Spec.Partitions; p++ {
		for _, tr := range cfg.Trainers {
			if cfg.UploadNode(p, tr) != cfg.UploadNode(p, tr) {
				t.Fatal("upload node not deterministic")
			}
		}
	}
	if cfg.AggregatorHome("agg-p0-0") == "" {
		t.Fatal("aggregator home empty")
	}
}

func TestBehaviorString(t *testing.T) {
	for b, want := range map[Behavior]string{
		BehaviorHonest:        "honest",
		BehaviorDropGradient:  "drop-gradient",
		BehaviorAlterGradient: "alter-gradient",
		BehaviorForgeUpdate:   "forge-update",
		BehaviorDropout:       "dropout",
		Behavior(42):          "behavior(42)",
	} {
		if b.String() != want {
			t.Errorf("Behavior(%d).String() = %q, want %q", int(b), b.String(), want)
		}
	}
	if !BehaviorDropGradient.Malicious() || BehaviorDropout.Malicious() || BehaviorHonest.Malicious() {
		t.Fatal("Malicious() classification wrong")
	}
}
