package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"ipls/internal/cid"
	"ipls/internal/dag"
	"ipls/internal/directory"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// Durable deployment: the restart-rejoin bootstrap path. NewLocalStack
// wires an in-memory stack that dies with the process; OpenDurableStack
// wires the same stack over the disk-backed BlockStore and a persisted
// directory snapshot, so a restarted node comes back with its blocks AND
// its records — it serves every pre-crash CID without re-replication,
// which is restart durability beyond the checkpoint DAG.

// DurableOptions configures OpenDurableStack.
type DurableOptions struct {
	// StoreDir is the root directory for durable state. Blocks live under
	// StoreDir/blocks/<node id>, the directory snapshot at
	// StoreDir/directory.json.
	StoreDir string
	// CacheBlocks is the per-node LRU block-cache capacity (0 disables).
	CacheBlocks int
	// Replicas is the storage replication factor (minimum 1).
	Replicas int
}

// SnapshotPath returns where the stack persists its directory snapshot.
func (o DurableOptions) SnapshotPath() string {
	return filepath.Join(o.StoreDir, "directory.json")
}

// DurableStack is a local deployment whose storage and directory state
// survive process restarts.
type DurableStack struct {
	Session *Session
	Network *storage.Network
	Dir     *directory.Service

	opts     DurableOptions
	restored bool
}

// Restored reports whether the stack came up from persisted state (a prior
// run's snapshot and blocks) rather than empty.
func (d *DurableStack) Restored() bool { return d.restored }

// OpenDurableStack wires a disk-backed deployment rooted at
// opts.StoreDir: a storage network on the fs BlockStore backend (each
// node reopening — and re-announcing — whatever blocks it already holds)
// and a directory service restored from the persisted snapshot when one
// exists. Close persists the snapshot back and closes the stores.
func OpenDurableStack(cfg *Config, opts DurableOptions) (*DurableStack, error) {
	if opts.StoreDir == "" {
		return nil, errors.New("core: durable stack needs a store directory")
	}
	field := scalar.NewField(cfg.Curve.N)
	net := storage.NewNetworkWithStore(field, opts.Replicas, storage.StoreConfig{
		Backend:     storage.BackendFS,
		Dir:         filepath.Join(opts.StoreDir, "blocks"),
		CacheBlocks: opts.CacheBlocks,
	})
	for _, id := range cfg.StorageNodes {
		net.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		net.Close()
		return nil, err
	}
	dir, err := directory.RestoreFile(opts.SnapshotPath(), params, net)
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("core: restore directory: %w", err)
	}
	restored := dir != nil
	if dir == nil {
		dir = directory.New(params, net)
	}
	// Assignments are config, not state: (re)apply so a config change
	// between runs takes effect and a fresh boot starts assigned.
	cfg.ApplyAssignments(dir)
	sess, err := NewSession(cfg, net, dir)
	if err != nil {
		net.Close()
		return nil, err
	}
	return &DurableStack{
		Session:  sess,
		Network:  net,
		Dir:      dir,
		opts:     opts,
		restored: restored,
	}, nil
}

// Snapshot persists the directory snapshot without closing the stack —
// call it at round boundaries so a crash loses at most the current round's
// records (blocks are already durable at Put time).
func (d *DurableStack) Snapshot() error {
	return d.Dir.SaveSnapshotFile(d.opts.SnapshotPath())
}

// Close persists the directory snapshot and closes every node's block
// store. The stack must not be used afterwards.
func (d *DurableStack) Close() error {
	snapErr := d.Snapshot()
	closeErr := d.Network.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// collector is the optional storage capability of keep-set garbage
// collection (storage.Network implements it).
type collector interface {
	GC(ctx context.Context, keep map[cid.CID]bool) (storage.GCReport, error)
}

// GCOptions pins blocks that must survive a collection sweep.
type GCOptions struct {
	// KeepIters lists iterations whose directory-recorded blocks
	// (gradients, partials, finals) are still live — typically the
	// current iteration and, for catch-up, the previous one.
	KeepIters []int
	// KeepRoots pins checkpoint DAGs: every block reachable from these
	// roots is kept, so a rejoining trainer can always bootstrap.
	KeepRoots []dag.Ref
}

// GCSuperseded garbage-collects blocks from superseded iterations: it
// builds the keep set from the directory's records for GCOptions.KeepIters,
// the finals of those iterations, and the full block sets of the pinned
// checkpoint DAG roots — then sweeps everything else from every node.
// Where CleanupIteration deletes one finished iteration's blocks by
// record, GCSuperseded inverts the question ("what must stay?") so blocks
// that lost their records — merge-fetch caches, departed uploads — are
// reclaimed too, which is what keeps a durable disk store's footprint
// proportional to the working set rather than to history.
func (s *Session) GCSuperseded(ctx context.Context, opts GCOptions) (storage.GCReport, error) {
	col, ok := s.store.(collector)
	if !ok {
		return storage.GCReport{}, errors.New("core: storage does not support garbage collection")
	}
	keep, err := s.gcKeepSet(ctx, opts)
	if err != nil {
		return storage.GCReport{}, err
	}
	return col.GC(ctx, keep)
}

func (s *Session) gcKeepSet(ctx context.Context, opts GCOptions) (map[cid.CID]bool, error) {
	keep := make(map[cid.CID]bool)
	lister, ok := s.dir.(interface {
		RecordsForIter(iter int) []directory.Record
	})
	for _, iter := range opts.KeepIters {
		if ok {
			for _, rec := range lister.RecordsForIter(iter) {
				keep[rec.CID] = true
			}
		}
	}
	// The finals trail is always pinned, beyond KeepIters: the published
	// global updates are how a restarted trainer replays the model
	// (Task.Resume), at a few KB per round. The probe walks consecutive
	// iterations and stops at the first without a complete set of finals —
	// the same rule Resume uses, so everything replayable stays fetchable.
	for iter := 0; ; iter++ {
		complete := true
		for p := 0; p < s.cfg.Spec.Partitions; p++ {
			rec, err := s.dir.Update(ctx, iter, p)
			if err != nil {
				complete = false
				continue
			}
			keep[rec.CID] = true
		}
		if !complete {
			break
		}
	}
	// Expand checkpoint DAGs through a CID-recording fetcher: Assemble
	// walks exactly the blocks the DAG references, so whatever it asks
	// for is what must survive.
	f, isFetcher := s.store.(interface {
		Fetch(ctx context.Context, c cid.CID) ([]byte, error)
	})
	for _, root := range opts.KeepRoots {
		if !isFetcher {
			return nil, errors.New("core: storage does not support content routing; cannot pin checkpoint DAGs")
		}
		_, err := dag.Assemble(root, func(c cid.CID) ([]byte, error) {
			keep[c] = true
			return f.Fetch(ctx, c)
		})
		if err != nil {
			return nil, fmt.Errorf("core: pin checkpoint %s: %w", root.CID.Short(), err)
		}
	}
	return keep, nil
}
