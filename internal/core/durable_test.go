package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/dag"
	"ipls/internal/ml"
	"ipls/internal/storage"
)

func durableSpec() TaskSpec {
	return TaskSpec{
		TaskID:                  "durable-test",
		ModelDim:                24,
		Partitions:              2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	}
}

func openDurable(t *testing.T, dir string) *DurableStack {
	t.Helper()
	cfg, err := NewConfig(durableSpec())
	if err != nil {
		t.Fatal(err)
	}
	stack, err := OpenDurableStack(cfg, DurableOptions{StoreDir: dir, CacheBlocks: 16, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	return stack
}

// TestDurableStackCrashRestartMidRound kills the node mid-round — after
// the trainers uploaded but before aggregation — reopens the same store
// directory, and asserts every previously announced CID is served with an
// intact hash, without any re-replication.
func TestDurableStackCrashRestartMidRound(t *testing.T) {
	dir := t.TempDir()
	stack := openDurable(t, dir)
	cfg := stack.Session.Config()
	deltas, wantAvg := randomDeltas(cfg.Trainers, 24, 7)

	for _, tr := range cfg.Trainers {
		if err := stack.Session.TrainerUpload(context.Background(), tr, 0, deltas[tr]); err != nil {
			t.Fatal(err)
		}
	}
	// Collect what the directory announced pre-crash.
	var announced []cid.CID
	for p := 0; p < cfg.Spec.Partitions; p++ {
		for _, agg := range cfg.Aggregators[p] {
			for _, rec := range stack.Dir.GradientsFor(context.Background(), 0, p, agg) {
				announced = append(announced, rec.CID)
			}
		}
	}
	// One gradient record per trainer per partition.
	if want := len(cfg.Trainers) * cfg.Spec.Partitions; len(announced) != want {
		t.Fatalf("expected %d announced gradients, got %d", want, len(announced))
	}
	// "Crash": close mid-round (Close persists the snapshot; the blocks
	// were already durable at Put time).
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory.
	stack2 := openDurable(t, dir)
	defer stack2.Close()
	if !stack2.Restored() {
		t.Fatal("restart did not restore the persisted directory snapshot")
	}
	// Every pre-crash CID is served with an intact hash, and no repair
	// re-replication was needed to do it.
	for _, c := range announced {
		data, err := stack2.Network.Fetch(context.Background(), c)
		if err != nil {
			t.Fatalf("post-restart fetch %s: %v", c.Short(), err)
		}
		if !cid.Verify(data, c) {
			t.Fatalf("post-restart block %s fails verification", c.Short())
		}
		if len(stack2.Network.Providers(c)) == 0 {
			t.Fatalf("provider records not restored for %s", c.Short())
		}
	}
	if got := stack2.Network.Metrics().Counter("repair_blocks_total").Value(); got != 0 {
		t.Fatalf("restart triggered re-replication: repair_blocks_total=%d", got)
	}

	// The restored stack finishes the round the crash interrupted.
	for _, ref := range cfg.AllAggregators() {
		rep, err := stack2.Session.AggregatorRun(context.Background(), ref.ID, ref.Partition, 0, BehaviorHonest)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.PublishedGlobal {
			t.Fatalf("aggregator %s failed after restart", ref.ID)
		}
	}
	avg, err := stack2.Session.TrainerCollect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(avg, wantAvg); diff > 1e-6 {
		t.Fatalf("post-restart average off by %g", diff)
	}
}

// TestDurableStackCorruptBlockSurfacesIntegrity rots one stored block on
// disk across a restart: the disk backend reports ErrIntegrity, and the
// network's health check flags the backend failure distinctly.
func TestDurableStackCorruptBlockSurfacesIntegrity(t *testing.T) {
	dir := t.TempDir()
	stack := openDurable(t, dir)
	c, err := stack.Network.Put(context.Background(), "s0", []byte("soon to rot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}

	stack2 := openDurable(t, dir)
	defer stack2.Close()
	if err := stack2.Network.Corrupt("s0", c); err != nil {
		t.Fatal(err)
	}
	if _, err := stack2.Network.Get(context.Background(), "s0", c); !errors.Is(err, storage.ErrIntegrity) {
		t.Fatalf("want ErrIntegrity from rotted block, got %v", err)
	}
	if err := stack2.Network.Health(); !errors.Is(err, storage.ErrBackend) {
		t.Fatalf("Health should surface the backend failure, got %v", err)
	}
	// The replica still serves the data (content routing skips the rotted
	// copy).
	if _, err := stack2.Network.Fetch(context.Background(), c); err != nil {
		t.Fatalf("replica failover after rot: %v", err)
	}
}

// TestGCSupersededKeepsWorkingSet runs two rounds, checkpoints, then
// collects everything but the current round and the checkpoint DAG; old
// gradients vanish, the kept round and checkpoint survive.
func TestGCSupersededKeepsWorkingSet(t *testing.T) {
	dir := t.TempDir()
	stack := openDurable(t, dir)
	defer stack.Close()
	sess, net := stack.Session, stack.Network
	cfg := sess.Config()

	var iterCIDs [2][]cid.CID
	for iter := 0; iter < 2; iter++ {
		deltas, _ := randomDeltas(cfg.Trainers, 24, int64(20+iter))
		if _, err := sess.RunIteration(context.Background(), iter, deltas, nil); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < cfg.Spec.Partitions; p++ {
			for _, agg := range cfg.Aggregators[p] {
				for _, rec := range stack.Dir.GradientsFor(context.Background(), iter, p, agg) {
					iterCIDs[iter] = append(iterCIDs[iter], rec.CID)
				}
			}
		}
	}
	ckpt, err := SaveCheckpoint(context.Background(), net, "s0", []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}

	report, err := sess.GCSuperseded(context.Background(), GCOptions{
		KeepIters: []int{1},
		KeepRoots: []dag.Ref{ckpt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Collected == 0 {
		t.Fatal("GC collected nothing; iteration 0 should be superseded")
	}
	// Iteration 0's gradients are gone.
	for _, c := range iterCIDs[0] {
		if _, err := net.Fetch(context.Background(), c); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("superseded block %s survived GC: %v", c.Short(), err)
		}
	}
	// Iteration 1's gradients and the checkpoint survive.
	for _, c := range iterCIDs[1] {
		if _, err := net.Fetch(context.Background(), c); err != nil {
			t.Fatalf("kept block %s lost: %v", c.Short(), err)
		}
	}
	if _, err := LoadCheckpoint(context.Background(), net, "s0", ckpt); err != nil {
		t.Fatalf("checkpoint lost after GC: %v", err)
	}
}

// TestTaskResumeOnDurableStack restarts an FL task on the durable stack:
// the reopened task replays the completed rounds' published updates from
// the directory, continues the round numbering, and keeps training.
func TestTaskResumeOnDurableStack(t *testing.T) {
	dir := t.TempDir()
	newTask := func(stack *DurableStack) *Task {
		t.Helper()
		m := ml.NewLogistic(5, 4) // dim = 4*(5+1) = 24, matching durableSpec
		data := ml.Blobs(240, 5, 4, 1.0, 11)
		splits, err := data.SplitIID(4, 12)
		if err != nil {
			t.Fatal(err)
		}
		cfg := stack.Session.Config()
		locals := make(map[string]*ml.Dataset, len(cfg.Trainers))
		for i, name := range cfg.Trainers {
			locals[name] = splits[i]
		}
		task, err := NewTask(stack.Session, m, locals,
			ml.SGDConfig{LearningRate: 0.3, Epochs: 1, BatchSize: 16}, m.Params())
		if err != nil {
			t.Fatal(err)
		}
		return task
	}

	stack := openDurable(t, dir)
	task := newTask(stack)
	for r := 0; r < 2; r++ {
		if _, _, err := task.RunRound(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	preCrash := task.Global()
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}

	stack2 := openDurable(t, dir)
	defer stack2.Close()
	task2 := newTask(stack2)
	replayed, err := task2.Resume(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 || task2.Round() != 2 {
		t.Fatalf("Resume replayed %d rounds (round %d), want 2", replayed, task2.Round())
	}
	if diff := maxAbsDiff(task2.Global(), preCrash); diff > 1e-3 {
		t.Fatalf("replayed model off by %g from the pre-crash global", diff)
	}
	// Training continues where it left off.
	metrics, _, err := task2.RunRound(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Round != 2 || !metrics.Applied {
		t.Fatalf("post-resume round = %+v, want applied round 2", metrics)
	}
}
