package core_test

import (
	"context"
	"fmt"
	"time"

	"ipls/internal/core"
)

// ExampleSession_RunIteration runs one verifiable protocol iteration on an
// in-memory deployment.
func ExampleSession_RunIteration() {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  "example",
		ModelDim:                8,
		Partitions:              2,
		Trainers:                []string{"alice", "bob"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"ipfs-0", "ipfs-1"},
		Verifiable:              true,
		TTrain:                  time.Second,
		TSync:                   time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sess, _, _, err := core.NewLocalStack(cfg, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	deltas := map[string][]float64{
		"alice": {1, 1, 1, 1, 1, 1, 1, 1},
		"bob":   {3, 3, 3, 3, 3, 3, 3, 3},
	}
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("averaged delta[0] = %.1f, detected cheating: %v\n", res.AvgDelta[0], res.Detected())
	// Output: averaged delta[0] = 2.0, detected cheating: false
}

// ExampleSimulate measures one iteration's delays under the paper's Fig. 1
// setup with 4 merge-and-download providers.
func ExampleSimulate() {
	res, err := core.Simulate(core.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		ProvidersPerAggregator:  4,
		BandwidthMbps:           10,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("total %v, upload %v, aggregation %v\n",
		res.TotalDelay, res.UploadDelayMean, res.GradAggDelay)
	// Output: total 8.32s, upload 4.16s, aggregation 4.16s
}

// ExampleAnalyticAggregationDelay evaluates the paper's §III-E model at
// its optimum.
func ExampleAnalyticAggregationDelay() {
	tau := core.AnalyticAggregationDelay(1_300_000, 16, 4, 10, 10)
	fmt.Printf("tau = %.2fs at P* = %.0f\n", tau, core.OptimalProviders(16, 10, 10))
	// Output: tau = 8.32s at P* = 4
}
