package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"ipls/internal/directory"
	"ipls/internal/storage"
)

// TestLateGradientRejected verifies the §III-D schedule: gradients
// published after t_train are refused, so the partition accumulator cannot
// drift from what aggregators collected.
func TestLateGradientRejected(t *testing.T) {
	sess, _, dir := testStack(t, func(ts *TaskSpec) { ts.Verifiable = true })
	// Freeze the directory's clock, then set a deadline in its past.
	base := time.Now()
	dir.SetClock(func() time.Time { return base })
	dir.SetSchedule(0, base.Add(-time.Second))
	err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, 24))
	if !errors.Is(err, directory.ErrTooLate) {
		t.Fatalf("expected ErrTooLate, got %v", err)
	}
	// Future deadline: accepted.
	dir.SetSchedule(1, base.Add(time.Hour))
	if err := sess.TrainerUpload(context.Background(), "t0", 1, make([]float64, 24)); err != nil {
		t.Fatal(err)
	}
}

// TestRunIterationAnnouncesSchedule checks RunIteration registers t_train
// with schedule-capable directories, and that a straggler publishing after
// the round is rejected.
func TestRunIterationAnnouncesSchedule(t *testing.T) {
	sess, _, dir := testStack(t, func(ts *TaskSpec) {
		ts.TTrain = 50 * time.Millisecond
	})
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 20)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	// A straggler trying to publish for iteration 0 after t_train.
	dir.SetClock(func() time.Time { return time.Now().Add(time.Hour) })
	err := sess.TrainerUpload(context.Background(), "latecomer", 0, make([]float64, 24))
	if !errors.Is(err, directory.ErrTooLate) {
		t.Fatalf("expected straggler rejection, got %v", err)
	}
}

// TestCheatingMergeProviderDetected verifies the §IV-B merge check: a
// provider that mis-aggregates is caught by comparing the merged block
// against the product of the constituent commitments, and the aggregator
// falls back to individual verified downloads — the round still completes
// with the correct aggregate.
func TestCheatingMergeProviderDetected(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.Verifiable = true
		ts.ProvidersPerAggregator = 1 // all of an aggregator's gradients on one node
	})
	for _, node := range sess.Config().StorageNodes {
		if err := net.CheatMerges(node); err != nil {
			t.Fatal(err)
		}
	}
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 21)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete despite fallback: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("cheating provider corrupted the aggregate by %v", diff)
	}
	// No merge may have been accepted.
	for id, rep := range res.Reports {
		if rep.MergeDownloads != 0 {
			t.Fatalf("%s accepted a cheating merge", id)
		}
	}
}

// TestCheatingMergeUndetectedWithoutVerifiability shows the contrast: in
// plain mode the mis-aggregation flows into the model.
func TestCheatingMergeUndetectedWithoutVerifiability(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.ProvidersPerAggregator = 1
	})
	for _, node := range sess.Config().StorageNodes {
		if err := net.CheatMerges(node); err != nil {
			t.Fatal(err)
		}
	}
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 22)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff < 1e-9 {
		t.Fatal("cheating merge had no effect — test is vacuous")
	}
}

// TestCleanupIteration verifies per-iteration garbage collection: after a
// round, gradients and partials disappear from every node while the global
// updates stay retrievable.
func TestCleanupIteration(t *testing.T) {
	sess, net, dir := testStack(t, func(ts *TaskSpec) { ts.AggregatorsPerPartition = 2 })
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 23)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	before := net.TotalStoredBytes()
	removed, err := sess.CleanupIteration(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing garbage-collected")
	}
	after := net.TotalStoredBytes()
	if after >= before {
		t.Fatalf("cleanup did not shrink storage: %d -> %d", before, after)
	}
	// Global updates must survive so slow trainers can still catch up.
	if _, err := sess.TrainerCollect(context.Background(), 0); err != nil {
		t.Fatalf("updates must remain retrievable after cleanup: %v", err)
	}
	// Gradient blocks are gone.
	recs := dir.GradientsFor(context.Background(), 0, 0, "")
	if len(recs) == 0 {
		t.Fatal("directory should still list gradient records")
	}
	if _, err := net.Fetch(context.Background(), recs[0].CID); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("gradient block should be gone from the network, got %v", err)
	}
}

// TestScreeningDropsPoisonedGradient verifies the norm-screening extension:
// a trainer submitting an absurdly large delta is excluded and the average
// is computed over the remaining trainers only (the appended counters make
// the divisor come out right automatically).
func TestScreeningDropsPoisonedGradient(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.ScreenNorm = 100 })
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 24)
	// Poison t3 with a huge delta.
	poisoned := deltas["t3"]
	for i := range poisoned {
		poisoned[i] = 1e6
	}
	// Expected: average over the three honest trainers.
	want := make([]float64, 24)
	for _, tr := range []string{"t0", "t1", "t2"} {
		for i, v := range deltas[tr] {
			want[i] += v / 3
		}
	}
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	screened := false
	for _, rep := range res.Reports {
		for _, tr := range rep.ScreenedOut {
			if tr == "t3" {
				screened = true
			}
		}
	}
	if !screened {
		t.Fatal("poisoned gradient not screened out")
	}
	if diff := maxAbsDiff(res.AvgDelta, want); diff > 1e-6 {
		t.Fatalf("screened average off by %v", diff)
	}
}

// TestScreeningAllDroppedFails covers the degenerate case.
func TestScreeningAllDroppedFails(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.ScreenNorm = 1e-12 })
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 25)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err == nil {
		t.Fatal("expected error when everything is screened out")
	}
}

// TestScreeningIncompatibleWithVerifiable pins down the documented tension.
func TestScreeningIncompatibleWithVerifiable(t *testing.T) {
	ts := baseSpec()
	ts.Verifiable = true
	ts.ScreenNorm = 1
	if _, err := NewConfig(ts); err == nil {
		t.Fatal("screening + verifiable must be rejected")
	}
	ts.Verifiable = false
	ts.ScreenNorm = -1
	if _, err := NewConfig(ts); err == nil {
		t.Fatal("negative screen norm must be rejected")
	}
}

// TestBlockNorm sanity-checks the norm computation used for screening.
func TestBlockNorm(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.ScreenNorm = 10 })
	deltas := map[string][]float64{}
	for _, tr := range sess.Config().Trainers {
		deltas[tr] = make([]float64, 24)
	}
	deltas["t0"][0] = 3
	deltas["t0"][1] = 4 // norm 5 over the whole vector
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatal("norm-5 delta must pass a norm-10 screen")
	}
	if math.Abs(res.AvgDelta[0]-0.75) > 1e-6 {
		t.Fatalf("avg[0] = %v, want 0.75", res.AvgDelta[0])
	}
}
