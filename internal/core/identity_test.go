package core

import (
	"context"
	"errors"
	"testing"

	"ipls/internal/directory"
	"ipls/internal/identity"
)

// signedStack builds a stack whose directory authenticates every publish.
func signedStack(t *testing.T) (*Session, *identity.Keyring) {
	t.Helper()
	sess, _, dir := testStack(t, func(ts *TaskSpec) { ts.Verifiable = true })
	cfg := sess.Config()
	ring, reg := identity.DeterministicSetup(cfg.TaskID, cfg.ParticipantIDs())
	dir.SetRegistry(reg)
	sess.SetKeyring(ring)
	return sess, ring
}

func TestSignedIterationSucceeds(t *testing.T) {
	sess, _ := signedStack(t)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 100)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("signed-run average off by %v", diff)
	}
}

func TestUnsignedPublishRejected(t *testing.T) {
	sess, _ := signedStack(t)
	// A session without keys cannot publish to an authenticated
	// directory.
	sess.SetKeyring(nil)
	err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, 24))
	if !errors.Is(err, directory.ErrBadSignature) {
		t.Fatalf("expected ErrBadSignature, got %v", err)
	}
}

func TestImpersonationRejected(t *testing.T) {
	sess, _ := signedStack(t)
	// Mallory holds only her own (unregistered) key but publishes as t0.
	mallory := identity.NewKeyring()
	mallory.Add(identity.Deterministic("mallory-keys", "t0")) // wrong key for t0
	sess.SetKeyring(mallory)
	err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, 24))
	if !errors.Is(err, directory.ErrBadSignature) {
		t.Fatalf("impersonation accepted: %v", err)
	}
}

func TestUnregisteredParticipantRejected(t *testing.T) {
	sess, ring := signedStack(t)
	intruder := identity.Deterministic(sess.Config().TaskID, "intruder")
	ring.Add(intruder)
	err := sess.TrainerUpload(context.Background(), "intruder", 0, make([]float64, 24))
	if !errors.Is(err, directory.ErrBadSignature) {
		t.Fatalf("unregistered participant accepted: %v", err)
	}
}

func TestTamperedRecordSignatureFails(t *testing.T) {
	// Direct unit check: mutating any signed field invalidates the
	// signature.
	kp := identity.Deterministic("task", "t0")
	rec := directory.Record{
		Addr: directory.Addr{Uploader: "t0", Partition: 1, Iter: 2, Type: directory.TypeGradient},
		CID:  "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff",
		Node: "s0",
	}
	rec.Signature = kp.Sign(rec.SigningBytes())
	if !identity.Verify(kp.Public(), rec.SigningBytes(), rec.Signature) {
		t.Fatal("honest signature rejected")
	}
	mutations := []func(*directory.Record){
		func(r *directory.Record) { r.Addr.Iter = 3 },
		func(r *directory.Record) { r.Addr.Partition = 0 },
		func(r *directory.Record) { r.Addr.Uploader = "t1" },
		func(r *directory.Record) { r.Addr.Type = directory.TypeUpdate },
		func(r *directory.Record) { r.CID = "ff112233445566778899aabbccddeeff00112233445566778899aabbccddeeff" },
		func(r *directory.Record) { r.Commitment = []byte{1} },
	}
	for i, mut := range mutations {
		m := rec
		mut(&m)
		if identity.Verify(kp.Public(), m.SigningBytes(), m.Signature) {
			t.Fatalf("mutation %d did not invalidate the signature", i)
		}
	}
	// Moving the block to another node does NOT invalidate it (fallback
	// uploads are legitimate).
	moved := rec
	moved.Node = "s9"
	if !identity.Verify(kp.Public(), moved.SigningBytes(), moved.Signature) {
		t.Fatal("node change should not invalidate the signature")
	}
}
