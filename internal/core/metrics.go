package core

import (
	"time"

	"ipls/internal/obs"
)

// sessionMetrics holds the session's pre-resolved instruments. The zero
// value is fully inert: every field is a nil obs instrument, which
// discards, so an uninstrumented session pays only a nil check per
// observation.
type sessionMetrics struct {
	// aggregationLatency is the per-iteration aggregation latency — from
	// an aggregator starting its run to its global update being accepted
	// (the paper's Fig. 1/2 delay axis).
	aggregationLatency *obs.Histogram

	// Phase timers around the protocol's hot path.
	phaseUpload    *obs.Histogram // trainer gradient upload (Algorithm 1, 3-9)
	phaseCollect   *obs.Histogram // trainer global-update collection
	phaseGradients *obs.Histogram // aggregator gradient collection (28-34)
	phaseMerge     *obs.Histogram // one merge-and-download request (§III-E)
	phaseVerify    *obs.Histogram // one partial-update verification (§IV-B)
	phasePublish   *obs.Histogram // global-update upload + directory publish

	gradientsUploaded *obs.Counter
	updatesCollected  *obs.Counter
	mergeDownloads    *obs.Counter
	batchVerifies     *obs.Counter // one RLC check covering a whole partition's merges
	batchVerifyFail   *obs.Counter // batches that failed and fell back to per-group Verify
	verifyPass        *obs.Counter
	verifyFail        *obs.Counter
	takeovers         *obs.Counter
	standbyTakeovers  *obs.Counter
	screenedOut       *obs.Counter
	globalsPublished  *obs.Counter
	globalsRejected   *obs.Counter

	// Graceful-degradation paths (scenario engine).
	quorumProceeds       *obs.Counter // rounds closed at m-of-n after the quorum wait
	byzantineRejects     *obs.Counter // gradients rejected for commitment mismatch
	byzantineQuarantines *obs.Counter // trainers quarantined after repeated offenses
}

// SetMetrics points the session's instrumentation at a registry (nil
// detaches). Like SetTracer, call it before the session is used
// concurrently.
func (s *Session) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics = sessionMetrics{}
		return
	}
	phase := func(name string) *obs.Histogram {
		return reg.Histogram("phase_seconds", obs.DefBuckets, "phase", name)
	}
	s.metrics = sessionMetrics{
		aggregationLatency: reg.Histogram("aggregation_latency_seconds", obs.DefBuckets),
		phaseUpload:        phase("trainer_upload"),
		phaseCollect:       phase("trainer_collect"),
		phaseGradients:     phase("gradient_collect"),
		phaseMerge:         phase("merge_download"),
		phaseVerify:        phase("verify"),
		phasePublish:       phase("publish"),
		gradientsUploaded:  reg.Counter("gradients_uploaded_total"),
		updatesCollected:   reg.Counter("updates_collected_total"),
		mergeDownloads:     reg.Counter("merge_downloads_total"),
		batchVerifies:      reg.Counter("batch_verify_total"),
		batchVerifyFail:    reg.Counter("batch_verify_fail_total"),
		verifyPass:         reg.Counter("verification_pass_total"),
		verifyFail:         reg.Counter("verification_fail_total"),
		takeovers:          reg.Counter("takeover_total"),
		standbyTakeovers:   reg.Counter("standby_takeover_total"),
		screenedOut:        reg.Counter("screened_out_total"),
		globalsPublished:   reg.Counter("globals_published_total"),
		globalsRejected:    reg.Counter("globals_rejected_total"),

		quorumProceeds:       reg.Counter("quorum_proceed_total"),
		byzantineRejects:     reg.Counter("byzantine_rejects_total"),
		byzantineQuarantines: reg.Counter("byzantine_quarantines_total"),
	}
}

// observeSince records the elapsed seconds since start on a histogram.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
