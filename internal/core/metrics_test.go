package core

import (
	"context"
	"strings"
	"testing"

	"ipls/internal/obs"
)

// TestIterationPopulatesMetrics is the end-to-end observability check: one
// simulated multi-node iteration must produce non-zero upload bytes,
// merge-and-download savings and aggregation-latency observations in a
// shared registry.
func TestIterationPopulatesMetrics(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.ProvidersPerAggregator = 1
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	net.SetMetrics(reg)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 99)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}

	var uploaded int64
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "bytes_uploaded_total") {
			uploaded += v
		}
	}
	if uploaded == 0 {
		t.Fatal("bytes_uploaded_total stayed zero across a full iteration")
	}
	if snap.Counters["merge_bytes_saved_total"] == 0 {
		t.Fatal("merge_bytes_saved_total stayed zero with merge-and-download on")
	}
	if got := snap.Counters["gradients_uploaded_total"]; got != 12 {
		t.Fatalf("gradients_uploaded_total = %d, want 12 (4 trainers x 3 partitions)", got)
	}
	if got := snap.Counters["globals_published_total"]; got != 3 {
		t.Fatalf("globals_published_total = %d, want 3", got)
	}
	if snap.Counters["merge_downloads_total"] == 0 {
		t.Fatal("merge_downloads_total stayed zero")
	}
	lat, ok := snap.Histograms["aggregation_latency_seconds"]
	if !ok || lat.Count == 0 {
		t.Fatalf("aggregation_latency_seconds empty: %+v", lat)
	}
	if lat.Count != 3 {
		t.Fatalf("aggregation latency observations = %d, want 3 (one per accepted global)", lat.Count)
	}
	phases, ok := snap.Histograms[`phase_seconds{phase="trainer_upload"}`]
	if !ok || phases.Count == 0 {
		t.Fatal("phase_seconds{trainer_upload} empty")
	}

	// The same registry must render as Prometheus text for /metrics.
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE aggregation_latency_seconds histogram",
		"aggregation_latency_seconds_count 3",
		"merge_bytes_saved_total",
		`bytes_uploaded_total{node="s0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

// TestSetMetricsNilDetaches makes sure a detached session runs clean.
func TestSetMetricsNilDetaches(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	sess.SetMetrics(nil)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 100)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("gradients_uploaded_total").Value(); got != 0 {
		t.Fatalf("detached session still counted %d gradients", got)
	}
}

// TestVerificationCountersTrackOutcomes covers pass/fail counting in
// verifiable mode with a cheating aggregator.
func TestVerificationCountersTrackOutcomes(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
	})
	reg := obs.NewRegistry()
	sess.SetMetrics(reg)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 101)
	evil := AggregatorID(0, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{evil: BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("not detected")
	}
	if reg.Counter("verification_fail_total").Value() == 0 {
		t.Fatal("verification_fail_total stayed zero despite a cheating aggregator")
	}
	if reg.Counter("verification_pass_total").Value() == 0 {
		t.Fatal("verification_pass_total stayed zero despite honest peers")
	}
	if reg.Counter("takeover_total").Value() == 0 {
		t.Fatal("takeover_total stayed zero despite a takeover")
	}
}
