package core

import (
	"context"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/storage"
)

// TestSyncUsesPubSub: with a pub/sub-capable store, multi-aggregator sync
// discovers peer partials through announcements.
func TestSyncUsesPubSub(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
	})
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 30)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("pub/sub sync average off by %v", diff)
	}
	discoveries := 0
	for _, rep := range res.Reports {
		discoveries += rep.PubSubDiscoveries
	}
	if discoveries == 0 {
		t.Fatal("no partials discovered via pub/sub")
	}
}

// noPubSubStore hides the Announcer capability of a storage network so the
// directory-polling fallback is exercised.
type noPubSubStore struct {
	net *storage.Network
}

func (s *noPubSubStore) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	return s.net.Put(ctx, nodeID, data)
}
func (s *noPubSubStore) Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error) {
	return s.net.Get(ctx, nodeID, c)
}
func (s *noPubSubStore) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	return s.net.MergeGet(ctx, nodeID, cs)
}

// TestSyncFallsBackToDirectoryWithoutPubSub: a store without pub/sub still
// synchronizes through directory polling.
func TestSyncFallsBackToDirectoryWithoutPubSub(t *testing.T) {
	ts := TaskSpec{
		TaskID:                  "no-pubsub",
		ModelDim:                24,
		Partitions:              2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1"},
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Build a local stack, then wrap its store to hide pub/sub.
	_, net, dir, err := NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(cfg, &noPubSubStore{net: net}, dir)
	if err != nil {
		t.Fatal(err)
	}
	deltas, wantAvg := randomDeltas(cfg.Trainers, 24, 31)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete without pub/sub: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("fallback average off by %v", diff)
	}
	for _, rep := range res.Reports {
		if rep.PubSubDiscoveries != 0 {
			t.Fatal("pub/sub discoveries reported without pub/sub")
		}
	}
}

// TestForgedAnnouncementHarmless: a garbage or forged pub/sub announcement
// cannot corrupt the aggregate — at worst it wastes a download.
func TestForgedAnnouncementHarmless(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
	})
	// Pre-seed every sync topic with garbage and a forged record.
	for p := 0; p < sess.Config().Spec.Partitions; p++ {
		topic := storage.Topic(sess.Config().TaskID, 0, p)
		net.Announce(topic, "mallory", []byte("not json"))
		net.Announce(topic, "mallory", []byte(`{"addr":{"uploader":"agg-p0-1","partition":0,"iter":0,"type":2},"cid":"deadbeef","node":"s0"}`))
	}
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 32)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("forged announcements blocked the round: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("forged announcements corrupted the aggregate by %v", diff)
	}
}

// TestCleanupForgetsTopics: per-iteration GC also drops pub/sub logs.
func TestCleanupForgetsTopics(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) { ts.AggregatorsPerPartition = 2 })
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 33)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	topic := storage.Topic(sess.Config().TaskID, 0, 0)
	if msgs, _ := net.Listen(topic, 0); len(msgs) == 0 {
		t.Fatal("expected retained announcements before cleanup")
	}
	if _, err := sess.CleanupIteration(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := net.Listen(topic, 0); len(msgs) != 0 {
		t.Fatal("cleanup left pub/sub logs behind")
	}
}
