package core

import (
	"context"
	"testing"
	"time"

	"ipls/internal/directory"
)

// TestBootstrapperRestartMidIteration: the directory crashes after the
// trainers uploaded; the bootstrapper restores it from a snapshot and the
// aggregators complete the iteration — verifiable mode included, since the
// commitment accumulators survive the snapshot.
func TestBootstrapperRestartMidIteration(t *testing.T) {
	sess, net, dir := testStack(t, func(ts *TaskSpec) { ts.Verifiable = true })
	cfg := sess.Config()
	deltas, wantAvg := randomDeltas(cfg.Trainers, 24, 90)

	// Phase 1: trainers upload against the original directory.
	for _, tr := range cfg.Trainers {
		if err := sess.TrainerUpload(context.Background(), tr, 0, deltas[tr]); err != nil {
			t.Fatal(err)
		}
	}

	// The bootstrapper "crashes": snapshot, discard, restore.
	snap, err := dir.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := directory.Restore(snap, params, net)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := NewSession(cfg, net, restored)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: aggregators and trainers finish against the restored
	// directory.
	for _, ref := range cfg.AllAggregators() {
		rep, err := sess2.AggregatorRun(context.Background(), ref.ID, ref.Partition, 0, BehaviorHonest)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.PublishedGlobal {
			t.Fatalf("aggregator %s failed after restore", ref.ID)
		}
	}
	avg, err := sess2.TrainerCollect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(avg, wantAvg); diff > 1e-6 {
		t.Fatalf("average after restart off by %v", diff)
	}
	if restored.Stats().Verifications == 0 {
		t.Fatal("restored directory performed no verifications")
	}
}

// TestRestartPreservesDetection: a restored directory still rejects
// malicious updates (the accumulators carried over intact).
func TestRestartPreservesDetection(t *testing.T) {
	sess, net, dir := testStack(t, func(ts *TaskSpec) {
		ts.Verifiable = true
		ts.TSync = 400 * time.Millisecond
	})
	cfg := sess.Config()
	deltas, _ := randomDeltas(cfg.Trainers, 24, 91)
	for _, tr := range cfg.Trainers {
		if err := sess.TrainerUpload(context.Background(), tr, 0, deltas[tr]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := dir.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := directory.Restore(snap, params, net)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := NewSession(cfg, net, restored)
	if err != nil {
		t.Fatal(err)
	}
	evil := AggregatorID(0, 0)
	rep, err := sess2.AggregatorRun(context.Background(), evil, 0, 0, BehaviorDropGradient)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GlobalRejected {
		t.Fatal("restored directory accepted a malicious update")
	}
}

// TestRestartPreservesSchedulesAndFinals: schedules and accepted updates
// survive the round trip.
func TestRestartPreservesSchedulesAndFinals(t *testing.T) {
	sess, net, dir := testStack(t, nil)
	cfg := sess.Config()
	deltas, _ := randomDeltas(cfg.Trainers, 24, 92)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	dir.SetSchedule(7, base.Add(-time.Hour)) // already-expired future iteration
	snap, err := dir.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := directory.Restore(snap, nil, net)
	if err != nil {
		t.Fatal(err)
	}
	// Finals survive.
	for p := 0; p < cfg.Spec.Partitions; p++ {
		orig, err := dir.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.CID != orig.CID {
			t.Fatalf("partition %d final update CID changed", p)
		}
	}
	// Stats carried over (compare before issuing new traffic).
	if restored.Stats().Publishes != dir.Stats().Publishes {
		t.Fatal("stats not restored")
	}
	// The expired schedule still rejects gradients.
	sess2, err := NewSession(cfg, net, restored)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.TrainerUpload(context.Background(), "t0", 7, make([]float64, 24)); err == nil {
		t.Fatal("expired schedule lost in restore")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := directory.Restore([]byte("not json"), nil, nil); err == nil {
		t.Fatal("expected unmarshal error")
	}
}
