package core

import (
	"context"
	"fmt"
	"time"

	"ipls/internal/scenario"
	"ipls/internal/storage"
)

// ScenarioRunner drives a Task across rounds under a composed
// scenario.Plan, fanning one plan out into per-subsystem injections:
//
//   - churn events (depart/crash/rejoin) flow through the wrapped
//     ChurnRunner, which applies storage events to the network and
//     turns role events into dropouts, absences and standbys;
//   - slow/flaky events with iteration windows become storage fault
//     injections, applied before each round and cleared after their
//     window (timed windows target the virtual-clock simulator and are
//     ignored here);
//   - partition windows isolate their non-mainline groups: storage
//     members are cut off via Network.Partition, trainers sit the
//     window out, aggregators behave as dropouts. When the window
//     closes, the network Heals (provider re-announce) and a
//     RepairScan restores replication both ways;
//   - corrupt events inject Byzantine uploads, late events inject
//     stragglers whose deltas fold into the next round;
//   - a quorum setting (SetQuorum) lets every round close at m-of-n.
type ScenarioRunner struct {
	churn   *ChurnRunner
	net     *storage.Network
	plan    *scenario.Plan
	faults  *storage.FaultPlan
	windows []scenario.PartitionWindow

	// openIdx is the index of the partition window currently in force
	// (-1 when the network is whole); openStorage remembers whether it
	// isolated storage nodes, i.e. whether closing it must Heal.
	openIdx     int
	openStorage bool

	quorum     float64
	quorumWait time.Duration
}

// NewScenarioRunner compiles the plan's per-subsystem injectors over a
// task. net may be nil (direct backends); storage-node events then fail
// as unknown participants, and partitions can only name roles.
func NewScenarioRunner(task *Task, net *storage.Network, plan *scenario.Plan) *ScenarioRunner {
	return &ScenarioRunner{
		churn:   NewChurnRunner(task, net, plan.ChurnPlan()),
		net:     net,
		plan:    plan,
		faults:  plan.FaultPlan(),
		windows: plan.PartitionWindows(),
		openIdx: -1,
	}
}

// SetQuorum lets every aggregator close its gradient wait at
// ceil(q·n)-of-n once wait has passed (0 disables; invalid in
// verifiable mode — RunRound will report the iteration's error).
func (sr *ScenarioRunner) SetQuorum(q float64, wait time.Duration) {
	sr.quorum, sr.quorumWait = q, wait
}

// Churn exposes the wrapped churn runner (checkpoints, metrics).
func (sr *ScenarioRunner) Churn() *ChurnRunner { return sr.churn }

// RunRound applies every injection scheduled for the task's current
// round — closing an expired partition window first, then storage
// faults, then opening a partition window that starts now — and runs
// the round with the induced role degradations. The returned strings
// describe the injections applied, in order.
func (sr *ScenarioRunner) RunRound(ctx context.Context) (RoundMetrics, *IterationResult, []string, error) {
	round := sr.churn.task.Round()
	var applied []string

	// Close a partition window that ended before this round: the
	// isolated side rejoins, re-announces its blocks, and a RepairScan
	// reconciles replication in both directions.
	if sr.openIdx >= 0 && round > sr.windows[sr.openIdx].ToIter {
		desc, err := sr.heal(ctx)
		if err != nil {
			return RoundMetrics{}, nil, applied, err
		}
		applied = append(applied, desc...)
	}

	// Storage fault injections (slow/flaky edges) for this round.
	if sr.net != nil && !sr.faults.Empty() {
		msgs, err := sr.faults.Apply(sr.net, round)
		if err != nil {
			return RoundMetrics{}, nil, applied, err
		}
		applied = append(applied, msgs...)
	}

	// Open a partition window that starts at (or spans) this round.
	if sr.openIdx < 0 {
		for i, w := range sr.windows {
			if w.FromIter <= round && round <= w.ToIter {
				desc, err := sr.open(ctx, i)
				if err != nil {
					return RoundMetrics{}, nil, applied, err
				}
				applied = append(applied, desc...)
				break
			}
		}
	}

	extra := RoundOptions{
		Quorum:     sr.quorum,
		QuorumWait: sr.quorumWait,
		Corrupt:    sr.plan.CorruptAt(round),
		Late:       sr.plan.LateAt(round),
	}
	if sr.openIdx >= 0 {
		cfg := sr.churn.task.session.cfg
		for _, id := range sr.windows[sr.openIdx].Isolated() {
			switch {
			case isTrainer(cfg, id):
				if extra.Absent == nil {
					extra.Absent = make(map[string]bool)
				}
				extra.Absent[id] = true
			default:
				if _, ok := aggregatorPartition(cfg, id); ok {
					if extra.Behaviors == nil {
						extra.Behaviors = make(map[string]Behavior)
					}
					extra.Behaviors[id] = BehaviorDropout
				}
			}
		}
	}

	metrics, res, churned, err := sr.churn.RunRoundOpts(ctx, extra)
	return metrics, res, append(applied, churned...), err
}

// Finish closes any partition window still open after the last round,
// so a scenario that ends mid-window leaves the network whole.
func (sr *ScenarioRunner) Finish(ctx context.Context) ([]string, error) {
	if sr.openIdx < 0 {
		return nil, nil
	}
	return sr.heal(ctx)
}

// open puts window i's partition in force: storage members are isolated
// on the network; role members degrade via RunRound's RoundOptions.
func (sr *ScenarioRunner) open(ctx context.Context, i int) ([]string, error) {
	_ = ctx
	w := sr.windows[i]
	cfg := sr.churn.task.session.cfg
	var stores, roles []string
	for _, id := range w.Isolated() {
		if sr.net != nil && isStorageNode(cfg, id) {
			stores = append(stores, id)
		} else {
			roles = append(roles, id)
		}
	}
	if len(stores) > 0 {
		if err := sr.net.Partition(stores); err != nil {
			return nil, fmt.Errorf("core: scenario partition at iter %d: %w", w.FromIter, err)
		}
	}
	sr.openIdx = i
	sr.openStorage = len(stores) > 0
	return []string{fmt.Sprintf("partition open (iter %d..%d): %d storage node(s), %d role(s) isolated",
		w.FromIter, w.ToIter, len(stores), len(roles))}, nil
}

// heal closes the open partition window: Network.Heal re-announces the
// isolated side's blocks and a RepairScan re-replicates what either
// side lost during the split.
func (sr *ScenarioRunner) heal(ctx context.Context) ([]string, error) {
	w := sr.windows[sr.openIdx]
	sr.openIdx = -1
	if !sr.openStorage || sr.net == nil {
		return []string{fmt.Sprintf("partition closed (iter %d..%d): roles back in rotation", w.FromIter, w.ToIter)}, nil
	}
	sr.openStorage = false
	if err := sr.net.Heal(); err != nil {
		return nil, fmt.Errorf("core: scenario heal after iter %d: %w", w.ToIter, err)
	}
	report, err := sr.net.RepairScan(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: scenario repair after iter %d: %w", w.ToIter, err)
	}
	return []string{fmt.Sprintf("partition healed (iter %d..%d): providers re-announced, %d block(s) re-replicated",
		w.FromIter, w.ToIter, report.Repaired)}, nil
}

// isStorageNode reports whether id is one of the task's storage nodes.
func isStorageNode(cfg *Config, id string) bool {
	for _, n := range cfg.StorageNodes {
		if n == id {
			return true
		}
	}
	return false
}
