package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ipls/internal/directory"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/scenario"
	"ipls/internal/storage"
)

// newScenarioTask is newChurnTask with knobs: verifiable mode and
// merge-and-download providers, the combination the Byzantine path
// needs (detection lives in the BatchVerify fallback of the merged
// download).
func newScenarioTask(t *testing.T, verifiable bool, providers int) (*Task, *storage.Network, *directory.Service, *ml.Dataset) {
	t.Helper()
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	stores := make([]string, 6)
	for i := range stores {
		stores[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	ts := TaskSpec{
		TaskID:                  "scenario-task",
		ModelDim:                m.Dim(),
		Partitions:              2,
		Trainers:                names,
		AggregatorsPerPartition: 1,
		StorageNodes:            stores,
		ProvidersPerAggregator:  providers,
		Verifiable:              verifiable,
		TTrain:                  400 * time.Millisecond,
		TSync:                   5 * time.Second,
		PollInterval:            time.Millisecond,
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	sess, net, dir, err := NewLocalStack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPlacement(storage.PlacementRendezvous)
	splits, err := data.SplitIID(trainers, 78)
	if err != nil {
		t.Fatal(err)
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}
	task, err := NewTask(sess, m, locals, sgd, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	return task, net, dir, data
}

// TestScenarioRunnerPartitionOpensAndHeals drives a plan whose partition
// window isolates a storage node for two rounds: rounds inside the
// window still complete (replication covers the isolated node's blocks),
// and when the window closes the network heals and re-replicates.
func TestScenarioRunnerPartitionOpensAndHeals(t *testing.T) {
	task, net, _, _ := newScenarioTask(t, false, 0)
	reg := obs.NewRegistry()
	task.session.SetMetrics(reg)
	net.SetMetrics(reg)
	plan, err := scenario.Parse("partition:mainline|ipfs-01@iter1..2")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewScenarioRunner(task, net, plan)
	runner.Churn().SetMetrics(reg)

	ctx := context.Background()
	for round := 0; round < 4; round++ {
		metrics, res, applied, err := runner.RunRound(ctx)
		if err != nil {
			t.Fatalf("round %d (%v): %v", round, applied, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied (incomplete %v)", round, res.Incomplete)
		}
		switch round {
		case 0:
			if len(net.Partitioned()) != 0 {
				t.Fatal("partition in force before its window")
			}
		case 1, 2:
			if got := net.Partitioned(); len(got) != 1 || got[0] != "ipfs-01" {
				t.Fatalf("round %d: partitioned = %v, want [ipfs-01]", round, got)
			}
			if err := net.Health(); err == nil {
				t.Fatalf("round %d: network healthy while partitioned", round)
			}
		case 3:
			if got := net.Partitioned(); len(got) != 0 {
				t.Fatalf("round 3: partition not healed: %v", got)
			}
			if err := net.Health(); err != nil {
				t.Fatalf("round 3: network unhealthy after heal: %v", err)
			}
		}
	}
	if got := reg.Counter("partition_heals_total").Value(); got != 1 {
		t.Fatalf("partition_heals_total = %d, want 1", got)
	}
	if got := reg.Gauge("partition_active_nodes").Value(); got != 0 {
		t.Fatalf("partition_active_nodes = %v, want 0", got)
	}
	if got := len(net.UnderReplicated()); got != 0 {
		t.Fatalf("%d blocks under-replicated after heal", got)
	}
}

// TestScenarioRunnerFinishHealsOpenWindow covers a plan whose partition
// window outlives the run: Finish must close it.
func TestScenarioRunnerFinishHealsOpenWindow(t *testing.T) {
	task, net, _, _ := newScenarioTask(t, false, 0)
	plan, err := scenario.Parse("partition:mainline|ipfs-02@iter1..9")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewScenarioRunner(task, net, plan)
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		if _, _, applied, err := runner.RunRound(ctx); err != nil {
			t.Fatalf("round %d (%v): %v", round, applied, err)
		}
	}
	if len(net.Partitioned()) != 1 {
		t.Fatal("window not open at end of run")
	}
	if _, err := runner.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if got := net.Partitioned(); len(got) != 0 {
		t.Fatalf("Finish left partition %v", got)
	}
}

// TestQuorumRoundProceedsAndFoldsLateDelta is the examples/quorum story
// as a test: with quorum 0.8 over 8 trainers (need 7) and one late
// trainer, the round closes at 7-of-8 shortly after the quorum wait
// instead of blocking until t_train, and the straggler's delta folds
// into the next round age-discounted.
func TestQuorumRoundProceedsAndFoldsLateDelta(t *testing.T) {
	task, net, _, _ := newScenarioTask(t, false, 0)
	reg := obs.NewRegistry()
	task.session.SetMetrics(reg)
	plan, err := scenario.Parse("late:t2@iter0")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewScenarioRunner(task, net, plan)
	runner.SetQuorum(0.8, 50*time.Millisecond)

	ctx := context.Background()
	start := time.Now()
	metrics, res, _, err := runner.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !metrics.Applied || len(res.Incomplete) != 0 {
		t.Fatalf("quorum round did not complete: %+v incomplete %v", metrics, res.Incomplete)
	}
	if metrics.LateFolded != 0 {
		t.Fatalf("round 0 folded %d deltas, want 0 (stash is for the next round)", metrics.LateFolded)
	}
	// The round must have closed well before the 400ms t_train deadline
	// would have released the wait (two partitions would stack two waits).
	if elapsed > 350*time.Millisecond {
		t.Fatalf("quorum round took %v; the wait did not cut at quorum", elapsed)
	}
	if got := reg.Counter("quorum_proceed_total").Value(); got == 0 {
		t.Fatal("quorum_proceed_total = 0, want > 0")
	}

	metrics, _, _, err = runner.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.LateFolded != 1 {
		t.Fatalf("round 1 folded %d late deltas, want 1", metrics.LateFolded)
	}
}

// TestQuorumRejectedInVerifiableMode pins the incompatibility: the
// directory's closure gate counts every expected trainer, so m-of-n
// rounds cannot coexist with commitment verification.
func TestQuorumRejectedInVerifiableMode(t *testing.T) {
	task, net, _, _ := newScenarioTask(t, true, 2)
	runner := NewScenarioRunner(task, net, &scenario.Plan{})
	runner.SetQuorum(0.5, 10*time.Millisecond)
	if _, _, _, err := runner.RunRound(context.Background()); err == nil {
		t.Fatal("quorum in verifiable mode must be rejected")
	}
}

// TestCorruptUploadQuarantinedEndToEnd is the issue's Byzantine
// acceptance scenario: a trainer whose stored gradient bytes are
// tampered (commitment honest, data corrupt) is caught by the
// BatchVerify per-group fallback, its records are expunged from the
// directory (accumulators uncombined), and after the strike limit it is
// quarantined — while the honest trainers' rounds keep completing and
// the model converges.
func TestCorruptUploadQuarantinedEndToEnd(t *testing.T) {
	task, net, dir, data := newScenarioTask(t, true, 2)
	reg := obs.NewRegistry()
	task.session.SetMetrics(reg)
	plan, err := scenario.Parse("corrupt:t1@iter1..2")
	if err != nil {
		t.Fatal(err)
	}
	runner := NewScenarioRunner(task, net, plan)

	ctx := context.Background()
	for round := 0; round < 4; round++ {
		metrics, res, applied, err := runner.RunRound(ctx)
		if err != nil {
			t.Fatalf("round %d (%v): %v", round, applied, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied (incomplete %v)", round, res.Incomplete)
		}
	}

	// Both partitions detected the tampered upload in round 1: two
	// strikes, so the quarantine starts at round 2 and the round-2
	// corruption never lands.
	if got := reg.Counter("byzantine_rejects_total").Value(); got != 2 {
		t.Fatalf("byzantine_rejects_total = %d, want 2", got)
	}
	if got := reg.Counter("byzantine_quarantines_total").Value(); got != 1 {
		t.Fatalf("byzantine_quarantines_total = %d, want 1", got)
	}
	q := dir.Quarantined()
	if from, bad := q["t1"]; !bad || from != 2 {
		t.Fatalf("quarantined = %v, want t1 from iter 2", q)
	}
	if got := dir.Stats().Expunged; got != 2 {
		t.Fatalf("expunged = %d, want 2", got)
	}

	acc, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("model did not converge despite quarantine: accuracy %v", acc)
	}
}
