package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"sync"
	"time"

	"ipls/internal/cid"
	"ipls/internal/directory"
	"ipls/internal/identity"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// Directory is the client view of the directory service used by trainers
// and aggregators. *directory.Service implements it in-process; the
// transport package provides a TCP-backed implementation.
type Directory interface {
	Publish(ctx context.Context, rec directory.Record) error
	Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error)
	GradientsFor(ctx context.Context, iter, partition int, aggregator string) []directory.Record
	PartialUpdates(ctx context.Context, iter, partition int) []directory.Record
	Update(ctx context.Context, iter, partition int) (directory.Record, error)
	PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error)
	AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error)
	VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error)
}

var _ Directory = (*directory.Service)(nil)

// Announcer is the optional storage capability of IPFS-style pub/sub
// (§IV-B: "aggregators use the IPFS pub/sub functionality to publish their
// IPFS hashes for their partial updates"). Discovery through pub/sub is a
// hint — partial updates are still verified against the directory's
// accumulated commitments, so a forged announcement can at worst waste a
// download.
type Announcer interface {
	Announce(topic, from string, data []byte)
	Listen(topic string, since int) ([]storage.Announcement, int)
	ForgetTopic(topic string)
}

// Scheduler is the optional directory capability of enforcing per-iteration
// t_train deadlines (§III-D). When the session's directory supports it,
// RunIteration announces the schedule at the start of every iteration and
// the directory rejects gradients that arrive late.
type Scheduler interface {
	SetSchedule(iter int, tTrain time.Time)
}

// ErrTimeout indicates a protocol phase exceeded its schedule deadline
// (t_train or t_sync, §III-D).
var ErrTimeout = errors.New("core: schedule deadline exceeded")

// Session executes the protocol for one task against pluggable storage and
// directory backends. A single Session can drive any number of roles; it is
// safe for concurrent use.
type Session struct {
	cfg     *Config
	store   storage.Client
	dir     Directory
	params  *pedersen.Params
	quant   *scalar.Quantizer
	field   *scalar.Field
	tracer  Tracer
	spans   obs.SpanSink
	clock   func() time.Time
	meter   obs.ResourceMeter
	metrics sessionMetrics
	keyring *identity.Keyring

	// Byzantine strike ledger shared by every aggregator role this
	// session drives: one strike per distinct offending upload, and a
	// quarantine report to the directory at the strike limit.
	byzMu      sync.Mutex
	byzSeen    map[directory.Addr]bool
	byzStrikes map[string]int
	byzOut     map[string]bool
}

// byzantineStrikeLimit is how many distinct proven-Byzantine uploads a
// trainer gets before the session asks the directory to quarantine it.
const byzantineStrikeLimit = 2

// SetKeyring attaches the private keys this process controls; records
// published for those IDs are signed, which authenticated directories
// (Service.SetRegistry) require.
func (s *Session) SetKeyring(k *identity.Keyring) { s.keyring = k }

// signRecord attaches the uploader's signature when the session holds its
// key.
func (s *Session) signRecord(rec *directory.Record) {
	if s.keyring == nil {
		return
	}
	if kp := s.keyring.Signer(rec.Addr.Uploader); kp != nil {
		rec.Signature = kp.Sign(rec.SigningBytes())
	}
}

// PedersenParams deterministically derives the task's commitment
// parameters; all parties (and the directory) compute the same ones. It
// returns nil when the task is not verifiable.
func (c *Config) PedersenParams() (*pedersen.Params, error) {
	if !c.Verifiable {
		return nil, nil
	}
	maxLen := 0
	for i := 0; i < c.Spec.Partitions; i++ {
		if l := c.Spec.PartitionLen(i); l > maxLen {
			maxLen = l
		}
	}
	return pedersen.Setup(c.Curve, maxLen+1, "ipls/"+c.TaskID)
}

// ApplyAssignments registers the task's T_ij sets with a directory service
// (done by the bootstrapper before the task starts).
func (c *Config) ApplyAssignments(s *directory.Service) {
	for p := 0; p < c.Spec.Partitions; p++ {
		for _, agg := range c.Aggregators[p] {
			for _, tr := range c.TrainersOf(p, agg) {
				s.SetAssignment(p, tr, agg)
			}
		}
	}
}

// NewSession creates a protocol session.
func NewSession(cfg *Config, store storage.Client, dir Directory) (*Session, error) {
	field := scalar.NewField(cfg.Curve.N)
	quant, err := scalar.NewQuantizer(field, cfg.QuantShift)
	if err != nil {
		return nil, err
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return nil, err
	}
	return &Session{
		cfg:        cfg,
		store:      store,
		dir:        dir,
		params:     params,
		quant:      quant,
		field:      field,
		byzSeen:    make(map[directory.Addr]bool),
		byzStrikes: make(map[string]int),
		byzOut:     make(map[string]bool),
	}, nil
}

// NewLocalStack wires a complete in-memory deployment: a storage network
// with the configured nodes, a directory service (with assignments and
// commitment parameters applied) and a session over them. replicas is the
// storage replication factor.
func NewLocalStack(cfg *Config, replicas int) (*Session, *storage.Network, *directory.Service, error) {
	field := scalar.NewField(cfg.Curve.N)
	net := storage.NewNetwork(field, replicas)
	for _, id := range cfg.StorageNodes {
		net.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		return nil, nil, nil, err
	}
	dir := directory.New(params, net)
	cfg.ApplyAssignments(dir)
	sess, err := NewSession(cfg, net, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	return sess, net, dir, nil
}

// Config returns the session's task configuration.
func (s *Session) Config() *Config { return s.cfg }

// Quantizer returns the session's fixed-point quantizer.
func (s *Session) Quantizer() *scalar.Quantizer { return s.quant }

// poll retries fn every PollInterval until it reports done, the deadline
// passes, or the context is cancelled.
func (s *Session) poll(ctx context.Context, deadline time.Time, fn func() (bool, error)) error {
	for {
		done, err := fn()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(s.cfg.PollInterval):
		}
	}
}

// TrainerUpload implements the trainer's upload half of Algorithm 1: the
// model delta is split into partitions, each partition is quantized (with
// the averaging counter appended), stored on the trainer's upload node, and
// its record — including the Pedersen commitment in verifiable mode — is
// published to the directory.
func (s *Session) TrainerUpload(ctx context.Context, trainer string, iter int, delta []float64) error {
	return s.trainerUpload(ctx, obs.SpanContext{}, trainer, iter, delta, false)
}

func (s *Session) trainerUpload(ctx context.Context, parent obs.SpanContext, trainer string, iter int, delta []float64, corrupt bool) (err error) {
	defer observeSince(s.metrics.phaseUpload, time.Now())
	sc := s.startSpan("upload", trainer, iter, parent)
	defer func() { sc.endErr(err) }()
	parts, err := model.Split(s.cfg.Spec, delta)
	if err != nil {
		return fmt.Errorf("core: trainer %s: %w", trainer, err)
	}
	recs := make([]directory.Record, 0, len(parts))
	sizes := make([]int64, 0, len(parts))
	for i, part := range parts {
		block, err := model.Quantize(s.quant, part)
		if err != nil {
			return fmt.Errorf("core: trainer %s partition %d: %w", trainer, i, err)
		}
		stored := block
		if corrupt {
			// Byzantine injection: commit to the honest gradient but
			// store a tampered block, so the CID matches the stored bytes
			// and only commitment verification can catch the lie.
			tampered := make([]*big.Int, len(block.Values))
			copy(tampered, block.Values)
			tampered[0] = s.field.Add(tampered[0], big.NewInt(1))
			stored = model.Block{Values: tampered}
		}
		data, err := stored.Encode()
		if err != nil {
			return fmt.Errorf("core: trainer %s partition %d: %w", trainer, i, err)
		}
		put := sc.child("store_put")
		put.attr("partition", fmt.Sprint(i))
		c, node, err := s.putWithFallback(ctx, s.cfg.UploadNode(i, trainer), data)
		put.bytes(int64(len(data)))
		if err == nil {
			put.attr("node", node)
		}
		put.endErr(err)
		if err != nil {
			return fmt.Errorf("core: trainer %s upload partition %d: %w", trainer, i, err)
		}
		rec := directory.Record{
			Addr: directory.Addr{Uploader: trainer, Partition: i, Iter: iter, Type: directory.TypeGradient},
			CID:  c,
			Node: node,
			// The upload root's context travels with the record: whoever
			// downloads this gradient can causally link back to the upload.
			Span: sc.ctxRef(),
		}
		if s.params != nil {
			commit := sc.child("commit")
			commit.attr("partition", fmt.Sprint(i))
			com, err := s.params.Commit(block.Values)
			commit.endErr(err)
			if err != nil {
				return fmt.Errorf("core: trainer %s commit partition %d: %w", trainer, i, err)
			}
			rec.Commitment = com
		}
		s.signRecord(&rec)
		recs = append(recs, rec)
		sizes = append(sizes, int64(len(data)))
	}
	// Announce all partitions in one directory round trip when the
	// backend supports batching (§VI's load-reduction optimization).
	pub := sc.child("dir_publish")
	if batcher, ok := s.dir.(interface {
		PublishBatch(ctx context.Context, recs []directory.Record) error
	}); ok {
		err := batcher.PublishBatch(ctx, recs)
		pub.endErr(err)
		if errors.Is(err, directory.ErrQuarantined) {
			// The directory banned this trainer after proven-Byzantine
			// uploads; it sits the task out rather than failing the round.
			s.noteQuarantined(trainer)
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: trainer %s publish: %w", trainer, err)
		}
	} else {
		for _, rec := range recs {
			if err := s.dir.Publish(ctx, rec); err != nil {
				pub.endErr(err)
				if errors.Is(err, directory.ErrQuarantined) {
					s.noteQuarantined(trainer)
					return nil
				}
				return fmt.Errorf("core: trainer %s publish partition %d: %w", trainer, rec.Addr.Partition, err)
			}
		}
		pub.end()
	}
	s.metrics.gradientsUploaded.Add(int64(len(recs)))
	for i, rec := range recs {
		s.emitBytes(EventGradientUploaded, trainer, iter, rec.Addr.Partition, sizes[i], "cid %s on %s", rec.CID.Short(), rec.Node)
	}
	return nil
}

// TrainerCollect implements the trainer's download half of Algorithm 1: it
// waits for the global update of every partition, downloads and
// CID-verifies the blocks, divides by the averaging counter and reassembles
// the full averaged model delta.
func (s *Session) TrainerCollect(ctx context.Context, iter int) ([]float64, error) {
	return s.trainerCollect(ctx, obs.SpanContext{}, iter)
}

func (s *Session) trainerCollect(ctx context.Context, parent obs.SpanContext, iter int) (_ []float64, err error) {
	defer observeSince(s.metrics.phaseCollect, time.Now())
	sc := s.startSpan("collect", "trainer", iter, parent)
	defer func() { sc.endErr(err) }()
	deadline := time.Now().Add(s.cfg.TSync)
	parts := make([][]float64, s.cfg.Spec.Partitions)
	for i := 0; i < s.cfg.Spec.Partitions; i++ {
		var rec directory.Record
		wait := sc.child("update_wait")
		wait.attr("partition", fmt.Sprint(i))
		err := s.poll(ctx, deadline, func() (bool, error) {
			r, err := s.dir.Update(ctx, iter, i)
			if errors.Is(err, directory.ErrNotFound) {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			rec = r
			return true, nil
		})
		wait.endErr(err)
		if err != nil {
			return nil, fmt.Errorf("core: await update iter %d partition %d: %w", iter, i, err)
		}
		dl := sc.child("download")
		dl.attr("partition", fmt.Sprint(i))
		dl.link(rec.Span)
		data, err := s.store.Get(ctx, rec.Node, rec.CID)
		if err != nil {
			// The primary holder may have failed; fall back to any
			// replica via content routing if the backend supports it.
			if fetcher, ok := s.store.(interface {
				Fetch(ctx context.Context, c cid.CID) ([]byte, error)
			}); ok {
				data, err = fetcher.Fetch(ctx, rec.CID)
			}
			if err != nil {
				dl.endErr(err)
				return nil, fmt.Errorf("core: download update partition %d: %w", i, err)
			}
		}
		dl.bytes(int64(len(data)))
		dl.end()
		if !cid.Verify(data, rec.CID) {
			return nil, fmt.Errorf("core: update partition %d failed CID verification", i)
		}
		block, err := model.DecodeBlock(data)
		if err != nil {
			return nil, fmt.Errorf("core: decode update partition %d: %w", i, err)
		}
		avg, err := model.Dequantize(s.quant, block)
		if err != nil {
			return nil, fmt.Errorf("core: dequantize update partition %d: %w", i, err)
		}
		parts[i] = avg
		s.metrics.updatesCollected.Inc()
		s.emitBytes(EventUpdateCollected, "trainer", iter, i, int64(len(data)), "update %s", rec.CID.Short())
	}
	return model.Join(s.cfg.Spec, parts)
}

// AggregatorReport summarizes what one aggregator did in an iteration.
type AggregatorReport struct {
	ID        string
	Partition int
	Iter      int
	Behavior  Behavior
	// ExecutedBy names the standby peer that actually executed this role
	// after a crash-driven failover (empty when the aggregator itself ran).
	ExecutedBy string

	// GradientsAggregated counts trainer gradients folded into the
	// partial update; MergeDownloads counts merge-and-download requests.
	GradientsAggregated int
	MergeDownloads      int
	// InvalidPartials lists peer aggregators whose partial updates failed
	// commitment verification; MissingPeers lists peers that never
	// published; TookOverFor lists peers whose work this aggregator redid.
	InvalidPartials []string
	MissingPeers    []string
	TookOverFor     []string
	// ScreenedOut lists trainers whose gradients exceeded the configured
	// norm bound and were excluded from the aggregate.
	ScreenedOut []string
	// PubSubDiscoveries counts peer partial updates discovered through
	// pub/sub announcements rather than directory polling.
	PubSubDiscoveries int
	// PublishedGlobal is true if this aggregator's global update was
	// accepted; GlobalRejected is true if the directory refused it
	// (verifiable mode catching a malicious aggregate).
	PublishedGlobal bool
	GlobalRejected  bool
}

// AggregatorRun executes one aggregator role for one iteration: collect the
// assigned trainers' gradients (via merge-and-download when enabled),
// aggregate, publish the partial update, synchronize with peer aggregators
// of the same partition (verifying their partials in verifiable mode and
// taking over for missing or cheating peers), and publish the global
// update. The behavior parameter injects the malicious deviations of §III-A.
func (s *Session) AggregatorRun(ctx context.Context, agg string, partition, iter int, behavior Behavior) (*AggregatorReport, error) {
	return s.aggregatorRun(ctx, obs.SpanContext{}, agg, partition, iter, behavior, IterationOptions{})
}

func (s *Session) aggregatorRun(ctx context.Context, parent obs.SpanContext, agg string, partition, iter int, behavior Behavior, opts IterationOptions) (_ *AggregatorReport, err error) {
	if behavior == 0 {
		behavior = BehaviorHonest
	}
	report := &AggregatorReport{ID: agg, Partition: partition, Iter: iter, Behavior: behavior}
	if behavior == BehaviorDropout {
		return report, nil // crashed before doing anything
	}
	sc := s.startSpan("aggregate", agg, iter, parent)
	sc.attr("partition", fmt.Sprint(partition))
	defer func() { sc.endErr(err) }()
	start := time.Now()
	defer func() {
		// Aggregation latency per iteration: run start to accepted global.
		if report.PublishedGlobal {
			observeSince(s.metrics.aggregationLatency, start)
		}
	}()
	expected := s.cfg.TrainersOf(partition, agg)
	if len(expected) == 0 {
		return report, fmt.Errorf("core: aggregator %s has no trainers for partition %d", agg, partition)
	}
	want := len(expected)
	// Quarantined trainers will never publish again: don't idle out
	// t_train waiting for them (the directory's closure gate excludes
	// them too).
	if q := s.quarantinedOf(expected); q > 0 && q < len(expected) {
		want -= q
	}

	// Phase 1: collect gradients from my trainers (Algorithm 1, 28-34).
	wait := sc.child("gradient_wait")
	recs, err := s.awaitGradients(ctx, iter, partition, agg, want, time.Now().Add(s.cfg.TTrain), opts)
	wait.attr("gradients", fmt.Sprint(len(recs)))
	wait.endErr(err)
	if err != nil {
		return report, err
	}
	// Link the uploads this aggregation depends on: the records carry the
	// uploaders' span contexts across the directory boundary.
	for _, rec := range recs {
		sc.link(rec.Span)
	}
	fetch := sc.child("fetch_gradients")
	blocks, merges, err := s.collectBlocks(ctx, fetch, recs, report)
	fetch.endErr(err)
	if err != nil {
		return report, err
	}
	observeSince(s.metrics.phaseGradients, start)
	report.GradientsAggregated = len(recs) - len(report.ScreenedOut)
	report.MergeDownloads = merges
	s.emit(EventGradientsCollected, agg, iter, partition, "%d gradients, %d merged downloads", report.GradientsAggregated, merges)
	for _, tr := range report.ScreenedOut {
		s.emit(EventScreenedOut, agg, iter, partition, "dropped %s (norm bound %v)", tr, s.cfg.ScreenNorm)
	}

	// Phase 2: aggregate (possibly maliciously) and publish the partial.
	partial, err := applyBehavior(s.field, blocks, behavior)
	if err != nil {
		return report, err
	}
	home := s.cfg.AggregatorHome(agg)
	peers := s.cfg.Aggregators[partition]
	if len(peers) == 1 {
		// Sole aggregator: the partial is the global update.
		return report, s.publishGlobal(ctx, sc, report, agg, partition, iter, home, partial)
	}

	pp := sc.child("partial_publish")
	partialData, err := partial.Encode()
	if err != nil {
		pp.endErr(err)
		return report, err
	}
	pp.bytes(int64(len(partialData)))
	partialCID, partialNode, err := s.putWithFallback(ctx, home, partialData)
	if err != nil {
		pp.endErr(err)
		return report, fmt.Errorf("core: %s upload partial: %w", agg, err)
	}
	partialRec := directory.Record{
		Addr: directory.Addr{Uploader: agg, Partition: partition, Iter: iter, Type: directory.TypePartialUpdate},
		CID:  partialCID,
		Node: partialNode,
		Span: pp.ctxRef(),
	}
	s.signRecord(&partialRec)
	if err := s.dir.Publish(ctx, partialRec); err != nil {
		pp.endErr(err)
		return report, fmt.Errorf("core: %s publish partial: %w", agg, err)
	}
	s.emitBytes(EventPartialPublished, agg, iter, partition, int64(len(partialData)), "cid %s", partialCID.Short())
	// Announce the partial's hash over pub/sub so peers discover it
	// without polling the directory (§IV-B).
	announcer, hasPubSub := s.store.(Announcer)
	topic := storage.Topic(s.cfg.TaskID, iter, partition)
	if hasPubSub {
		if data, err := json.Marshal(partialRec); err == nil {
			announcer.Announce(topic, agg, data)
		}
	}
	pp.end()

	// Phase 3: synchronize with the other aggregators of this partition
	// (Algorithm 1, 37-42), verifying partials in verifiable mode (§IV-B).
	// Peer partials are discovered via pub/sub when available, with the
	// directory as fallback; verification is always against the
	// directory's accumulated commitments.
	partials := map[string]model.Block{agg: partial}
	cursor := 0
	discoverPartials := func() []directory.Record {
		if !hasPubSub {
			return s.dir.PartialUpdates(ctx, iter, partition)
		}
		msgs, next := announcer.Listen(topic, cursor)
		cursor = next
		var recs []directory.Record
		for _, msg := range msgs {
			var rec directory.Record
			if err := json.Unmarshal(msg.Data, &rec); err != nil {
				continue // garbage announcement: ignore
			}
			if rec.Addr.Type != directory.TypePartialUpdate ||
				rec.Addr.Iter != iter || rec.Addr.Partition != partition {
				continue
			}
			report.PubSubDiscoveries++
			recs = append(recs, rec)
		}
		return recs
	}
	markInvalid := func(peer, reason string) {
		if !contains(report.InvalidPartials, peer) {
			report.InvalidPartials = append(report.InvalidPartials, peer)
			s.emit(EventPartialInvalid, agg, iter, partition, "partial from %s rejected: %s", peer, reason)
		}
	}
	sync := sc.child("sync_wait")
	processRecs := func(recs []directory.Record) error {
		for _, rec := range recs {
			peer := rec.Addr.Uploader
			if _, have := partials[peer]; have || contains(report.InvalidPartials, peer) {
				continue
			}
			// One verify span per peer partial examined, linked to the
			// peer's publish span carried in the record.
			vs := sync.child("verify")
			vs.attr("peer", peer)
			vs.link(rec.Span)
			data, err := s.store.Get(ctx, rec.Node, rec.CID)
			if err != nil || !cid.Verify(data, rec.CID) {
				markInvalid(peer, "unretrievable or CID mismatch")
				vs.attr("verdict", "unretrievable")
				vs.end()
				continue
			}
			vs.bytes(int64(len(data)))
			if s.params != nil {
				vStart := time.Now()
				ok, err := s.dir.VerifyPartialUpdate(ctx, iter, partition, peer, data)
				observeSince(s.metrics.phaseVerify, vStart)
				if err != nil {
					vs.endErr(err)
					return err
				}
				if !ok {
					s.metrics.verifyFail.Inc()
					markInvalid(peer, "commitment verification failed")
					vs.attr("verdict", "rejected")
					vs.end()
					continue
				}
				s.metrics.verifyPass.Inc()
			}
			block, err := model.DecodeBlock(data)
			if err != nil {
				markInvalid(peer, "malformed block")
				vs.attr("verdict", "malformed")
				vs.end()
				continue
			}
			partials[peer] = block
			vs.attr("verdict", "accepted")
			vs.end()
			s.emitBytes(EventPartialVerified, agg, iter, partition, int64(len(data)), "accepted partial from %s", peer)
		}
		return nil
	}
	deadline := time.Now().Add(s.cfg.TSync)
	_ = s.poll(ctx, deadline, func() (bool, error) { // deadline expiry is handled below, not an error
		if err := processRecs(discoverPartials()); err != nil {
			return false, err
		}
		return len(partials)+len(report.InvalidPartials) >= len(peers), nil
	})
	// A peer may have published to the directory without a (delivered)
	// announcement; consult the directory once before declaring anyone
	// missing.
	if hasPubSub && len(partials)+len(report.InvalidPartials) < len(peers) {
		if err := processRecs(s.dir.PartialUpdates(ctx, iter, partition)); err != nil {
			sync.end()
			return report, err
		}
	}
	sync.end()

	// Phase 4: take over for peers that never produced a valid partial —
	// download their trainers' gradients and redo their aggregation
	// ("whenever an aggregator does not respond, another aggregator
	// downloads his gradients on his behalf", §III-D).
	for _, peer := range peers {
		if _, ok := partials[peer]; ok {
			continue
		}
		if !contains(report.InvalidPartials, peer) {
			report.MissingPeers = appendUnique(report.MissingPeers, peer)
		}
		// Wait for the peer's full trainer set (bounded by t_train) —
		// taking over from a partial set would drop late-but-in-time
		// gradients from the aggregate.
		to := sc.child("takeover")
		to.attr("peer", peer)
		peerExpected := s.cfg.TrainersOf(partition, peer)
		peerRecs, err := s.awaitGradients(ctx, iter, partition, peer, len(peerExpected), time.Now().Add(s.cfg.TTrain), opts)
		if err != nil || len(peerRecs) == 0 {
			to.endErr(err)
			continue
		}
		for _, rec := range peerRecs {
			to.link(rec.Span)
		}
		peerBlocks, _, err := s.collectBlocks(ctx, to, peerRecs, report)
		if err != nil {
			to.endErr(err)
			return report, fmt.Errorf("core: %s take over %s: %w", agg, peer, err)
		}
		redo, err := model.Sum(s.field, peerBlocks...)
		if err != nil {
			to.endErr(err)
			return report, err
		}
		to.end()
		partials[peer] = redo
		report.TookOverFor = append(report.TookOverFor, peer)
		report.GradientsAggregated += len(peerRecs)
		s.metrics.takeovers.Inc()
		s.emit(EventTakeover, agg, iter, partition, "redid %s's aggregation over %d gradients", peer, len(peerRecs))
	}

	// Phase 5: fold all partials into the global update (Algorithm 1, 43-44).
	ordered := make([]model.Block, 0, len(partials))
	for _, peer := range peers {
		if b, ok := partials[peer]; ok {
			ordered = append(ordered, b)
		}
	}
	global, err := model.Sum(s.field, ordered...)
	if err != nil {
		return report, err
	}
	return report, s.publishGlobal(ctx, sc, report, agg, partition, iter, home, global)
}

// standbyWatch runs a standby peer aggregator for a partition: it polls
// for signs of life from the partition's own aggregators — a pub/sub
// announcement on the iteration topic or an accepted global update in
// the directory — until a failover deadline (t_train after the watch
// starts). If none appear, the partition's aggregators crashed outright
// (a dropout never announces a partial, §III-D) and the standby executes
// the partition's lead aggregator role itself, using the directory
// records the crashed role would have used. The returned report, when
// non-nil, is the takeover's; a healthy partition returns (nil, nil).
func (s *Session) standbyWatch(ctx context.Context, parent obs.SpanContext, standby string, partition, iter int, opts IterationOptions) (*AggregatorReport, error) {
	deadline := time.Now().Add(s.cfg.TTrain)
	topic := storage.Topic(s.cfg.TaskID, iter, partition)
	announcer, hasPubSub := s.store.(Announcer)
	cursor := 0
	alive := false
	err := s.poll(ctx, deadline, func() (bool, error) {
		if _, err := s.dir.Update(ctx, iter, partition); err == nil {
			alive = true
			return true, nil
		}
		if hasPubSub {
			msgs, next := announcer.Listen(topic, cursor)
			cursor = next
			if len(msgs) > 0 {
				alive = true
				return true, nil
			}
		}
		return false, nil
	})
	if alive {
		return nil, nil
	}
	if err != nil && !errors.Is(err, ErrTimeout) {
		return nil, err
	}
	lead := s.cfg.Aggregators[partition][0]
	s.metrics.standbyTakeovers.Inc()
	s.emit(EventStandbyTakeover, standby, iter, partition,
		"no life signs from partition %d aggregators by failover deadline; %s executing %s", partition, standby, lead)
	rep, err := s.aggregatorRun(ctx, parent, lead, partition, iter, BehaviorHonest, opts)
	if rep != nil {
		rep.ExecutedBy = standby
	}
	if err != nil {
		// The watch can race a slow-but-alive aggregator; if the partition
		// completed anyway, the takeover losing that race is not a failure.
		if _, uerr := s.dir.Update(ctx, iter, partition); uerr == nil {
			return rep, nil
		}
		return rep, fmt.Errorf("core: standby %s takeover of partition %d: %w", standby, partition, err)
	}
	return rep, nil
}

// awaitGradients polls the directory until all expected gradient records
// for (iter, partition, aggregator) are visible. With a quorum option, a
// round that has m = ceil(Quorum·want) gradients after QuorumWait
// proceeds without the stragglers — graceful degradation instead of
// idling out the whole t_train window on one slow trainer.
func (s *Session) awaitGradients(ctx context.Context, iter, partition int, agg string, want int, deadline time.Time, opts IterationOptions) ([]directory.Record, error) {
	need := want
	var quorumAt time.Time
	if opts.Quorum > 0 && opts.Quorum < 1 {
		need = int(math.Ceil(opts.Quorum * float64(want)))
		if need < 1 {
			need = 1
		}
		quorumAt = time.Now().Add(opts.QuorumWait)
	}
	var recs []directory.Record
	err := s.poll(ctx, deadline, func() (bool, error) {
		recs = s.dir.GradientsFor(ctx, iter, partition, agg)
		if len(recs) >= want {
			return true, nil
		}
		if need < want && len(recs) >= need && !time.Now().Before(quorumAt) {
			s.metrics.quorumProceeds.Inc()
			s.emit(EventQuorumProceed, agg, iter, partition,
				"quorum reached: proceeding with %d of %d gradients", len(recs), want)
			return true, nil
		}
		return false, nil
	})
	if errors.Is(err, ErrTimeout) && len(recs) > 0 {
		// Late trainers miss the round (Algorithm 1, 10-12); aggregate
		// what arrived.
		return recs, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s await gradients: %w", agg, err)
	}
	return recs, nil
}

// collectBlocks retrieves the gradient blocks for records, applying norm
// screening when configured (which forces individual downloads, since the
// check needs each gradient separately) and merge-and-download otherwise.
func (s *Session) collectBlocks(ctx context.Context, sc *spanScope, recs []directory.Record, report *AggregatorReport) ([]model.Block, int, error) {
	if s.cfg.ScreenNorm <= 0 {
		return s.downloadGradients(ctx, sc, recs)
	}
	var blocks []model.Block
	for _, rec := range recs {
		b, err := s.fetchGradient(ctx, rec)
		if err != nil {
			return nil, 0, err
		}
		if norm := s.blockNorm(b); norm > s.cfg.ScreenNorm {
			before := len(report.ScreenedOut)
			report.ScreenedOut = appendUnique(report.ScreenedOut, rec.Addr.Uploader)
			if len(report.ScreenedOut) > before {
				s.metrics.screenedOut.Inc()
			}
			continue
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return nil, 0, fmt.Errorf("core: every gradient exceeded the screening norm %v", s.cfg.ScreenNorm)
	}
	return blocks, 0, nil
}

// blockNorm returns the L2 norm of a single trainer's dequantized gradient
// partition (excluding the averaging counter).
func (s *Session) blockNorm(b model.Block) float64 {
	var sum float64
	for i := 0; i < len(b.Values)-1; i++ {
		v := s.quant.Decode(b.Values[i])
		sum += v * v
	}
	return math.Sqrt(sum)
}

// pendingMerge is a fetched merge-and-download block awaiting commitment
// verification: the decoded block, the homomorphic product of the group's
// published commitments it must open, and the records to re-fetch
// individually if it does not.
type pendingMerge struct {
	node  string
	grp   []directory.Record
	block model.Block
	want  pedersen.Commitment
	size  int64
}

// downloadGradients retrieves gradient blocks, using merge-and-download for
// groups of records stored on the same provider when enabled. Merged blocks
// are verified against the product of the published per-gradient
// commitments — all groups at once through a single random-linear-
// combination BatchVerify; only if the batch fails does each group get an
// individual Verify, and groups that still fail are fetched gradient by
// gradient.
func (s *Session) downloadGradients(ctx context.Context, sc *spanScope, recs []directory.Record) ([]model.Block, int, error) {
	merges := 0
	var blocks []model.Block
	if s.cfg.MergeAndDownload {
		byNode := make(map[string][]directory.Record)
		var nodeOrder []string
		for _, rec := range recs {
			if _, ok := byNode[rec.Node]; !ok {
				nodeOrder = append(nodeOrder, rec.Node)
			}
			byNode[rec.Node] = append(byNode[rec.Node], rec)
		}
		sort.Strings(nodeOrder)
		// Per-provider block groups in nodeOrder position: singles resolve
		// immediately, merged groups fill their slot after verification.
		// The flattened order matches the pre-batching sequential walk.
		out := make([][]model.Block, len(nodeOrder))
		var pending []pendingMerge
		pendingSlot := make(map[int]int) // nodeOrder index → pending index
		for ni, node := range nodeOrder {
			grp := byNode[node]
			if len(grp) == 1 {
				b, err := s.fetchGradient(ctx, grp[0])
				if err != nil {
					return nil, merges, err
				}
				out[ni] = []model.Block{b}
				continue
			}
			cids := make([]cid.CID, len(grp))
			for i, rec := range grp {
				cids[i] = rec.CID
			}
			// The merge_download span's context rides the request to the
			// storage node, which parents its own "merge" span under it —
			// the cross-node half of the causal trace.
			md := sc.child("merge_download")
			md.attr("node", node)
			md.attr("blocks", fmt.Sprint(len(grp)))
			mStart := time.Now()
			var data []byte
			var err error
			if spanner, ok := s.store.(mergeSpanner); ok && md.ctx().Valid() {
				data, err = spanner.MergeGetSpan(ctx, node, cids, md.ctx())
			} else {
				data, err = s.store.MergeGet(ctx, node, cids)
			}
			observeSince(s.metrics.phaseMerge, mStart)
			md.bytes(int64(len(data)))
			md.endErr(err)
			if err != nil {
				return nil, merges, fmt.Errorf("core: merge-and-download on %s: %w", node, err)
			}
			block, err := model.DecodeBlock(data)
			if err != nil {
				return nil, merges, fmt.Errorf("core: decode merged block: %w", err)
			}
			if s.params == nil {
				merges++
				out[ni] = []model.Block{block}
				s.metrics.mergeDownloads.Inc()
				s.emitBytes(EventMergeDownload, "aggregator", grp[0].Addr.Iter, grp[0].Addr.Partition,
					int64(len(data)), "%s pre-aggregated %d gradients", node, len(grp))
				continue
			}
			// §IV-B: the merged block must open the product of the
			// commitments that supposedly form it. Park it for the batch.
			coms := make([]pedersen.Commitment, len(grp))
			for i, rec := range grp {
				coms[i] = rec.Commitment
			}
			want, err := s.params.Combine(coms...)
			if err != nil {
				return nil, merges, err
			}
			pendingSlot[ni] = len(pending)
			pending = append(pending, pendingMerge{
				node: node, grp: grp, block: block, want: want, size: int64(len(data)),
			})
		}
		if len(pending) > 0 {
			// One random-linear-combination multiexp covers every merged
			// group of the partition; the per-group recommit loop only
			// runs when some provider cheated (or the batch errored).
			vecs := make([][]*big.Int, len(pending))
			coms := make([]pedersen.Commitment, len(pending))
			for i, pm := range pending {
				vecs[i] = pm.block.Values
				coms[i] = pm.want
			}
			s.metrics.batchVerifies.Inc()
			batchOK, err := s.params.BatchVerify(vecs, coms)
			if err != nil {
				batchOK = false // attribute below via per-group Verify
			}
			if !batchOK {
				s.metrics.batchVerifyFail.Inc()
			}
			for ni := range nodeOrder {
				pi, ok := pendingSlot[ni]
				if !ok {
					continue
				}
				pm := pending[pi]
				groupOK := batchOK
				if !groupOK {
					groupOK, err = s.params.Verify(pm.block.Values, pm.want)
					if err != nil {
						return nil, merges, err
					}
				}
				if !groupOK {
					// The provider cheated — or one of the gradients it
					// merged was never a pre-image of its published
					// commitment. Fall back to individual CID-verified
					// downloads and screen each block against its own
					// commitment to attribute the offense: a Byzantine
					// upload is dropped and reported, honest blocks stay.
					for _, rec := range pm.grp {
						b, err := s.fetchGradient(ctx, rec)
						if err != nil {
							return nil, merges, err
						}
						recOK, err := s.params.Verify(b.Values, rec.Commitment)
						if err != nil {
							return nil, merges, err
						}
						if !recOK {
							s.reportByzantine(ctx, rec)
							continue
						}
						out[ni] = append(out[ni], b)
					}
					continue
				}
				merges++
				out[ni] = []model.Block{pm.block}
				s.metrics.mergeDownloads.Inc()
				s.emitBytes(EventMergeDownload, "aggregator", pm.grp[0].Addr.Iter, pm.grp[0].Addr.Partition,
					pm.size, "%s pre-aggregated %d gradients", pm.node, len(pm.grp))
			}
		}
		for _, grpBlocks := range out {
			blocks = append(blocks, grpBlocks...)
		}
		return blocks, merges, nil
	}
	for _, rec := range recs {
		b, err := s.fetchGradient(ctx, rec)
		if err != nil {
			return nil, merges, err
		}
		blocks = append(blocks, b)
	}
	return blocks, merges, nil
}

// reportByzantine handles a gradient block that is not a pre-image of
// its published commitment: the upload — not the storage provider — is
// at fault, since the block already passed CID verification. The record
// is expunged from the directory (which independently re-verifies before
// removing anything), so the honest remainder of the round still
// verifies against the partition accumulator, and a repeat offender is
// quarantined at the strike limit.
func (s *Session) reportByzantine(ctx context.Context, rec directory.Record) {
	s.byzMu.Lock()
	if s.byzSeen[rec.Addr] {
		s.byzMu.Unlock()
		return // another role of this session already reported it
	}
	s.byzSeen[rec.Addr] = true
	s.byzStrikes[rec.Addr.Uploader]++
	strikes := s.byzStrikes[rec.Addr.Uploader]
	quarantine := strikes >= byzantineStrikeLimit && !s.byzOut[rec.Addr.Uploader]
	if quarantine {
		s.byzOut[rec.Addr.Uploader] = true
	}
	s.byzMu.Unlock()

	s.metrics.byzantineRejects.Inc()
	s.emit(EventByzantineReject, "aggregator", rec.Addr.Iter, rec.Addr.Partition,
		"gradient %s from %s does not open its commitment (strike %d)", rec.CID.Short(), rec.Addr.Uploader, strikes)
	if expunger, ok := s.dir.(interface {
		ExpungeGradient(ctx context.Context, addr directory.Addr) error
	}); ok {
		if err := expunger.ExpungeGradient(ctx, rec.Addr); err != nil && !errors.Is(err, directory.ErrNotFound) {
			s.emit(EventByzantineReject, "aggregator", rec.Addr.Iter, rec.Addr.Partition,
				"expunge of %s failed: %v", rec.CID.Short(), err)
		}
	}
	if !quarantine {
		return
	}
	s.metrics.byzantineQuarantines.Inc()
	s.emit(EventByzantineQuarantine, "aggregator", rec.Addr.Iter, rec.Addr.Partition,
		"%s quarantined after %d byzantine uploads", rec.Addr.Uploader, strikes)
	if q, ok := s.dir.(interface {
		Quarantine(trainer string, fromIter int)
	}); ok {
		q.Quarantine(rec.Addr.Uploader, rec.Addr.Iter+1)
	}
}

// quarantinedOf counts how many of the given trainers this session has
// seen quarantined.
func (s *Session) quarantinedOf(trainers []string) int {
	s.byzMu.Lock()
	defer s.byzMu.Unlock()
	n := 0
	for _, tr := range trainers {
		if s.byzOut[tr] {
			n++
		}
	}
	return n
}

// isQuarantined reports whether this session has seen the trainer
// quarantined.
func (s *Session) isQuarantined(trainer string) bool {
	s.byzMu.Lock()
	defer s.byzMu.Unlock()
	return s.byzOut[trainer]
}

// noteQuarantined records a quarantine learned from the directory (an
// ErrQuarantined publish rejection, e.g. after a process restart wiped
// the local ledger).
func (s *Session) noteQuarantined(trainer string) {
	s.byzMu.Lock()
	defer s.byzMu.Unlock()
	s.byzOut[trainer] = true
}

// putWithFallback stores data on the preferred node, falling back to the
// other storage nodes if it is unavailable — the availability behaviour the
// replicated storage network is there to provide (§VI). It returns the CID
// and the node that actually accepted the block.
func (s *Session) putWithFallback(ctx context.Context, preferred string, data []byte) (cid.CID, string, error) {
	c, err := s.store.Put(ctx, preferred, data)
	if err == nil {
		return c, preferred, nil
	}
	for _, node := range s.cfg.StorageNodes {
		if node == preferred {
			continue
		}
		if c, err2 := s.store.Put(ctx, node, data); err2 == nil {
			return c, node, nil
		}
	}
	return "", "", err
}

// fetchGradient downloads one gradient block and verifies its CID, falling
// back to content routing if the recorded node cannot serve it.
func (s *Session) fetchGradient(ctx context.Context, rec directory.Record) (model.Block, error) {
	data, err := s.store.Get(ctx, rec.Node, rec.CID)
	if err != nil {
		if fetcher, ok := s.store.(interface {
			Fetch(ctx context.Context, c cid.CID) ([]byte, error)
		}); ok {
			data, err = fetcher.Fetch(ctx, rec.CID)
		}
		if err != nil {
			return model.Block{}, fmt.Errorf("core: fetch gradient %s: %w", rec.CID.Short(), err)
		}
	}
	if !cid.Verify(data, rec.CID) {
		return model.Block{}, fmt.Errorf("core: gradient %s from %s failed CID verification", rec.CID.Short(), rec.Node)
	}
	return model.DecodeBlock(data)
}

// publishGlobal uploads and publishes the global update for a partition.
// In verifiable mode the directory may reject it (caught cheating); only
// the first valid update wins.
func (s *Session) publishGlobal(ctx context.Context, parent *spanScope, report *AggregatorReport, agg string, partition, iter int, home string, global model.Block) (err error) {
	defer observeSince(s.metrics.phasePublish, time.Now())
	gp := parent.child("global_publish")
	defer func() { gp.endErr(err) }()
	data, err := global.Encode()
	if err != nil {
		return err
	}
	gp.bytes(int64(len(data)))
	c, node, err := s.putWithFallback(ctx, home, data)
	if err != nil {
		return fmt.Errorf("core: %s upload global update: %w", agg, err)
	}
	gp.attr("node", node)
	rec := directory.Record{
		Addr: directory.Addr{Uploader: agg, Partition: partition, Iter: iter, Type: directory.TypeUpdate},
		CID:  c,
		Node: node,
		Span: gp.ctxRef(),
	}
	s.signRecord(&rec)
	// The directory refuses updates while the partition's gradient set is
	// still open (ErrTooEarly); retry until it closes or t_sync expires.
	deadline := time.Now().Add(s.cfg.TSync)
	for {
		err = s.dir.Publish(ctx, rec)
		if !errors.Is(err, directory.ErrTooEarly) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: %s publish global update: %w", agg, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(s.cfg.PollInterval):
		}
	}
	switch {
	case err == nil:
		report.PublishedGlobal = true
		gp.attr("outcome", "accepted")
		s.metrics.globalsPublished.Inc()
		s.emitBytes(EventGlobalPublished, agg, iter, partition, int64(len(data)), "cid %s on %s", c.Short(), node)
		return nil
	case errors.Is(err, directory.ErrVerificationFailed):
		report.GlobalRejected = true
		gp.attr("outcome", "rejected")
		s.metrics.globalsRejected.Inc()
		s.emit(EventGlobalRejected, agg, iter, partition, "directory refused the update")
		return nil
	case errors.Is(err, directory.ErrAlreadyFinal):
		gp.attr("outcome", "peer-won")
		return nil // a peer won the race with a valid update
	default:
		return fmt.Errorf("core: %s publish global update: %w", agg, err)
	}
}

// CleanupIteration garbage-collects an iteration's gradient and
// partial-update blocks from the storage network once the round is over —
// the §VI observation that protocol data is only needed briefly, and what
// keeps the system's storage footprint constant per round (in contrast to
// the blockchain baseline). Global updates are kept so slow trainers can
// still catch up. It returns the number of blocks removed.
//
// It requires backends that support enumeration and deletion (the
// in-memory and TCP backends both do); otherwise it reports an error.
func (s *Session) CleanupIteration(ctx context.Context, iter int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	lister, ok := s.dir.(interface {
		RecordsForIter(iter int) []directory.Record
	})
	if !ok {
		return 0, errors.New("core: directory does not support record enumeration")
	}
	deleter, ok := s.store.(interface {
		DeleteAll(c cid.CID)
	})
	if !ok {
		return 0, errors.New("core: storage does not support deletion")
	}
	recs := lister.RecordsForIter(iter)
	for _, rec := range recs {
		deleter.DeleteAll(rec.CID)
	}
	if announcer, ok := s.store.(Announcer); ok {
		for p := 0; p < s.cfg.Spec.Partitions; p++ {
			announcer.ForgetTopic(storage.Topic(s.cfg.TaskID, iter, p))
		}
	}
	return len(recs), nil
}

// IterationResult is the outcome of a full protocol iteration.
type IterationResult struct {
	// AvgDelta is the averaged model delta every trainer downloads.
	AvgDelta []float64
	// Reports holds one report per aggregator role (including dropouts).
	Reports map[string]*AggregatorReport
	// Takeovers holds, per partition, the report of a standby-executed
	// aggregation after a crash-driven failover (see IterationOptions).
	// Keyed by partition so a dropout's own report in Reports survives.
	Takeovers map[int]*AggregatorReport
	// Incomplete lists partitions for which no global update was
	// accepted (e.g. a sole malicious aggregator in verifiable mode).
	Incomplete []int
}

// Detected reports whether any malicious aggregation was caught, either by
// the directory (rejected global) or by peer aggregators (invalid partial).
func (r *IterationResult) Detected() bool {
	for _, rep := range r.Reports {
		if rep.GlobalRejected || len(rep.InvalidPartials) > 0 {
			return true
		}
	}
	return false
}

// IterationOptions extends RunIteration for churn scenarios.
type IterationOptions struct {
	// AllowAbsent permits running with deltas for only a subset of the
	// configured trainers: crashed trainers publish nothing and their
	// aggregators proceed on the partial gradient set at t_train.
	AllowAbsent bool
	// Standbys maps partition -> a peer aggregator that watches the
	// partition's aggregators for signs of life (pub/sub announcements or
	// an accepted global update) and, when none appear before the
	// failover deadline, executes the partition's aggregation itself —
	// the §III-D takeover generalized across partitions.
	Standbys map[int]string

	// Quorum, in (0,1), lets aggregators close their gradient wait with
	// ceil(Quorum·n) of the n expected gradients once QuorumWait has
	// passed — a round degrades to m-of-n instead of idling out t_train
	// on stragglers. Stragglers miss the round here; ChurnRunner folds
	// their deltas into the next round with an age-discounted weight.
	// Quorum is invalid in verifiable mode: the directory's gradient-set
	// closure gate holds global updates until every expected gradient
	// arrived or t_train passed, which contradicts proceeding early.
	Quorum     float64
	QuorumWait time.Duration

	// Corrupt marks trainers that upload Byzantine gradients this
	// iteration: the stored block is tampered while the published
	// commitment stays honest, so only commitment verification (the
	// BatchVerify fallback path) can catch it.
	Corrupt map[string]bool
}

// RunIteration executes one complete FL iteration: all trainers upload
// their deltas concurrently, all aggregators run concurrently (with
// optional per-aggregator behaviors), and the averaged delta is collected.
// The deltas map provides each trainer's locally computed model delta.
func (s *Session) RunIteration(ctx context.Context, iter int, deltas map[string][]float64, behaviors map[string]Behavior) (*IterationResult, error) {
	return s.runIteration(ctx, obs.SpanContext{}, iter, deltas, behaviors, IterationOptions{})
}

// RunIterationOpts is RunIteration with churn options.
func (s *Session) RunIterationOpts(ctx context.Context, iter int, deltas map[string][]float64, behaviors map[string]Behavior, opts IterationOptions) (*IterationResult, error) {
	return s.runIteration(ctx, obs.SpanContext{}, iter, deltas, behaviors, opts)
}

func (s *Session) runIteration(ctx context.Context, parent obs.SpanContext, iter int, deltas map[string][]float64, behaviors map[string]Behavior, opts IterationOptions) (_ *IterationResult, err error) {
	if !opts.AllowAbsent && len(deltas) != len(s.cfg.Trainers) {
		return nil, fmt.Errorf("core: got %d deltas for %d trainers", len(deltas), len(s.cfg.Trainers))
	}
	if opts.Quorum != 0 {
		if opts.Quorum < 0 || opts.Quorum >= 1 {
			return nil, fmt.Errorf("core: quorum fraction %v outside (0,1)", opts.Quorum)
		}
		if s.params != nil {
			return nil, errors.New("core: quorum rounds are incompatible with verifiable mode (the directory holds updates until the gradient set closes)")
		}
	}
	// The iteration span roots the trace: every role span below runs as a
	// child, so the critical path tiles the whole iteration.
	it := s.startSpan("iteration", "session", iter, parent)
	defer func() { it.endErr(err) }()
	if sched, ok := s.dir.(Scheduler); ok {
		sched.SetSchedule(iter, time.Now().Add(s.cfg.TTrain))
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	result := &IterationResult{Reports: make(map[string]*AggregatorReport)}
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	for _, tr := range s.cfg.Trainers {
		if s.isQuarantined(tr) {
			continue // banned by the directory: sits the task out
		}
		delta, ok := deltas[tr]
		if !ok {
			if opts.AllowAbsent {
				continue // crashed trainer: uploads nothing this iteration
			}
			return nil, fmt.Errorf("core: missing delta for trainer %s", tr)
		}
		wg.Add(1)
		go func(tr string, delta []float64) {
			defer wg.Done()
			if err := s.trainerUpload(ctx, it.ctx(), tr, iter, delta, opts.Corrupt[tr]); err != nil {
				fail(err)
			}
		}(tr, delta)
	}
	for _, ref := range s.cfg.AllAggregators() {
		behavior := behaviors[ref.ID]
		wg.Add(1)
		go func(ref AggregatorRef, b Behavior) {
			defer wg.Done()
			rep, err := s.aggregatorRun(ctx, it.ctx(), ref.ID, ref.Partition, iter, b, opts)
			mu.Lock()
			result.Reports[ref.ID] = rep
			mu.Unlock()
			if err != nil {
				fail(err)
			}
		}(ref, behavior)
	}
	for partition, standby := range opts.Standbys {
		wg.Add(1)
		go func(partition int, standby string) {
			defer wg.Done()
			rep, err := s.standbyWatch(ctx, it.ctx(), standby, partition, iter, opts)
			if rep != nil {
				mu.Lock()
				if result.Takeovers == nil {
					result.Takeovers = make(map[int]*AggregatorReport)
				}
				result.Takeovers[partition] = rep
				mu.Unlock()
			}
			if err != nil {
				fail(err)
			}
		}(partition, standby)
	}
	wg.Wait()
	if firstErr != nil {
		return result, firstErr
	}

	for p := 0; p < s.cfg.Spec.Partitions; p++ {
		if _, err := s.dir.Update(ctx, iter, p); err != nil {
			result.Incomplete = append(result.Incomplete, p)
		}
	}
	if len(result.Incomplete) > 0 {
		return result, nil // detected-and-blocked round: no usable update
	}

	avg, err := s.trainerCollect(ctx, it.ctx(), iter)
	if err != nil {
		return result, err
	}
	result.AvgDelta = avg
	return result, nil
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func appendUnique(list []string, v string) []string {
	if contains(list, v) {
		return list
	}
	return append(list, v)
}
