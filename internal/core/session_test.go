package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"ipls/internal/directory"
	"ipls/internal/storage"
)

// testStack builds an in-memory deployment for a small task.
func testStack(t *testing.T, mutate func(*TaskSpec)) (*Session, *storage.Network, *directory.Service) {
	t.Helper()
	ts := TaskSpec{
		TaskID:                  "sess-test",
		ModelDim:                24,
		Partitions:              3,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  0,
		Verifiable:              false,
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	}
	if mutate != nil {
		mutate(&ts)
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	sess, net, dir, err := NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sess, net, dir
}

// randomDeltas builds a deterministic random delta per trainer plus the
// expected average.
func randomDeltas(trainers []string, dim int, seed int64) (map[string][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	deltas := make(map[string][]float64, len(trainers))
	avg := make([]float64, dim)
	for _, tr := range trainers {
		d := make([]float64, dim)
		for i := range d {
			d[i] = rng.NormFloat64()
			avg[i] += d[i] / float64(len(trainers))
		}
		deltas[tr] = d
	}
	return deltas, avg
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestHonestIterationAverages(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("averaged delta off by %v", diff)
	}
	for id, rep := range res.Reports {
		if !rep.PublishedGlobal {
			t.Fatalf("aggregator %s did not publish", id)
		}
	}
}

func TestHonestIterationVerifiable(t *testing.T) {
	sess, _, dir := testStack(t, func(ts *TaskSpec) { ts.Verifiable = true })
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 2)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatal("honest run flagged as malicious")
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("averaged delta off by %v", diff)
	}
	if dir.Stats().Verifications == 0 {
		t.Fatal("verifiable mode performed no verifications")
	}
}

func TestMergeAndDownloadEquivalence(t *testing.T) {
	// The averaged delta must be identical with and without
	// merge-and-download.
	var plainAvg, mergedAvg []float64
	{
		sess, _, _ := testStack(t, nil)
		deltas, _ := randomDeltas(sess.Config().Trainers, 24, 3)
		res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
		if err != nil {
			t.Fatal(err)
		}
		plainAvg = res.AvgDelta
	}
	{
		sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.ProvidersPerAggregator = 2 })
		deltas, _ := randomDeltas(sess.Config().Trainers, 24, 3)
		res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
		if err != nil {
			t.Fatal(err)
		}
		mergedAvg = res.AvgDelta
		merged := false
		for _, rep := range res.Reports {
			if rep.MergeDownloads > 0 {
				merged = true
			}
		}
		if !merged {
			t.Fatal("no merge-and-download happened despite providers")
		}
	}
	if diff := maxAbsDiff(plainAvg, mergedAvg); diff != 0 {
		t.Fatalf("merge-and-download changed the aggregate by %v", diff)
	}
}

func TestMaliciousDropDetectedAndBlocked(t *testing.T) {
	for _, behavior := range []Behavior{BehaviorDropGradient, BehaviorAlterGradient, BehaviorForgeUpdate} {
		t.Run(behavior.String(), func(t *testing.T) {
			sess, _, _ := testStack(t, func(ts *TaskSpec) {
				ts.Verifiable = true
				ts.TSync = 500 * time.Millisecond
			})
			deltas, _ := randomDeltas(sess.Config().Trainers, 24, 4)
			evil := AggregatorID(1, 0)
			res, err := sess.RunIteration(context.Background(), 0, deltas,
				map[string]Behavior{evil: behavior})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Detected() {
				t.Fatal("malicious aggregation not detected")
			}
			if !res.Reports[evil].GlobalRejected {
				t.Fatal("directory did not reject the malicious update")
			}
			// The poisoned partition has no accepted update.
			found := false
			for _, p := range res.Incomplete {
				if p == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("partition 1 should be incomplete, got %v", res.Incomplete)
			}
		})
	}
}

func TestMaliciousUndetectedWithoutVerifiability(t *testing.T) {
	// The contrast experiment: in plain mode the poisoned update is
	// accepted and the aggregate is wrong.
	sess, _, _ := testStack(t, nil)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 5)
	evil := AggregatorID(0, 0)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{evil: BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() {
		t.Fatal("plain mode cannot detect anything")
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("poisoned update should be accepted in plain mode: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff < 1e-3 {
		t.Fatal("poisoning had no effect — test is vacuous")
	}
}

func TestMultiAggregatorSync(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
	})
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 6)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("multi-aggregator average off by %v", diff)
	}
	// Exactly one aggregator per partition wins the global publish.
	winners := make(map[int]int)
	for _, rep := range res.Reports {
		if rep.PublishedGlobal {
			winners[rep.Partition]++
		}
	}
	for p := 0; p < 3; p++ {
		if winners[p] != 1 {
			t.Fatalf("partition %d has %d winners", p, winners[p])
		}
	}
}

func TestAggregatorDropoutTakeover(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.TSync = 400 * time.Millisecond
	})
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 7)
	dead := AggregatorID(2, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{dead: BehaviorDropout})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("takeover failed, incomplete: %v", res.Incomplete)
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("average after takeover off by %v", diff)
	}
	survivor := res.Reports[AggregatorID(2, 0)]
	if len(survivor.TookOverFor) != 1 || survivor.TookOverFor[0] != dead {
		t.Fatalf("survivor report: %+v", survivor)
	}
}

func TestMaliciousPeerDetectedBySurvivor(t *testing.T) {
	// With two aggregators on a partition, a malicious one is detected by
	// its peer (invalid partial), taken over, and the correct update
	// still lands.
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
		ts.TSync = time.Second
	})
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 8)
	evil := AggregatorID(0, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{evil: BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("honest peer should have recovered the partition: %v", res.Incomplete)
	}
	if !res.Detected() {
		t.Fatal("malicious peer not detected")
	}
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
		t.Fatalf("average with malicious peer off by %v", diff)
	}
	honest := res.Reports[AggregatorID(0, 0)]
	if len(honest.InvalidPartials) != 1 || honest.InvalidPartials[0] != evil {
		t.Fatalf("honest report: %+v", honest)
	}
	if len(honest.TookOverFor) != 1 {
		t.Fatalf("honest peer should take over for the cheater: %+v", honest)
	}
}

func TestStorageNodeFailureWithReplication(t *testing.T) {
	ts := TaskSpec{
		TaskID:                  "fail-test",
		ModelDim:                12,
		Partitions:              2,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	sess, net, _, err := NewLocalStack(cfg, 2) // replication factor 2
	if err != nil {
		t.Fatal(err)
	}
	deltas, wantAvg := randomDeltas(cfg.Trainers, 12, 9)
	for _, tr := range cfg.Trainers {
		if err := sess.TrainerUpload(context.Background(), tr, 0, deltas[tr]); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one storage node after uploads; replication lets aggregation
	// proceed through content routing.
	if err := net.Fail("s0"); err != nil {
		t.Fatal(err)
	}
	for _, ref := range cfg.AllAggregators() {
		if _, err := sess.AggregatorRun(context.Background(), ref.ID, ref.Partition, 0, BehaviorHonest); err != nil {
			t.Fatal(err)
		}
	}
	avg, err := sess.TrainerCollect(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(avg, wantAvg); diff > 1e-6 {
		t.Fatalf("average after node failure off by %v", diff)
	}
}

func TestRunIterationValidation(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	if _, err := sess.RunIteration(context.Background(), 0, nil, nil); err == nil {
		t.Fatal("expected error for missing deltas")
	}
	bad := map[string][]float64{"t0": nil, "t1": nil, "t2": nil, "ghost": nil}
	if _, err := sess.RunIteration(context.Background(), 0, bad, nil); err == nil {
		t.Fatal("expected error for wrong trainer set")
	}
}

func TestTrainerCollectTimesOut(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.TSync = 50 * time.Millisecond })
	if _, err := sess.TrainerCollect(context.Background(), 99); err == nil {
		t.Fatal("expected timeout waiting for nonexistent update")
	}
}

func TestTrainerCollectHonorsContext(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.TSync = 10 * time.Second })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := sess.TrainerCollect(ctx, 99); err == nil {
		t.Fatal("expected context error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context cancellation not honored promptly")
	}
}

func TestIterationsAreIndependent(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	for iter := 0; iter < 3; iter++ {
		deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, int64(100+iter))
		res, err := sess.RunIteration(context.Background(), iter, deltas, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
			t.Fatalf("iter %d average off by %v", iter, diff)
		}
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// The protocol's only numerical deviation from exact float averaging
	// is fixed-point quantization; the error must stay below 2^-shift.
	sess, _, _ := testStack(t, nil)
	deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, 11)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Ldexp(1, -int(sess.Config().QuantShift)) // generous: n·ulp/2/n
	if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > bound {
		t.Fatalf("quantization error %v exceeds bound %v", diff, bound)
	}
}

func TestNewSessionRejectsBadShift(t *testing.T) {
	cfg, err := NewConfig(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantShift = 99
	if _, _, _, err := NewLocalStack(cfg, 1); err == nil {
		t.Fatal("expected quantizer error")
	}
}

func ExampleAggregatorID() {
	fmt.Println(AggregatorID(0, 1))
	// Output: agg-p0-1
}
