package core

import (
	"fmt"
	"math"
	"time"

	"ipls/internal/netsim"
	"ipls/internal/obs"
	"ipls/internal/storage"
)

// SimConfig parameterizes a virtual-time protocol run over the netsim
// emulator, mirroring the paper's mininet experiments (§V). The simulation
// models the byte flows of one FL iteration; cryptographic costs are
// measured separately (Fig. 3) exactly as the paper does.
type SimConfig struct {
	// Trainers is the number of trainers (the paper uses 16).
	Trainers int
	// Partitions is the number of model partitions.
	Partitions int
	// AggregatorsPerPartition is |A_i|.
	AggregatorsPerPartition int
	// PartitionBytes is the size of one gradient partition block.
	PartitionBytes int64
	// StorageNodes is the number of IPFS nodes in the network.
	StorageNodes int
	// ProvidersPerAggregator is |P_ij| for merge-and-download; 0 disables
	// merging (each gradient is downloaded individually).
	ProvidersPerAggregator int
	// BandwidthMbps is every participant's up/down link capacity
	// ("aggregators and trainers have the same network bandwidth").
	BandwidthMbps float64
	// StorageBandwidthMbps is the storage nodes' link capacity; zero
	// means the same as BandwidthMbps. The Fig. 1 provider-congestion
	// experiment constrains it (it is the d in τ = S·(T/(dP) + P/b));
	// the Fig. 2 experiment assumes well-provisioned IPFS nodes so that
	// the aggregators' own links are the bottleneck.
	StorageBandwidthMbps float64
	// Direct bypasses the storage network entirely: trainers send
	// gradients straight to their aggregator (the original IPLS [17]
	// used as the "direct" baseline in Fig. 1).
	Direct bool
	// LatencyMs adds fixed per-transfer latency.
	LatencyMs float64
	// SlowTrainers marks the first N trainers as stragglers whose links
	// run SlowFactor times slower than everyone else's.
	SlowTrainers int
	// SlowFactor is the straggler slowdown (e.g. 10 = one tenth of the
	// bandwidth). Ignored when SlowTrainers is zero.
	SlowFactor float64
	// TTrainCutoff, when positive, makes aggregators stop waiting for
	// missing gradients at that virtual time — the t_train schedule of
	// §III-D. Gradients that miss the cutoff are excluded from the
	// aggregate (and counted in SimResult.MissedGradients).
	TTrainCutoff time.Duration
	// QuorumFraction, when in (0,1), lets every gradient wait close at
	// ceil(q·n)-of-n arrivals once the virtual clock passes QuorumWait —
	// the quorum-round analogue of TTrainCutoff. Arrivals beyond the
	// quorum that never land count as missed. Takes precedence over
	// TTrainCutoff when both are set.
	QuorumFraction float64
	// QuorumWait is the virtual instant after which a quorum suffices;
	// zero defaults to 1s.
	QuorumWait time.Duration
	// LinkLoss schedules capacity-degradation windows on simulated links
	// (netsim.ParseLossWindow describes the textual form). Node names
	// follow the simulation's own scheme: trainer-00, agg-p0-0, ipfs-00.
	LinkLoss []netsim.LossWindow
	// Churn applies membership events to the single simulated iteration
	// (event iteration numbers are ignored). Departed or crashed storage
	// nodes drop out of placement for the whole run, a crashed
	// aggregator's role is executed by a live standby after
	// FailoverTimeout, crashed trainers miss the iteration (their
	// gradients count as missed), and a rejoining trainer first
	// downloads the model checkpoint from storage before uploading.
	// Node names follow the simulation's scheme above.
	Churn []storage.ChurnEvent
	// FailoverTimeout is how long (virtual time) a standby waits for a
	// crashed aggregator before taking over; zero defaults to 1s.
	FailoverTimeout time.Duration
	// Metrics, when non-nil, receives the simulated flow counters under
	// the same names real runs use (bytes_uploaded_total{node=...} etc.),
	// so snapshots from simulated and emulated experiments line up.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives protocol events stamped with the
	// simulation's virtual clock (anchored at the Unix epoch), so the
	// same trace tooling folds simulated and real runs.
	Tracer Tracer
	// Spans, when non-nil, receives per-role causal spans (upload,
	// aggregate, merge_download, sync_wait) in virtual time under the
	// trace (session "sim", iter 0).
	Spans obs.SpanSink
	// Watchdog, when non-nil, receives every span as a heartbeat and has
	// its alert rules evaluated at each virtual-clock advance plus once
	// after the run, so straggler and stuck-round alerts fire at
	// deterministic virtual instants.
	Watchdog *Watchdog
}

func (c SimConfig) validate() error {
	if c.Trainers <= 0 || c.Partitions <= 0 || c.AggregatorsPerPartition <= 0 {
		return fmt.Errorf("core: sim needs positive trainers/partitions/aggregators")
	}
	if c.PartitionBytes <= 0 {
		return fmt.Errorf("core: sim needs positive partition size")
	}
	if c.BandwidthMbps <= 0 {
		return fmt.Errorf("core: sim needs positive bandwidth")
	}
	if !c.Direct && c.StorageNodes <= 0 {
		return fmt.Errorf("core: sim needs storage nodes unless direct")
	}
	if c.ProvidersPerAggregator > c.StorageNodes {
		return fmt.Errorf("core: more providers (%d) than storage nodes (%d)",
			c.ProvidersPerAggregator, c.StorageNodes)
	}
	if c.SlowTrainers < 0 || c.SlowTrainers > c.Trainers {
		return fmt.Errorf("core: %d slow trainers out of %d", c.SlowTrainers, c.Trainers)
	}
	if c.SlowTrainers > 0 && c.SlowFactor <= 1 {
		return fmt.Errorf("core: slow factor must exceed 1, got %v", c.SlowFactor)
	}
	if c.QuorumFraction < 0 || c.QuorumFraction >= 1 {
		if c.QuorumFraction != 0 {
			return fmt.Errorf("core: quorum fraction must be in (0,1), got %v", c.QuorumFraction)
		}
	}
	return nil
}

// SimResult reports the delay and traffic measurements of one simulated
// iteration, using the paper's definitions:
//
//   - Upload delay (Fig. 1 bottom): per-trainer time from starting to
//     upload gradients until the storage acknowledgment.
//   - Aggregation delay (Fig. 1 top): from the first gradient hash written
//     to the directory until all gradients are aggregated (max over
//     aggregators).
//   - Sync delay (Fig. 2): the additional time aggregators spend
//     exchanging partial updates.
type SimResult struct {
	UploadDelayMean time.Duration
	UploadDelayMax  time.Duration
	FirstPublish    time.Duration
	GradAggDelay    time.Duration // aggregation delay, paper's definition
	SyncDelay       time.Duration
	TotalDelay      time.Duration // start of iteration → all partitions globally updated
	// BytesPerAggregator is the mean data volume an aggregator received
	// (Fig. 2 bottom; D = (|T_ij| + |A_i| - 1) · PartitionSize).
	BytesPerAggregator int64
	// MergeDownloads counts merge-and-download requests issued.
	MergeDownloads int
	// MissedGradients counts gradients excluded because they missed the
	// t_train cutoff (including those of churn-crashed trainers).
	MissedGradients int
	// Takeovers counts crashed aggregator roles executed by a standby;
	// Bootstraps counts rejoining trainers that downloaded the checkpoint.
	Takeovers  int
	Bootstraps int
}

// Simulate runs one protocol iteration in virtual time and measures it.
func Simulate(cfg SimConfig) (*SimResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	churn, err := newSimChurn(cfg)
	if err != nil {
		return nil, err
	}
	failover := cfg.FailoverTimeout
	if failover <= 0 {
		failover = time.Second
	}
	env := netsim.NewEnv()
	if cfg.Metrics != nil {
		env.SetMetrics(cfg.Metrics)
	}
	if cfg.LatencyMs > 0 {
		env.SetLatency(time.Duration(cfg.LatencyMs * float64(time.Millisecond)))
	}
	bw := netsim.Mbps(cfg.BandwidthMbps)

	trainers := make([]*netsim.Node, cfg.Trainers)
	for i := range trainers {
		tbw := bw
		if i < cfg.SlowTrainers {
			tbw = bw / cfg.SlowFactor
		}
		trainers[i] = env.AddNode(fmt.Sprintf("trainer-%02d", i), tbw, tbw)
	}
	aggs := make([][]*netsim.Node, cfg.Partitions) // [partition][j]
	for p := range aggs {
		aggs[p] = make([]*netsim.Node, cfg.AggregatorsPerPartition)
		for j := range aggs[p] {
			aggs[p][j] = env.AddNode(fmt.Sprintf("agg-p%d-%d", p, j), bw, bw)
		}
	}
	storeBw := bw
	if cfg.StorageBandwidthMbps > 0 {
		storeBw = netsim.Mbps(cfg.StorageBandwidthMbps)
	}
	var stores []*netsim.Node
	for i := 0; i < cfg.StorageNodes; i++ {
		stores = append(stores, env.AddNode(fmt.Sprintf("ipfs-%02d", i), storeBw, storeBw))
	}
	for _, w := range cfg.LinkLoss {
		if err := env.ScheduleLinkLoss(w); err != nil {
			return nil, err
		}
	}
	var liveStores []int
	for i := 0; i < cfg.StorageNodes; i++ {
		if !churn.downStores[i] {
			liveStores = append(liveStores, i)
		}
	}
	if !cfg.Direct && len(liveStores) == 0 {
		return nil, fmt.Errorf("core: sim churn: every storage node is down")
	}
	// place deterministically redirects a placement choice away from
	// down storage nodes — the sim analogue of replicaTargets skipping
	// departed members.
	place := func(n int) int {
		if !churn.downStores[n] {
			return n
		}
		return liveStores[n%len(liveStores)]
	}

	// assignment: trainer t's aggregator index for every partition.
	aggOf := func(t int) int { return t % cfg.AggregatorsPerPartition }
	// trainersOf[j] lists trainer indices in T_ij (same for every
	// partition, matching NewConfig's round-robin).
	trainersOf := make([][]int, cfg.AggregatorsPerPartition)
	for t := 0; t < cfg.Trainers; t++ {
		j := aggOf(t)
		trainersOf[j] = append(trainersOf[j], t)
	}
	// providerOf returns the storage node index holding trainer t's
	// gradient for (partition p, aggregator j).
	merge := cfg.ProvidersPerAggregator > 0
	providerOf := func(p, j, t int) int {
		if merge {
			// Aggregator (p, j) owns a contiguous provider group.
			base := (p*cfg.AggregatorsPerPartition + j) * cfg.ProvidersPerAggregator
			slot := 0
			for i, tt := range trainersOf[j] {
				if tt == t {
					slot = i
					break
				}
			}
			return place((base + slot%cfg.ProvidersPerAggregator) % cfg.StorageNodes)
		}
		return place((t + p) % cfg.StorageNodes)
	}
	// liveOf is trainersOf[j] minus the trainers the churn plan crashed.
	liveOf := func(j int) []int {
		if len(churn.crashedTrainers) == 0 {
			return trainersOf[j]
		}
		var live []int
		for _, t := range trainersOf[j] {
			if !churn.crashedTrainers[t] {
				live = append(live, t)
			}
		}
		return live
	}

	var (
		firstPublish    = time.Duration(math.MaxInt64)
		uploadDone      = make([]time.Duration, cfg.Trainers)
		gradDone        time.Duration // max over aggregators
		syncDone        time.Duration
		totalDone       time.Duration
		mergeDownloads  int
		aggregatorBytes int64
		takeovers       int
		bootstraps      int
	)

	// Arrival trackers: one per-gradient counter (so naive downloads can
	// start the moment a gradient lands) and one per provider group (for
	// merge-and-download), plus per-aggregator counters in direct mode.
	type slotKey struct{ p, j, node int }
	gradArrived := make(map[[2]int]*netsim.Counter) // (p, t)
	arrived := make(map[slotKey]*netsim.Counter)
	expected := make(map[slotKey]int)
	directArrived := make(map[[2]int]*netsim.Counter) // (p, j) for direct mode
	for p := 0; p < cfg.Partitions; p++ {
		for t := 0; t < cfg.Trainers; t++ {
			gradArrived[[2]int{p, t}] = env.NewCounter(1)
		}
		for j := 0; j < cfg.AggregatorsPerPartition; j++ {
			if cfg.Direct {
				directArrived[[2]int{p, j}] = env.NewCounter(len(liveOf(j)))
				continue
			}
			for _, t := range liveOf(j) {
				k := slotKey{p, j, providerOf(p, j, t)}
				expected[k]++
			}
		}
	}
	for k, n := range expected {
		arrived[k] = env.NewCounter(n)
	}
	// Observability: simulated runs emit the same event stream and span
	// trees real runs do, stamped with the virtual clock anchored at the
	// Unix epoch.
	simClock := env.Clock(time.Unix(0, 0).UTC())
	emitEvent := func(kind EventKind, actor string, partition int, bytes int64, detail string) {
		if cfg.Tracer == nil {
			return
		}
		cfg.Tracer.Emit(Event{
			Time: simClock(), Kind: kind, Actor: actor,
			Partition: partition, Bytes: bytes, Detail: detail,
		})
	}
	spanSink := cfg.Spans
	if cfg.Watchdog != nil {
		// The watchdog rides the span stream: every phase span is a
		// heartbeat, and rules evaluate on virtual-clock advances.
		if spanSink != nil {
			spanSink = obs.MultiSpanSink{spanSink, cfg.Watchdog}
		} else {
			spanSink = cfg.Watchdog
		}
		simBase := time.Unix(0, 0).UTC()
		env.OnAdvance(func(now time.Duration) {
			cfg.Watchdog.Evaluate(simBase.Add(now))
		})
	}
	emitSpan := func(name, actor string, ctx obs.SpanContext, start time.Time, bytes int64) {
		if spanSink == nil || !ctx.Valid() {
			return
		}
		// Simulated spans charge the deterministic resource model rather
		// than sampling the host process, so the cpu/alloc budget
		// dimensions gate byte-identically run after run.
		cpu, alloc := netsim.ModelCost(bytes)
		spanSink.EmitSpan(obs.Span{
			Name: name, Actor: actor, Context: ctx,
			Start: start, End: simClock(), Bytes: bytes,
			CPUNanos: cpu, AllocBytes: alloc,
		})
	}
	simRoot := func() obs.SpanContext {
		return obs.SpanContext{Session: "sim", SpanID: obs.NewSpanID()}
	}

	cutoff := cfg.TTrainCutoff
	quorumWait := cfg.QuorumWait
	if quorumWait <= 0 {
		quorumWait = time.Second
	}
	// Crashed trainers' gradients are missed by definition.
	missed := cfg.Partitions * len(churn.crashedTrainers)
	// waitArrival waits for a counter, honoring the quorum setting or the
	// t_train cutoff, and reports whether the full target was reached.
	waitArrival := func(c *netsim.Counter) bool {
		if cfg.QuorumFraction > 0 {
			need := int(math.Ceil(cfg.QuorumFraction * float64(c.Target())))
			if need < 1 {
				need = 1
			}
			return c.WaitQuorum(need, quorumWait)
		}
		if cutoff > 0 {
			return c.WaitDeadline(cutoff)
		}
		c.Wait()
		return true
	}

	// Partial-update availability signals for the sync phase.
	partialReady := make(map[[2]int]*netsim.Signal) // (p, owner j)
	for p := 0; p < cfg.Partitions; p++ {
		for j := 0; j < cfg.AggregatorsPerPartition; j++ {
			partialReady[[2]int{p, j}] = env.NewSignal()
		}
	}

	// Trainer processes: upload every partition's gradient. Crashed
	// trainers never start; rejoining trainers bootstrap the checkpoint
	// (the full model, one partition block per partition) from storage
	// before their first upload — the §VI joining-party path.
	for t := 0; t < cfg.Trainers; t++ {
		if churn.crashedTrainers[t] {
			continue
		}
		t := t
		env.Go(fmt.Sprintf("trainer-%d", t), func() {
			if churn.rejoinTrainers[t] {
				bCtx := simRoot()
				bStart := simClock()
				ckBytes := cfg.PartitionBytes * int64(cfg.Partitions)
				env.Transfer(stores[place(t%cfg.StorageNodes)], trainers[t], ckBytes)
				bootstraps++
				emitEvent(EventTrainerRejoin, trainers[t].Name, -1, ckBytes, "simulated checkpoint bootstrap")
				emitSpan("bootstrap", trainers[t].Name, bCtx, bStart, ckBytes)
			}
			upCtx := simRoot()
			upStart := simClock()
			for p := 0; p < cfg.Partitions; p++ {
				j := aggOf(t)
				if cfg.Direct {
					env.Transfer(trainers[t], aggs[p][j], cfg.PartitionBytes)
					if env.Now() < firstPublish {
						firstPublish = env.Now()
					}
					directArrived[[2]int{p, j}].Add()
				} else {
					dst := stores[providerOf(p, j, t)]
					env.Transfer(trainers[t], dst, cfg.PartitionBytes)
					if env.Now() < firstPublish {
						firstPublish = env.Now()
					}
					arrived[slotKey{p, j, providerOf(p, j, t)}].Add()
					gradArrived[[2]int{p, t}].Add()
				}
				emitEvent(EventGradientUploaded, trainers[t].Name, p, cfg.PartitionBytes, "simulated upload")
			}
			uploadDone[t] = env.Now()
			emitSpan("upload", trainers[t].Name, upCtx, upStart, cfg.PartitionBytes*int64(cfg.Partitions))
		})
	}

	// Aggregator processes. Crashed aggregators never start; a standby
	// covers them below.
	for p := 0; p < cfg.Partitions; p++ {
		for j := 0; j < cfg.AggregatorsPerPartition; j++ {
			if churn.crashedAggs[[2]int{p, j}] {
				continue
			}
			p, j := p, j
			agg := aggs[p][j]
			env.Go(agg.Name, func() {
				aggCtx := simRoot()
				aggStart := simClock()
				fetchCtx := aggCtx.Child()
				fetchStart := simClock()
				// Phase 1: obtain all of T_ij's gradients (or those that
				// made the t_train cutoff). The arrival wait is spanned
				// separately (upload_wait) from the transfer that follows,
				// so the critical-path breakdown splits the upload-bound
				// stretch from the download itself — the axes of Figs. 5-7.
				if cfg.Direct {
					ctr := directArrived[[2]int{p, j}]
					waitStart := simClock()
					ok := waitArrival(ctr)
					emitSpan("upload_wait", agg.Name, fetchCtx.Child(), waitStart, 0)
					if !ok {
						missed += len(liveOf(j)) - ctr.Count()
					}
				} else if merge {
					// One concurrent merge-download per provider group,
					// in deterministic node order.
					seen := make(map[int]bool)
					var groups []int
					for _, t := range liveOf(j) {
						n := providerOf(p, j, t)
						if !seen[n] {
							seen[n] = true
							groups = append(groups, n)
						}
					}
					done := env.NewCounter(len(groups))
					for _, node := range groups {
						node := node
						env.Go(fmt.Sprintf("merge-p%d-%d-n%d", p, j, node), func() {
							mdCtx := fetchCtx.Child()
							mdStart := simClock()
							ctr := arrived[slotKey{p, j, node}]
							waitStart := simClock()
							ok := waitArrival(ctr)
							emitSpan("upload_wait", stores[node].Name, mdCtx.Child(), waitStart, 0)
							if !ok {
								missed += expected[slotKey{p, j, node}] - ctr.Count()
							}
							if ctr.Count() > 0 {
								// The provider returns one pre-aggregated
								// partition-sized block over what arrived.
								env.Transfer(stores[node], agg, cfg.PartitionBytes)
								mergeDownloads++
								emitEvent(EventMergeDownload, agg.Name, p, cfg.PartitionBytes, "simulated merge-and-download")
								emitSpan("merge_download", stores[node].Name, mdCtx, mdStart, cfg.PartitionBytes)
							}
							done.Add()
						})
					}
					done.Wait()
				} else {
					// Download each gradient individually as it lands.
					done := env.NewCounter(len(liveOf(j)))
					for _, t := range liveOf(j) {
						t := t
						node := providerOf(p, j, t)
						env.Go(fmt.Sprintf("dl-p%d-%d-t%d", p, j, t), func() {
							dlCtx := fetchCtx.Child()
							dlStart := simClock()
							ok := waitArrival(gradArrived[[2]int{p, t}])
							emitSpan("upload_wait", trainers[t].Name, dlCtx.Child(), dlStart, 0)
							if ok {
								env.Transfer(stores[node], agg, cfg.PartitionBytes)
								emitSpan("download", stores[node].Name, dlCtx, dlStart, cfg.PartitionBytes)
							} else {
								missed++
							}
							done.Add()
						})
					}
					done.Wait()
				}
				if env.Now() > gradDone {
					gradDone = env.Now()
				}
				emitSpan("fetch_gradients", agg.Name, fetchCtx, fetchStart, 0)

				// Phase 2: multi-aggregator sync via the storage network.
				if cfg.AggregatorsPerPartition > 1 && !cfg.Direct {
					syncStart := simClock()
					home := stores[place((p*cfg.AggregatorsPerPartition+j)%len(stores))]
					env.Transfer(agg, home, cfg.PartitionBytes)
					emitEvent(EventPartialPublished, agg.Name, p, cfg.PartitionBytes, "simulated partial upload")
					partialReady[[2]int{p, j}].Fire()
					done := env.NewCounter(cfg.AggregatorsPerPartition - 1)
					for k := 0; k < cfg.AggregatorsPerPartition; k++ {
						if k == j {
							continue
						}
						k := k
						env.Go(fmt.Sprintf("sync-p%d-%d-from%d", p, j, k), func() {
							partialReady[[2]int{p, k}].Wait()
							peerHome := stores[place((p*cfg.AggregatorsPerPartition+k)%len(stores))]
							env.Transfer(peerHome, agg, cfg.PartitionBytes)
							done.Add()
						})
					}
					done.Wait()
					emitSpan("sync_wait", agg.Name, aggCtx.Child(), syncStart, 0)
				}
				if env.Now() > syncDone {
					syncDone = env.Now()
				}
				if env.Now() > totalDone {
					totalDone = env.Now()
				}
				emitEvent(EventGlobalPublished, agg.Name, p, cfg.PartitionBytes, "simulated global update")
				emitSpan("aggregate", agg.Name, aggCtx, aggStart, agg.BytesReceived)
			})
		}
	}

	// Standby processes: one per crashed aggregator. The standby (a live
	// aggregator from elsewhere) waits out the failover timeout, then
	// executes the crashed role — gradient downloads over its own link,
	// partial publish and peer sync — the §III-D takeover generalized
	// across partitions.
	standbyFor := func(p int) (*netsim.Node, bool) {
		var fallback *netsim.Node
		for pp := 0; pp < cfg.Partitions; pp++ {
			for jj := 0; jj < cfg.AggregatorsPerPartition; jj++ {
				if churn.crashedAggs[[2]int{pp, jj}] {
					continue
				}
				if pp != p {
					return aggs[pp][jj], true
				}
				if fallback == nil {
					fallback = aggs[pp][jj]
				}
			}
		}
		return fallback, fallback != nil
	}
	for p := 0; p < cfg.Partitions; p++ {
		for j := 0; j < cfg.AggregatorsPerPartition; j++ {
			if !churn.crashedAggs[[2]int{p, j}] {
				continue
			}
			standby, ok := standbyFor(p)
			if !ok {
				return nil, fmt.Errorf("core: sim churn: no live aggregator left to take over agg-p%d-%d", p, j)
			}
			p, j := p, j
			env.Go(fmt.Sprintf("standby-p%d-%d", p, j), func() {
				env.Sleep(failover)
				toCtx := simRoot()
				toStart := simClock()
				var got int64
				if cfg.Direct {
					for _, t := range liveOf(j) {
						env.Transfer(trainers[t], standby, cfg.PartitionBytes)
						got += cfg.PartitionBytes
					}
				} else if merge {
					seen := make(map[int]bool)
					for _, t := range liveOf(j) {
						node := providerOf(p, j, t)
						if seen[node] {
							continue
						}
						seen[node] = true
						ctr := arrived[slotKey{p, j, node}]
						waitArrival(ctr)
						if ctr.Count() > 0 {
							env.Transfer(stores[node], standby, cfg.PartitionBytes)
							mergeDownloads++
							got += cfg.PartitionBytes
						}
					}
				} else {
					for _, t := range liveOf(j) {
						if waitArrival(gradArrived[[2]int{p, t}]) {
							env.Transfer(stores[providerOf(p, j, t)], standby, cfg.PartitionBytes)
							got += cfg.PartitionBytes
						}
					}
				}
				if env.Now() > gradDone {
					gradDone = env.Now()
				}
				if cfg.AggregatorsPerPartition > 1 && !cfg.Direct {
					home := stores[place((p*cfg.AggregatorsPerPartition+j)%len(stores))]
					env.Transfer(standby, home, cfg.PartitionBytes)
					emitEvent(EventPartialPublished, standby.Name, p, cfg.PartitionBytes, "simulated takeover partial")
					partialReady[[2]int{p, j}].Fire()
					for k := 0; k < cfg.AggregatorsPerPartition; k++ {
						if k == j {
							continue
						}
						partialReady[[2]int{p, k}].Wait()
						peerHome := stores[place((p*cfg.AggregatorsPerPartition+k)%len(stores))]
						env.Transfer(peerHome, standby, cfg.PartitionBytes)
						got += cfg.PartitionBytes
					}
				}
				takeovers++
				if env.Now() > syncDone {
					syncDone = env.Now()
				}
				if env.Now() > totalDone {
					totalDone = env.Now()
				}
				emitEvent(EventStandbyTakeover, standby.Name, p,
					got, fmt.Sprintf("executed agg-p%d-%d after %v failover timeout", p, j, failover))
				emitEvent(EventGlobalPublished, standby.Name, p, cfg.PartitionBytes, "simulated takeover global update")
				emitSpan("takeover", standby.Name, toCtx, toStart, got)
			})
		}
	}

	if err := env.Run(); err != nil {
		return nil, err
	}
	if cfg.Watchdog != nil {
		cfg.Watchdog.Evaluate(simClock())
	}

	res := &SimResult{
		FirstPublish: firstPublish, MergeDownloads: mergeDownloads, MissedGradients: missed,
		Takeovers: takeovers, Bootstraps: bootstraps,
	}
	var sum time.Duration
	for _, d := range uploadDone {
		sum += d
		if d > res.UploadDelayMax {
			res.UploadDelayMax = d
		}
	}
	res.UploadDelayMean = sum / time.Duration(cfg.Trainers)
	res.GradAggDelay = gradDone - firstPublish
	if cfg.AggregatorsPerPartition > 1 {
		res.SyncDelay = syncDone - gradDone
	}
	res.TotalDelay = totalDone
	var aggBytes int64
	count := 0
	for p := range aggs {
		for _, a := range aggs[p] {
			aggBytes += a.BytesReceived
			count++
		}
	}
	aggregatorBytes = aggBytes / int64(count)
	res.BytesPerAggregator = aggregatorBytes
	return res, nil
}

// AnalyticAggregationDelay evaluates the paper's §III-E model
// τ = S · (|T_ij|/(d·|P_ij|) + |P_ij|/b) in seconds, with d and b in Mbps
// and S in bytes.
func AnalyticAggregationDelay(partitionBytes int64, trainersPerAgg, providers int, dMbps, bMbps float64) float64 {
	s := float64(partitionBytes) * 8
	return s*float64(trainersPerAgg)/(netsim.Mbps(dMbps)*float64(providers)) +
		s*float64(providers)/netsim.Mbps(bMbps)
}

// OptimalProviders returns the paper's √(b·|T_ij|/d) optimum for |P_ij|.
func OptimalProviders(trainersPerAgg int, dMbps, bMbps float64) float64 {
	return math.Sqrt(bMbps * float64(trainersPerAgg) / dMbps)
}
