package core

import (
	"testing"
	"time"

	"ipls/internal/netsim"
	"ipls/internal/obs"
)

// fig1Config reproduces the paper's Fig. 1 setup: 16 trainers, one
// aggregator, 1.3 MB partition, 10 Mbps links.
func fig1Config(providers int) SimConfig {
	return SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		ProvidersPerAggregator:  providers,
		BandwidthMbps:           10,
	}
}

func TestSimUploadDelayDecreasesWithProviders(t *testing.T) {
	var prev time.Duration
	for i, p := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(fig1Config(p))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.UploadDelayMean >= prev {
			t.Fatalf("upload delay should shrink with providers: P=%d gave %v (prev %v)",
				p, res.UploadDelayMean, prev)
		}
		prev = res.UploadDelayMean
	}
}

func TestSimAggregationDelayGrowsWithProviders(t *testing.T) {
	// The paper's Fig. 1 top: aggregation delay (first hash written →
	// all aggregated) grows with the number of providers.
	var prev time.Duration
	for i, p := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(fig1Config(p))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.GradAggDelay < prev {
			t.Fatalf("aggregation delay should grow with providers: P=%d gave %v (prev %v)",
				p, res.GradAggDelay, prev)
		}
		prev = res.GradAggDelay
	}
}

func TestSimTotalDelayMinimizedNearSqrtT(t *testing.T) {
	// §III-E: the best provider count is ≈ √|T_ij| = 4 for 16 trainers
	// with equal bandwidths.
	best, bestP := time.Duration(1<<62), 0
	totals := make(map[int]time.Duration)
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(fig1Config(p))
		if err != nil {
			t.Fatal(err)
		}
		totals[p] = res.TotalDelay
		if res.TotalDelay < best {
			best, bestP = res.TotalDelay, p
		}
	}
	if bestP != 4 {
		t.Fatalf("optimum at P=%d, want 4 (totals: %v)", bestP, totals)
	}
	if opt := OptimalProviders(16, 10, 10); opt != 4 {
		t.Fatalf("analytic optimum = %v, want 4", opt)
	}
}

func TestSimNaiveIndirectSlowerThanDirectSlowerThanMerge(t *testing.T) {
	// The Fig. 1 comparison: naive indirect (no merge) pays for moving
	// every gradient twice; merge-and-download recovers the efficiency.
	naive := fig1Config(0)
	naive.StorageNodes = 8
	resNaive, err := Simulate(naive)
	if err != nil {
		t.Fatal(err)
	}
	direct := fig1Config(0)
	direct.Direct = true
	resDirect, err := Simulate(direct)
	if err != nil {
		t.Fatal(err)
	}
	mergeCfg := fig1Config(8)
	resMerge, err := Simulate(mergeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if resNaive.TotalDelay <= resDirect.TotalDelay {
		t.Fatalf("naive indirect (%v) should be slower than direct (%v)",
			resNaive.TotalDelay, resDirect.TotalDelay)
	}
	if resMerge.TotalDelay >= resNaive.TotalDelay {
		t.Fatalf("merge-and-download (%v) should beat naive indirect (%v)",
			resMerge.TotalDelay, resNaive.TotalDelay)
	}
	if resMerge.MergeDownloads == 0 {
		t.Fatal("merge mode issued no merge downloads")
	}
}

// fig2Config reproduces the paper's Fig. 2 setup: 16 trainers, 8 IPFS
// nodes, 4 partitions of 1.1 MB, 20 Mbps participant links, no
// merge-and-download. Storage nodes are well provisioned so that the
// participants' links are the bottleneck, as the paper's reported scaling
// implies.
func fig2Config(aggsPerPartition int) SimConfig {
	return SimConfig{
		Trainers:                16,
		Partitions:              4,
		AggregatorsPerPartition: aggsPerPartition,
		PartitionBytes:          1_100_000,
		StorageNodes:            8,
		ProvidersPerAggregator:  0,
		BandwidthMbps:           20,
		StorageBandwidthMbps:    200,
	}
}

func TestSimFig2BytesPerAggregator(t *testing.T) {
	// Fig. 2 bottom: D = (|T_ij| + |A_i| − 1) · PartitionSize.
	for _, a := range []int{1, 2, 4} {
		res, err := Simulate(fig2Config(a))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(16/a+a-1) * 1_100_000
		if res.BytesPerAggregator != want {
			t.Fatalf("|A_i|=%d: bytes per aggregator = %d, want %d",
				a, res.BytesPerAggregator, want)
		}
	}
}

func TestSimFig2TotalDelayDecreasesWithAggregators(t *testing.T) {
	// Fig. 2 top: gradient aggregation delay shrinks with |A_i| while
	// sync overhead grows, and the total still decreases.
	var prevTotal, prevSync time.Duration
	for i, a := range []int{1, 2, 4} {
		res, err := Simulate(fig2Config(a))
		if err != nil {
			t.Fatal(err)
		}
		total := res.GradAggDelay + res.SyncDelay
		if i > 0 {
			if total >= prevTotal {
				t.Fatalf("|A_i|=%d: total %v should be below %v", a, total, prevTotal)
			}
			if res.SyncDelay <= prevSync {
				t.Fatalf("|A_i|=%d: sync delay %v should grow (prev %v)", a, res.SyncDelay, prevSync)
			}
		}
		prevTotal, prevSync = total, res.SyncDelay
	}
}

func TestSimDeterministic(t *testing.T) {
	a, err := Simulate(fig2Config(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(fig2Config(2))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSimAnalyticModelMatchesSimulation(t *testing.T) {
	// §III-E: τ = S·(T/(dP) + P/b). The simulated total should track the
	// analytic model within ~25% across the sweep.
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(fig1Config(p))
		if err != nil {
			t.Fatal(err)
		}
		want := AnalyticAggregationDelay(1_300_000, 16, p, 10, 10)
		got := res.TotalDelay.Seconds()
		if got < want*0.75 || got > want*1.25 {
			t.Fatalf("P=%d: simulated %vs vs analytic %vs", p, got, want)
		}
	}
}

func TestSimLatency(t *testing.T) {
	base, err := Simulate(fig1Config(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig1Config(4)
	cfg.LatencyMs = 50
	withLat, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withLat.TotalDelay <= base.TotalDelay {
		t.Fatal("latency should increase total delay")
	}
}

func TestSimStragglersDominateWithoutCutoff(t *testing.T) {
	base := fig1Config(4)
	fair, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.SlowTrainers = 2
	slow.SlowFactor = 10
	res, err := Simulate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedGradients != 0 {
		t.Fatal("no cutoff, nothing may be missed")
	}
	// Two 1-Mbps stragglers need 10.4s just to upload 1.3 MB, stretching
	// the iteration well past the fair-bandwidth completion time.
	if res.TotalDelay < fair.TotalDelay+3*time.Second {
		t.Fatalf("stragglers had too little effect: %v vs fair %v", res.TotalDelay, fair.TotalDelay)
	}
}

func TestSimTTrainCutoffBoundsIteration(t *testing.T) {
	fair, err := Simulate(fig1Config(4))
	if err != nil {
		t.Fatal(err)
	}
	slow := fig1Config(4)
	slow.SlowTrainers = 2
	slow.SlowFactor = 10
	// Cut off shortly after the fair-case completion time.
	slow.TTrainCutoff = fair.TotalDelay + time.Second
	res, err := Simulate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedGradients != 2 {
		t.Fatalf("expected the 2 stragglers to miss, got %d", res.MissedGradients)
	}
	// The iteration now completes near the cutoff instead of waiting for
	// the stragglers.
	if res.TotalDelay > slow.TTrainCutoff+5*time.Second {
		t.Fatalf("cutoff did not bound the iteration: %v", res.TotalDelay)
	}
}

func TestSimValidation(t *testing.T) {
	bad := []SimConfig{
		{},
		{Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 0, BandwidthMbps: 1, StorageNodes: 1},
		{Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 1, BandwidthMbps: 0, StorageNodes: 1},
		{Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 1, BandwidthMbps: 1, StorageNodes: 0},
		{Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 1, BandwidthMbps: 1, StorageNodes: 1, ProvidersPerAggregator: 2},
		{Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 1, BandwidthMbps: 1, StorageNodes: 1, SlowTrainers: 2, SlowFactor: 10},
		{Trainers: 2, Partitions: 1, AggregatorsPerPartition: 1, PartitionBytes: 1, BandwidthMbps: 1, StorageNodes: 1, SlowTrainers: 1, SlowFactor: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestSimEmitsVirtualTimeSpans(t *testing.T) {
	col := obs.NewSpanCollector(0)
	rec := &Recorder{}
	cfg := fig1Config(2)
	cfg.Spans = col
	cfg.Tracer = rec
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("simulation emitted no spans")
	}
	epoch := time.Unix(0, 0).UTC()
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
		if s.Context.Session != "sim" || s.Context.Iter != 0 {
			t.Fatalf("span trace identity: %+v", s.Context)
		}
		// Virtual clock anchored at the epoch: every timestamp sits inside
		// [epoch, epoch+TotalDelay].
		if s.Start.Before(epoch) || s.End.After(epoch.Add(res.TotalDelay)) {
			t.Fatalf("span %s [%v,%v] outside virtual window ending %v",
				s.Name, s.Start, s.End, epoch.Add(res.TotalDelay))
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %s inverted", s.Name)
		}
	}
	if names["upload"] != cfg.Trainers {
		t.Fatalf("upload spans = %d, want %d", names["upload"], cfg.Trainers)
	}
	if names["aggregate"] != cfg.Partitions*cfg.AggregatorsPerPartition {
		t.Fatalf("aggregate spans = %d", names["aggregate"])
	}
	if names["merge_download"] != res.MergeDownloads {
		t.Fatalf("merge_download spans = %d, want %d", names["merge_download"], res.MergeDownloads)
	}

	// The spans assemble into trees: merge_download under fetch_gradients
	// under aggregate, with no orphans.
	tree := obs.BuildTree(spans, "sim", 0)
	if tree.Orphans != 0 {
		t.Fatalf("%d orphaned sim spans", tree.Orphans)
	}
	agg := tree.Find("aggregate")
	if agg == nil {
		t.Fatal("no aggregate tree")
	}
	fetch := tree.Find("fetch_gradients")
	if fetch == nil || len(fetch.Children) == 0 {
		t.Fatal("merge_download not parented under fetch_gradients")
	}

	// Events share the virtual timeline, so SummarizeTrace latency is the
	// simulated iteration duration, not wall time.
	sums := SummarizeTrace(rec.Events())
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Latency <= 0 || sums[0].Latency > res.TotalDelay {
		t.Fatalf("virtual latency %v vs total delay %v", sums[0].Latency, res.TotalDelay)
	}
	// And the critical-path breakdown tiles the traced window.
	b := obs.Breakdown(spans)
	var sum time.Duration
	for _, p := range b.Phases {
		sum += p.Duration
	}
	if sum != b.Latency {
		t.Fatalf("sim phases sum to %v, latency %v", sum, b.Latency)
	}
}

func TestSimLinkLossDelaysIteration(t *testing.T) {
	baseline, err := Simulate(fig1Config(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig1Config(4)
	// Sever a provider's links for two virtual seconds mid-iteration:
	// merges through it stall, so the iteration must finish later.
	cfg.LinkLoss = []netsim.LossWindow{
		{Node: "ipfs-00", From: 500 * time.Millisecond, To: 2500 * time.Millisecond, Factor: 0},
	}
	degraded, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.TotalDelay <= baseline.TotalDelay {
		t.Fatalf("link loss did not slow the iteration: %v vs baseline %v",
			degraded.TotalDelay, baseline.TotalDelay)
	}
	// Determinism: the same degraded schedule reproduces exactly.
	again, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalDelay != degraded.TotalDelay {
		t.Fatalf("degraded run not reproducible: %v vs %v", again.TotalDelay, degraded.TotalDelay)
	}
	if _, err := Simulate(SimConfig{
		Trainers: 1, Partitions: 1, AggregatorsPerPartition: 1,
		PartitionBytes: 1000, StorageNodes: 1, BandwidthMbps: 10,
		LinkLoss: []netsim.LossWindow{{Node: "ghost", From: 0, To: time.Second, Factor: 0.5}},
	}); err == nil {
		t.Fatal("unknown link-loss node accepted")
	}
}
