package core

import (
	"fmt"
	"strconv"
	"strings"

	"ipls/internal/storage"
)

// simChurn is a SimConfig.Churn plan resolved against the simulation's
// node-naming scheme. The sim models a single iteration, so event
// iteration numbers are ignored: departures and crashes hold for the
// whole run, and a trainer rejoin means "present, but must bootstrap
// the checkpoint from storage before uploading".
type simChurn struct {
	downStores      map[int]bool
	crashedAggs     map[[2]int]bool // (partition, j)
	crashedTrainers map[int]bool
	rejoinTrainers  map[int]bool
}

func newSimChurn(cfg SimConfig) (*simChurn, error) {
	sc := &simChurn{
		downStores:      make(map[int]bool),
		crashedAggs:     make(map[[2]int]bool),
		crashedTrainers: make(map[int]bool),
		rejoinTrainers:  make(map[int]bool),
	}
	for _, ev := range cfg.Churn {
		switch {
		case strings.HasPrefix(ev.Node, "ipfs-"):
			i, err := strconv.Atoi(strings.TrimPrefix(ev.Node, "ipfs-"))
			if err != nil || i < 0 || i >= cfg.StorageNodes {
				return nil, fmt.Errorf("core: sim churn: unknown storage node %q", ev.Node)
			}
			if ev.Kind == storage.ChurnRejoin {
				return nil, fmt.Errorf("core: sim churn: %v: storage rejoin is not modeled within a single iteration", ev)
			}
			if cfg.Direct {
				return nil, fmt.Errorf("core: sim churn: %v: direct mode has no storage network", ev)
			}
			// Departed and crashed storage both hold for the whole iteration.
			sc.downStores[i] = true
		case strings.HasPrefix(ev.Node, "agg-p"):
			p, j, ok := parseSimAgg(ev.Node)
			if !ok || p >= cfg.Partitions || j >= cfg.AggregatorsPerPartition {
				return nil, fmt.Errorf("core: sim churn: unknown aggregator %q", ev.Node)
			}
			if ev.Kind != storage.ChurnCrash {
				return nil, fmt.Errorf("core: sim churn: %v: aggregators only crash within a single iteration", ev)
			}
			sc.crashedAggs[[2]int{p, j}] = true
		case strings.HasPrefix(ev.Node, "trainer-"):
			t, err := strconv.Atoi(strings.TrimPrefix(ev.Node, "trainer-"))
			if err != nil || t < 0 || t >= cfg.Trainers {
				return nil, fmt.Errorf("core: sim churn: unknown trainer %q", ev.Node)
			}
			switch ev.Kind {
			case storage.ChurnCrash:
				sc.crashedTrainers[t] = true
			case storage.ChurnRejoin:
				if cfg.Direct {
					return nil, fmt.Errorf("core: sim churn: %v: checkpoint bootstrap needs the storage network", ev)
				}
				sc.rejoinTrainers[t] = true
			default:
				return nil, fmt.Errorf("core: sim churn: %v: trainers crash or rejoin, they do not depart", ev)
			}
		default:
			return nil, fmt.Errorf("core: sim churn: unknown participant %q", ev.Node)
		}
	}
	// A trainer that crashes and rejoins within the plan is present but
	// pays the bootstrap download.
	for t := range sc.rejoinTrainers {
		delete(sc.crashedTrainers, t)
	}
	return sc, nil
}

// parseSimAgg decodes "agg-p<partition>-<j>".
func parseSimAgg(name string) (p, j int, ok bool) {
	parts := strings.SplitN(strings.TrimPrefix(name, "agg-p"), "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	p, err1 := strconv.Atoi(parts[0])
	j, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || p < 0 || j < 0 {
		return 0, 0, false
	}
	return p, j, true
}
