package core

import (
	"strings"
	"testing"
	"time"

	"ipls/internal/storage"
)

func churnSimConfig() SimConfig {
	return SimConfig{
		Trainers:                8,
		Partitions:              2,
		AggregatorsPerPartition: 2,
		PartitionBytes:          500_000,
		StorageNodes:            4,
		BandwidthMbps:           10,
	}
}

func simEvents(t *testing.T, plan string) []storage.ChurnEvent {
	t.Helper()
	p, err := storage.ParseChurnPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	return p.Events()
}

func TestSimChurnDeterministic(t *testing.T) {
	cfg := churnSimConfig()
	cfg.Churn = simEvents(t,
		"depart:ipfs-03@iter0,crash:agg-p0-0@iter0,crash:trainer-06@iter0,rejoin:trainer-07@iter0")
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("churn simulation not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", a.Takeovers)
	}
	if a.Bootstraps != 1 {
		t.Fatalf("Bootstraps = %d, want 1", a.Bootstraps)
	}
	if a.MissedGradients != cfg.Partitions {
		t.Fatalf("MissedGradients = %d, want %d (one crashed trainer)", a.MissedGradients, cfg.Partitions)
	}
}

func TestSimChurnTakeoverDelaysIteration(t *testing.T) {
	base, err := Simulate(churnSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Takeovers != 0 || base.Bootstraps != 0 {
		t.Fatalf("healthy run reported churn: %+v", base)
	}
	cfg := churnSimConfig()
	cfg.Churn = simEvents(t, "crash:agg-p0-0@iter0")
	cfg.FailoverTimeout = 2 * time.Second
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", res.Takeovers)
	}
	// The takeover waits out the failover timeout before redoing the
	// crashed role, so the iteration finishes strictly later.
	if res.TotalDelay <= base.TotalDelay {
		t.Fatalf("takeover run (%v) should be slower than healthy run (%v)", res.TotalDelay, base.TotalDelay)
	}
	if res.TotalDelay < cfg.FailoverTimeout {
		t.Fatalf("takeover run (%v) finished before the failover timeout (%v)", res.TotalDelay, cfg.FailoverTimeout)
	}
}

func TestSimChurnDepartRemapsPlacement(t *testing.T) {
	cfg := churnSimConfig()
	cfg.Churn = simEvents(t, "depart:ipfs-01@iter0,crash:ipfs-02@iter0")
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedGradients != 0 {
		t.Fatalf("placement remap lost %d gradients", res.MissedGradients)
	}
	if res.TotalDelay <= 0 {
		t.Fatalf("implausible total delay %v", res.TotalDelay)
	}
}

func TestSimChurnValidation(t *testing.T) {
	cases := []struct {
		plan    string
		mutate  func(*SimConfig)
		wantErr string
	}{
		{plan: "crash:nobody@iter0", wantErr: "unknown participant"},
		{plan: "depart:trainer-00@iter0", wantErr: "do not depart"},
		{plan: "rejoin:ipfs-00@iter0", wantErr: "not modeled"},
		{plan: "depart:agg-p0-0@iter0", wantErr: "only crash"},
		{plan: "crash:ipfs-09@iter0", wantErr: "unknown storage node"},
		{plan: "crash:agg-p7-0@iter0", wantErr: "unknown aggregator"},
		{
			plan:    "depart:ipfs-00@iter0,depart:ipfs-01@iter0,depart:ipfs-02@iter0,depart:ipfs-03@iter0",
			wantErr: "every storage node is down",
		},
		{
			plan:    "crash:agg-p0-0@iter0,crash:agg-p0-1@iter0,crash:agg-p1-0@iter0,crash:agg-p1-1@iter0",
			wantErr: "no live aggregator",
		},
		{
			plan:    "rejoin:trainer-00@iter0",
			mutate:  func(c *SimConfig) { c.Direct = true; c.StorageNodes = 0 },
			wantErr: "storage network",
		},
	}
	for _, tc := range cases {
		cfg := churnSimConfig()
		if tc.mutate != nil {
			tc.mutate(&cfg)
		}
		cfg.Churn = simEvents(t, tc.plan)
		_, err := Simulate(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("plan %q: error %v, want substring %q", tc.plan, err, tc.wantErr)
		}
	}
}
