package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"ipls/internal/cid"
	"ipls/internal/obs"
)

// Span plumbing for the session: the protocol engine emits causal spans
// (obs.Span) alongside the flat event stream, one tree per FL iteration.
// Role entry points (upload, collect, aggregate) open root spans — or
// children, when RunIteration supplies its iteration-wide parent — and
// phase helpers open children under them. Contexts cross process
// boundaries inside directory records (Record.Span) and the
// merge-and-download RPC, which is what lets an aggregator's trace
// reference the uploads and storage-side merges it depended on.

// SetSpans attaches the sink that receives the session's completed spans
// (nil detaches). Like SetTracer it must be called before the session
// runs roles.
func (s *Session) SetSpans(sink obs.SpanSink) { s.spans = sink }

// SetClock overrides the session's notion of "now" for event and span
// timestamps (nil restores the wall clock). Deadlines and polling still
// use the wall clock — the clock only stamps observability output, so a
// virtual-time harness (netsim) can produce traces in its own timeline.
func (s *Session) SetClock(fn func() time.Time) { s.clock = fn }

// SetResourceMeter attaches the meter sampled at span open/close so
// emitted spans carry CPU-time and allocation deltas (nil disables,
// the default). Real processes pass obs.RuntimeMeter{}; deterministic
// harnesses either leave it off or supply a virtual meter, since
// process-wide readings would break byte-identical baselines. Like
// SetSpans it must be called before the session runs roles.
func (s *Session) SetResourceMeter(m obs.ResourceMeter) { s.meter = m }

// now is the session's observability clock.
func (s *Session) now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// spanScope is an open span under construction. A nil scope (spans
// disabled) is valid and every method is a no-op, so instrumentation
// sites need no conditionals. Each scope is owned by one goroutine.
type spanScope struct {
	s    *Session
	span obs.Span
	// res is the meter reading at open; end() subtracts it to charge
	// the span its CPU/alloc delta.
	res obs.ResourceSample
	// labelCtx carries this scope's pprof labels; parentCtx restores
	// the enclosing labels when the scope ends. Label propagation rides
	// the scope's goroutine-ownership contract.
	labelCtx  context.Context
	parentCtx context.Context
}

// open stamps the scope's start-of-span state: pprof goroutine labels
// (phase/role/trace, so CPU profiles slice by FL phase) and the opening
// resource sample.
func (sc *spanScope) open(parent context.Context) *spanScope {
	sc.parentCtx = parent
	sc.labelCtx = pprof.WithLabels(parent, pprof.Labels(
		"phase", sc.span.Name,
		"role", sc.span.Actor,
		"trace", fmt.Sprintf("%s/%d", sc.span.Context.Session, sc.span.Context.Iter),
	))
	pprof.SetGoroutineLabels(sc.labelCtx)
	if sc.s.meter != nil {
		sc.res = sc.s.meter.Sample()
	}
	return sc
}

// startSpan opens a span. With a valid parent the span joins the
// parent's trace; otherwise it roots a new tree in the (task, iter)
// trace. Returns nil when the session has no span sink.
func (s *Session) startSpan(name, actor string, iter int, parent obs.SpanContext) *spanScope {
	if s.spans == nil {
		return nil
	}
	var ctx obs.SpanContext
	if parent.Valid() {
		ctx = parent.Child()
	} else {
		ctx = obs.SpanContext{Session: s.cfg.TaskID, Iter: iter, SpanID: obs.NewSpanID()}
	}
	sc := &spanScope{s: s, span: obs.Span{Name: name, Actor: actor, Context: ctx, Start: s.now()}}
	return sc.open(context.Background())
}

// child opens a sub-span of sc with the same actor, nesting its pprof
// labels under the parent's.
func (sc *spanScope) child(name string) *spanScope {
	if sc == nil {
		return nil
	}
	c := &spanScope{s: sc.s, span: obs.Span{
		Name: name, Actor: sc.span.Actor, Context: sc.span.Context.Child(), Start: sc.s.now(),
	}}
	return c.open(sc.labelCtx)
}

// ctx returns the scope's span context (zero when spans are disabled).
func (sc *spanScope) ctx() obs.SpanContext {
	if sc == nil {
		return obs.SpanContext{}
	}
	return sc.span.Context
}

// ctxRef returns a pointer to the scope's context for embedding in a
// directory record, or nil when spans are disabled.
func (sc *spanScope) ctxRef() *obs.SpanContext {
	if sc == nil {
		return nil
	}
	c := sc.span.Context
	return &c
}

// bytes adds to the span's payload byte count.
func (sc *spanScope) bytes(n int64) {
	if sc != nil {
		sc.span.Bytes += n
	}
}

// attr sets a span attribute.
func (sc *spanScope) attr(k, v string) {
	if sc == nil {
		return
	}
	if sc.span.Attrs == nil {
		sc.span.Attrs = make(map[string]string)
	}
	sc.span.Attrs[k] = v
}

// link records a causal reference to a span in another role's tree.
func (sc *spanScope) link(c *obs.SpanContext) {
	if sc == nil || c == nil || !c.Valid() {
		return
	}
	sc.span.Links = append(sc.span.Links, *c)
}

// end closes the span and emits it, charging the metered resource
// delta and restoring the enclosing pprof labels.
func (sc *spanScope) end() {
	if sc == nil {
		return
	}
	sc.span.End = sc.s.now()
	if sc.s.meter != nil {
		d := sc.s.meter.Sample().Sub(sc.res)
		sc.span.CPUNanos += d.CPUNanos
		sc.span.AllocBytes += d.AllocBytes
	}
	pprof.SetGoroutineLabels(sc.parentCtx)
	sc.s.spans.EmitSpan(sc.span)
}

// endErr closes the span, recording the error as an attribute first.
func (sc *spanScope) endErr(err error) {
	if sc != nil && err != nil {
		sc.attr("error", err.Error())
	}
	sc.end()
}

// mergeSpanner is the optional storage capability of carrying a span
// context with a merge-and-download request (storage.Network and
// transport.Client both implement it).
type mergeSpanner interface {
	MergeGetSpan(ctx context.Context, nodeID string, cs []cid.CID, parent obs.SpanContext) ([]byte, error)
}
