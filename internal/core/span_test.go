package core

import (
	"context"
	"testing"
	"time"

	"ipls/internal/obs"
)

// TestIterationSpanTree is the acceptance check for causal span tracing:
// run an iteration on an in-memory stack, reconstruct the span tree, and
// verify the cross-role causality — the aggregate span links the uploader
// spans it folded in, and each storage-side merge span is parented under
// the aggregator's merge_download span that triggered it.
func TestIterationSpanTree(t *testing.T) {
	sess, net, _ := testStack(t, func(ts *TaskSpec) {
		ts.ProvidersPerAggregator = 2 // exercise merge-and-download
	})
	col := obs.NewSpanCollector(0)
	sess.SetSpans(col)
	net.SetSpans(col)

	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 7)
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions: %v", res.Incomplete)
	}

	tree := col.Tree(sess.Config().TaskID, 0)
	if tree.Size() == 0 {
		t.Fatal("no spans collected")
	}
	if tree.Orphans != 0 {
		t.Fatalf("%d orphaned spans — broken parent propagation", tree.Orphans)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Name != "iteration" {
		t.Fatalf("want a single iteration root, got %d roots", len(tree.Roots))
	}

	// Uploader span IDs, for the causal-link check below.
	uploads := make(map[string]bool)
	tree.Walk(func(n *obs.SpanNode, _ int) {
		if n.Span.Name == "upload" {
			uploads[n.Span.Context.SpanID] = true
		}
	})
	if len(uploads) != len(sess.Config().Trainers) {
		t.Fatalf("upload spans = %d, want %d", len(uploads), len(sess.Config().Trainers))
	}

	agg := tree.Find("aggregate")
	if agg == nil {
		t.Fatal("no aggregate span")
	}
	if len(agg.Span.Links) != len(sess.Config().Trainers) {
		t.Fatalf("aggregate links = %d, want %d (one per uploader)", len(agg.Span.Links), len(sess.Config().Trainers))
	}
	for _, l := range agg.Span.Links {
		if !uploads[l.SpanID] {
			t.Fatalf("aggregate links unknown span %q — causal propagation through the directory record failed", l.SpanID)
		}
	}

	// Every storage-side merge span must hang under a merge_download span:
	// the context crossed the storage API (and in the distributed case, the
	// RPC) intact.
	var merges, mergeDownloads int
	tree.Walk(func(n *obs.SpanNode, _ int) {
		switch n.Span.Name {
		case "merge_download":
			mergeDownloads++
			for _, c := range n.Children {
				if c.Span.Name != "merge" {
					t.Fatalf("merge_download child = %q", c.Span.Name)
				}
			}
		case "merge":
			merges++
		}
	})
	if mergeDownloads == 0 || merges == 0 {
		t.Fatalf("merge_download=%d merge=%d — merge path not traced", mergeDownloads, merges)
	}
	md := tree.Find("merge_download")
	if len(md.Children) == 0 {
		t.Fatal("merge span not parented under merge_download — span context lost crossing the storage boundary")
	}

	// Every span closed: a positive interval inside the iteration root.
	root := tree.Roots[0].Span
	tree.Walk(func(n *obs.SpanNode, _ int) {
		if n.Span.End.Before(n.Span.Start) {
			t.Fatalf("span %s has End before Start", n.Span.Name)
		}
		if n.Span.Start.Before(root.Start) || n.Span.End.After(root.End) {
			t.Fatalf("span %s [%v,%v] outside iteration [%v,%v]",
				n.Span.Name, n.Span.Start, n.Span.End, root.Start, root.End)
		}
	})

	// The breakdown's phases tile the iteration latency exactly.
	b := obs.Breakdown(col.Spans())
	var phaseSum time.Duration
	for _, p := range b.Phases {
		phaseSum += p.Duration
	}
	if phaseSum != b.Latency {
		t.Fatalf("phases sum to %v, latency %v", phaseSum, b.Latency)
	}
}

// TestSpansDisabledNoOverhead verifies the nil-scope no-op path: with no
// sink attached nothing is emitted and iterations still work.
func TestSpansDisabledNoOverhead(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 3)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoleSpansRootPerRole checks the distributed shape: role entry
// points called directly (as iplsd does) root their own trees instead of
// sharing an iteration root, and the trees still merge by (session, iter).
func TestRoleSpansRootPerRole(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	col := obs.NewSpanCollector(0)
	sess.SetSpans(col)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 5)

	for _, tr := range sess.Config().Trainers {
		if err := sess.TrainerUpload(context.Background(), tr, 0, deltas[tr]); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < sess.Config().Spec.Partitions; p++ {
		if _, err := sess.AggregatorRun(context.Background(), AggregatorID(p, 0), p, 0, BehaviorHonest); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.TrainerCollect(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	tree := col.Tree(sess.Config().TaskID, 0)
	if tree.Orphans != 0 {
		t.Fatalf("%d orphans", tree.Orphans)
	}
	var roots []string
	for _, r := range tree.Roots {
		roots = append(roots, r.Span.Name)
	}
	wantRoots := len(sess.Config().Trainers) + sess.Config().Spec.Partitions + 1
	if len(roots) != wantRoots {
		t.Fatalf("roots = %v, want %d (uploads + aggregates + collect)", roots, wantRoots)
	}
	// Aggregates still link the uploads across the root boundary.
	agg := tree.Find("aggregate")
	if agg == nil || len(agg.Span.Links) != len(sess.Config().Trainers) {
		t.Fatalf("distributed aggregate links missing: %+v", agg)
	}
}

// TestSessionSetClock pins event and span timestamps to an injected
// clock, the hook sim.Simulate uses to stamp traces in virtual time.
func TestSessionSetClock(t *testing.T) {
	sess, _, _ := testStack(t, nil)
	frozen := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	sess.SetClock(func() time.Time { return frozen })

	col := obs.NewSpanCollector(0)
	rec := &Recorder{}
	sess.SetSpans(col)
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 9)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range col.Spans() {
		if !s.Start.Equal(frozen) || !s.End.Equal(frozen) {
			t.Fatalf("span %s stamped %v..%v, want frozen clock", s.Name, s.Start, s.End)
		}
	}
	for _, e := range rec.Events() {
		if !e.Time.Equal(frozen) {
			t.Fatalf("event %s stamped %v, want frozen clock", e.Kind, e.Time)
		}
	}

	// nil restores the wall clock.
	sess.SetClock(nil)
	if sess.now().Year() == 2026 && sess.now().Equal(frozen) {
		t.Fatal("wall clock not restored")
	}
}
