package core

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestPaperScaleIterations runs the protocol at the paper's evaluation
// scale — 16 trainers, 4 partitions, 2 aggregators per partition,
// merge-and-download, verifiable — for several iterations end to end,
// checking exactness and winner uniqueness every round.
func TestPaperScaleIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	trainers := make([]string, 16)
	for i := range trainers {
		trainers[i] = fmt.Sprintf("t%02d", i)
	}
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("s%d", i)
	}
	cfg, err := NewConfig(TaskSpec{
		TaskID:                  "paper-scale",
		ModelDim:                512,
		Partitions:              4,
		Trainers:                trainers,
		AggregatorsPerPartition: 2,
		StorageNodes:            nodes,
		ProvidersPerAggregator:  3,
		Verifiable:              true,
		TTrain:                  10 * time.Second,
		TSync:                   10 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, net, dir, err := NewLocalStack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		deltas, wantAvg := randomDeltas(trainers, 512, int64(100+iter))
		res, err := sess.RunIteration(context.Background(), iter, deltas, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(res.Incomplete) > 0 {
			t.Fatalf("iter %d incomplete: %v", iter, res.Incomplete)
		}
		if res.Detected() {
			t.Fatalf("iter %d: false positive detection", iter)
		}
		if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
			t.Fatalf("iter %d: average off by %v", iter, diff)
		}
		winners := make(map[int]int)
		merges := 0
		for _, rep := range res.Reports {
			if rep.PublishedGlobal {
				winners[rep.Partition]++
			}
			merges += rep.MergeDownloads
		}
		for p := 0; p < 4; p++ {
			if winners[p] != 1 {
				t.Fatalf("iter %d partition %d has %d winners", iter, p, winners[p])
			}
		}
		if merges == 0 {
			t.Fatalf("iter %d: merge-and-download unused", iter)
		}
		// Garbage-collect and confirm storage stays bounded.
		if _, err := sess.CleanupIteration(context.Background(), iter); err != nil {
			t.Fatal(err)
		}
	}
	// After cleanup, only global updates remain. Both aggregators of a
	// partition upload the (identical) global block from their own home
	// node, so each update has up to |A_i|·replicas holders:
	// 4 partitions x 3 iters x (2 aggregators x 2 replicas).
	blocks := 0
	for _, id := range net.NodeIDs() {
		nd, _ := net.Node(id)
		blocks += nd.StoredBlocks()
	}
	if blocks > 4*3*2*2 {
		t.Fatalf("storage not bounded after cleanup: %d node entries", blocks)
	}
	// And every remaining block must be a recorded global update.
	updates := make(map[string]bool)
	for iter := 0; iter < 3; iter++ {
		for p := 0; p < 4; p++ {
			rec, err := dir.Update(context.Background(), iter, p)
			if err != nil {
				t.Fatal(err)
			}
			updates[string(rec.CID)] = true
		}
	}
	for _, id := range net.NodeIDs() {
		nd, _ := net.Node(id)
		for _, c := range nd.BlockCIDs() {
			if !updates[string(c)] {
				t.Fatalf("node %s holds a non-update block %s after cleanup", id, c.Short())
			}
		}
	}
	if dir.Stats().Verifications == 0 {
		t.Fatal("no verifications at paper scale")
	}
}

// TestManyIterationsSequential runs many cheap iterations to shake out
// cross-iteration state leaks.
func TestManyIterationsSequential(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.AggregatorsPerPartition = 2 })
	for iter := 0; iter < 10; iter++ {
		deltas, wantAvg := randomDeltas(sess.Config().Trainers, 24, int64(500+iter))
		res, err := sess.RunIteration(context.Background(), iter, deltas, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if diff := maxAbsDiff(res.AvgDelta, wantAvg); diff > 1e-6 {
			t.Fatalf("iter %d off by %v", iter, diff)
		}
		if iter%3 == 0 {
			if _, err := sess.CleanupIteration(context.Background(), iter); err != nil {
				t.Fatal(err)
			}
		}
	}
}
