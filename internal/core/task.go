package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ipls/internal/directory"
	"ipls/internal/ml"
	"ipls/internal/obs"
)

// Task drives a complete federated-learning job over a Session: each round,
// every trainer computes a local model delta with SGD, the deltas flow
// through the decentralized protocol, and the averaged delta advances the
// shared global model.
type Task struct {
	session *Session
	model   ml.Model
	locals  map[string]*ml.Dataset
	sgd     ml.SGDConfig
	global  []float64
	round   int

	// late stashes deltas from trainers that trained but missed their
	// round's upload window (RoundOptions.Late); they are folded into
	// the next applied round with an age-discounted weight.
	late []lateDelta
}

// lateDelta is one straggler's stashed contribution.
type lateDelta struct {
	trainer string
	round   int
	delta   []float64
}

// lateDecay is the per-round staleness discount for folded late deltas:
// a delta that is a rounds old is applied with weight lateDecay^a / n
// (n trainers), approximating the average contribution it would have
// made in its own round, discounted for drift since.
const lateDecay = 0.5

// RoundMetrics reports one completed FL round.
type RoundMetrics struct {
	Round    int
	Loss     float64 // mean local training loss across trainers
	Detected bool    // any malicious aggregation caught this round
	Applied  bool    // the global model advanced (false when blocked)
	// LateFolded counts stashed straggler deltas from earlier rounds
	// folded into this round's global model (age-discounted).
	LateFolded int
}

// NewTask validates shapes and creates a task. The model instance is used
// as shared scratch space for local training (rounds run trainers
// sequentially for determinism); initial is the starting global parameter
// vector.
func NewTask(s *Session, m ml.Model, locals map[string]*ml.Dataset, sgd ml.SGDConfig, initial []float64) (*Task, error) {
	if m.Dim() != s.cfg.Spec.Dim {
		return nil, fmt.Errorf("core: model dim %d != task dim %d", m.Dim(), s.cfg.Spec.Dim)
	}
	if len(initial) != m.Dim() {
		return nil, fmt.Errorf("core: initial params have length %d, want %d", len(initial), m.Dim())
	}
	for _, tr := range s.cfg.Trainers {
		d, ok := locals[tr]
		if !ok || d.Len() == 0 {
			return nil, fmt.Errorf("core: trainer %s has no local data", tr)
		}
	}
	return &Task{
		session: s,
		model:   m,
		locals:  locals,
		sgd:     sgd,
		global:  append([]float64(nil), initial...),
	}, nil
}

// Resume fast-forwards a freshly constructed task past rounds that already
// completed in a previous process life — the trainer-side catch-up of a
// restart on durable state. For each consecutive round whose final updates
// are all published (a non-blocking directory probe, so an in-flight round
// never stalls the caller), the published global updates are collected and
// applied; the task's round counter continues after the replayed rounds.
// Returns the number of rounds replayed.
func (t *Task) Resume(ctx context.Context) (int, error) {
	replayed := 0
	for {
		complete := true
		for p := 0; p < t.session.cfg.Spec.Partitions; p++ {
			if _, err := t.session.dir.Update(ctx, t.round, p); err != nil {
				if errors.Is(err, directory.ErrNotFound) {
					complete = false
					break
				}
				return replayed, fmt.Errorf("core: resume probe round %d: %w", t.round, err)
			}
		}
		if !complete {
			return replayed, nil
		}
		avg, err := t.session.TrainerCollect(ctx, t.round)
		if err != nil {
			return replayed, fmt.Errorf("core: resume round %d: %w", t.round, err)
		}
		for i := range t.global {
			t.global[i] += avg[i]
		}
		t.round++
		replayed++
	}
}

// Global returns a copy of the current global parameter vector.
func (t *Task) Global() []float64 {
	return append([]float64(nil), t.global...)
}

// Round returns the number of completed rounds.
func (t *Task) Round() int { return t.round }

// LocalDeltas computes every trainer's deterministic local delta for the
// given round from the current global model. Exposed so experiments can
// compare against the centralized FedAvg reference.
func (t *Task) LocalDeltas(round int) (map[string][]float64, float64, error) {
	return t.localDeltas(round, nil)
}

// localDeltas is LocalDeltas minus the absent trainers. Seeds stay keyed
// by each trainer's configured index, so the trainers that do run produce
// the same deltas they would in a full round.
func (t *Task) localDeltas(round int, absent map[string]bool) (map[string][]float64, float64, error) {
	deltas := make(map[string][]float64, len(t.session.cfg.Trainers))
	var totalLoss float64
	trained := 0
	for idx, tr := range t.session.cfg.Trainers {
		if absent[tr] {
			continue
		}
		cfg := t.sgd
		cfg.Seed = ml.ParticipantSeed(int64(round), idx)
		delta, loss, err := ml.LocalDelta(t.model, t.locals[tr], t.global, cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("core: trainer %s local training: %w", tr, err)
		}
		deltas[tr] = delta
		totalLoss += loss
		trained++
	}
	if trained == 0 {
		return nil, 0, fmt.Errorf("core: every trainer is absent in round %d", round)
	}
	return deltas, totalLoss / float64(trained), nil
}

// RoundOptions extends RunRound for churn and fault scenarios.
type RoundOptions struct {
	// Behaviors injects per-aggregator deviations (nil for all-honest).
	Behaviors map[string]Behavior
	// Absent lists trainers crashed this round: they neither train nor
	// upload, and aggregation proceeds on the partial set at t_train.
	Absent map[string]bool
	// Standbys maps partition -> standby aggregator (IterationOptions).
	Standbys map[int]string
	// Late lists trainers that train this round but miss the upload
	// window: their deltas are stashed and folded into the next applied
	// round with an age-discounted weight (see lateDecay).
	Late map[string]bool
	// Corrupt lists trainers uploading Byzantine gradients this round
	// (IterationOptions.Corrupt).
	Corrupt map[string]bool
	// Quorum and QuorumWait enable m-of-n rounds
	// (IterationOptions.Quorum); invalid in verifiable mode.
	Quorum     float64
	QuorumWait time.Duration
}

// RunRound executes one FL round with the given per-aggregator behaviors
// (nil for all-honest). If the protocol blocks a malicious round, the
// global model is left unchanged and Applied is false.
func (t *Task) RunRound(ctx context.Context, behaviors map[string]Behavior) (RoundMetrics, *IterationResult, error) {
	return t.RunRoundOpts(ctx, RoundOptions{Behaviors: behaviors})
}

// RunRoundOpts is RunRound under churn and faults: absent trainers skip
// the round entirely, late trainers train but miss the upload window
// (their deltas fold into the next applied round), and standby
// aggregators watch their assigned partitions.
func (t *Task) RunRoundOpts(ctx context.Context, opts RoundOptions) (RoundMetrics, *IterationResult, error) {
	round := t.round
	train := t.session.startSpan("train", "trainers", round, obs.SpanContext{})
	deltas, loss, err := t.localDeltas(round, opts.Absent)
	train.endErr(err)
	if err != nil {
		return RoundMetrics{}, nil, err
	}
	// Stragglers trained, but their uploads miss the round (Algorithm 1,
	// 10-12): pull their deltas out of the iteration and stash them.
	stashed := 0
	for tr, isLate := range opts.Late {
		if !isLate {
			continue
		}
		d, ok := deltas[tr]
		if !ok {
			continue // also absent: nothing was trained
		}
		delete(deltas, tr)
		t.late = append(t.late, lateDelta{trainer: tr, round: round, delta: d})
		stashed++
	}
	if stashed > 0 && len(deltas) == 0 {
		return RoundMetrics{}, nil, fmt.Errorf("core: every trainer is late in round %d", round)
	}
	res, err := t.session.runIteration(ctx, obs.SpanContext{}, round, deltas, opts.Behaviors,
		IterationOptions{
			AllowAbsent: len(opts.Absent) > 0 || stashed > 0,
			Standbys:    opts.Standbys,
			Quorum:      opts.Quorum,
			QuorumWait:  opts.QuorumWait,
			Corrupt:     opts.Corrupt,
		})
	if err != nil {
		return RoundMetrics{}, res, err
	}
	metrics := RoundMetrics{Round: round, Loss: loss, Detected: res.Detected()}
	if len(res.Incomplete) == 0 && res.AvgDelta != nil {
		for i := range t.global {
			t.global[i] += res.AvgDelta[i]
		}
		metrics.Applied = true
		metrics.LateFolded = t.foldLate(round)
	}
	t.round++
	return metrics, res, nil
}

// foldLate folds stashed deltas from rounds before the current one into
// the global model, each weighted lateDecay^age/n — the straggler's
// averaged contribution, discounted per round of staleness. Entries
// stashed this round stay for the next applied round.
func (t *Task) foldLate(round int) int {
	if len(t.late) == 0 {
		return 0
	}
	folded := 0
	n := float64(len(t.session.cfg.Trainers))
	kept := t.late[:0]
	for _, ld := range t.late {
		if ld.round >= round {
			kept = append(kept, ld)
			continue
		}
		age := round - ld.round
		w := math.Pow(lateDecay, float64(age)) / n
		for i := range t.global {
			t.global[i] += w * ld.delta[i]
		}
		folded++
		t.session.emit(EventLateFolded, ld.trainer, round, -1,
			"folded round-%d delta at weight %.3g (%d rounds late)", ld.round, w, age)
	}
	t.late = kept
	return folded
}

// Evaluate sets the model to the current global parameters and scores it.
func (t *Task) Evaluate(d *ml.Dataset) (accuracy, loss float64, err error) {
	if err := t.model.SetParams(t.global); err != nil {
		return 0, 0, err
	}
	return ml.Accuracy(t.model, d), ml.Loss(t.model, d), nil
}

// CentralizedRound computes what one round of centralized FedAvg (the
// reference the paper's §V compares against) would produce from the same
// state, without touching the task.
func (t *Task) CentralizedRound(round int) ([]float64, error) {
	locals := make([]*ml.Dataset, len(t.session.cfg.Trainers))
	for i, tr := range t.session.cfg.Trainers {
		locals[i] = t.locals[tr]
	}
	cfg := t.sgd
	cfg.Seed = int64(round)
	next, _, err := ml.FedAvgRound(t.model, t.global, locals, cfg)
	return next, err
}
