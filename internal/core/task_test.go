package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"ipls/internal/ml"
)

// newMLTask builds a small end-to-end FL task over an in-memory stack.
func newMLTask(t *testing.T, verifiable bool, aggsPerPartition int, nonIID bool) (*Task, *ml.Dataset) {
	t.Helper()
	const trainers = 8
	m := ml.NewLogistic(4, 4) // dim = 4*(4+1) = 20
	data := ml.Blobs(480, 4, 4, 0.8, 77)

	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	ts := TaskSpec{
		TaskID:                  "ml-task",
		ModelDim:                m.Dim(),
		Partitions:              4,
		Trainers:                names,
		AggregatorsPerPartition: aggsPerPartition,
		StorageNodes:            []string{"s0", "s1", "s2", "s3"},
		ProvidersPerAggregator:  2,
		Verifiable:              verifiable,
		TTrain:                  3 * time.Second,
		TSync:                   3 * time.Second,
		PollInterval:            time.Millisecond,
	}
	cfg, err := NewConfig(ts)
	if err != nil {
		t.Fatal(err)
	}
	sess, _, _, err := NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var splits []*ml.Dataset
	if nonIID {
		splits, err = data.SplitLabelSkew(trainers, 2, 78)
	} else {
		splits, err = data.SplitIID(trainers, 78)
	}
	if err != nil {
		t.Fatal(err)
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}
	task, err := NewTask(sess, m, locals, sgd, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	return task, data
}

func TestTaskConvergesIID(t *testing.T) {
	task, data := newMLTask(t, false, 1, false)
	accStart, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		metrics, _, err := task.RunRound(context.Background(), nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied", round)
		}
	}
	accEnd, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if accEnd < 0.85 || accEnd <= accStart {
		t.Fatalf("decentralized FL did not converge: %v -> %v", accStart, accEnd)
	}
	if task.Round() != 8 {
		t.Fatalf("Round() = %d", task.Round())
	}
}

func TestDecentralizedMatchesCentralizedFedAvg(t *testing.T) {
	// §V "Convergence and Accuracy": the decentralized aggregation is
	// exactly FedAvg. The only deviation is fixed-point quantization, so
	// parameters must agree to within the quantization granularity.
	task, _ := newMLTask(t, true, 2, true)
	for round := 0; round < 3; round++ {
		want, err := task.CentralizedRound(round)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := task.RunRound(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		got := task.Global()
		bound := math.Ldexp(1, -20) // 2^-24 per value, ~16x slack
		for i := range got {
			if math.Abs(got[i]-want[i]) > bound {
				t.Fatalf("round %d param %d: decentralized %v vs centralized %v",
					round, i, got[i], want[i])
			}
		}
	}
}

func TestTaskBlockedRoundDoesNotAdvanceModel(t *testing.T) {
	task, _ := newMLTask(t, true, 1, false)
	before := task.Global()
	evil := AggregatorID(0, 0)
	metrics, res, err := task.RunRound(context.Background(),
		map[string]Behavior{evil: BehaviorForgeUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Applied {
		t.Fatal("blocked round must not apply")
	}
	if !metrics.Detected || !res.Detected() {
		t.Fatal("forged update not detected")
	}
	after := task.Global()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("global model changed in a blocked round")
		}
	}
	// The next (honest) round proceeds normally.
	metrics, _, err = task.RunRound(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.Applied {
		t.Fatal("honest round after a blocked one should apply")
	}
}

func TestTaskNonIIDConverges(t *testing.T) {
	task, data := newMLTask(t, false, 2, true)
	for round := 0; round < 10; round++ {
		if _, _, err := task.RunRound(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	acc, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Fatalf("non-IID accuracy %v < 0.75", acc)
	}
}

func TestNewTaskValidation(t *testing.T) {
	task, _ := newMLTask(t, false, 1, false)
	sess := task.session
	m := ml.NewLogistic(4, 4)
	locals := task.locals
	sgd := task.sgd
	if _, err := NewTask(sess, ml.NewLogistic(2, 2), locals, sgd, make([]float64, 6)); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, err := NewTask(sess, m, locals, sgd, make([]float64, 3)); err == nil {
		t.Fatal("expected initial length error")
	}
	if _, err := NewTask(sess, m, map[string]*ml.Dataset{}, sgd, m.Params()); err == nil {
		t.Fatal("expected missing-data error")
	}
}
