package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EventKind classifies protocol trace events.
type EventKind int

// Protocol events, in rough lifecycle order.
const (
	EventGradientUploaded EventKind = iota + 1
	EventGradientsCollected
	EventMergeDownload
	EventPartialPublished
	EventPartialVerified
	EventPartialInvalid
	EventTakeover
	EventGlobalPublished
	EventGlobalRejected
	EventUpdateCollected
	EventScreenedOut
	EventStandbyTakeover
	EventTrainerRejoin
	EventAlertFiring
	EventAlertResolved
	EventQuorumProceed
	EventByzantineReject
	EventByzantineQuarantine
	EventLateFolded
)

var eventKindNames = map[EventKind]string{
	EventGradientUploaded:    "gradient-uploaded",
	EventGradientsCollected:  "gradients-collected",
	EventMergeDownload:       "merge-download",
	EventPartialPublished:    "partial-published",
	EventPartialVerified:     "partial-verified",
	EventPartialInvalid:      "partial-invalid",
	EventTakeover:            "takeover",
	EventGlobalPublished:     "global-published",
	EventGlobalRejected:      "global-rejected",
	EventUpdateCollected:     "update-collected",
	EventScreenedOut:         "screened-out",
	EventStandbyTakeover:     "standby-takeover",
	EventTrainerRejoin:       "trainer-rejoin",
	EventAlertFiring:         "alert-firing",
	EventAlertResolved:       "alert-resolved",
	EventQuorumProceed:       "quorum-proceed",
	EventByzantineReject:     "byzantine-reject",
	EventByzantineQuarantine: "byzantine-quarantine",
	EventLateFolded:          "late-folded",
}

// String names the event kind.
func (k EventKind) String() string {
	if name, ok := eventKindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// EventKindFromString parses a kind name back (the inverse of String),
// accepting the event(N) form for kinds this build does not know.
func EventKindFromString(s string) (EventKind, error) {
	for k, name := range eventKindNames {
		if name == s {
			return k, nil
		}
	}
	if inner, ok := strings.CutPrefix(s, "event("); ok {
		if num, ok := strings.CutSuffix(inner, ")"); ok {
			n, err := strconv.Atoi(num)
			if err == nil {
				return EventKind(n), nil
			}
		}
	}
	return 0, fmt.Errorf("core: unknown event kind %q", s)
}

// MarshalJSON renders the kind as its name, keeping exported JSONL traces
// readable and stable across builds.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind name (or a legacy numeric kind).
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		var n int
		if err2 := json.Unmarshal(data, &n); err2 == nil {
			*k = EventKind(n)
			return nil
		}
		return err
	}
	kind, err := EventKindFromString(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Event is one protocol occurrence. The JSON field names are the stable
// JSONL trace schema documented in README.md.
type Event struct {
	Time      time.Time `json:"time"`
	Kind      EventKind `json:"kind"`
	Actor     string    `json:"actor"`
	Iter      int       `json:"iter"`
	Partition int       `json:"partition"`
	// Bytes is the payload size the event refers to (uploaded block,
	// merged download, collected update); zero when not applicable.
	Bytes  int64  `json:"bytes,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// String renders the event for logs. The timestamp is RFC 3339 with
// nanoseconds, so lines exported from different nodes stay orderable.
func (e Event) String() string {
	return fmt.Sprintf("%s [iter %d part %d] %-20s %-12s %s",
		e.Time.Format(time.RFC3339Nano), e.Iter, e.Partition, e.Kind, e.Actor, e.Detail)
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent use (trainers and aggregators emit from their own goroutines).
type Tracer interface {
	Emit(e Event)
}

// SetTracer attaches a tracer to the session (nil detaches).
func (s *Session) SetTracer(t Tracer) { s.tracer = t }

// emit sends an event to the tracer, if any.
func (s *Session) emit(kind EventKind, actor string, iter, partition int, format string, args ...any) {
	s.emitBytes(kind, actor, iter, partition, 0, format, args...)
}

// emitBytes sends an event carrying a payload size to the tracer, if any.
// Timestamps come from the session clock (SetClock), so virtual-time
// harnesses produce traces in their own timeline.
func (s *Session) emitBytes(kind EventKind, actor string, iter, partition int, bytes int64, format string, args ...any) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{
		Time:      s.now(),
		Kind:      kind,
		Actor:     actor,
		Iter:      iter,
		Partition: partition,
		Bytes:     bytes,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Recorder is a Tracer that accumulates events in memory. The zero value
// is unbounded (every event is retained); NewRecorder builds a bounded one
// that evicts oldest-first, so long simulated runs cannot accumulate
// millions of events.
type Recorder struct {
	mu       sync.Mutex
	events   []Event
	capacity int // <= 0: unbounded
	start    int // ring head once a bounded recorder is full
	dropped  int
}

var _ Tracer = (*Recorder)(nil)

// NewRecorder creates a recorder retaining at most capacity events
// (capacity <= 0 means unbounded). When full, the oldest event is evicted
// and counted in Dropped.
func NewRecorder(capacity int) *Recorder {
	return &Recorder{capacity: capacity}
}

// Emit stores the event, evicting the oldest when a capacity is set.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.capacity > 0 && len(r.events) == r.capacity {
		r.events[r.start] = e
		r.start = (r.start + 1) % r.capacity
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped reports how many events were evicted to stay within capacity.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Count returns how many retained events have the kind.
func (r *Recorder) Count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
