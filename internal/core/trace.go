package core

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies protocol trace events.
type EventKind int

// Protocol events, in rough lifecycle order.
const (
	EventGradientUploaded EventKind = iota + 1
	EventGradientsCollected
	EventMergeDownload
	EventPartialPublished
	EventPartialVerified
	EventPartialInvalid
	EventTakeover
	EventGlobalPublished
	EventGlobalRejected
	EventUpdateCollected
	EventScreenedOut
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventGradientUploaded:
		return "gradient-uploaded"
	case EventGradientsCollected:
		return "gradients-collected"
	case EventMergeDownload:
		return "merge-download"
	case EventPartialPublished:
		return "partial-published"
	case EventPartialVerified:
		return "partial-verified"
	case EventPartialInvalid:
		return "partial-invalid"
	case EventTakeover:
		return "takeover"
	case EventGlobalPublished:
		return "global-published"
	case EventGlobalRejected:
		return "global-rejected"
	case EventUpdateCollected:
		return "update-collected"
	case EventScreenedOut:
		return "screened-out"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one protocol occurrence.
type Event struct {
	Time      time.Time
	Kind      EventKind
	Actor     string
	Iter      int
	Partition int
	Detail    string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[iter %d part %d] %-20s %-12s %s", e.Iter, e.Partition, e.Kind, e.Actor, e.Detail)
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent use (trainers and aggregators emit from their own goroutines).
type Tracer interface {
	Emit(e Event)
}

// SetTracer attaches a tracer to the session (nil detaches).
func (s *Session) SetTracer(t Tracer) { s.tracer = t }

// emit sends an event to the tracer, if any.
func (s *Session) emit(kind EventKind, actor string, iter, partition int, format string, args ...any) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(Event{
		Time:      time.Now(),
		Kind:      kind,
		Actor:     actor,
		Iter:      iter,
		Partition: partition,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Recorder is a Tracer that accumulates events in memory.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*Recorder)(nil)

// Emit stores the event.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of the kind were recorded.
func (r *Recorder) Count(kind EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
