package core

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsHonestIteration(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.ProvidersPerAggregator = 1
		ts.Verifiable = true
	})
	rec := &Recorder{}
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 95)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	// 4 trainers x 3 partitions gradients.
	if got := rec.Count(EventGradientUploaded); got != 12 {
		t.Fatalf("gradient-uploaded events = %d, want 12", got)
	}
	// 6 aggregators (3 partitions x 2) each collect once and publish a partial.
	if got := rec.Count(EventGradientsCollected); got != 6 {
		t.Fatalf("gradients-collected events = %d, want 6", got)
	}
	if got := rec.Count(EventPartialPublished); got != 6 {
		t.Fatalf("partial-published events = %d, want 6", got)
	}
	// Exactly one global per partition.
	if got := rec.Count(EventGlobalPublished); got != 3 {
		t.Fatalf("global-published events = %d, want 3", got)
	}
	// One trainer (the result collection) reads 3 updates.
	if got := rec.Count(EventUpdateCollected); got != 3 {
		t.Fatalf("update-collected events = %d, want 3", got)
	}
	if got := rec.Count(EventGlobalRejected); got != 0 {
		t.Fatal("honest run must not be rejected")
	}
	// Events render usefully.
	events := rec.Events()
	if len(events) == 0 || !strings.Contains(events[0].String(), "iter 0") {
		t.Fatalf("event formatting broken: %v", events[0])
	}
}

func TestTracerRecordsDetectionAndTakeover(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
		ts.TSync = time.Second
	})
	rec := &Recorder{}
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 96)
	evil := AggregatorID(0, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{evil: BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("not detected")
	}
	if rec.Count(EventPartialInvalid) == 0 {
		t.Fatal("no partial-invalid event recorded")
	}
	if rec.Count(EventTakeover) == 0 {
		t.Fatal("no takeover event recorded")
	}
	// The takeover must be attributed to the honest peer redoing the evil
	// aggregator's partition, with the timestamp populated.
	for _, e := range rec.Events() {
		if e.Kind != EventTakeover {
			continue
		}
		if e.Actor == evil {
			t.Fatalf("takeover attributed to the malicious aggregator: %v", e)
		}
		if e.Partition != 0 || e.Iter != 0 {
			t.Fatalf("takeover event misaddressed: %v", e)
		}
		if e.Time.IsZero() {
			t.Fatalf("takeover event has no timestamp: %v", e)
		}
		if !strings.Contains(e.Detail, evil) {
			t.Fatalf("takeover detail does not name the replaced peer: %v", e)
		}
	}
}

func TestTracerRecordsScreenedOut(t *testing.T) {
	// Screening is incompatible with verifiable mode, so this exercises the
	// non-verifiable path.
	sess, _, _ := testStack(t, func(ts *TaskSpec) { ts.ScreenNorm = 100 })
	rec := NewRecorder(256)
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 97)
	for i := range deltas["t3"] {
		deltas["t3"][i] = 1e6 // way past the norm bound
	}
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	if rec.Count(EventScreenedOut) == 0 {
		t.Fatal("no screened-out event recorded")
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == EventScreenedOut && strings.Contains(e.Detail, "t3") {
			found = true
		}
	}
	if !found {
		t.Fatal("screened-out event does not name the poisoned trainer")
	}
}

func TestRecorderCapacityEvictsOldest(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Emit(Event{Iter: i})
	}
	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Iter != i+2 { // 0 and 1 evicted; 2,3,4 retained oldest-first
			t.Fatalf("events[%d].Iter = %d, want %d", i, e.Iter, i+2)
		}
	}
	if rec.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", rec.Dropped())
	}
}

func TestRecorderZeroValueIsUnbounded(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 100; i++ {
		rec.Emit(Event{Iter: i})
	}
	if len(rec.Events()) != 100 || rec.Dropped() != 0 {
		t.Fatalf("zero-value recorder: %d events, %d dropped", len(rec.Events()), rec.Dropped())
	}
}

func TestEventStringIncludesTimestamp(t *testing.T) {
	at := time.Date(2026, 3, 14, 15, 9, 26, 535_000_000, time.UTC)
	e := Event{Time: at, Kind: EventTakeover, Actor: "agg-0-0", Iter: 2, Partition: 1, Detail: "x"}
	s := e.String()
	if !strings.Contains(s, "2026-03-14T15:09:26.535Z") {
		t.Fatalf("event string %q missing RFC 3339 timestamp", s)
	}
	if !strings.Contains(s, "takeover") || !strings.Contains(s, "iter 2") {
		t.Fatalf("event string %q lost kind or iteration", s)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventGradientUploaded, EventGradientsCollected, EventMergeDownload,
		EventPartialPublished, EventPartialVerified, EventPartialInvalid,
		EventTakeover, EventGlobalPublished, EventGlobalRejected,
		EventUpdateCollected, EventScreenedOut,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "event(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Fatal("unknown kind formatting wrong")
	}
}
