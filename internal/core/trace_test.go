package core

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsHonestIteration(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.ProvidersPerAggregator = 1
		ts.Verifiable = true
	})
	rec := &Recorder{}
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 95)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	// 4 trainers x 3 partitions gradients.
	if got := rec.Count(EventGradientUploaded); got != 12 {
		t.Fatalf("gradient-uploaded events = %d, want 12", got)
	}
	// 6 aggregators (3 partitions x 2) each collect once and publish a partial.
	if got := rec.Count(EventGradientsCollected); got != 6 {
		t.Fatalf("gradients-collected events = %d, want 6", got)
	}
	if got := rec.Count(EventPartialPublished); got != 6 {
		t.Fatalf("partial-published events = %d, want 6", got)
	}
	// Exactly one global per partition.
	if got := rec.Count(EventGlobalPublished); got != 3 {
		t.Fatalf("global-published events = %d, want 3", got)
	}
	// One trainer (the result collection) reads 3 updates.
	if got := rec.Count(EventUpdateCollected); got != 3 {
		t.Fatalf("update-collected events = %d, want 3", got)
	}
	if got := rec.Count(EventGlobalRejected); got != 0 {
		t.Fatal("honest run must not be rejected")
	}
	// Events render usefully.
	events := rec.Events()
	if len(events) == 0 || !strings.Contains(events[0].String(), "iter 0") {
		t.Fatalf("event formatting broken: %v", events[0])
	}
}

func TestTracerRecordsDetectionAndTakeover(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.Verifiable = true
		ts.TSync = time.Second
	})
	rec := &Recorder{}
	sess.SetTracer(rec)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 96)
	evil := AggregatorID(0, 1)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]Behavior{evil: BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("not detected")
	}
	if rec.Count(EventPartialInvalid) == 0 {
		t.Fatal("no partial-invalid event recorded")
	}
	if rec.Count(EventTakeover) == 0 {
		t.Fatal("no takeover event recorded")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EventGradientUploaded, EventGradientsCollected, EventMergeDownload,
		EventPartialPublished, EventPartialVerified, EventPartialInvalid,
		EventTakeover, EventGlobalPublished, EventGlobalRejected,
		EventUpdateCollected, EventScreenedOut,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "event(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Fatal("unknown kind formatting wrong")
	}
}
