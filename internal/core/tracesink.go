package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// JSONLTracer streams protocol events to a writer as JSON Lines, one event
// per line, in bounded memory: events are encoded as they happen instead
// of accumulating like a Recorder. It is safe for concurrent emitters.
type JSONLTracer struct {
	mu      sync.Mutex
	buf     *bufio.Writer
	emitted int
	failed  int
	err     error
}

var _ Tracer = (*JSONLTracer)(nil)

// NewJSONLTracer wraps w in a buffered JSONL sink. Call Flush (or Close)
// before reading what was written.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{buf: bufio.NewWriter(w)}
}

// Emit writes the event as one JSON line. Write errors are retained (see
// Err) and subsequent events are dropped rather than blocking the
// protocol.
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.failed++
		return
	}
	line, err := json.Marshal(e)
	if err == nil {
		_, err = t.buf.Write(append(line, '\n'))
	}
	if err != nil {
		t.err = err
		t.failed++
		return
	}
	t.emitted++
}

// Flush forces buffered lines to the underlying writer.
func (t *JSONLTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.buf.Flush()
}

// Close flushes the sink. It does not close the underlying writer (the
// caller owns it).
func (t *JSONLTracer) Close() error { return t.Flush() }

// Emitted returns how many events were successfully encoded.
func (t *JSONLTracer) Emitted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many events were lost to write errors.
func (t *JSONLTracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// Err returns the first write error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// MultiTracer fans every event out to several tracers (e.g. a bounded
// Recorder for /events plus a JSONL file sink).
type MultiTracer []Tracer

var _ Tracer = (MultiTracer)(nil)

// Emit forwards the event to every non-nil tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}

// ReadJSONL parses a JSONL event stream produced by JSONLTracer. Blank
// lines are skipped; a malformed line aborts with an error naming it.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("core: trace line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read trace: %w", err)
	}
	return events, nil
}

// IterationSummary condenses one iteration's event stream into the
// latency and byte measurements the paper's evaluation plots (§V).
type IterationSummary struct {
	Iter   int       `json:"iter"`
	Events int       `json:"events"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Latency spans the iteration's first event to its last.
	Latency time.Duration `json:"latency_ns"`
	// BytesUploaded sums payloads pushed into storage (gradients, partial
	// and global updates); BytesDownloaded sums payloads pulled out
	// (merged downloads, verified partials, collected updates).
	BytesUploaded   int64 `json:"bytes_uploaded"`
	BytesDownloaded int64 `json:"bytes_downloaded"`
	GradientUploads int   `json:"gradient_uploads"`
	MergeDownloads  int   `json:"merge_downloads"`
	PartialsInvalid int   `json:"partials_invalid"`
	Takeovers       int   `json:"takeovers"`
	ScreenedOut     int   `json:"screened_out"`
	GlobalsAccepted int   `json:"globals_accepted"`
	GlobalsRejected int   `json:"globals_rejected"`
}

// SummarizeTrace folds an event stream into per-iteration summaries,
// sorted by iteration. Events may arrive in any order (merged logs from
// several nodes work, provided their clocks are comparable).
func SummarizeTrace(events []Event) []IterationSummary {
	byIter := make(map[int]*IterationSummary)
	for _, e := range events {
		s, ok := byIter[e.Iter]
		if !ok {
			s = &IterationSummary{Iter: e.Iter, Start: e.Time, End: e.Time}
			byIter[e.Iter] = s
		}
		s.Events++
		if e.Time.Before(s.Start) {
			s.Start = e.Time
		}
		if e.Time.After(s.End) {
			s.End = e.Time
		}
		switch e.Kind {
		case EventGradientUploaded:
			s.GradientUploads++
			s.BytesUploaded += e.Bytes
		case EventPartialPublished, EventGlobalPublished:
			s.BytesUploaded += e.Bytes
			if e.Kind == EventGlobalPublished {
				s.GlobalsAccepted++
			}
		case EventMergeDownload:
			s.MergeDownloads++
			s.BytesDownloaded += e.Bytes
		case EventPartialVerified, EventUpdateCollected:
			s.BytesDownloaded += e.Bytes
		case EventPartialInvalid:
			s.PartialsInvalid++
		case EventTakeover:
			s.Takeovers++
		case EventScreenedOut:
			s.ScreenedOut++
		case EventGlobalRejected:
			s.GlobalsRejected++
		}
	}
	out := make([]IterationSummary, 0, len(byIter))
	for _, s := range byIter {
		s.Latency = s.End.Sub(s.Start)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out
}
