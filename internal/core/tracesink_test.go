package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLTracer(&buf)
	in := []Event{
		{Time: time.Unix(100, 0).UTC(), Kind: EventGradientUploaded, Actor: "t0", Iter: 0, Partition: 1, Bytes: 321, Detail: "cid abc"},
		{Time: time.Unix(101, 0).UTC(), Kind: EventMergeDownload, Actor: "aggregator", Iter: 0, Partition: 1, Bytes: 128},
		{Time: time.Unix(102, 0).UTC(), Kind: EventGlobalPublished, Actor: "a-0-0", Iter: 0, Partition: 1, Bytes: 64},
	}
	for _, e := range in {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Emitted() != len(in) || sink.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d", sink.Emitted(), sink.Dropped())
	}
	// Kinds serialize as stable names, not ints.
	if !strings.Contains(buf.String(), `"kind":"gradient-uploaded"`) {
		t.Fatalf("trace line lost kind name:\n%s", buf.String())
	}
	out, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Time.Equal(in[i].Time) || out[i].Kind != in[i].Kind ||
			out[i].Actor != in[i].Actor || out[i].Bytes != in[i].Bytes ||
			out[i].Detail != in[i].Detail {
			t.Fatalf("event %d mangled: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLRejectsMalformedLine(t *testing.T) {
	input := `{"time":"2026-01-01T00:00:00Z","kind":"takeover","actor":"a","iter":0,"partition":0}
not json
`
	if _, err := ReadJSONL(strings.NewReader(input)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line not reported with its number: %v", err)
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestJSONLTracerRetainsWriteError(t *testing.T) {
	sink := NewJSONLTracer(&failingWriter{after: 0})
	sink.Emit(Event{Kind: EventTakeover})
	if err := sink.Flush(); err == nil {
		// The buffered writer may absorb the first line; force it out.
		sink.Emit(Event{Kind: EventTakeover, Detail: strings.Repeat("x", 1<<16)})
		if err := sink.Flush(); err == nil {
			t.Fatal("write error swallowed")
		}
	}
	sink.Emit(Event{Kind: EventTakeover})
	if sink.Dropped() == 0 {
		t.Fatal("events after a write error must count as dropped")
	}
	if sink.Err() == nil {
		t.Fatal("first error not retained")
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	mt := MultiTracer{a, nil, b}
	mt.Emit(Event{Kind: EventTakeover})
	if a.Count(EventTakeover) != 1 || b.Count(EventTakeover) != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a.Count(EventTakeover), b.Count(EventTakeover))
	}
}

func TestSummarizeTraceFromLiveRun(t *testing.T) {
	sess, _, _ := testStack(t, func(ts *TaskSpec) {
		ts.AggregatorsPerPartition = 2
		ts.ProvidersPerAggregator = 1
	})
	var buf bytes.Buffer
	sink := NewJSONLTracer(&buf)
	sess.SetTracer(sink)
	deltas, _ := randomDeltas(sess.Config().Trainers, 24, 98)
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeTrace(events)
	if len(sums) != 1 || sums[0].Iter != 0 {
		t.Fatalf("summaries = %+v", sums)
	}
	s := sums[0]
	if s.Events != len(events) || s.Events == 0 {
		t.Fatalf("summary covers %d of %d events", s.Events, len(events))
	}
	// 4 trainers x 3 partitions gradients, each with a payload size.
	if s.GradientUploads != 12 {
		t.Fatalf("gradient uploads = %d, want 12", s.GradientUploads)
	}
	if s.BytesUploaded <= 0 || s.BytesDownloaded <= 0 {
		t.Fatalf("byte accounting empty: up=%d down=%d", s.BytesUploaded, s.BytesDownloaded)
	}
	if s.MergeDownloads == 0 {
		t.Fatal("merge-and-download runs must summarize merge downloads")
	}
	if s.Latency <= 0 {
		t.Fatalf("latency = %v", s.Latency)
	}
	if s.GlobalsAccepted != 3 {
		t.Fatalf("globals accepted = %d, want 3", s.GlobalsAccepted)
	}
}

func TestSummarizeTraceGroupsByIteration(t *testing.T) {
	base := time.Unix(1000, 0)
	events := []Event{
		{Time: base, Kind: EventGradientUploaded, Iter: 1, Bytes: 10},
		{Time: base.Add(2 * time.Second), Kind: EventGlobalPublished, Iter: 1, Bytes: 5},
		{Time: base.Add(time.Second), Kind: EventTakeover, Iter: 0},
		{Time: base.Add(3 * time.Second), Kind: EventScreenedOut, Iter: 0},
	}
	sums := SummarizeTrace(events)
	if len(sums) != 2 || sums[0].Iter != 0 || sums[1].Iter != 1 {
		t.Fatalf("summaries out of order: %+v", sums)
	}
	if sums[0].Takeovers != 1 || sums[0].ScreenedOut != 1 {
		t.Fatalf("iter 0 miscounted: %+v", sums[0])
	}
	if sums[1].BytesUploaded != 15 || sums[1].Latency != 2*time.Second {
		t.Fatalf("iter 1 miscounted: %+v", sums[1])
	}
}

func TestSummarizeTraceEmpty(t *testing.T) {
	if sums := SummarizeTrace(nil); len(sums) != 0 {
		t.Fatalf("empty stream: %+v", sums)
	}
}

func TestSummarizeTraceOutOfOrderTimestamps(t *testing.T) {
	// Merged per-node logs interleave arbitrarily; latency must span
	// earliest to latest regardless of arrival order.
	base := time.Unix(2000, 0)
	events := []Event{
		{Time: base.Add(4 * time.Second), Kind: EventGlobalPublished, Iter: 0, Bytes: 1},
		{Time: base, Kind: EventGradientUploaded, Iter: 0, Bytes: 1},
		{Time: base.Add(2 * time.Second), Kind: EventMergeDownload, Iter: 0, Bytes: 1},
	}
	sums := SummarizeTrace(events)
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if !sums[0].Start.Equal(base) || !sums[0].End.Equal(base.Add(4*time.Second)) {
		t.Fatalf("window = %v..%v", sums[0].Start, sums[0].End)
	}
	if sums[0].Latency != 4*time.Second {
		t.Fatalf("latency = %v, want 4s", sums[0].Latency)
	}
}

func TestSummarizeTraceSingleEvent(t *testing.T) {
	sums := SummarizeTrace([]Event{{Time: time.Unix(5, 0), Kind: EventTakeover, Iter: 7}})
	if len(sums) != 1 || sums[0].Iter != 7 || sums[0].Latency != 0 || sums[0].Events != 1 {
		t.Fatalf("single-event summary: %+v", sums)
	}
}

func TestSummarizeTraceAfterRecorderEviction(t *testing.T) {
	// A bounded recorder that dropped events still summarizes what it
	// kept — the summary window just narrows to the retained suffix.
	rec := NewRecorder(2)
	base := time.Unix(3000, 0)
	for i := 0; i < 5; i++ {
		rec.Emit(Event{Time: base.Add(time.Duration(i) * time.Second), Kind: EventGradientUploaded, Iter: 0, Bytes: 1})
	}
	if rec.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", rec.Dropped())
	}
	sums := SummarizeTrace(rec.Events())
	if len(sums) != 1 || sums[0].GradientUploads != 2 {
		t.Fatalf("summaries after eviction: %+v", sums)
	}
	if !sums[0].Start.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("window start = %v, want the retained suffix", sums[0].Start)
	}
}
