package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ipls/internal/obs"
)

// Round watchdog: live detection of stuck rounds and straggling
// trainers. Every phase span a session (or the simulator) emits doubles
// as a heartbeat — the watchdog implements obs.SpanSink, so it slots
// into the same MultiSpanSink fan-out as JSONL writers and collectors,
// and works identically over wall-clock sessions and netsim virtual
// time. Phase durations feed a Monitor's sliding windows (where
// declarative alert rules evaluate them); heartbeat gaps beyond the
// deadline feed the stuck-round rule; and per-actor latencies are
// compared against the window p90 to flag stragglers.

// StuckRoundAlert names the watchdog's built-in heartbeat-gap rule.
const StuckRoundAlert = "stuck_round"

// WatchdogConfig configures a Watchdog.
type WatchdogConfig struct {
	// StuckAfter is the heartbeat deadline: a gap longer than this
	// between consecutive phase transitions raises the stuck-round
	// alarm. <= 0 disables stuck detection. In real sessions this should
	// track the failover deadline (a takeover also produces spans, so a
	// successful failover resolves the alarm).
	StuckAfter time.Duration
	// StragglerFactor flags an actor whose latest phase latency exceeds
	// this multiple of the phase's window p90. <= 0 means 3.
	StragglerFactor float64
	// MinSamples suppresses straggler detection until the phase window
	// holds at least this many observations. <= 0 means 5.
	MinSamples uint64
}

// lastObs is the most recent phase latency seen from one actor.
type lastObs struct {
	actor, phase string
	seconds      float64
	at           time.Time
}

// Watchdog turns the span stream into heartbeats, straggler flags and
// stuck-round alarms, feeding an obs.Monitor for rule evaluation.
type Watchdog struct {
	mon *obs.Monitor
	cfg WatchdogConfig

	mu       sync.Mutex
	beats    int64
	lastBeat time.Time
	maxGap   time.Duration
	last     map[string]lastObs // key actor+"\x00"+phase
}

var _ obs.SpanSink = (*Watchdog)(nil)

// NewWatchdog creates a watchdog feeding mon. When cfg.StuckAfter > 0
// the stuck-round rule is registered on mon automatically.
func NewWatchdog(mon *obs.Monitor, cfg WatchdogConfig) *Watchdog {
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 3
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 5
	}
	w := &Watchdog{mon: mon, cfg: cfg, last: make(map[string]lastObs)}
	if cfg.StuckAfter > 0 {
		// Gap observations are only recorded when they exceed the
		// deadline, so any observation at all means stuck.
		_ = mon.AddRule(obs.AlertRule{
			Name:      StuckRoundAlert,
			Metric:    obs.MetricHeartbeatGap,
			Stat:      "max",
			Threshold: cfg.StuckAfter.Seconds(),
		})
	}
	return w
}

// Monitor returns the monitor the watchdog feeds.
func (w *Watchdog) Monitor() *obs.Monitor { return w.mon }

// EmitSpan treats a completed phase span as a heartbeat: its duration is
// observed as phase_latency (phase = span name), its end stamp advances
// the heartbeat clock, and any gap since the previous heartbeat beyond
// the deadline is observed as heartbeat_gap — all stamped in span time,
// so simulated runs evaluate deterministically.
func (w *Watchdog) EmitSpan(s obs.Span) {
	if w == nil || s.End.IsZero() {
		return
	}
	w.mon.Observe(s.End, obs.MetricPhaseLatency, s.Name, s.Duration().Seconds())
	w.mu.Lock()
	if w.beats > 0 && s.End.After(w.lastBeat) {
		gap := s.End.Sub(w.lastBeat)
		if gap > w.maxGap {
			w.maxGap = gap
		}
		if w.cfg.StuckAfter > 0 && gap > w.cfg.StuckAfter {
			defer w.mon.Observe(s.End, obs.MetricHeartbeatGap, "", gap.Seconds())
		}
	}
	if s.End.After(w.lastBeat) {
		w.lastBeat = s.End
	}
	w.beats++
	if s.Actor != "" {
		w.last[s.Actor+"\x00"+s.Name] = lastObs{
			actor:   s.Actor,
			phase:   s.Name,
			seconds: s.Duration().Seconds(),
			at:      s.End,
		}
	}
	w.mu.Unlock()
}

// Heartbeat stamps a beat without a phase observation (e.g. at session
// start, so the stuck clock has a baseline before the first phase ends).
func (w *Watchdog) Heartbeat(now time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if now.After(w.lastBeat) {
		w.lastBeat = now
	}
	w.beats++
	w.mu.Unlock()
}

// Evaluate checks for an in-progress stall (no heartbeat within the
// deadline as of now) and then evaluates every alert rule. Hook this to
// a ticker in live runs or netsim's OnAdvance in simulations.
func (w *Watchdog) Evaluate(now time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	stalled := w.cfg.StuckAfter > 0 && w.beats > 0 && now.Sub(w.lastBeat) > w.cfg.StuckAfter
	var gap time.Duration
	if stalled {
		gap = now.Sub(w.lastBeat)
		if gap > w.maxGap {
			w.maxGap = gap
		}
	}
	w.mu.Unlock()
	if stalled {
		w.mon.Observe(now, obs.MetricHeartbeatGap, "", gap.Seconds())
	}
	w.mon.Evaluate(now)
}

// Check reports whether rounds are progressing: nil before the first
// heartbeat (nothing started yet) and while heartbeats are within the
// deadline; an error when the session looks stuck as of now. It has the
// signature of an obs.Readiness component check.
func (w *Watchdog) Check(now time.Time) error {
	if w == nil || w.cfg.StuckAfter <= 0 {
		return nil
	}
	w.mu.Lock()
	beats, last := w.beats, w.lastBeat
	w.mu.Unlock()
	if beats == 0 {
		return nil
	}
	if gap := now.Sub(last); gap > w.cfg.StuckAfter {
		return fmt.Errorf("core: no heartbeat for %v (deadline %v)", gap.Round(time.Millisecond), w.cfg.StuckAfter)
	}
	return nil
}

// MaxGap reports the largest heartbeat gap seen so far.
func (w *Watchdog) MaxGap() time.Duration {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxGap
}

// Stragglers flags actors whose most recent latency in some phase
// exceeds StragglerFactor times that phase's window p90 as of now,
// sorted worst first. Phases with fewer than MinSamples observations in
// the window are skipped — with two trainers there is no crowd to
// stand out from.
func (w *Watchdog) Stragglers(now time.Time) []obs.Straggler {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	recents := make([]lastObs, 0, len(w.last))
	for _, lo := range w.last {
		recents = append(recents, lo)
	}
	w.mu.Unlock()
	var out []obs.Straggler
	for _, lo := range recents {
		snap := w.mon.Series(now, obs.MetricPhaseLatency, lo.phase)
		if snap.Count < w.cfg.MinSamples || snap.P90 <= 0 {
			continue
		}
		if lo.seconds > w.cfg.StragglerFactor*snap.P90 {
			out = append(out, obs.Straggler{
				Actor:       lo.actor,
				Phase:       lo.phase,
				LastSeconds: lo.seconds,
				P90Seconds:  snap.P90,
				Ratio:       lo.seconds / snap.P90,
				At:          lo.at,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Status assembles the /alerts document as of now: the monitor's rule
// states and windows plus the watchdog's straggler list.
func (w *Watchdog) Status(now time.Time) obs.HealthStatus {
	if w == nil {
		return obs.HealthStatus{GeneratedAt: now}
	}
	st := w.mon.Status(now)
	st.Stragglers = w.Stragglers(now)
	return st
}
