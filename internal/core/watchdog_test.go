package core

import (
	"testing"
	"time"

	"ipls/internal/netsim"
	"ipls/internal/obs"
)

// simBase anchors the simulator's virtual clock (see Simulate).
var simBase = time.Unix(0, 0).UTC()

func TestWatchdogHeartbeatsAndStuckDetection(t *testing.T) {
	mon := obs.NewMonitor(obs.MonitorConfig{Window: 30 * time.Second})
	wd := NewWatchdog(mon, WatchdogConfig{StuckAfter: time.Second})

	span := func(name, actor string, start, end time.Duration) obs.Span {
		return obs.Span{
			Name: name, Actor: actor,
			Context: obs.SpanContext{Session: "t", SpanID: obs.NewSpanID()},
			Start:   simBase.Add(start), End: simBase.Add(end),
		}
	}
	wd.EmitSpan(span("upload", "trainer-00", 0, 100*time.Millisecond))
	wd.EmitSpan(span("upload", "trainer-01", 0, 200*time.Millisecond))
	wd.Evaluate(simBase.Add(300 * time.Millisecond))
	if err := wd.Check(simBase.Add(300 * time.Millisecond)); err != nil {
		t.Fatalf("healthy cadence flagged: %v", err)
	}
	if firing := mon.Firing(); len(firing) != 0 {
		t.Fatalf("firing = %v on healthy cadence", firing)
	}

	// Silence past the deadline: Check fails and the stuck_round rule
	// fires on the next evaluation.
	late := simBase.Add(5 * time.Second)
	if err := wd.Check(late); err == nil {
		t.Fatal("stalled session passed Check")
	}
	wd.Evaluate(late)
	if firing := mon.Firing(); len(firing) != 1 || firing[0] != StuckRoundAlert {
		t.Fatalf("firing = %v, want [%s]", firing, StuckRoundAlert)
	}
	if wd.MaxGap() < 4*time.Second {
		t.Fatalf("max gap = %v", wd.MaxGap())
	}

	// A late heartbeat (e.g. a takeover span) resumes the cadence. The
	// takeover span itself records the 5.8s gap, so the alarm holds...
	wd.EmitSpan(span("takeover", "agg-p0-1", 5*time.Second, 6*time.Second))
	wd.Evaluate(simBase.Add(6 * time.Second))
	if firing := mon.Firing(); len(firing) != 1 {
		t.Fatalf("firing = %v right after recovery, want stuck_round held", firing)
	}
	// ...until a sustained healthy cadence slides the window past every
	// over-deadline gap observation.
	var recovered time.Time
	for at := 6500 * time.Millisecond; at <= 40*time.Second; at += 500 * time.Millisecond {
		wd.EmitSpan(span("upload", "trainer-00", at-100*time.Millisecond, at))
		recovered = simBase.Add(at)
	}
	wd.Evaluate(recovered)
	if firing := mon.Firing(); len(firing) != 0 {
		t.Fatalf("firing = %v after recovery, want none", firing)
	}
	if err := wd.Check(recovered); err != nil {
		t.Fatalf("recovered session flagged: %v", err)
	}
}

func TestWatchdogStragglerDetection(t *testing.T) {
	mon := obs.NewMonitor(obs.MonitorConfig{Window: 30 * time.Second})
	wd := NewWatchdog(mon, WatchdogConfig{StragglerFactor: 3, MinSamples: 5})
	end := 500 * time.Millisecond
	for i, d := range []time.Duration{
		100 * time.Millisecond, 110 * time.Millisecond, 90 * time.Millisecond,
		120 * time.Millisecond, 100 * time.Millisecond, 95 * time.Millisecond,
		105 * time.Millisecond, 100 * time.Millisecond, 110 * time.Millisecond,
		100 * time.Millisecond, 95 * time.Millisecond, 10 * time.Second, // trainer-11 straggles
	} {
		actor := string(rune('a' + i))
		if i == 11 {
			actor = "trainer-11"
		}
		wd.EmitSpan(obs.Span{
			Name: "upload", Actor: actor,
			Context: obs.SpanContext{Session: "t", SpanID: obs.NewSpanID()},
			Start:   simBase, End: simBase.Add(end + d),
		})
	}
	at := simBase.Add(11 * time.Second)
	got := wd.Stragglers(at)
	if len(got) != 1 || got[0].Actor != "trainer-11" || got[0].Phase != "upload" {
		t.Fatalf("stragglers = %+v, want trainer-11/upload", got)
	}
	if got[0].Ratio < 3 {
		t.Fatalf("ratio = %v, want > straggler factor", got[0].Ratio)
	}
	st := wd.Status(at)
	if len(st.Stragglers) != 1 {
		t.Fatalf("status stragglers = %+v", st.Stragglers)
	}
}

// TestSimulateStragglerFiresAlerts is the acceptance scenario: a
// deterministic netsim run with one trainer's links degraded by a
// LossWindow must fire the phase_latency alert, trip the stuck-round
// watchdog under virtual time, and flag the trainer as a straggler —
// all without wall-clock dependence.
func TestSimulateStragglerFiresAlerts(t *testing.T) {
	// A window wider than the whole run keeps every observation in scope
	// at the end-of-run evaluation, so the final alert state is a stable
	// assertion target rather than a race against window sliding.
	mon := obs.NewMonitor(obs.MonitorConfig{Window: 10 * time.Minute})
	if err := mon.AddRule(obs.AlertRule{
		Name:   "upload_latency",
		Metric: obs.MetricPhaseLatency,
		Phase:  "upload",
		Stat:   "max",
		// The healthy fleet uploads in well under a second; the
		// straggler takes tens of seconds.
		Threshold: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	wd := NewWatchdog(mon, WatchdogConfig{StuckAfter: 2 * time.Second, MinSamples: 5})

	collector := obs.NewSpanCollector(4096)
	res, err := Simulate(SimConfig{
		Trainers:                12,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		StorageNodes:            4,
		PartitionBytes:          1 << 20,
		BandwidthMbps:           100,
		// trainer-00's links run at 1% capacity for the first minute:
		// its 1 MiB upload takes ~100× longer than the fleet's.
		LinkLoss: []netsim.LossWindow{{Node: "trainer-00", From: 0, To: time.Minute, Factor: 0.01}},
		Spans:    collector,
		Watchdog: wd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UploadDelayMax < 5*time.Second {
		t.Fatalf("straggler not slow: max upload delay %v", res.UploadDelayMax)
	}

	end := simBase.Add(res.TotalDelay)
	firing := map[string]bool{}
	for _, name := range mon.Firing() {
		firing[name] = true
	}
	if !firing["upload_latency"] {
		t.Fatalf("phase_latency alert not firing: %v", mon.Alerts())
	}
	if !firing[StuckRoundAlert] {
		t.Fatalf("stuck-round alarm not firing: %v", mon.Alerts())
	}
	if wd.MaxGap() <= 2*time.Second {
		t.Fatalf("max heartbeat gap = %v, want past the deadline", wd.MaxGap())
	}
	stragglers := wd.Stragglers(end)
	found := false
	for _, s := range stragglers {
		if s.Actor == "trainer-00" && s.Phase == "upload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trainer-00 not flagged: %+v", stragglers)
	}
	// The Watchdog shares the span fan-out rather than replacing it.
	if len(collector.Spans()) == 0 {
		t.Fatal("span collector starved by the watchdog")
	}

	// Determinism: the same config reproduces the same alert values.
	mon2 := obs.NewMonitor(obs.MonitorConfig{Window: 10 * time.Minute})
	if err := mon2.AddRule(obs.AlertRule{
		Name: "upload_latency", Metric: obs.MetricPhaseLatency,
		Phase: "upload", Stat: "max", Threshold: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	wd2 := NewWatchdog(mon2, WatchdogConfig{StuckAfter: 2 * time.Second, MinSamples: 5})
	if _, err := Simulate(SimConfig{
		Trainers: 12, Partitions: 1, AggregatorsPerPartition: 1,
		StorageNodes: 4, PartitionBytes: 1 << 20, BandwidthMbps: 100,
		LinkLoss: []netsim.LossWindow{{Node: "trainer-00", From: 0, To: time.Minute, Factor: 0.01}},
		Watchdog: wd2,
	}); err != nil {
		t.Fatal(err)
	}
	a1, a2 := mon.Alerts(), mon2.Alerts()
	if len(a1) != len(a2) {
		t.Fatalf("alert counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Rule.Name != a2[i].Rule.Name || a1[i].State != a2[i].State ||
			a1[i].Value != a2[i].Value || !a1[i].Since.Equal(a2[i].Since) {
			t.Fatalf("alert %d not deterministic:\n%+v\n%+v", i, a1[i], a2[i])
		}
	}
}
