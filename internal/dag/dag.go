// Package dag implements chunked, Merkle-linked content addressing, the
// way IPFS actually stores large objects: data is split into chunks, each
// chunk is a content-addressed leaf block, and internal nodes list their
// children's CIDs and sizes. The root CID authenticates the entire object,
// every block can be fetched (and verified) independently from different
// nodes, and tampering with any block anywhere in the tree is detected on
// assembly.
//
// Model partitions in this codebase are usually ~1 MB, so the flat
// single-block path is fine for the protocol; the DAG layer exists for
// larger models and to keep the storage substrate faithful to IPFS
// semantics.
package dag

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"ipls/internal/cid"
)

// DefaultChunkSize matches IPFS's default 256 KiB chunker.
const DefaultChunkSize = 256 * 1024

// Fanout is the maximum number of children per internal node.
const Fanout = 32

// Block type tags.
const (
	tagLeaf     = 0x00
	tagInternal = 0x01
)

// Ref identifies a DAG (sub)tree: the block's CID and the total payload
// size beneath it.
type Ref struct {
	CID  cid.CID `json:"cid"`
	Size int64   `json:"size"`
}

// ErrCorrupt indicates a fetched block did not match its CID or shape.
var ErrCorrupt = errors.New("dag: corrupt block")

// childEntry is the serialized form of one child reference: a 32-byte raw
// digest followed by the subtree size.
const childEntrySize = cid.Size + 8

// Build chunks data and returns the root reference plus every block of the
// DAG, keyed by CID. chunkSize <= 0 selects the default.
func Build(data []byte, chunkSize int) (Ref, map[cid.CID][]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	blocks := make(map[cid.CID][]byte)

	// Leaf level.
	var level []Ref
	if len(data) == 0 {
		leaf := []byte{tagLeaf}
		c := cid.Sum(leaf)
		blocks[c] = leaf
		level = []Ref{{CID: c, Size: 0}}
	}
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		leaf := make([]byte, 1+end-off)
		leaf[0] = tagLeaf
		copy(leaf[1:], data[off:end])
		c := cid.Sum(leaf)
		blocks[c] = leaf
		level = append(level, Ref{CID: c, Size: int64(end - off)})
	}

	// Collapse levels until a single root remains.
	for len(level) > 1 {
		var next []Ref
		for off := 0; off < len(level); off += Fanout {
			end := off + Fanout
			if end > len(level) {
				end = len(level)
			}
			node, ref, err := encodeInternal(level[off:end])
			if err != nil {
				return Ref{}, nil, err
			}
			blocks[ref.CID] = node
			next = append(next, ref)
		}
		level = next
	}
	return level[0], blocks, nil
}

// encodeInternal serializes an internal node over the given children.
func encodeInternal(children []Ref) ([]byte, Ref, error) {
	buf := make([]byte, 5, 5+len(children)*childEntrySize)
	buf[0] = tagInternal
	binary.BigEndian.PutUint32(buf[1:], uint32(len(children)))
	var total int64
	for _, ch := range children {
		raw, err := hex.DecodeString(string(ch.CID))
		if err != nil || len(raw) != cid.Size {
			return nil, Ref{}, fmt.Errorf("dag: malformed child CID %q", ch.CID)
		}
		var sz [8]byte
		binary.BigEndian.PutUint64(sz[:], uint64(ch.Size))
		buf = append(buf, raw...)
		buf = append(buf, sz[:]...)
		total += ch.Size
	}
	c := cid.Sum(buf)
	return buf, Ref{CID: c, Size: total}, nil
}

// decodeInternal parses an internal node's child list.
func decodeInternal(block []byte) ([]Ref, error) {
	if len(block) < 5 {
		return nil, fmt.Errorf("%w: internal node too short", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(block[1:5]))
	want := 5 + n*childEntrySize
	if len(block) != want {
		return nil, fmt.Errorf("%w: internal node length %d != %d", ErrCorrupt, len(block), want)
	}
	children := make([]Ref, n)
	for i := 0; i < n; i++ {
		off := 5 + i*childEntrySize
		children[i] = Ref{
			CID:  cid.CID(hex.EncodeToString(block[off : off+cid.Size])),
			Size: int64(binary.BigEndian.Uint64(block[off+cid.Size : off+childEntrySize])),
		}
	}
	return children, nil
}

// Fetcher retrieves a raw block by CID.
type Fetcher func(c cid.CID) ([]byte, error)

// Assemble reconstructs the object under root, verifying every block's CID
// and the declared sizes along the way.
func Assemble(root Ref, fetch Fetcher) ([]byte, error) {
	out := make([]byte, 0, root.Size)
	var walk func(ref Ref) error
	walk = func(ref Ref) error {
		block, err := fetch(ref.CID)
		if err != nil {
			return fmt.Errorf("dag: fetch %s: %w", ref.CID.Short(), err)
		}
		if !cid.Verify(block, ref.CID) {
			return fmt.Errorf("%w: %s fails CID check", ErrCorrupt, ref.CID.Short())
		}
		if len(block) == 0 {
			return fmt.Errorf("%w: empty block", ErrCorrupt)
		}
		switch block[0] {
		case tagLeaf:
			if int64(len(block)-1) != ref.Size {
				return fmt.Errorf("%w: leaf size %d != declared %d", ErrCorrupt, len(block)-1, ref.Size)
			}
			out = append(out, block[1:]...)
			return nil
		case tagInternal:
			children, err := decodeInternal(block)
			if err != nil {
				return err
			}
			var total int64
			for _, ch := range children {
				total += ch.Size
			}
			if total != ref.Size {
				return fmt.Errorf("%w: children sum %d != declared %d", ErrCorrupt, total, ref.Size)
			}
			for _, ch := range children {
				if err := walk(ch); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("%w: unknown block tag %#x", ErrCorrupt, block[0])
		}
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// Blocks returns the number of blocks a payload of the given size chunks
// into (leaves plus internal nodes).
func Blocks(size int64, chunkSize int) int {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	leaves := int((size + int64(chunkSize) - 1) / int64(chunkSize))
	if leaves == 0 {
		leaves = 1
	}
	total := leaves
	level := leaves
	for level > 1 {
		level = (level + Fanout - 1) / Fanout
		total += level
	}
	return total
}
