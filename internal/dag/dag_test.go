package dag

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ipls/internal/cid"
)

func buildAndAssemble(t *testing.T, data []byte, chunkSize int) []byte {
	t.Helper()
	root, blocks, err := Build(data, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assemble(root, func(c cid.CID) ([]byte, error) {
		b, ok := blocks[c]
		if !ok {
			return nil, fmt.Errorf("missing block %s", c.Short())
		}
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripVariousSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 99, 100, 101, 1000, 10_000, 123_456} {
		data := make([]byte, size)
		rng.Read(data)
		got := buildAndAssemble(t, data, 100)
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestDefaultChunkSize(t *testing.T) {
	data := make([]byte, 1000)
	got := buildAndAssemble(t, data, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("default chunk size round trip failed")
	}
	// Small payloads fit in one leaf.
	root, blocks, err := Build(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || root.Size != 1000 {
		t.Fatalf("expected single leaf, got %d blocks (root size %d)", len(blocks), root.Size)
	}
}

func TestDeepTree(t *testing.T) {
	// chunk 10 bytes, fanout 32: 3200 chunks needs 2+ levels.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 32_000)
	rng.Read(data)
	root, blocks, err := Build(data, 10)
	if err != nil {
		t.Fatal(err)
	}
	if want := Blocks(32_000, 10); len(blocks) != want {
		t.Fatalf("block count %d != Blocks() prediction %d", len(blocks), want)
	}
	got, err := Assemble(root, func(c cid.CID) ([]byte, error) { return blocks[c], nil })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("deep tree round trip mismatch")
	}
}

func TestRootIsDeterministic(t *testing.T) {
	data := []byte("identical content must produce identical roots")
	r1, _, err := Build(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Build(append([]byte(nil), data...), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("roots differ for identical content")
	}
	r3, _, err := Build([]byte("different content entirely here"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CID == r3.CID {
		t.Fatal("different content collided")
	}
}

func TestTamperedLeafDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 5_000)
	rng.Read(data)
	root, blocks, err := Build(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with every block in turn; assembly must always fail.
	for victim := range blocks {
		mutated := make(map[cid.CID][]byte, len(blocks))
		for k, v := range blocks {
			cp := append([]byte(nil), v...)
			if k == victim {
				cp[len(cp)/2] ^= 0x01
			}
			mutated[k] = cp
		}
		_, err := Assemble(root, func(c cid.CID) ([]byte, error) { return mutated[c], nil })
		if err == nil {
			t.Fatalf("tampering with %s went undetected", victim.Short())
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	data := make([]byte, 500)
	root, blocks, err := Build(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Missing block.
	_, err = Assemble(root, func(c cid.CID) ([]byte, error) { return nil, errors.New("gone") })
	if err == nil {
		t.Fatal("missing block not reported")
	}
	// Wrong declared size at the root.
	badRoot := root
	badRoot.Size++
	_, err = Assemble(badRoot, func(c cid.CID) ([]byte, error) { return blocks[c], nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size mismatch not reported: %v", err)
	}
	// A block substituted with valid CID but wrong tag: craft an empty
	// block whose CID we claim — CID check fires first, which is fine.
	garbage := cid.Sum([]byte{0x7f})
	_, err = Assemble(Ref{CID: garbage, Size: 0}, func(c cid.CID) ([]byte, error) { return []byte{0x7f}, nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown tag not reported: %v", err)
	}
}

func TestBlocksPrediction(t *testing.T) {
	tests := []struct {
		size      int64
		chunk     int
		wantLeafs int
	}{
		{0, 10, 1},
		{5, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{320, 10, 32}, // exactly one full fanout: 32 leaves + 1 internal
	}
	rng := rand.New(rand.NewSource(4))
	for _, tt := range tests {
		// Random data so identical chunks don't dedupe (content
		// addressing folds equal chunks into one block).
		data := make([]byte, tt.size)
		rng.Read(data)
		_, blocks, err := Build(data, tt.chunk)
		if err != nil {
			t.Fatal(err)
		}
		if got := Blocks(tt.size, tt.chunk); got != len(blocks) {
			t.Fatalf("size %d chunk %d: Blocks()=%d, actual %d", tt.size, tt.chunk, got, len(blocks))
		}
	}
	if Blocks(1000, 0) < 1 {
		t.Fatal("default chunk Blocks() broken")
	}
}
