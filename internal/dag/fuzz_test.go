package dag

import (
	"bytes"
	"testing"

	"ipls/internal/cid"
)

// FuzzBuildAssemble builds a DAG from arbitrary data with an arbitrary
// chunk size and checks the round trip is exact.
func FuzzBuildAssemble(f *testing.F) {
	f.Add([]byte("hello dag"), 4)
	f.Add([]byte{}, 1)
	f.Add(make([]byte, 1000), 7)
	f.Fuzz(func(t *testing.T, data []byte, chunkSize int) {
		if chunkSize < 1 || chunkSize > 1<<20 || len(data) > 1<<16 {
			return
		}
		root, blocks, err := Build(data, chunkSize)
		if err != nil {
			t.Fatalf("Build failed on valid input: %v", err)
		}
		got, err := Assemble(root, func(c cid.CID) ([]byte, error) {
			return blocks[c], nil
		})
		if err != nil {
			t.Fatalf("Assemble failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzAssembleHostile feeds the assembler hostile blocks: it must reject
// or return, never panic, and never return wrong-sized data.
func FuzzAssembleHostile(f *testing.F) {
	f.Add([]byte{tagLeaf, 1, 2, 3}, int64(3))
	f.Add([]byte{tagInternal, 0, 0, 0, 0}, int64(0))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, block []byte, size int64) {
		if size < 0 || size > 1<<20 {
			return
		}
		root := Ref{CID: cid.Sum(block), Size: size}
		out, err := Assemble(root, func(c cid.CID) ([]byte, error) {
			return block, nil
		})
		if err == nil && int64(len(out)) != size {
			t.Fatal("assembler returned data that contradicts the declared size")
		}
	})
}
