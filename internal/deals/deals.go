// Package deals implements a miniature storage-deal market in the spirit
// of Filecoin, the mechanism the paper's §VI proposes for guaranteeing
// gradient availability: the task launcher pays storage nodes per epoch to
// keep blocks alive, nodes post collateral, and random retrieval audits
// slash nodes that cannot produce the data they are paid for.
//
// The market is deliberately small — no chain, no zk proofs-of-storage —
// but it exercises the economic loop end to end: escrow, per-epoch
// payment, audit, slashing, and expiry. Since protocol blocks are only
// needed briefly (§VI), deals are short-lived.
package deals

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ipls/internal/cid"
)

// Retriever is the market's view of the storage network: enough to audit
// that a node can still produce a block.
type Retriever interface {
	Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error)
}

// Config sets the market's economic parameters.
type Config struct {
	// PricePerEpoch is what the client pays a node per stored block per
	// epoch.
	PricePerEpoch int64
	// Collateral is what a node escrows per deal; it is slashed to the
	// client on a failed audit.
	Collateral int64
	// DurationEpochs is how many epochs a deal lasts.
	DurationEpochs int
	// AuditProbability is the chance a given active deal is audited in
	// an epoch (0..1].
	AuditProbability float64
}

func (c Config) validate() error {
	if c.PricePerEpoch <= 0 || c.Collateral < 0 || c.DurationEpochs <= 0 {
		return fmt.Errorf("deals: invalid economic parameters %+v", c)
	}
	if c.AuditProbability <= 0 || c.AuditProbability > 1 {
		return fmt.Errorf("deals: audit probability must be in (0,1], got %v", c.AuditProbability)
	}
	return nil
}

// Errors reported by the market.
var (
	// ErrInsufficientFunds indicates the payer cannot cover the escrow.
	ErrInsufficientFunds = errors.New("deals: insufficient funds")
	// ErrUnknownAccount indicates the account was never funded.
	ErrUnknownAccount = errors.New("deals: unknown account")
)

// Client is the account name of the task launcher.
const Client = "client"

// DealState tracks a deal's lifecycle.
type DealState int

// Deal states.
const (
	DealActive DealState = iota + 1
	DealCompleted
	DealSlashed
)

// String names the state.
func (s DealState) String() string {
	switch s {
	case DealActive:
		return "active"
	case DealCompleted:
		return "completed"
	case DealSlashed:
		return "slashed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Deal is one storage agreement.
type Deal struct {
	ID         int
	Node       string
	CID        cid.CID
	StartEpoch int
	EndEpoch   int
	State      DealState
}

// AuditResult reports one audit performed during an epoch advance.
type AuditResult struct {
	DealID  int
	Node    string
	CID     cid.CID
	Passed  bool
	Slashed int64
}

// Market is the deal ledger and escrow.
type Market struct {
	mu       sync.Mutex
	cfg      Config
	store    Retriever
	rng      *rand.Rand
	epoch    int
	nextID   int
	balances map[string]int64
	escrow   map[int]int64 // dealID -> remaining client escrow + collateral
	deals    map[int]*Deal
}

// NewMarket creates a market over a storage backend. The seed makes audit
// selection deterministic for reproducible experiments.
func NewMarket(store Retriever, cfg Config, seed int64) (*Market, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Market{
		cfg:      cfg,
		store:    store,
		rng:      rand.New(rand.NewSource(seed)),
		balances: make(map[string]int64),
		escrow:   make(map[int]int64),
		deals:    make(map[int]*Deal),
	}, nil
}

// Fund credits an account.
func (m *Market) Fund(account string, amount int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.balances[account] += amount
}

// Balance returns an account's liquid balance (escrow excluded).
func (m *Market) Balance(account string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.balances[account]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAccount, account)
	}
	return b, nil
}

// Epoch returns the current epoch.
func (m *Market) Epoch() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Propose opens a deal: the client escrows the full duration's payment and
// the node escrows its collateral.
func (m *Market) Propose(node string, c cid.CID) (*Deal, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	payment := m.cfg.PricePerEpoch * int64(m.cfg.DurationEpochs)
	if m.balances[Client] < payment {
		return nil, fmt.Errorf("%w: client needs %d", ErrInsufficientFunds, payment)
	}
	if m.balances[node] < m.cfg.Collateral {
		return nil, fmt.Errorf("%w: node %q needs %d collateral", ErrInsufficientFunds, node, m.cfg.Collateral)
	}
	m.balances[Client] -= payment
	m.balances[node] -= m.cfg.Collateral
	deal := &Deal{
		ID:         m.nextID,
		Node:       node,
		CID:        c,
		StartEpoch: m.epoch,
		EndEpoch:   m.epoch + m.cfg.DurationEpochs,
		State:      DealActive,
	}
	m.nextID++
	m.deals[deal.ID] = deal
	m.escrow[deal.ID] = payment + m.cfg.Collateral
	return deal, nil
}

// Deal returns a copy of the deal with the given ID.
func (m *Market) Deal(id int) (Deal, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.deals[id]
	if !ok {
		return Deal{}, fmt.Errorf("deals: no deal %d", id)
	}
	return *d, nil
}

// ActiveDeals lists active deals sorted by ID.
func (m *Market) ActiveDeals() []Deal {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Deal
	for _, d := range m.deals {
		if d.State == DealActive {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AdvanceEpoch moves time forward one epoch: every active deal pays the
// node for the elapsed epoch, randomly selected deals are audited (the
// node must produce bytes matching the CID), failed audits slash the
// node's collateral to the client, and expired deals release their
// collateral back to the node.
func (m *Market) AdvanceEpoch(ctx context.Context) []AuditResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	var results []AuditResult
	ids := make([]int, 0, len(m.deals))
	for id, d := range m.deals {
		if d.State == DealActive {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := m.deals[id]
		// Pay the node for this epoch from escrow.
		m.balances[d.Node] += m.cfg.PricePerEpoch
		m.escrow[id] -= m.cfg.PricePerEpoch

		// Random retrieval audit.
		if m.rng.Float64() < m.cfg.AuditProbability {
			res := AuditResult{DealID: id, Node: d.Node, CID: d.CID, Passed: true}
			data, err := m.store.Get(ctx, d.Node, d.CID)
			if err != nil || !cid.Verify(data, d.CID) {
				res.Passed = false
				res.Slashed = m.cfg.Collateral
				// Slash: collateral goes to the client, along with any
				// unspent payment escrow.
				m.balances[Client] += m.escrow[id]
				m.escrow[id] = 0
				d.State = DealSlashed
			}
			results = append(results, res)
		}
		if d.State == DealActive && m.epoch >= d.EndEpoch {
			// Deal served its full term: release the collateral.
			m.balances[d.Node] += m.cfg.Collateral
			m.escrow[id] -= m.cfg.Collateral
			d.State = DealCompleted
		}
	}
	return results
}

// TotalEscrow returns the tokens currently locked in deals (conservation
// checks in tests rely on it).
func (m *Market) TotalEscrow() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, v := range m.escrow {
		total += v
	}
	return total
}
