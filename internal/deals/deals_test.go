package deals

import (
	"context"
	"errors"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/group"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

func marketFixture(t *testing.T, cfg Config) (*Market, *storage.Network, cid.CID) {
	t.Helper()
	field := scalar.NewField(group.Secp256k1().N)
	net := storage.NewNetwork(field, 1)
	net.AddNode("node-a")
	net.AddNode("node-b")
	c, err := net.Put(context.Background(), "node-a", []byte("gradient block under deal"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(net, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Fund(Client, 10_000)
	m.Fund("node-a", 1_000)
	m.Fund("node-b", 1_000)
	return m, net, c
}

func defaultCfg() Config {
	return Config{PricePerEpoch: 10, Collateral: 100, DurationEpochs: 5, AuditProbability: 1}
}

func TestHonestDealPaysNode(t *testing.T) {
	m, _, c := marketFixture(t, defaultCfg())
	deal, err := m.Propose("node-a", c)
	if err != nil {
		t.Fatal(err)
	}
	// Escrow: 5 epochs x 10 payment + 100 collateral.
	if got := m.TotalEscrow(); got != 150 {
		t.Fatalf("escrow = %d, want 150", got)
	}
	for e := 0; e < 5; e++ {
		for _, res := range m.AdvanceEpoch(context.Background()) {
			if !res.Passed {
				t.Fatalf("honest audit failed at epoch %d", e)
			}
		}
	}
	got, err := m.Deal(deal.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != DealCompleted {
		t.Fatalf("state = %v, want completed", got.State)
	}
	// Node: 1000 - 100 collateral + 5*10 payment + 100 back = 1050.
	if b, _ := m.Balance("node-a"); b != 1050 {
		t.Fatalf("node balance = %d, want 1050", b)
	}
	// Client paid exactly 50.
	if b, _ := m.Balance(Client); b != 9950 {
		t.Fatalf("client balance = %d, want 9950", b)
	}
	if m.TotalEscrow() != 0 {
		t.Fatal("escrow not fully released")
	}
}

func TestLostBlockIsSlashed(t *testing.T) {
	m, net, c := marketFixture(t, defaultCfg())
	deal, err := m.Propose("node-a", c)
	if err != nil {
		t.Fatal(err)
	}
	// The node drops the block after one epoch.
	results := m.AdvanceEpoch(context.Background())
	if len(results) != 1 || !results[0].Passed {
		t.Fatalf("epoch 1 audit: %+v", results)
	}
	if err := net.Delete("node-a", c); err != nil {
		t.Fatal(err)
	}
	results = m.AdvanceEpoch(context.Background())
	if len(results) != 1 || results[0].Passed {
		t.Fatalf("expected failed audit, got %+v", results)
	}
	if results[0].Slashed != 100 {
		t.Fatalf("slashed = %d, want 100", results[0].Slashed)
	}
	got, _ := m.Deal(deal.ID)
	if got.State != DealSlashed {
		t.Fatalf("state = %v, want slashed", got.State)
	}
	// Node lost its collateral: 1000 - 100 + 2x10 payments = 920.
	if b, _ := m.Balance("node-a"); b != 920 {
		t.Fatalf("node balance = %d, want 920", b)
	}
	// Client got the collateral plus unspent escrow back.
	if b, _ := m.Balance(Client); b != 10_000-50+100+30 {
		t.Fatalf("client balance = %d", b)
	}
	if m.TotalEscrow() != 0 {
		t.Fatal("escrow leaked after slash")
	}
}

func TestCorruptedBlockIsSlashed(t *testing.T) {
	m, net, c := marketFixture(t, defaultCfg())
	if _, err := m.Propose("node-a", c); err != nil {
		t.Fatal(err)
	}
	if err := net.Corrupt("node-a", c); err != nil {
		t.Fatal(err)
	}
	results := m.AdvanceEpoch(context.Background())
	if len(results) != 1 || results[0].Passed {
		t.Fatal("corrupted data must fail the audit")
	}
}

func TestDownNodeIsSlashed(t *testing.T) {
	m, net, c := marketFixture(t, defaultCfg())
	if _, err := m.Propose("node-a", c); err != nil {
		t.Fatal(err)
	}
	if err := net.Fail("node-a"); err != nil {
		t.Fatal(err)
	}
	results := m.AdvanceEpoch(context.Background())
	if len(results) != 1 || results[0].Passed {
		t.Fatal("unreachable node must fail the audit")
	}
}

func TestTokenConservation(t *testing.T) {
	// Across any sequence of events, liquid balances + escrow must be
	// constant.
	m, net, c := marketFixture(t, Config{PricePerEpoch: 7, Collateral: 55, DurationEpochs: 3, AuditProbability: 0.5})
	total := func() int64 {
		a, _ := m.Balance(Client)
		b, _ := m.Balance("node-a")
		d, _ := m.Balance("node-b")
		return a + b + d + m.TotalEscrow()
	}
	start := total()
	c2, err := net.Put(context.Background(), "node-b", []byte("second block"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Propose("node-a", c); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Propose("node-b", c2); err != nil {
		t.Fatal(err)
	}
	if err := net.Delete("node-b", c2); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		m.AdvanceEpoch(context.Background())
		if got := total(); got != start {
			t.Fatalf("epoch %d: tokens not conserved: %d != %d", e, got, start)
		}
	}
}

func TestInsufficientFunds(t *testing.T) {
	m, _, c := marketFixture(t, defaultCfg())
	m.Fund(Client, -10_000) // drain
	if _, err := m.Propose("node-a", c); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("expected ErrInsufficientFunds, got %v", err)
	}
	m.Fund(Client, 10_000)
	m.Fund("node-a", -1_000)
	if _, err := m.Propose("node-a", c); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("expected node ErrInsufficientFunds, got %v", err)
	}
}

func TestMarketValidation(t *testing.T) {
	bad := []Config{
		{},
		{PricePerEpoch: 1, DurationEpochs: 1, AuditProbability: 0},
		{PricePerEpoch: 1, DurationEpochs: 1, AuditProbability: 2},
		{PricePerEpoch: 1, DurationEpochs: 0, AuditProbability: 1},
		{PricePerEpoch: 0, DurationEpochs: 1, AuditProbability: 1},
	}
	for i, cfg := range bad {
		if _, err := NewMarket(nil, cfg, 1); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestAccessors(t *testing.T) {
	m, _, c := marketFixture(t, defaultCfg())
	if _, err := m.Balance("ghost"); !errors.Is(err, ErrUnknownAccount) {
		t.Fatal("expected ErrUnknownAccount")
	}
	if _, err := m.Deal(42); err == nil {
		t.Fatal("expected missing-deal error")
	}
	if m.Epoch() != 0 {
		t.Fatal("fresh market epoch should be 0")
	}
	d1, err := m.Propose("node-a", c)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Propose("node-b", c)
	if err != nil {
		t.Fatal(err)
	}
	active := m.ActiveDeals()
	if len(active) != 2 || active[0].ID != d1.ID || active[1].ID != d2.ID {
		t.Fatalf("ActiveDeals = %+v", active)
	}
	if DealActive.String() != "active" || DealCompleted.String() != "completed" ||
		DealSlashed.String() != "slashed" || DealState(9).String() != "state(9)" {
		t.Fatal("state names wrong")
	}
}
