package directory

import (
	"context"
	"errors"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/model"
)

func TestPublishBatchRecordsAll(t *testing.T) {
	f := newFixture(t, false)
	recs := make([]Record, 4)
	for i := range recs {
		data := []byte{byte(i), 1, 2}
		c, err := f.store.Put(context.Background(), "ipfs-0", data)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = Record{
			Addr: Addr{Uploader: "t0", Partition: i, Iter: 0, Type: TypeGradient},
			CID:  c, Node: "ipfs-0",
		}
	}
	if err := f.dir.PublishBatch(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if _, err := f.dir.Lookup(context.Background(), recs[i].Addr); err != nil {
			t.Fatalf("record %d missing after batch publish: %v", i, err)
		}
	}
	stats := f.dir.Stats()
	if stats.Publishes != 4 {
		t.Fatalf("Publishes = %d, want 4", stats.Publishes)
	}
	if stats.Requests != 1 {
		t.Fatalf("Requests = %d, want 1 (batched)", stats.Requests)
	}
}

func TestPublishBatchAbortsOnError(t *testing.T) {
	f := newFixture(t, true) // verifiable: missing commitment fails
	c := cid.Sum([]byte("x"))
	recs := []Record{
		{Addr: Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: TypeGradient}, CID: c, Node: "ipfs-0"},
		{Addr: Addr{Uploader: "t0", Partition: 1, Iter: 0, Type: TypeGradient}, CID: c, Node: "ipfs-0"},
	}
	err := f.dir.PublishBatch(context.Background(), recs)
	if !errors.Is(err, ErrMissingCommitment) {
		t.Fatalf("expected wrapped ErrMissingCommitment, got %v", err)
	}
}

func TestScheduleRejectionCountsAsRejection(t *testing.T) {
	f := newFixture(t, false)
	base := time.Now()
	f.dir.SetClock(func() time.Time { return base })
	f.dir.SetSchedule(5, base.Add(-time.Second))
	err := f.dir.Publish(context.Background(), Record{
		Addr: Addr{Uploader: "t0", Partition: 0, Iter: 5, Type: TypeGradient},
		CID:  cid.Sum([]byte("late")), Node: "ipfs-0",
	})
	if !errors.Is(err, ErrTooLate) {
		t.Fatalf("expected ErrTooLate, got %v", err)
	}
	if f.dir.Stats().Rejections != 1 {
		t.Fatal("late publish not counted as rejection")
	}
	// Updates and partials are not gated by t_train.
	err = f.dir.Publish(context.Background(), Record{
		Addr: Addr{Uploader: "agg", Partition: 0, Iter: 5, Type: TypePartialUpdate},
		CID:  cid.Sum([]byte("partial")), Node: "ipfs-0",
	})
	if err != nil {
		t.Fatalf("partial update must not be schedule-gated: %v", err)
	}
}

func TestUpdateRejectedWhileGradientSetOpen(t *testing.T) {
	// §IV soundness: a global update must not land while assigned
	// trainers may still publish — the accumulator could otherwise gain
	// a gradient after the update was verified against it.
	f := newFixture(t, true)
	f.dir.SetAssignment(0, "t0", "agg")
	f.dir.SetAssignment(0, "t1", "agg")
	base := time.Now()
	f.dir.SetClock(func() time.Time { return base })
	f.dir.SetSchedule(0, base.Add(time.Hour)) // t_train far in the future

	b0 := f.uploadGradient(t, "t0", 0, 0, 4) // only 1 of 2 trainers so far
	err := f.publishUpdate(t, "agg", 0, 0, b0)
	if !errors.Is(err, ErrTooEarly) {
		t.Fatalf("expected ErrTooEarly, got %v", err)
	}
	// Once the second gradient arrives, the (complete) update is accepted.
	b1 := f.uploadGradient(t, "t1", 0, 0, 4)
	sum, err := model.Sum(f.quant.Field(), b0, b1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.publishUpdate(t, "agg", 0, 0, sum); err != nil {
		t.Fatalf("complete update rejected: %v", err)
	}
}

func TestPartialSetAcceptedAfterTTrain(t *testing.T) {
	// After t_train passes, an update over the gradients that made it in
	// time is legitimate (late trainers miss the round).
	f := newFixture(t, true)
	f.dir.SetAssignment(1, "t0", "agg")
	f.dir.SetAssignment(1, "t1", "agg")
	base := time.Now()
	clock := base
	f.dir.SetClock(func() time.Time { return clock })
	f.dir.SetSchedule(0, base.Add(time.Minute))

	b0 := f.uploadGradient(t, "t0", 0, 1, 4)
	clock = base.Add(2 * time.Minute) // t_train passes; t1 never made it
	if err := f.publishUpdate(t, "agg", 0, 1, b0); err != nil {
		t.Fatalf("post-deadline partial update rejected: %v", err)
	}
}

func TestRecordsForIterFiltersUpdates(t *testing.T) {
	f := newFixture(t, false)
	f.uploadGradient(t, "t0", 3, 0, 4)
	f.uploadGradient(t, "t1", 3, 1, 4)
	f.uploadGradient(t, "t9", 4, 0, 4) // different iteration
	b := f.uploadGradient(t, "t2", 3, 2, 4)
	if err := f.publishUpdate(t, "agg", 3, 2, b); err != nil {
		t.Fatal(err)
	}
	recs := f.dir.RecordsForIter(3)
	if len(recs) != 3 {
		t.Fatalf("expected 3 records (updates excluded), got %d", len(recs))
	}
	for _, rec := range recs {
		if rec.Addr.Type == TypeUpdate {
			t.Fatal("global update leaked into GC listing")
		}
		if rec.Addr.Iter != 3 {
			t.Fatal("foreign iteration leaked into GC listing")
		}
	}
	// Deterministic order: sorted by type, partition, uploader.
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1].Addr, recs[i].Addr
		if a.Partition > b.Partition {
			t.Fatalf("records not sorted: %+v before %+v", a, b)
		}
	}
}
