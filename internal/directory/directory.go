// Package directory implements the paper's directory service (§III-C): the
// map from protocol-level addressing information
// (uploader, partition, iteration, type) to the content ID of the
// corresponding block in the decentralized storage network.
//
// In verifiable mode (§IV-B) the directory additionally maintains, for each
// partition and iteration, the accumulated Pedersen commitment over all
// gradients published for it (and per-aggregator accumulators for the
// multi-aggregator sync phase), and refuses to record an updated partition
// that is not a pre-image of the accumulated commitment. This is what makes
// dropped or altered gradients detectable.
//
// The service is run by the (trusted) bootstrapper of the FL task.
package directory

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ipls/internal/cid"
	"ipls/internal/identity"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/pedersen"
)

// Type tags the kind of block an address refers to.
type Type uint8

// Block types, mirroring the paper's "gradient", "partial update" and
// "global update" addressing values.
const (
	TypeGradient Type = iota + 1
	TypePartialUpdate
	TypeUpdate
)

// String returns the paper's name for the type.
func (t Type) String() string {
	switch t {
	case TypeGradient:
		return "gradient"
	case TypePartialUpdate:
		return "partial_update"
	case TypeUpdate:
		return "update"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Addr is the addressing meta-information attached to every uploaded block:
// addr = (uploader_id, partition_id, iter, type). Global updates use the
// publishing aggregator as uploader but are looked up by (partition, iter).
type Addr struct {
	Uploader  string `json:"uploader"`
	Partition int    `json:"partition"`
	Iter      int    `json:"iter"`
	Type      Type   `json:"type"`
}

// Record maps an address to the CID of the block and the storage node that
// holds it, plus the uploader's commitment in verifiable mode and, when
// the task authenticates participants, the uploader's signature over
// SigningBytes.
type Record struct {
	Addr       Addr                `json:"addr"`
	CID        cid.CID             `json:"cid"`
	Node       string              `json:"node"`
	Commitment pedersen.Commitment `json:"commitment,omitempty"`
	Signature  []byte              `json:"signature,omitempty"`
	// Span is the uploader's span context — the causal-trace envelope
	// that lets a downloader link its spans to the span that produced the
	// block, across process and node boundaries. Like Node it is excluded
	// from SigningBytes: it is observability metadata, not protocol state,
	// and a relay must be able to strip or forward it freely.
	Span *obs.SpanContext `json:"span,omitempty"`
}

// SigningBytes returns the canonical byte string a participant signs: the
// full address, the CID and the commitment. The storage node is excluded
// (fallback uploads may move a block without invalidating the signature);
// the address binds the signature to one (uploader, partition, iteration,
// type) slot, so a signed record cannot be replayed elsewhere.
func (r Record) SigningBytes() []byte {
	out := make([]byte, 0, 96+len(r.Commitment))
	out = append(out, []byte("ipls/record/")...)
	out = append(out, []byte(r.Addr.Uploader)...)
	out = append(out, 0)
	out = appendInt(out, r.Addr.Partition)
	out = appendInt(out, r.Addr.Iter)
	out = append(out, byte(r.Addr.Type))
	out = append(out, []byte(r.CID)...)
	out = append(out, 0)
	out = append(out, r.Commitment...)
	return out
}

func appendInt(b []byte, v int) []byte {
	var tmp [8]byte
	u := uint64(int64(v))
	for i := 0; i < 8; i++ {
		tmp[i] = byte(u >> (56 - 8*i))
	}
	return append(b, tmp[:]...)
}

// Errors reported by the directory.
var (
	// ErrTooLate indicates a gradient was published after the
	// iteration's t_train deadline; late trainers miss the round
	// (Algorithm 1, lines 10-12).
	ErrTooLate = errors.New("directory: gradient published after t_train")
	// ErrTooEarly indicates a global update was published while the
	// partition's gradient set was still open (not all trainers have
	// published and t_train has not passed). The aggregator should keep
	// collecting and retry.
	ErrTooEarly = errors.New("directory: update published before the gradient set closed")
	// ErrVerificationFailed indicates a published update is not a
	// pre-image of the accumulated gradient commitment: the aggregator
	// dropped or altered gradients.
	ErrVerificationFailed = errors.New("directory: update verification failed")
	// ErrConflict indicates a different block was already published for
	// the same address.
	ErrConflict = errors.New("directory: conflicting publication for address")
	// ErrAlreadyFinal indicates a global update has already been accepted
	// for the partition ("only the first aggregator who achieves the true
	// globally updated partition writes back", §IV-B).
	ErrAlreadyFinal = errors.New("directory: global update already recorded")
	// ErrMissingCommitment indicates a gradient publish lacked its
	// commitment in verifiable mode.
	ErrMissingCommitment = errors.New("directory: gradient publish requires a commitment")
	// ErrNotFound indicates no record exists for the queried address.
	ErrNotFound = errors.New("directory: record not found")
	// ErrBadSignature indicates a publish whose signature is missing or
	// does not verify against the registered public key.
	ErrBadSignature = errors.New("directory: bad record signature")
	// ErrQuarantined indicates a publish from a trainer the directory has
	// quarantined after proven-Byzantine uploads.
	ErrQuarantined = errors.New("directory: uploader is quarantined")
	// ErrNotByzantine indicates an expunge request for a gradient that
	// re-verified clean: the accusation, not the upload, was wrong.
	ErrNotByzantine = errors.New("directory: gradient verifies against its commitment")
)

// BlockFetcher is the directory's minimal view of the storage network, used
// to retrieve updates for verification.
type BlockFetcher interface {
	Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error)
}

type iterPart struct {
	iter, part int
}

type iterPartAgg struct {
	iter, part int
	agg        string
}

type partTrainer struct {
	part    int
	trainer string
}

// Stats counts directory traffic, relevant to the paper's "minimize the
// query load of the directory service" discussion (§VI). Publishes counts
// records; Requests counts API round trips (batching makes Requests <
// Publishes).
type Stats struct {
	Publishes     int
	Requests      int
	Lookups       int
	Verifications int
	Rejections    int
	// Expunged counts gradient records removed after re-verifying as
	// Byzantine (ExpungeGradient).
	Expunged int
}

// Service is an in-process directory service.
type Service struct {
	mu      sync.Mutex
	params  *pedersen.Params // nil => non-verifiable mode
	fetcher BlockFetcher

	records map[Addr]Record
	// Gradient records in publication order, per (iter, partition) and per
	// aggregator assignment, so aggregators can poll for new CIDs.
	gradients map[iterPart][]Record

	accPartition  map[iterPart]pedersen.Commitment
	accAggregator map[iterPartAgg]pedersen.Commitment
	gradCount     map[iterPartAgg]int

	assignment map[partTrainer]string // (partition, trainer) -> aggregator
	trainers   map[int]map[string][]string

	finalUpdate map[iterPart]Record

	// expunged counts gradients removed per (iter, partition) by
	// ExpungeGradient, so the gradient-set closure gate still accounts
	// for every assigned trainer. quarantined maps a trainer to the
	// first iteration from which its publishes are rejected and it no
	// longer counts toward a partition's expected gradient set.
	expunged    map[iterPart]int
	quarantined map[string]int

	// schedules holds each iteration's t_train deadline; gradients
	// published later are rejected so the partition accumulator can
	// never drift from what aggregators collected (§III-D).
	schedules map[int]time.Time
	now       func() time.Time

	// registry, when set, makes the directory authenticate every publish
	// against the uploader's registered public key.
	registry *identity.Registry

	stats Stats
}

// New creates a directory service. params may be nil for the plain
// (non-verifiable) protocol; fetcher is required only in verifiable mode,
// where the directory downloads published updates to check them.
func New(params *pedersen.Params, fetcher BlockFetcher) *Service {
	return &Service{
		params:        params,
		fetcher:       fetcher,
		records:       make(map[Addr]Record),
		gradients:     make(map[iterPart][]Record),
		accPartition:  make(map[iterPart]pedersen.Commitment),
		accAggregator: make(map[iterPartAgg]pedersen.Commitment),
		gradCount:     make(map[iterPartAgg]int),
		assignment:    make(map[partTrainer]string),
		trainers:      make(map[int]map[string][]string),
		finalUpdate:   make(map[iterPart]Record),
		expunged:      make(map[iterPart]int),
		quarantined:   make(map[string]int),
		schedules:     make(map[int]time.Time),
		now:           time.Now,
	}
}

// SetRegistry makes the directory require a valid uploader signature on
// every published record.
func (s *Service) SetRegistry(r *identity.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registry = r
}

// SetClock replaces the wall clock, for deterministic tests.
func (s *Service) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetSchedule registers an iteration's t_train deadline. The bootstrapper
// announces it at the start of every iteration; gradient publications after
// the deadline are rejected with ErrTooLate.
func (s *Service) SetSchedule(iter int, tTrain time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schedules[iter] = tTrain
}

// Verifiable reports whether the directory enforces commitment checks.
func (s *Service) Verifiable() bool { return s.params != nil }

// SetAssignment registers that the trainer sends its gradients for the
// given partition to the given aggregator (the T_ij sets of §II). The
// bootstrapper configures this before the task starts.
func (s *Service) SetAssignment(partition int, trainer, aggregator string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.assignment[partTrainer{partition, trainer}] = aggregator
	byAgg, ok := s.trainers[partition]
	if !ok {
		byAgg = make(map[string][]string)
		s.trainers[partition] = byAgg
	}
	byAgg[aggregator] = append(byAgg[aggregator], trainer)
}

// TrainersFor returns the trainers assigned to an aggregator for a
// partition, in registration order.
func (s *Service) TrainersFor(partition int, aggregator string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.trainers[partition][aggregator]
	out := make([]string, len(list))
	copy(out, list)
	return out
}

// Publish records an uploaded block. For gradients in verifiable mode the
// record must carry the uploader's commitment, which is folded into the
// partition and per-aggregator accumulators. For global updates in
// verifiable mode the directory fetches the block and verifies it against
// the accumulated partition commitment before accepting it.
func (s *Service) Publish(ctx context.Context, rec Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	return s.publishLocked(ctx, rec)
}

// PublishBatch records several uploads in one request — the §VI
// optimization that lets a trainer announce all of its partitions' CIDs in
// a single directory round trip. Records are applied in order; the first
// failure aborts the remainder.
func (s *Service) PublishBatch(ctx context.Context, recs []Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	for i, rec := range recs {
		if err := s.publishLocked(ctx, rec); err != nil {
			return fmt.Errorf("directory: batch record %d: %w", i, err)
		}
	}
	return nil
}

func (s *Service) publishLocked(ctx context.Context, rec Record) error {
	s.stats.Publishes++
	if s.registry != nil {
		pub, err := s.registry.Lookup(rec.Addr.Uploader)
		if err != nil {
			s.stats.Rejections++
			return fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
		if !identity.Verify(pub, rec.SigningBytes(), rec.Signature) {
			s.stats.Rejections++
			return fmt.Errorf("%w: record from %q", ErrBadSignature, rec.Addr.Uploader)
		}
	}

	if existing, ok := s.records[rec.Addr]; ok {
		if existing.CID == rec.CID {
			return nil // idempotent re-publish
		}
		return fmt.Errorf("%w: %+v", ErrConflict, rec.Addr)
	}

	switch rec.Addr.Type {
	case TypeGradient:
		return s.publishGradientLocked(rec)
	case TypePartialUpdate:
		s.records[rec.Addr] = rec
		return nil
	case TypeUpdate:
		return s.publishUpdateLocked(ctx, rec)
	default:
		return fmt.Errorf("directory: unknown block type %v", rec.Addr.Type)
	}
}

func (s *Service) publishGradientLocked(rec Record) error {
	key := iterPart{rec.Addr.Iter, rec.Addr.Partition}
	if from, bad := s.quarantined[rec.Addr.Uploader]; bad && rec.Addr.Iter >= from {
		s.stats.Rejections++
		return fmt.Errorf("%w: %q since iter %d", ErrQuarantined, rec.Addr.Uploader, from)
	}
	if deadline, ok := s.schedules[rec.Addr.Iter]; ok && s.now().After(deadline) {
		s.stats.Rejections++
		return fmt.Errorf("%w: iter %d from %q", ErrTooLate, rec.Addr.Iter, rec.Addr.Uploader)
	}
	if s.params != nil {
		if len(rec.Commitment) == 0 {
			return ErrMissingCommitment
		}
		if !s.params.Valid(rec.Commitment) {
			return fmt.Errorf("directory: malformed commitment from %q", rec.Addr.Uploader)
		}
		// Accumulate C_i = ∏ C_ik for the partition.
		acc, ok := s.accPartition[key]
		if !ok {
			acc = s.params.Identity()
		}
		combined, err := s.params.Combine(acc, rec.Commitment)
		if err != nil {
			return fmt.Errorf("directory: accumulate partition commitment: %w", err)
		}
		s.accPartition[key] = combined

		// Accumulate per-aggregator commitment for the trainers in T_ij.
		if agg, ok := s.assignment[partTrainer{rec.Addr.Partition, rec.Addr.Uploader}]; ok {
			akey := iterPartAgg{rec.Addr.Iter, rec.Addr.Partition, agg}
			aacc, ok := s.accAggregator[akey]
			if !ok {
				aacc = s.params.Identity()
			}
			acomb, err := s.params.Combine(aacc, rec.Commitment)
			if err != nil {
				return fmt.Errorf("directory: accumulate aggregator commitment: %w", err)
			}
			s.accAggregator[akey] = acomb
			s.gradCount[akey]++
		}
	}
	s.records[rec.Addr] = rec
	s.gradients[key] = append(s.gradients[key], rec)
	return nil
}

func (s *Service) publishUpdateLocked(ctx context.Context, rec Record) error {
	key := iterPart{rec.Addr.Iter, rec.Addr.Partition}
	if _, done := s.finalUpdate[key]; done {
		return fmt.Errorf("%w: iter %d partition %d", ErrAlreadyFinal, rec.Addr.Iter, rec.Addr.Partition)
	}
	if s.params != nil {
		// A global update may only land once the partition's gradient
		// set is closed: either every assigned trainer has published, or
		// t_train has passed (after which late gradients are rejected).
		// Otherwise a gradient arriving between aggregation and
		// verification would silently be dropped from an accepted
		// update.
		expected := s.expectedTrainersLocked(rec.Addr.Partition, rec.Addr.Iter)
		// Expunged gradients still count toward closure: their trainers
		// did publish, the directory just removed the proven-Byzantine
		// records afterwards.
		got := len(s.gradients[key]) + s.expunged[key]
		if expected > 0 && got < expected {
			deadline, scheduled := s.schedules[rec.Addr.Iter]
			if !scheduled || !s.now().After(deadline) {
				return fmt.Errorf("%w: iter %d partition %d has %d of %d gradients and t_train has not passed",
					ErrTooEarly, rec.Addr.Iter, rec.Addr.Partition, got, expected)
			}
		}
	}
	if s.params != nil {
		ok, err := s.verifyAgainstLocked(ctx, rec, s.accPartition[key])
		if err != nil {
			return err
		}
		if !ok {
			s.stats.Rejections++
			return fmt.Errorf("%w: iter %d partition %d by %q",
				ErrVerificationFailed, rec.Addr.Iter, rec.Addr.Partition, rec.Addr.Uploader)
		}
	}
	s.records[rec.Addr] = rec
	s.finalUpdate[key] = rec
	return nil
}

// expectedTrainersLocked returns how many trainers are assigned to a
// partition at the given iteration (0 when no assignments were
// registered, which disables the completeness gate). Trainers
// quarantined before the iteration are not expected to publish.
func (s *Service) expectedTrainersLocked(partition, iter int) int {
	total := 0
	for _, trainers := range s.trainers[partition] {
		for _, t := range trainers {
			if from, bad := s.quarantined[t]; bad && iter >= from {
				continue
			}
			total++
		}
	}
	return total
}

// verifyAgainstLocked fetches the published block and checks it is a
// pre-image of the expected accumulated commitment.
func (s *Service) verifyAgainstLocked(ctx context.Context, rec Record, want pedersen.Commitment) (bool, error) {
	if s.fetcher == nil {
		return false, errors.New("directory: verifiable mode requires a block fetcher")
	}
	if len(want) == 0 {
		return false, fmt.Errorf("directory: no accumulated commitment for %+v", rec.Addr)
	}
	s.stats.Verifications++
	data, err := s.fetcher.Get(ctx, rec.Node, rec.CID)
	if err != nil {
		return false, fmt.Errorf("directory: fetch update for verification: %w", err)
	}
	if !cid.Verify(data, rec.CID) {
		return false, nil // storage returned tampered bytes
	}
	block, err := model.DecodeBlock(data)
	if err != nil {
		return false, nil // not even a valid block
	}
	got, err := s.params.Commit(block.Values)
	if err != nil {
		return false, fmt.Errorf("directory: recommit update: %w", err)
	}
	return got.Equal(want), nil
}

// ExpungeGradient removes a gradient record whose stored block is not a
// pre-image of its published commitment — a Byzantine upload reported by
// an aggregator. The directory does not take the accusation on faith: it
// refetches the block and re-verifies it itself, and refuses with
// ErrNotByzantine when the gradient checks out. On success the
// commitment is homomorphically removed from the partition and
// per-aggregator accumulators, so the remaining honest gradients still
// verify, and the slot is tombstoned so the gradient-set closure gate
// keeps accounting for the trainer.
func (s *Service) ExpungeGradient(ctx context.Context, addr Addr) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requests++
	if s.params == nil {
		return errors.New("directory: expunge requires verifiable mode")
	}
	if addr.Type != TypeGradient {
		return fmt.Errorf("directory: expunge of non-gradient %+v", addr)
	}
	rec, ok := s.records[addr]
	if !ok {
		return fmt.Errorf("%w: %+v", ErrNotFound, addr)
	}

	// Independent re-verification against the record's own commitment. A
	// fetch error is inconclusive (storage fault, not proof of tampering)
	// and aborts the expunge; a clean verification refutes the accusation.
	if s.fetcher == nil {
		return errors.New("directory: verifiable mode requires a block fetcher")
	}
	s.stats.Verifications++
	data, err := s.fetcher.Get(ctx, rec.Node, rec.CID)
	if err != nil {
		return fmt.Errorf("directory: fetch gradient for expunge: %w", err)
	}
	if cid.Verify(data, rec.CID) {
		if block, err := model.DecodeBlock(data); err == nil {
			got, err := s.params.Commit(block.Values)
			if err != nil {
				return fmt.Errorf("directory: recommit gradient: %w", err)
			}
			if got.Equal(rec.Commitment) {
				return fmt.Errorf("%w: %+v", ErrNotByzantine, addr)
			}
		}
	}

	key := iterPart{addr.Iter, addr.Partition}
	if acc, ok := s.accPartition[key]; ok {
		rem, err := s.params.Uncombine(acc, rec.Commitment)
		if err != nil {
			return fmt.Errorf("directory: remove from partition accumulator: %w", err)
		}
		s.accPartition[key] = rem
	}
	if agg, ok := s.assignment[partTrainer{addr.Partition, addr.Uploader}]; ok {
		akey := iterPartAgg{addr.Iter, addr.Partition, agg}
		if aacc, ok := s.accAggregator[akey]; ok {
			rem, err := s.params.Uncombine(aacc, rec.Commitment)
			if err != nil {
				return fmt.Errorf("directory: remove from aggregator accumulator: %w", err)
			}
			s.accAggregator[akey] = rem
			s.gradCount[akey]--
		}
	}
	delete(s.records, addr)
	kept := s.gradients[key][:0]
	for _, g := range s.gradients[key] {
		if g.Addr != addr {
			kept = append(kept, g)
		}
	}
	s.gradients[key] = kept
	s.expunged[key]++
	s.stats.Expunged++
	s.stats.Rejections++
	return nil
}

// Quarantine rejects gradient publishes from the trainer starting at
// iteration fromIter and stops counting it toward its partitions'
// expected gradient sets from that iteration on. Quarantining a trainer
// again keeps the earliest effective iteration.
func (s *Service) Quarantine(trainer string, fromIter int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.quarantined[trainer]; ok && cur <= fromIter {
		return
	}
	s.quarantined[trainer] = fromIter
}

// Quarantined returns the quarantined trainers and the first iteration
// each is excluded from.
func (s *Service) Quarantined() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.quarantined))
	for t, from := range s.quarantined {
		out[t] = from
	}
	return out
}

// Lookup returns the record for an exact address.
func (s *Service) Lookup(ctx context.Context, addr Addr) (Record, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	rec, ok := s.records[addr]
	if !ok {
		return Record{}, fmt.Errorf("%w: %+v", ErrNotFound, addr)
	}
	return rec, nil
}

// GradientsFor returns the gradients published so far for (iter, partition)
// by trainers assigned to the given aggregator, in publication order. With
// an empty aggregator it returns all gradients for the partition.
func (s *Service) GradientsFor(ctx context.Context, iter, partition int, aggregator string) []Record {
	_ = ctx
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	var out []Record
	for _, rec := range s.gradients[iterPart{iter, partition}] {
		if aggregator != "" {
			if s.assignment[partTrainer{partition, rec.Addr.Uploader}] != aggregator {
				continue
			}
		}
		out = append(out, rec)
	}
	return out
}

// PartialUpdates returns the partial updates published for (iter,
// partition), sorted by uploader for determinism.
func (s *Service) PartialUpdates(ctx context.Context, iter, partition int) []Record {
	_ = ctx
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	var out []Record
	for addr, rec := range s.records {
		if addr.Type == TypePartialUpdate && addr.Iter == iter && addr.Partition == partition {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uploader < out[j].Addr.Uploader })
	return out
}

// Update returns the accepted global update for (iter, partition), if any.
func (s *Service) Update(ctx context.Context, iter, partition int) (Record, error) {
	if err := ctx.Err(); err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Lookups++
	rec, ok := s.finalUpdate[iterPart{iter, partition}]
	if !ok {
		return Record{}, fmt.Errorf("%w: update for iter %d partition %d", ErrNotFound, iter, partition)
	}
	return rec, nil
}

// PartitionAccumulator returns the accumulated commitment C_i over all
// gradients published for (iter, partition).
func (s *Service) PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.params == nil {
		return nil, errors.New("directory: not in verifiable mode")
	}
	acc, ok := s.accPartition[iterPart{iter, partition}]
	if !ok {
		return nil, fmt.Errorf("%w: partition accumulator iter %d partition %d", ErrNotFound, iter, partition)
	}
	return acc, nil
}

// AggregatorAccumulator returns the accumulated commitment ∏ C_ik over the
// gradients published by trainers in T_ij, plus how many have been folded
// in. Peer aggregators use this to verify partial updates (§IV-B).
func (s *Service) AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.params == nil {
		return nil, 0, errors.New("directory: not in verifiable mode")
	}
	key := iterPartAgg{iter, partition, aggregator}
	acc, ok := s.accAggregator[key]
	if !ok {
		return nil, 0, fmt.Errorf("%w: aggregator accumulator for %q", ErrNotFound, aggregator)
	}
	return acc, s.gradCount[key], nil
}

// VerifyPartialUpdate checks that serialized block data matches the
// per-aggregator accumulated commitment — the check a peer aggregator runs
// before folding another aggregator's partial update into the global one.
func (s *Service) VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.mu.Lock()
	acc, ok := s.accAggregator[iterPartAgg{iter, partition, aggregator}]
	params := s.params
	s.mu.Unlock()
	if params == nil {
		return false, errors.New("directory: not in verifiable mode")
	}
	if !ok {
		return false, fmt.Errorf("%w: aggregator accumulator for %q", ErrNotFound, aggregator)
	}
	block, err := model.DecodeBlock(data)
	if err != nil {
		return false, nil
	}
	got, err := params.Commit(block.Values)
	if err != nil {
		return false, err
	}
	return got.Equal(acc), nil
}

// RecordsForIter returns every gradient and partial-update record of an
// iteration, sorted deterministically. Global updates are excluded: they
// must stay retrievable until every trainer has collected them. Used by
// per-iteration garbage collection (§VI: blocks are "only needed for a
// short period of time").
func (s *Service) RecordsForIter(iter int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for addr, rec := range s.records {
		if addr.Iter != iter || addr.Type == TypeUpdate {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Addr, out[j].Addr
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Uploader < b.Uploader
	})
	return out
}

// Stats returns a copy of the traffic counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
