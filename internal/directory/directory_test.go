package directory

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/group"
	"ipls/internal/model"
	"ipls/internal/pedersen"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

type fixture struct {
	dir    *Service
	store  *storage.Network
	params *pedersen.Params
	quant  *scalar.Quantizer
	rng    *rand.Rand
}

func newFixture(t *testing.T, verifiable bool) *fixture {
	t.Helper()
	curve := group.Secp256r1Fast()
	field := scalar.NewField(curve.N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewNetwork(field, 1)
	store.AddNode("ipfs-0")
	store.AddNode("ipfs-1")
	var params *pedersen.Params
	if verifiable {
		params, err = pedersen.Setup(curve, 8, "dir-test")
		if err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{
		dir:    New(params, store),
		store:  store,
		params: params,
		quant:  quant,
		rng:    rand.New(rand.NewSource(42)),
	}
}

// uploadGradient quantizes a random gradient for a trainer, stores it, and
// publishes its record. It returns the block for later summing.
func (f *fixture) uploadGradient(t *testing.T, trainer string, iter, partition, dim int) model.Block {
	t.Helper()
	part := make([]float64, dim)
	for i := range part {
		part[i] = f.rng.NormFloat64()
	}
	block, err := model.Quantize(f.quant, part)
	if err != nil {
		t.Fatal(err)
	}
	data, err := block.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.store.Put(context.Background(), "ipfs-0", data)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Addr: Addr{Uploader: trainer, Partition: partition, Iter: iter, Type: TypeGradient},
		CID:  c,
		Node: "ipfs-0",
	}
	if f.params != nil {
		com, err := f.params.Commit(block.Values)
		if err != nil {
			t.Fatal(err)
		}
		rec.Commitment = com
	}
	if err := f.dir.Publish(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	return block
}

// publishUpdate stores an update block and publishes it as the global
// update, returning the publish error.
func (f *fixture) publishUpdate(t *testing.T, agg string, iter, partition int, block model.Block) error {
	t.Helper()
	data, err := block.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.store.Put(context.Background(), "ipfs-1", data)
	if err != nil {
		t.Fatal(err)
	}
	return f.dir.Publish(context.Background(), Record{
		Addr: Addr{Uploader: agg, Partition: partition, Iter: iter, Type: TypeUpdate},
		CID:  c,
		Node: "ipfs-1",
	})
}

func TestPublishLookupRoundTrip(t *testing.T) {
	f := newFixture(t, false)
	block := f.uploadGradient(t, "trainer-0", 1, 0, 4)
	_ = block
	rec, err := f.dir.Lookup(context.Background(), Addr{Uploader: "trainer-0", Partition: 0, Iter: 1, Type: TypeGradient})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Node != "ipfs-0" {
		t.Fatalf("wrong node %q", rec.Node)
	}
	if _, err := f.dir.Lookup(context.Background(), Addr{Uploader: "ghost", Type: TypeGradient}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestRepublishIdempotentConflictRejected(t *testing.T) {
	f := newFixture(t, false)
	data := []byte("block")
	c, _ := f.store.Put(context.Background(), "ipfs-0", data)
	addr := Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: TypeGradient}
	rec := Record{Addr: addr, CID: c, Node: "ipfs-0"}
	if err := f.dir.Publish(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	if err := f.dir.Publish(context.Background(), rec); err != nil {
		t.Fatalf("idempotent republish should succeed: %v", err)
	}
	other := rec
	other.CID = cid.Sum([]byte("different"))
	if err := f.dir.Publish(context.Background(), other); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected ErrConflict, got %v", err)
	}
}

func TestGradientRequiresCommitmentInVerifiableMode(t *testing.T) {
	f := newFixture(t, true)
	data := []byte("gradient")
	c, _ := f.store.Put(context.Background(), "ipfs-0", data)
	err := f.dir.Publish(context.Background(), Record{
		Addr: Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: TypeGradient},
		CID:  c, Node: "ipfs-0",
	})
	if !errors.Is(err, ErrMissingCommitment) {
		t.Fatalf("expected ErrMissingCommitment, got %v", err)
	}
	err = f.dir.Publish(context.Background(), Record{
		Addr:       Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: TypeGradient},
		CID:        c,
		Node:       "ipfs-0",
		Commitment: pedersen.Commitment([]byte{1, 2, 3}),
	})
	if err == nil {
		t.Fatal("expected malformed-commitment error")
	}
}

func TestPartitionAccumulatorMatchesCombine(t *testing.T) {
	f := newFixture(t, true)
	var blocks []model.Block
	for i := 0; i < 4; i++ {
		blocks = append(blocks, f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 5))
	}
	acc, err := f.dir.PartitionAccumulator(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := model.Sum(f.quant.Field(), blocks...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.params.Commit(sum.Values)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.Equal(want) {
		t.Fatal("accumulated commitment != commitment to summed gradients")
	}
}

func TestHonestUpdateAccepted(t *testing.T) {
	f := newFixture(t, true)
	var blocks []model.Block
	for i := 0; i < 3; i++ {
		blocks = append(blocks, f.uploadGradient(t, fmt.Sprintf("t%d", i), 2, 1, 6))
	}
	sum, _ := model.Sum(f.quant.Field(), blocks...)
	if err := f.publishUpdate(t, "agg-0", 2, 1, sum); err != nil {
		t.Fatalf("honest update rejected: %v", err)
	}
	rec, err := f.dir.Update(context.Background(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addr.Uploader != "agg-0" {
		t.Fatal("wrong uploader recorded")
	}
	if f.dir.Stats().Verifications != 1 {
		t.Fatalf("expected 1 verification, got %d", f.dir.Stats().Verifications)
	}
}

func TestDroppedGradientDetected(t *testing.T) {
	f := newFixture(t, true)
	var blocks []model.Block
	for i := 0; i < 4; i++ {
		blocks = append(blocks, f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 6))
	}
	// Malicious aggregator drops trainer t3's gradient.
	sum, _ := model.Sum(f.quant.Field(), blocks[:3]...)
	err := f.publishUpdate(t, "agg-evil", 0, 0, sum)
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("expected ErrVerificationFailed, got %v", err)
	}
	if _, err := f.dir.Update(context.Background(), 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatal("rejected update must not be recorded")
	}
	if f.dir.Stats().Rejections != 1 {
		t.Fatalf("rejection not counted")
	}
}

func TestAlteredGradientDetected(t *testing.T) {
	f := newFixture(t, true)
	var blocks []model.Block
	for i := 0; i < 4; i++ {
		blocks = append(blocks, f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 6))
	}
	sum, _ := model.Sum(f.quant.Field(), blocks...)
	// Alter one coordinate of the aggregate before publishing.
	sum.Values[2] = f.quant.Field().Add(sum.Values[2], sum.Values[0])
	err := f.publishUpdate(t, "agg-evil", 0, 0, sum)
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("expected ErrVerificationFailed, got %v", err)
	}
}

func TestNonVerifiableModeAcceptsForgedUpdate(t *testing.T) {
	// The contrast case: without commitments the directory has no way to
	// notice a dropped gradient.
	f := newFixture(t, false)
	var blocks []model.Block
	for i := 0; i < 4; i++ {
		blocks = append(blocks, f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 6))
	}
	sum, _ := model.Sum(f.quant.Field(), blocks[:2]...) // half the gradients dropped
	if err := f.publishUpdate(t, "agg-evil", 0, 0, sum); err != nil {
		t.Fatalf("non-verifiable mode should accept anything: %v", err)
	}
}

func TestSecondGlobalUpdateRejected(t *testing.T) {
	f := newFixture(t, false)
	b := f.uploadGradient(t, "t0", 0, 0, 4)
	if err := f.publishUpdate(t, "agg-0", 0, 0, b); err != nil {
		t.Fatal(err)
	}
	err := f.publishUpdate(t, "agg-1", 0, 0, b)
	if !errors.Is(err, ErrAlreadyFinal) && !errors.Is(err, ErrConflict) {
		t.Fatalf("expected ErrAlreadyFinal, got %v", err)
	}
}

func TestGradientsForFiltersByAssignment(t *testing.T) {
	f := newFixture(t, false)
	f.dir.SetAssignment(0, "t0", "agg-a")
	f.dir.SetAssignment(0, "t1", "agg-a")
	f.dir.SetAssignment(0, "t2", "agg-b")
	for i := 0; i < 3; i++ {
		f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 4)
	}
	recsA := f.dir.GradientsFor(context.Background(), 0, 0, "agg-a")
	if len(recsA) != 2 {
		t.Fatalf("agg-a should see 2 gradients, got %d", len(recsA))
	}
	recsAll := f.dir.GradientsFor(context.Background(), 0, 0, "")
	if len(recsAll) != 3 {
		t.Fatalf("expected 3 total gradients, got %d", len(recsAll))
	}
	if got := f.dir.TrainersFor(0, "agg-a"); len(got) != 2 || got[0] != "t0" || got[1] != "t1" {
		t.Fatalf("TrainersFor = %v", got)
	}
}

func TestAggregatorAccumulatorAndPartialVerify(t *testing.T) {
	f := newFixture(t, true)
	f.dir.SetAssignment(0, "t0", "agg-a")
	f.dir.SetAssignment(0, "t1", "agg-a")
	f.dir.SetAssignment(0, "t2", "agg-b")
	var aBlocks []model.Block
	for i := 0; i < 3; i++ {
		b := f.uploadGradient(t, fmt.Sprintf("t%d", i), 0, 0, 4)
		if i < 2 {
			aBlocks = append(aBlocks, b)
		}
	}
	acc, count, err := f.dir.AggregatorAccumulator(context.Background(), 0, 0, "agg-a")
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("agg-a count = %d, want 2", count)
	}
	sum, _ := model.Sum(f.quant.Field(), aBlocks...)
	want, _ := f.params.Commit(sum.Values)
	if !acc.Equal(want) {
		t.Fatal("aggregator accumulator mismatch")
	}
	// A correct partial update verifies; a tampered one does not.
	data, _ := sum.Encode()
	ok, err := f.dir.VerifyPartialUpdate(context.Background(), 0, 0, "agg-a", data)
	if err != nil || !ok {
		t.Fatalf("honest partial update rejected: ok=%v err=%v", ok, err)
	}
	sum.Values[0] = f.quant.Field().Add(sum.Values[0], sum.Values[1])
	bad, _ := sum.Encode()
	ok, err = f.dir.VerifyPartialUpdate(context.Background(), 0, 0, "agg-a", bad)
	if err != nil || ok {
		t.Fatalf("tampered partial update accepted: ok=%v err=%v", ok, err)
	}
	if ok, _ := f.dir.VerifyPartialUpdate(context.Background(), 0, 0, "agg-a", []byte("junk")); ok {
		t.Fatal("garbage accepted as partial update")
	}
	if _, _, err := f.dir.AggregatorAccumulator(context.Background(), 0, 0, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound for unknown aggregator, got %v", err)
	}
}

func TestCorruptedStorageBytesFailVerification(t *testing.T) {
	f := newFixture(t, true)
	b := f.uploadGradient(t, "t0", 0, 0, 4)
	data, _ := b.Encode()
	c, _ := f.store.Put(context.Background(), "ipfs-1", data)
	if err := f.store.Corrupt("ipfs-1", c); err != nil {
		t.Fatal(err)
	}
	err := f.dir.Publish(context.Background(), Record{
		Addr: Addr{Uploader: "agg-0", Partition: 0, Iter: 0, Type: TypeUpdate},
		CID:  c, Node: "ipfs-1",
	})
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("expected ErrVerificationFailed on corrupted bytes, got %v", err)
	}
}

func TestNonVerifiableAccumulatorErrors(t *testing.T) {
	f := newFixture(t, false)
	if _, err := f.dir.PartitionAccumulator(context.Background(), 0, 0); err == nil {
		t.Fatal("expected error in non-verifiable mode")
	}
	if _, _, err := f.dir.AggregatorAccumulator(context.Background(), 0, 0, "a"); err == nil {
		t.Fatal("expected error in non-verifiable mode")
	}
	if _, err := f.dir.VerifyPartialUpdate(context.Background(), 0, 0, "a", nil); err == nil {
		t.Fatal("expected error in non-verifiable mode")
	}
	if f.dir.Verifiable() {
		t.Fatal("Verifiable() should be false")
	}
}

func TestPartialUpdatesSorted(t *testing.T) {
	f := newFixture(t, false)
	for _, agg := range []string{"agg-b", "agg-a", "agg-c"} {
		data := []byte("partial-" + agg)
		c, _ := f.store.Put(context.Background(), "ipfs-0", data)
		err := f.dir.Publish(context.Background(), Record{
			Addr: Addr{Uploader: agg, Partition: 3, Iter: 1, Type: TypePartialUpdate},
			CID:  c, Node: "ipfs-0",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	recs := f.dir.PartialUpdates(context.Background(), 1, 3)
	if len(recs) != 3 {
		t.Fatalf("expected 3 partials, got %d", len(recs))
	}
	for i, want := range []string{"agg-a", "agg-b", "agg-c"} {
		if recs[i].Addr.Uploader != want {
			t.Fatalf("partials not sorted: %v", recs)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeGradient.String() != "gradient" ||
		TypePartialUpdate.String() != "partial_update" ||
		TypeUpdate.String() != "update" {
		t.Fatal("type names wrong")
	}
	if Type(9).String() != "type(9)" {
		t.Fatal("unknown type formatting wrong")
	}
	if err := (&Service{records: map[Addr]Record{}}).Publish(context.Background(), Record{Addr: Addr{Type: Type(9)}}); err == nil {
		t.Fatal("unknown type should be rejected")
	}
}

func TestStatsCounting(t *testing.T) {
	f := newFixture(t, false)
	f.uploadGradient(t, "t0", 0, 0, 4)
	f.dir.GradientsFor(context.Background(), 0, 0, "")
	if _, err := f.dir.Lookup(context.Background(), Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: TypeGradient}); err != nil {
		t.Fatal(err)
	}
	s := f.dir.Stats()
	if s.Publishes != 1 || s.Lookups != 2 {
		t.Fatalf("stats = %+v", s)
	}
}
