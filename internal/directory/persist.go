package directory

import (
	"fmt"
	"os"
	"path/filepath"

	"ipls/internal/pedersen"
)

// File persistence for directory snapshots. Snapshot/Restore give the
// service crash recovery in memory; these helpers pin the snapshot to disk
// with the same atomicity discipline the CAS block store uses — write to a
// sibling temp file, rename into place — so a crash mid-save leaves the
// previous good snapshot, never a torn one.

// SaveSnapshotFile writes the service's snapshot to path atomically,
// creating parent directories as needed.
func (s *Service) SaveSnapshotFile(path string) error {
	data, err := s.Snapshot()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// RestoreFile loads a snapshot saved by SaveSnapshotFile. A missing file is
// not an error: it returns (nil, nil) so first-boot and restart share one
// call site.
func RestoreFile(path string, params *pedersen.Params, fetcher BlockFetcher) (*Service, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("directory: read snapshot %s: %w", path, err)
	}
	return Restore(data, params, fetcher)
}

// writeFileAtomic writes data to path via a temp file + rename in the same
// directory (rename is atomic only within a filesystem).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("directory: snapshot dir %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("directory: stage snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("directory: write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("directory: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("directory: commit snapshot: %w", err)
	}
	return nil
}
