package directory

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"ipls/internal/pedersen"
)

// The directory service is the one (trusted but not infallible) component
// the bootstrapper hosts. Snapshot/Restore give it crash recovery: the
// full state — records, commitment accumulators, assignments, schedules —
// serializes to a deterministic JSON document that a restarted
// bootstrapper can restore and continue the iteration from.

// snapshot is the serialized directory state.
type snapshot struct {
	Records       []Record          `json:"records"`
	Gradients     []gradientLog     `json:"gradients"`
	AccPartition  []partitionAcc    `json:"accPartition"`
	AccAggregator []aggregatorAcc   `json:"accAggregator"`
	Assignments   []assignmentEntry `json:"assignments"`
	Finals        []Record          `json:"finals"`
	Schedules     []scheduleEntry   `json:"schedules"`
	Stats         Stats             `json:"stats"`
}

type gradientLog struct {
	Iter      int      `json:"iter"`
	Partition int      `json:"partition"`
	Recs      []Record `json:"recs"`
}

type partitionAcc struct {
	Iter       int    `json:"iter"`
	Partition  int    `json:"partition"`
	Commitment []byte `json:"commitment"`
}

type aggregatorAcc struct {
	Iter       int    `json:"iter"`
	Partition  int    `json:"partition"`
	Aggregator string `json:"aggregator"`
	Commitment []byte `json:"commitment"`
	Count      int    `json:"count"`
}

type assignmentEntry struct {
	Partition  int    `json:"partition"`
	Trainer    string `json:"trainer"`
	Aggregator string `json:"aggregator"`
}

type scheduleEntry struct {
	Iter   int       `json:"iter"`
	TTrain time.Time `json:"tTrain"`
}

// Snapshot serializes the full directory state.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap snapshot
	for _, rec := range s.records {
		snap.Records = append(snap.Records, rec)
	}
	sort.Slice(snap.Records, func(i, j int) bool { return recordLess(snap.Records[i], snap.Records[j]) })
	for key, recs := range s.gradients {
		snap.Gradients = append(snap.Gradients, gradientLog{Iter: key.iter, Partition: key.part, Recs: recs})
	}
	sort.Slice(snap.Gradients, func(i, j int) bool {
		a, b := snap.Gradients[i], snap.Gradients[j]
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		return a.Partition < b.Partition
	})
	for key, acc := range s.accPartition {
		snap.AccPartition = append(snap.AccPartition, partitionAcc{Iter: key.iter, Partition: key.part, Commitment: acc})
	}
	sort.Slice(snap.AccPartition, func(i, j int) bool {
		a, b := snap.AccPartition[i], snap.AccPartition[j]
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		return a.Partition < b.Partition
	})
	for key, acc := range s.accAggregator {
		snap.AccAggregator = append(snap.AccAggregator, aggregatorAcc{
			Iter: key.iter, Partition: key.part, Aggregator: key.agg,
			Commitment: acc, Count: s.gradCount[key],
		})
	}
	sort.Slice(snap.AccAggregator, func(i, j int) bool {
		a, b := snap.AccAggregator[i], snap.AccAggregator[j]
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Aggregator < b.Aggregator
	})
	for p, byAgg := range s.trainers {
		for agg, trainers := range byAgg {
			for _, tr := range trainers {
				snap.Assignments = append(snap.Assignments, assignmentEntry{Partition: p, Trainer: tr, Aggregator: agg})
			}
		}
	}
	sort.Slice(snap.Assignments, func(i, j int) bool {
		a, b := snap.Assignments[i], snap.Assignments[j]
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		if a.Aggregator != b.Aggregator {
			return a.Aggregator < b.Aggregator
		}
		return a.Trainer < b.Trainer
	})
	for _, rec := range s.finalUpdate {
		snap.Finals = append(snap.Finals, rec)
	}
	sort.Slice(snap.Finals, func(i, j int) bool { return recordLess(snap.Finals[i], snap.Finals[j]) })
	for iter, deadline := range s.schedules {
		snap.Schedules = append(snap.Schedules, scheduleEntry{Iter: iter, TTrain: deadline})
	}
	sort.Slice(snap.Schedules, func(i, j int) bool { return snap.Schedules[i].Iter < snap.Schedules[j].Iter })
	snap.Stats = s.stats
	return json.Marshal(snap)
}

func recordLess(a, b Record) bool {
	if a.Addr.Iter != b.Addr.Iter {
		return a.Addr.Iter < b.Addr.Iter
	}
	if a.Addr.Partition != b.Addr.Partition {
		return a.Addr.Partition < b.Addr.Partition
	}
	if a.Addr.Type != b.Addr.Type {
		return a.Addr.Type < b.Addr.Type
	}
	return a.Addr.Uploader < b.Addr.Uploader
}

// Restore reconstructs a directory service from a snapshot. The commitment
// parameters and block fetcher are environment, not state, and must be
// supplied again (they are deterministic from the task config).
func Restore(data []byte, params *pedersen.Params, fetcher BlockFetcher) (*Service, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("directory: restore: %w", err)
	}
	s := New(params, fetcher)
	for _, rec := range snap.Records {
		s.records[rec.Addr] = rec
	}
	for _, g := range snap.Gradients {
		s.gradients[iterPart{g.Iter, g.Partition}] = g.Recs
	}
	for _, acc := range snap.AccPartition {
		s.accPartition[iterPart{acc.Iter, acc.Partition}] = pedersen.Commitment(acc.Commitment)
	}
	for _, acc := range snap.AccAggregator {
		key := iterPartAgg{acc.Iter, acc.Partition, acc.Aggregator}
		s.accAggregator[key] = pedersen.Commitment(acc.Commitment)
		s.gradCount[key] = acc.Count
	}
	for _, a := range snap.Assignments {
		s.SetAssignment(a.Partition, a.Trainer, a.Aggregator)
	}
	for _, rec := range snap.Finals {
		s.finalUpdate[iterPart{rec.Addr.Iter, rec.Addr.Partition}] = rec
	}
	for _, sched := range snap.Schedules {
		s.schedules[sched.Iter] = sched.TTrain
	}
	s.stats = snap.Stats
	return s, nil
}
