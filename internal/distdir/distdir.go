// Package distdir implements the paper's §VI proposal for reducing the
// directory service's query load: instead of one directory hosted by the
// bootstrapper, the map is sharded across the storage nodes, "making the
// IPFS nodes responsible for replying to map queries".
//
// Sharding is by partition: all records, accumulators and the final update
// of a model partition live on the shard that the partition hashes to, so
// every single-partition operation touches exactly one shard and the
// per-shard load drops by roughly the shard count. The sharded service is
// a drop-in replacement for the plain directory (it implements the same
// client interface), and remains compatible with verifiable aggregation —
// each shard verifies the partitions it owns.
package distdir

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"ipls/internal/directory"
	"ipls/internal/identity"
	"ipls/internal/pedersen"
)

// Sharded routes directory operations to per-partition shards.
type Sharded struct {
	taskID string
	shards []*directory.Service
}

// New creates a sharded directory over n shards, each backed by its own
// directory.Service with the given commitment parameters and block fetcher
// (both may be nil for non-verifiable tasks). The taskID salts the
// partition-to-shard mapping.
func New(taskID string, n int, params *pedersen.Params, fetcher directory.BlockFetcher) (*Sharded, error) {
	if n <= 0 {
		return nil, errors.New("distdir: need at least one shard")
	}
	s := &Sharded{taskID: taskID, shards: make([]*directory.Service, n)}
	for i := range s.shards {
		s.shards[i] = directory.New(params, fetcher)
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardFor maps a partition to its owning shard.
func (s *Sharded) shardFor(partition int) *directory.Service {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s/%d", s.taskID, partition)
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// SetAssignment registers a T_ij assignment on the owning shard.
func (s *Sharded) SetAssignment(partition int, trainer, aggregator string) {
	s.shardFor(partition).SetAssignment(partition, trainer, aggregator)
}

// TrainersFor lists the trainers assigned to an aggregator for a partition.
func (s *Sharded) TrainersFor(partition int, aggregator string) []string {
	return s.shardFor(partition).TrainersFor(partition, aggregator)
}

// Publish records an uploaded block on the partition's shard.
func (s *Sharded) Publish(ctx context.Context, rec directory.Record) error {
	return s.shardFor(rec.Addr.Partition).Publish(ctx, rec)
}

// PublishBatch routes each record to its partition's shard. One client
// round trip fans out to at most Shards() shard requests.
func (s *Sharded) PublishBatch(ctx context.Context, recs []directory.Record) error {
	byShard := make(map[*directory.Service][]directory.Record)
	for _, rec := range recs {
		shard := s.shardFor(rec.Addr.Partition)
		byShard[shard] = append(byShard[shard], rec)
	}
	for _, shard := range s.shards { // deterministic order
		if batch, ok := byShard[shard]; ok {
			if err := shard.PublishBatch(ctx, batch); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lookup resolves an exact address.
func (s *Sharded) Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error) {
	return s.shardFor(addr.Partition).Lookup(ctx, addr)
}

// GradientsFor lists gradient records for an aggregator.
func (s *Sharded) GradientsFor(ctx context.Context, iter, partition int, aggregator string) []directory.Record {
	return s.shardFor(partition).GradientsFor(ctx, iter, partition, aggregator)
}

// PartialUpdates lists the published partial updates.
func (s *Sharded) PartialUpdates(ctx context.Context, iter, partition int) []directory.Record {
	return s.shardFor(partition).PartialUpdates(ctx, iter, partition)
}

// Update returns the accepted global update.
func (s *Sharded) Update(ctx context.Context, iter, partition int) (directory.Record, error) {
	return s.shardFor(partition).Update(ctx, iter, partition)
}

// PartitionAccumulator returns the accumulated partition commitment.
func (s *Sharded) PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error) {
	return s.shardFor(partition).PartitionAccumulator(ctx, iter, partition)
}

// AggregatorAccumulator returns an aggregator's accumulated commitment.
func (s *Sharded) AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error) {
	return s.shardFor(partition).AggregatorAccumulator(ctx, iter, partition, aggregator)
}

// VerifyPartialUpdate checks a partial update against the accumulator.
func (s *Sharded) VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error) {
	return s.shardFor(partition).VerifyPartialUpdate(ctx, iter, partition, aggregator, data)
}

// SetSchedule announces an iteration's t_train deadline on every shard.
func (s *Sharded) SetSchedule(iter int, tTrain time.Time) {
	for _, shard := range s.shards {
		shard.SetSchedule(iter, tTrain)
	}
}

// RecordsForIter gathers an iteration's gradient and partial records from
// all shards.
func (s *Sharded) RecordsForIter(iter int) []directory.Record {
	var out []directory.Record
	for _, shard := range s.shards {
		out = append(out, shard.RecordsForIter(iter)...)
	}
	return out
}

// SetRegistry makes every shard authenticate publishes against the
// participants' registered public keys.
func (s *Sharded) SetRegistry(r *identity.Registry) {
	for _, shard := range s.shards {
		shard.SetRegistry(r)
	}
}

// Snapshot serializes every shard's state (a JSON array, one document per
// shard).
func (s *Sharded) Snapshot() ([]byte, error) {
	snaps := make([]json.RawMessage, len(s.shards))
	for i, shard := range s.shards {
		data, err := shard.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("distdir: shard %d: %w", i, err)
		}
		snaps[i] = data
	}
	return json.Marshal(snaps)
}

// Restore reconstructs a sharded directory from a Snapshot. The shard
// count is implied by the snapshot; taskID must match the original (it
// determines the partition-to-shard mapping).
func Restore(taskID string, data []byte, params *pedersen.Params, fetcher directory.BlockFetcher) (*Sharded, error) {
	var snaps []json.RawMessage
	if err := json.Unmarshal(data, &snaps); err != nil {
		return nil, fmt.Errorf("distdir: restore: %w", err)
	}
	if len(snaps) == 0 {
		return nil, errors.New("distdir: empty snapshot")
	}
	s := &Sharded{taskID: taskID, shards: make([]*directory.Service, len(snaps))}
	for i, snap := range snaps {
		shard, err := directory.Restore(snap, params, fetcher)
		if err != nil {
			return nil, fmt.Errorf("distdir: shard %d: %w", i, err)
		}
		s.shards[i] = shard
	}
	return s, nil
}

// ShardStats returns each shard's traffic counters — the measurement that
// shows the bootstrapper's load dropping by the shard count.
func (s *Sharded) ShardStats() []directory.Stats {
	out := make([]directory.Stats, len(s.shards))
	for i, shard := range s.shards {
		out[i] = shard.Stats()
	}
	return out
}

// Stats aggregates the counters across shards.
func (s *Sharded) Stats() directory.Stats {
	var total directory.Stats
	for _, st := range s.ShardStats() {
		total.Publishes += st.Publishes
		total.Requests += st.Requests
		total.Lookups += st.Lookups
		total.Verifications += st.Verifications
		total.Rejections += st.Rejections
	}
	return total
}
