package distdir

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/identity"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// The sharded directory must be a drop-in replacement for the plain one.
var _ core.Directory = (*Sharded)(nil)

// stack builds a session whose directory is sharded over n shards.
func stack(t *testing.T, shards int, verifiable bool) (*core.Session, *Sharded) {
	t.Helper()
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  "distdir",
		ModelDim:                48,
		Partitions:              6,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		Verifiable:              verifiable,
		TTrain:                  3 * time.Second,
		TSync:                   3 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	field := scalar.NewField(cfg.Curve.N)
	net := storage.NewNetwork(field, 1)
	for _, id := range cfg.StorageNodes {
		net.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(cfg.TaskID, shards, params, net)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Spec.Partitions; p++ {
		for _, agg := range cfg.Aggregators[p] {
			for _, tr := range cfg.TrainersOf(p, agg) {
				sharded.SetAssignment(p, tr, agg)
			}
		}
	}
	sess, err := core.NewSession(cfg, net, sharded)
	if err != nil {
		t.Fatal(err)
	}
	return sess, sharded
}

func runIteration(t *testing.T, sess *core.Session, seed int64) ([]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	deltas := make(map[string][]float64)
	want := make([]float64, sess.Config().Spec.Dim)
	for _, tr := range sess.Config().Trainers {
		d := make([]float64, sess.Config().Spec.Dim)
		for i := range d {
			d[i] = rng.NormFloat64()
			want[i] += d[i] / float64(len(sess.Config().Trainers))
		}
		deltas[tr] = d
	}
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions: %v", res.Incomplete)
	}
	return res.AvgDelta, want
}

func TestShardedIterationMatchesExpected(t *testing.T) {
	for _, verifiable := range []bool{false, true} {
		sess, _ := stack(t, 3, verifiable)
		got, want := runIteration(t, sess, 1)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("verifiable=%v: element %d off", verifiable, i)
			}
		}
	}
}

func TestLoadSpreadsAcrossShards(t *testing.T) {
	sess, sharded := stack(t, 3, false)
	runIteration(t, sess, 2)
	stats := sharded.ShardStats()
	busy := 0
	total := 0
	for _, st := range stats {
		if st.Publishes > 0 {
			busy++
		}
		total += st.Publishes
	}
	if busy < 2 {
		t.Fatalf("load not spread: per-shard publishes %+v", stats)
	}
	if agg := sharded.Stats(); agg.Publishes != total {
		t.Fatalf("aggregate stats mismatch: %d != %d", agg.Publishes, total)
	}
	// No shard should carry everything.
	for i, st := range stats {
		if st.Publishes == total {
			t.Fatalf("shard %d carries the whole load", i)
		}
	}
}

func TestShardedVerificationStillCatchesCheating(t *testing.T) {
	sess, _ := stack(t, 3, true)
	rng := rand.New(rand.NewSource(3))
	deltas := make(map[string][]float64)
	for _, tr := range sess.Config().Trainers {
		d := make([]float64, sess.Config().Spec.Dim)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		deltas[tr] = d
	}
	evil := core.AggregatorID(2, 0)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]core.Behavior{evil: core.BehaviorAlterGradient})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("sharded directory failed to detect cheating")
	}
}

func TestShardedSchedule(t *testing.T) {
	sess, sharded := stack(t, 2, false)
	base := time.Now()
	for i := range sharded.shards {
		sharded.shards[i].SetClock(func() time.Time { return base })
	}
	sharded.SetSchedule(0, base.Add(-time.Minute))
	if err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, 48)); err == nil {
		t.Fatal("late gradient accepted by sharded directory")
	}
}

func TestShardedRecordsForIter(t *testing.T) {
	sess, sharded := stack(t, 3, false)
	runIteration(t, sess, 4)
	recs := sharded.RecordsForIter(0)
	// 4 trainers x 6 partitions gradients (single aggregator: no partials).
	if len(recs) != 24 {
		t.Fatalf("expected 24 records, got %d", len(recs))
	}
	// Cleanup also works through the sharded directory.
	removed, err := sess.CleanupIteration(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 24 {
		t.Fatalf("removed %d, want 24", removed)
	}
}

func TestShardedSnapshotRestore(t *testing.T) {
	sess, sharded := stack(t, 3, true)
	runIteration(t, sess, 6)
	snap, err := sharded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sess.Config()
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(cfg.TaskID, snap, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != 3 {
		t.Fatalf("restored %d shards", restored.Shards())
	}
	for p := 0; p < cfg.Spec.Partitions; p++ {
		orig, err := sharded.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.CID != orig.CID {
			t.Fatalf("partition %d final update changed in restore", p)
		}
	}
	if _, err := Restore("x", []byte("junk"), nil, nil); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := Restore("x", []byte("[]"), nil, nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestShardedRegistry(t *testing.T) {
	sess, sharded := stack(t, 2, false)
	cfg := sess.Config()
	ring, reg := identity.DeterministicSetup(cfg.TaskID, cfg.ParticipantIDs())
	sharded.SetRegistry(reg)
	// Unsigned publishes fail on every shard.
	if err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, cfg.Spec.Dim)); !errors.Is(err, directory.ErrBadSignature) {
		t.Fatalf("unsigned publish accepted by sharded directory: %v", err)
	}
	sess.SetKeyring(ring)
	if err := sess.TrainerUpload(context.Background(), "t0", 0, make([]float64, cfg.Spec.Dim)); err != nil {
		t.Fatalf("signed publish rejected: %v", err)
	}
}

func TestShardedMisc(t *testing.T) {
	if _, err := New("x", 0, nil, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	sess, sharded := stack(t, 4, false)
	if sharded.Shards() != 4 {
		t.Fatal("shard count wrong")
	}
	runIteration(t, sess, 5)
	if got := sharded.TrainersFor(0, core.AggregatorID(0, 0)); len(got) != 4 {
		t.Fatalf("TrainersFor = %v", got)
	}
	if _, err := sharded.Lookup(context.Background(), directory.Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: directory.TypeGradient}); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Update(context.Background(), 0, 3); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshotFile round-trips a snapshot through the atomic file
// helpers: save, restore from disk, missing-file first boot.
func TestShardedSnapshotFile(t *testing.T) {
	sess, sharded := stack(t, 3, false)
	runIteration(t, sess, 7)
	path := t.TempDir() + "/nested/dir.json"
	if err := sharded.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	cfg := sess.Config()
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreFile(path, cfg.TaskID, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil || restored.Shards() != 3 {
		t.Fatalf("restored = %v", restored)
	}
	for p := 0; p < cfg.Spec.Partitions; p++ {
		orig, err := sharded.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Update(context.Background(), 0, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.CID != orig.CID {
			t.Fatalf("partition %d final update changed across the file round-trip", p)
		}
	}
	// A missing file is a first boot, not an error.
	none, err := RestoreFile(path+".absent", cfg.TaskID, params, nil)
	if err != nil || none != nil {
		t.Fatalf("missing snapshot: (%v, %v), want (nil, nil)", none, err)
	}
}
