package distdir

import (
	"fmt"
	"os"
	"path/filepath"

	"ipls/internal/directory"
	"ipls/internal/pedersen"
)

// File persistence for sharded-directory snapshots, with the same atomic
// temp-file + rename discipline as directory.SaveSnapshotFile.

// SaveSnapshotFile writes the sharded directory's snapshot to path
// atomically, creating parent directories as needed.
func (s *Sharded) SaveSnapshotFile(path string) error {
	data, err := s.Snapshot()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("distdir: snapshot dir %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("distdir: stage snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, werr := tmp.Write(data); werr != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("distdir: write snapshot: %w", werr)
	}
	if cerr := tmp.Close(); cerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("distdir: close snapshot: %w", cerr)
	}
	if rerr := os.Rename(tmpName, path); rerr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("distdir: commit snapshot: %w", rerr)
	}
	return nil
}

// RestoreFile loads a snapshot saved by SaveSnapshotFile. A missing file
// returns (nil, nil) so first-boot and restart share one call site.
func RestoreFile(path, taskID string, params *pedersen.Params, fetcher directory.BlockFetcher) (*Sharded, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("distdir: read snapshot %s: %w", path, err)
	}
	return Restore(taskID, data, params, fetcher)
}
