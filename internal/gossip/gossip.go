// Package gossip implements the purely decentralized federated-learning
// baseline the paper's introduction contrasts against (category (i):
// "peers communicate directly with others and perform the learning process
// via gossiping", [5, 6, 7]): every peer keeps its own model, trains
// locally, and averages parameters with a few random neighbors each round.
//
// There is no aggregator, no global model and no convergence guarantee
// matching centralized FL — the intro's point ("it may not always achieve
// the same performance in model accuracy and convergence as centralized
// FL, and this highly depends on the nature of the dataset") is exactly
// what the E14 experiment measures on label-skewed data.
package gossip

import (
	"fmt"
	"math"
	"math/rand"

	"ipls/internal/ml"
)

// Config parameterizes a gossip-learning run.
type Config struct {
	// Degree is how many random neighbors each peer averages with per
	// round.
	Degree int
	// Rounds is the number of gossip rounds.
	Rounds int
	// SGD configures each peer's local training per round.
	SGD ml.SGDConfig
	// Seed drives neighbor selection.
	Seed int64
}

func (c Config) validate(peers int) error {
	if peers < 2 {
		return fmt.Errorf("gossip: need at least 2 peers, got %d", peers)
	}
	if c.Degree < 1 || c.Degree >= peers {
		return fmt.Errorf("gossip: degree must be in [1, %d), got %d", peers, c.Degree)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("gossip: rounds must be positive, got %d", c.Rounds)
	}
	return nil
}

// RoundMetrics reports one gossip round.
type RoundMetrics struct {
	Round int
	// MeanAccuracy is the average accuracy of the peers' individual
	// models on the evaluation set.
	MeanAccuracy float64
	// Disagreement is the maximum L2 distance between any peer's model
	// and the peer average — the consensus gap, zero in centralized FL.
	Disagreement float64
}

// Result is a full gossip run.
type Result struct {
	PerRound []RoundMetrics
	// FinalParams holds each peer's final model.
	FinalParams [][]float64
}

// Run executes gossip learning: each round every peer trains locally, then
// averages its parameters with Degree random neighbors' (pre-round)
// parameters. The model instance is shared scratch space; initial is the
// common starting parameter vector.
func Run(m ml.Model, locals []*ml.Dataset, eval *ml.Dataset, initial []float64, cfg Config) (*Result, error) {
	peers := len(locals)
	if err := cfg.validate(peers); err != nil {
		return nil, err
	}
	if len(initial) != m.Dim() {
		return nil, fmt.Errorf("gossip: initial params have length %d, want %d", len(initial), m.Dim())
	}
	params := make([][]float64, peers)
	for i := range params {
		params[i] = append([]float64(nil), initial...)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	result := &Result{}

	for round := 0; round < cfg.Rounds; round++ {
		// Local training step on every peer.
		for i := range params {
			sgd := cfg.SGD
			sgd.Seed = ml.ParticipantSeed(int64(round), i)
			delta, _, err := ml.LocalDelta(m, locals[i], params[i], sgd)
			if err != nil {
				return nil, fmt.Errorf("gossip: peer %d round %d: %w", i, round, err)
			}
			for j := range params[i] {
				params[i][j] += delta[j]
			}
		}
		// Gossip averaging over a fresh random neighborhood per peer.
		snapshot := make([][]float64, peers)
		for i := range params {
			snapshot[i] = append([]float64(nil), params[i]...)
		}
		for i := range params {
			neighbors := rng.Perm(peers)
			picked := 0
			for _, n := range neighbors {
				if n == i {
					continue
				}
				for j := range params[i] {
					params[i][j] += snapshot[n][j]
				}
				picked++
				if picked == cfg.Degree {
					break
				}
			}
			inv := 1.0 / float64(picked+1)
			for j := range params[i] {
				params[i][j] *= inv
			}
		}
		metrics, err := measure(m, params, eval)
		if err != nil {
			return nil, err
		}
		metrics.Round = round
		result.PerRound = append(result.PerRound, metrics)
	}
	result.FinalParams = params
	return result, nil
}

// measure computes the round metrics over the peers' current models.
func measure(m ml.Model, params [][]float64, eval *ml.Dataset) (RoundMetrics, error) {
	peers := len(params)
	dim := len(params[0])
	mean := make([]float64, dim)
	for _, p := range params {
		for j, v := range p {
			mean[j] += v / float64(peers)
		}
	}
	var metrics RoundMetrics
	for _, p := range params {
		if err := m.SetParams(p); err != nil {
			return RoundMetrics{}, err
		}
		metrics.MeanAccuracy += ml.Accuracy(m, eval) / float64(peers)
		var dist float64
		for j, v := range p {
			d := v - mean[j]
			dist += d * d
		}
		if d := math.Sqrt(dist); d > metrics.Disagreement {
			metrics.Disagreement = d
		}
	}
	return metrics, nil
}
