package gossip

import (
	"testing"

	"ipls/internal/ml"
)

func gossipFixture(t *testing.T, nonIID bool) (ml.Model, []*ml.Dataset, *ml.Dataset) {
	t.Helper()
	const peers = 8
	data := ml.Blobs(480, 4, 4, 0.8, 80)
	var splits []*ml.Dataset
	var err error
	if nonIID {
		splits, err = data.SplitLabelSkew(peers, 1, 81)
	} else {
		splits, err = data.SplitIID(peers, 81)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ml.NewLogistic(4, 4), splits, data
}

func TestGossipConvergesIID(t *testing.T) {
	m, locals, eval := gossipFixture(t, false)
	res, err := Run(m, locals, eval, m.Params(), Config{
		Degree: 2, Rounds: 10,
		SGD:  ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16},
		Seed: 82,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.PerRound[len(res.PerRound)-1]
	if last.MeanAccuracy < 0.85 {
		t.Fatalf("gossip on IID data should converge: accuracy %v", last.MeanAccuracy)
	}
	if len(res.FinalParams) != 8 {
		t.Fatal("missing final params")
	}
}

func TestGossipDisagreementShrinks(t *testing.T) {
	m, locals, eval := gossipFixture(t, false)
	res, err := Run(m, locals, eval, m.Params(), Config{
		Degree: 3, Rounds: 12,
		SGD:  ml.SGDConfig{LearningRate: 0.2, Epochs: 1, BatchSize: 16},
		Seed: 83,
	})
	if err != nil {
		t.Fatal(err)
	}
	early := res.PerRound[1].Disagreement
	late := res.PerRound[len(res.PerRound)-1].Disagreement
	if late >= early {
		t.Fatalf("gossip averaging should shrink disagreement: %v -> %v", early, late)
	}
	if late == 0 {
		t.Fatal("peers never reach exact consensus under gossip — zero is suspicious")
	}
}

func TestGossipWorseThanFedAvgOnLabelSkew(t *testing.T) {
	// The introduction's claim: purely decentralized gossip can lag
	// centralized(-equivalent) FL, especially on pathological splits.
	m, locals, eval := gossipFixture(t, true)
	const rounds = 6
	sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}

	res, err := Run(m, locals, eval, m.Params(), Config{Degree: 1, Rounds: rounds, SGD: sgd, Seed: 84})
	if err != nil {
		t.Fatal(err)
	}
	gossipAcc := res.PerRound[rounds-1].MeanAccuracy

	// FedAvg reference from the same initial state.
	global := ml.NewLogistic(4, 4).Params()
	for r := 0; r < rounds; r++ {
		roundSGD := sgd
		roundSGD.Seed = int64(r)
		next, _, err := ml.FedAvgRound(m, global, locals, roundSGD)
		if err != nil {
			t.Fatal(err)
		}
		global = next
	}
	if err := m.SetParams(global); err != nil {
		t.Fatal(err)
	}
	fedAcc := ml.Accuracy(m, eval)

	if fedAcc < 0.9 {
		t.Fatalf("FedAvg reference failed to converge: %v", fedAcc)
	}
	if gossipAcc >= fedAcc {
		t.Fatalf("expected gossip (%v) below FedAvg (%v) on label-skewed data after %d rounds",
			gossipAcc, fedAcc, rounds)
	}
}

func TestGossipDeterministic(t *testing.T) {
	m, locals, eval := gossipFixture(t, false)
	cfg := Config{Degree: 2, Rounds: 3, SGD: ml.SGDConfig{LearningRate: 0.2, Epochs: 1, BatchSize: 16}, Seed: 85}
	initial := m.Params() // capture once: Run mutates the scratch model
	a, err := Run(m, locals, eval, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, locals, eval, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerRound {
		if a.PerRound[i] != b.PerRound[i] {
			t.Fatalf("round %d metrics differ across identical runs", i)
		}
	}
}

func TestGossipValidation(t *testing.T) {
	m, locals, eval := gossipFixture(t, false)
	sgd := ml.SGDConfig{LearningRate: 0.1, Epochs: 1}
	bad := []Config{
		{Degree: 0, Rounds: 1, SGD: sgd},
		{Degree: 8, Rounds: 1, SGD: sgd},
		{Degree: 1, Rounds: 0, SGD: sgd},
	}
	for i, cfg := range bad {
		if _, err := Run(m, locals, eval, m.Params(), cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Run(m, locals[:1], eval, m.Params(), Config{Degree: 1, Rounds: 1, SGD: sgd}); err == nil {
		t.Error("single peer accepted")
	}
	if _, err := Run(m, locals, eval, make([]float64, 3), Config{Degree: 1, Rounds: 1, SGD: sgd}); err == nil {
		t.Error("wrong initial length accepted")
	}
}
