package group

import "sync/atomic"

// Explicit accounting hooks for the crypto hot path. The group package
// sits below the observability substrate (obs imports nothing from this
// module, and group must not import obs), so attribution is inverted:
// an interested caller installs an AccountFunc and the multiexp entry
// points bracket their work with it. cmd binaries wire this to the
// metrics registry; tests wire it to plain slices.

// AccountFunc is called at the start of an accounted operation with the
// operation name (e.g. "multiexp_pippenger") and its input size; the
// returned func is called when the operation completes. Either may be
// nil. Implementations must be safe for concurrent use.
type AccountFunc func(op string, n int) func()

// account holds the installed hook; the extra indirection lets an
// atomic pointer swap a func value.
var account atomic.Pointer[AccountFunc]

// SetAccount installs the accounting hook called around every
// multi-scalar multiplication (nil removes it). Safe to call
// concurrently with operations in flight.
func SetAccount(fn AccountFunc) {
	if fn == nil {
		account.Store(nil)
		return
	}
	account.Store(&fn)
}

// accountOp brackets one operation with the installed hook, returning
// the completion func (never nil).
func accountOp(op string, n int) func() {
	fn := account.Load()
	if fn == nil {
		return func() {}
	}
	done := (*fn)(op, n)
	if done == nil {
		return func() {}
	}
	return done
}
