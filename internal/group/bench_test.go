package group

import (
	"math/big"
	"math/rand"
	"testing"
)

func benchScalar(b *testing.B, c *Curve) *big.Int {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 32)
	rng.Read(buf)
	return new(big.Int).Mod(new(big.Int).SetBytes(buf), c.N)
}

func BenchmarkScalarMult(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			k := benchScalar(b, c)
			p := c.Generator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ScalarMult(p, k)
			}
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			p := c.ScalarBaseMult(benchScalar(b, c))
			q := c.Double(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(p, q)
			}
		})
	}
}

func BenchmarkHashToPoint(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.HashToPoint("bench", i)
			}
		})
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	c := Secp256k1()
	p := c.ScalarBaseMult(benchScalar(b, c))
	enc := c.Encode(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
