package group

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

func benchScalar(b *testing.B, c *Curve) *big.Int {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 32)
	rng.Read(buf)
	return new(big.Int).Mod(new(big.Int).SetBytes(buf), c.N)
}

func BenchmarkScalarMult(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			k := benchScalar(b, c)
			p := c.Generator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ScalarMult(p, k)
			}
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			p := c.ScalarBaseMult(benchScalar(b, c))
			q := c.Double(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(p, q)
			}
		})
	}
}

func BenchmarkHashToPoint(b *testing.B) {
	for _, c := range allCurves() {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.HashToPoint("bench", i)
			}
		})
	}
}

// BenchmarkMultiExp compares every multiexp strategy at sizes spanning the
// auto-selection bands; the n=4096 parallel-vs-pippenger pair is the
// ISSUE's reported speedup number.
func BenchmarkMultiExp(b *testing.B) {
	c := Secp256k1()
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{32, 256, 4096} {
		points, scalars := randomInputs(rng, c, n)
		for _, s := range []MultiExpStrategy{StrategyPippenger, StrategyParallel} {
			b.Run(fmt.Sprintf("%s/n=%d", s, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.MultiScalarMult(points, scalars, s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMultiExpFixed measures the fixed-base path with tables built
// outside the loop, the shape Pedersen commitments use per iteration.
func BenchmarkMultiExpFixed(b *testing.B) {
	c := Secp256k1()
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{32, 256} {
		points, scalars := randomInputs(rng, c, n)
		bases := make([]*FixedBase, n)
		for i := range points {
			bases[i] = c.NewFixedBase(points[i])
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.MultiScalarMultFixed(bases, scalars); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	c := Secp256k1()
	p := c.ScalarBaseMult(benchScalar(b, c))
	enc := c.Encode(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
