package group

import (
	"errors"
	"fmt"
	"math/big"
)

// CompressedSize is the size of a compressed point encoding: a parity tag
// byte followed by the 32-byte x coordinate. Commitments travel in every
// gradient record, so halving their wire size halves the directory's
// publish traffic.
const CompressedSize = 33

// Compressed-point tags, following SEC 1: 0x02/0x03 carry the parity of y,
// 0x00 marks the identity.
const (
	tagIdentity = 0x00
	tagEvenY    = 0x02
	tagOddY     = 0x03
)

// EncodeCompressed serializes a point into 33 bytes (SEC 1 style).
func (c *Curve) EncodeCompressed(p Point) []byte {
	buf := make([]byte, CompressedSize)
	if p.IsInfinity() {
		return buf
	}
	if p.Y.Bit(0) == 1 {
		buf[0] = tagOddY
	} else {
		buf[0] = tagEvenY
	}
	p.X.FillBytes(buf[1:])
	return buf
}

// DecodeCompressed parses a 33-byte compressed encoding, recovering y from
// the curve equation and the parity tag.
func (c *Curve) DecodeCompressed(b []byte) (Point, error) {
	if len(b) != CompressedSize {
		return Point{}, fmt.Errorf("group: compressed point must be %d bytes, got %d", CompressedSize, len(b))
	}
	switch b[0] {
	case tagIdentity:
		for _, v := range b[1:] {
			if v != 0 {
				return Point{}, errors.New("group: malformed compressed identity")
			}
		}
		return Point{}, nil
	case tagEvenY, tagOddY:
		x := new(big.Int).SetBytes(b[1:])
		if x.Cmp(c.P) >= 0 {
			return Point{}, errors.New("group: compressed x out of range")
		}
		y, ok := c.solveY(x)
		if !ok {
			return Point{}, errors.New("group: compressed x not on curve")
		}
		wantOdd := b[0] == tagOddY
		if (y.Bit(0) == 1) != wantOdd {
			y.Sub(c.P, y)
		}
		return Point{X: x, Y: y}, nil
	default:
		return Point{}, fmt.Errorf("group: unsupported compressed tag %#x", b[0])
	}
}
