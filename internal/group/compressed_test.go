package group

import (
	"math/rand"
	"testing"
)

func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, c := range allCurves() {
		for i := 0; i < 20; i++ {
			p := c.ScalarBaseMult(randScalar(rng, c))
			enc := c.EncodeCompressed(p)
			if len(enc) != CompressedSize {
				t.Fatalf("%s: encoding length %d", c.Name, len(enc))
			}
			got, err := c.DecodeCompressed(enc)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if !got.Equal(p) {
				t.Fatalf("%s: round trip mismatch", c.Name)
			}
		}
		// Identity round trip.
		enc := c.EncodeCompressed(Infinity())
		got, err := c.DecodeCompressed(enc)
		if err != nil || !got.IsInfinity() {
			t.Fatalf("%s: identity round trip failed: %v", c.Name, err)
		}
	}
}

func TestCompressedParityMatters(t *testing.T) {
	c := Secp256k1()
	rng := rand.New(rand.NewSource(31))
	p := c.ScalarBaseMult(randScalar(rng, c))
	enc := c.EncodeCompressed(p)
	// Flip the parity tag: decodes to the negated point.
	if enc[0] == tagEvenY {
		enc[0] = tagOddY
	} else {
		enc[0] = tagEvenY
	}
	got, err := c.DecodeCompressed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c.Neg(p)) {
		t.Fatal("flipped parity should decode to -P")
	}
}

func TestCompressedRejectsGarbage(t *testing.T) {
	c := Secp256r1()
	if _, err := c.DecodeCompressed(make([]byte, 10)); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]byte, CompressedSize)
	bad[0] = 0x09
	if _, err := c.DecodeCompressed(bad); err == nil {
		t.Fatal("expected tag error")
	}
	bad2 := make([]byte, CompressedSize)
	bad2[5] = 1 // identity tag but non-zero body
	if _, err := c.DecodeCompressed(bad2); err == nil {
		t.Fatal("expected malformed-identity error")
	}
	// x >= p must be rejected.
	tooBig := make([]byte, CompressedSize)
	tooBig[0] = tagEvenY
	for i := 1; i < CompressedSize; i++ {
		tooBig[i] = 0xff
	}
	if _, err := c.DecodeCompressed(tooBig); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// A non-residue x (not on curve) must be rejected; find one.
	probe := make([]byte, CompressedSize)
	probe[0] = tagEvenY
	found := false
	for x := byte(1); x < 50 && !found; x++ {
		probe[CompressedSize-1] = x
		if _, err := c.DecodeCompressed(probe); err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("could not find an off-curve x in probe range")
	}
}
