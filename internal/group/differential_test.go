package group

import (
	"math/big"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// explicitStrategies is every concrete strategy (Auto excluded: it resolves
// to one of these and is covered separately).
func explicitStrategies() []MultiExpStrategy {
	return []MultiExpStrategy{
		StrategyNaive, StrategyWindowed, StrategyPippenger,
		StrategyParallel, StrategyPrecomputed,
	}
}

// TestMultiExpDifferential is the strategy-equivalence suite: every
// concrete strategy must produce the identical point on the same seeded
// random inputs, across sizes that hit each auto-selection band (and the
// Pippenger tiny-input fallthrough), on both generic curves.
func TestMultiExpDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for _, c := range []*Curve{Secp256k1(), Secp256r1()} {
		for _, n := range []int{0, 1, 2, 33, 257} {
			points, scalars := randomInputs(rng, c, n)
			if n == 0 {
				// Empty input is an error regardless of strategy.
				for _, s := range explicitStrategies() {
					if _, err := c.MultiScalarMult(points, scalars, s); err == nil {
						t.Errorf("%s n=0 %v: expected error", c.Name, s)
					}
				}
				continue
			}
			want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
			if err != nil {
				t.Fatal(err)
			}
			if !c.IsOnCurve(want) {
				t.Fatalf("%s n=%d: naive result off-curve", c.Name, n)
			}
			for _, s := range explicitStrategies()[1:] {
				got, err := c.MultiScalarMult(points, scalars, s)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("%s n=%d: %v disagrees with naive", c.Name, n, s)
				}
			}
			got, err := c.MultiScalarMult(points, scalars, StrategyAuto)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%s n=%d: auto disagrees with naive", c.Name, n)
			}
		}
	}
}

// TestMultiExpEdgeScalars pins the scalar edge cases on every strategy:
// zero (skipped digits), one (raw base), order−1 (signed recoding flips the
// base), and mixtures thereof alongside random scalars.
func TestMultiExpEdgeScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	c := Secp256k1()
	orderMinus1 := new(big.Int).Sub(c.N, big.NewInt(1))
	edges := []*big.Int{big.NewInt(0), big.NewInt(1), orderMinus1}

	cases := [][]*big.Int{
		{big.NewInt(0)},
		{big.NewInt(1)},
		{orderMinus1},
		{big.NewInt(0), big.NewInt(1), orderMinus1},
	}
	// A longer mixed vector: edges interleaved with random scalars so the
	// bucket and table paths see both extremes in one pass.
	mixed := make([]*big.Int, 33)
	for i := range mixed {
		if i%4 == 3 {
			mixed[i] = edges[i%len(edges)]
		} else {
			mixed[i] = randScalar(rng, c)
		}
	}
	cases = append(cases, mixed)

	for ci, scalars := range cases {
		points := make([]Point, len(scalars))
		for i := range points {
			points[i] = c.ScalarBaseMult(randScalar(rng, c))
		}
		want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range explicitStrategies()[1:] {
			got, err := c.MultiScalarMult(points, scalars, s)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("case %d: %v disagrees with naive", ci, s)
			}
		}
	}
}

// TestMultiExpInfinityBases checks that identity bases contribute nothing
// on every strategy (the precomputed table of infinity is all-infinity).
func TestMultiExpInfinityBases(t *testing.T) {
	rng := rand.New(rand.NewSource(9003))
	c := Secp256r1()
	points, scalars := randomInputs(rng, c, 7)
	points[0] = Infinity()
	points[4] = Infinity()
	want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range explicitStrategies()[1:] {
		got, err := c.MultiScalarMult(points, scalars, s)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%v disagrees with naive on infinity bases", s)
		}
	}
}

// TestAutoStrategySelection pins the auto-resolution bands, including the
// parallelism-dependent switch to StrategyParallel.
func TestAutoStrategySelection(t *testing.T) {
	c := Secp256k1()
	prev := c.Parallelism()
	defer c.SetParallelism(prev)

	c.SetParallelism(4)
	cases := []struct {
		n    int
		want MultiExpStrategy
	}{
		{1, StrategyNaive},
		{3, StrategyNaive},
		{4, StrategyWindowed},
		{31, StrategyWindowed},
		{32, StrategyPippenger},
		{parallelMinPoints - 1, StrategyPippenger},
		{parallelMinPoints, StrategyParallel},
		{4096, StrategyParallel},
	}
	for _, tc := range cases {
		if got := c.autoStrategy(tc.n); got != tc.want {
			t.Errorf("autoStrategy(%d) with 4 workers = %v, want %v", tc.n, got, tc.want)
		}
	}

	// One worker: auto must never pick the parallel path.
	c.SetParallelism(1)
	for _, n := range []int{parallelMinPoints, 4096} {
		if got := c.autoStrategy(n); got != StrategyPippenger {
			t.Errorf("autoStrategy(%d) with 1 worker = %v, want pippenger", n, got)
		}
	}

	// Accelerated backend always resolves to naive.
	fast := Secp256r1Fast()
	for _, n := range []int{1, 64, 4096} {
		if got := fast.autoStrategy(n); got != StrategyNaive {
			t.Errorf("fast autoStrategy(%d) = %v, want naive", n, got)
		}
	}
}

// TestPippengerTinyInputCrossover pins the n≤2 fallthrough: below
// pippengerMinPoints the bucket method degenerates (every bucket holds at
// most one point), so Pippenger and Parallel must route to the windowed
// walk — observable as identical results plus the pinned constant.
func TestPippengerTinyInputCrossover(t *testing.T) {
	if pippengerMinPoints != 3 {
		t.Fatalf("pippengerMinPoints = %d, want 3 (n≤2 falls through to windowed)", pippengerMinPoints)
	}
	rng := rand.New(rand.NewSource(9004))
	c := Secp256k1()
	for n := 1; n <= 4; n++ {
		points, scalars := randomInputs(rng, c, n)
		want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []MultiExpStrategy{StrategyPippenger, StrategyParallel} {
			got, err := c.MultiScalarMult(points, scalars, s)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("n=%d: %v disagrees with naive at the crossover", n, s)
			}
		}
	}
}

// TestPippengerWindowSizes pins the bucket-width schedule so an accidental
// change to the crossovers shows up as a test diff, not a silent perf shift.
func TestPippengerWindowSizes(t *testing.T) {
	cases := []struct{ n, want int }{
		{3, 4}, {63, 4}, {64, 6}, {511, 6}, {512, 8},
		{4095, 8}, {4096, 10}, {65535, 10}, {65536, 12},
	}
	for _, tc := range cases {
		if got := pippengerWindow(tc.n); got != tc.want {
			t.Errorf("pippengerWindow(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestParallelismKnob exercises SetParallelism bounds and checks the
// parallel path agrees with sequential Pippenger at several worker counts,
// including more workers than windows.
func TestParallelismKnob(t *testing.T) {
	c := Secp256k1()
	prev := c.Parallelism()
	defer c.SetParallelism(prev)

	c.SetParallelism(-5)
	if got := c.Parallelism(); got != 0 {
		t.Fatalf("negative parallelism should clamp to 0, got %d", got)
	}
	if got := c.workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}

	rng := rand.New(rand.NewSource(9005))
	points, scalars := randomInputs(rng, c, 65)
	want, err := c.MultiScalarMult(points, scalars, StrategyPippenger)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 64} {
		c.SetParallelism(workers)
		got, err := c.MultiScalarMult(points, scalars, StrategyParallel)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("parallel with %d workers disagrees with sequential", workers)
		}
	}
}

// TestMultiExpParallelDeterministic verifies repeated parallel runs return
// bit-identical points: worker scheduling must not leak into the result.
func TestMultiExpParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9006))
	c := Secp256r1()
	points, scalars := randomInputs(rng, c, 130)
	first, err := c.MultiScalarMult(points, scalars, StrategyParallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := c.MultiScalarMult(points, scalars, StrategyParallel)
		if err != nil {
			t.Fatal(err)
		}
		if got.X.Cmp(first.X) != 0 || got.Y.Cmp(first.Y) != 0 {
			t.Fatalf("run %d: parallel result not deterministic", i)
		}
	}
}

// TestParallelSpeedupReport measures parallel vs sequential Pippenger at
// n=4096 and reports the ratio. The acceptance target (≥2× on a multi-core
// runner) is reported, not gated: CI runners vary too much to assert on.
func TestParallelSpeedupReport(t *testing.T) {
	if testing.Short() {
		t.Skip("timing report skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core runner")
	}
	rng := rand.New(rand.NewSource(9007))
	c := Secp256k1()
	points, scalars := randomInputs(rng, c, 4096)

	start := time.Now()
	seq, err := c.MultiScalarMult(points, scalars, StrategyPippenger)
	if err != nil {
		t.Fatal(err)
	}
	seqDur := time.Since(start)

	start = time.Now()
	par, err := c.MultiScalarMult(points, scalars, StrategyParallel)
	if err != nil {
		t.Fatal(err)
	}
	parDur := time.Since(start)

	if !par.Equal(seq) {
		t.Fatal("parallel disagrees with sequential at n=4096")
	}
	t.Logf("n=4096 sequential=%v parallel=%v speedup=%.2fx (GOMAXPROCS=%d)",
		seqDur, parDur, float64(seqDur)/float64(parDur), runtime.GOMAXPROCS(0))
}

// TestFixedBaseReuse checks a FixedBase table is reusable across calls and
// concurrent readers: same table, different scalar vectors, same answers
// as the ad-hoc path.
func TestFixedBaseReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9008))
	c := Secp256k1()
	points, _ := randomInputs(rng, c, 16)
	bases := make([]*FixedBase, len(points))
	for i := range points {
		bases[i] = c.NewFixedBase(points[i])
	}
	for round := 0; round < 3; round++ {
		scalars := make([]*big.Int, len(points))
		for i := range scalars {
			scalars[i] = randScalar(rng, c)
		}
		want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.MultiScalarMultFixed(bases, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: fixed-base disagrees with naive", round)
		}
	}
}

func TestMultiScalarMultFixedErrors(t *testing.T) {
	c := Secp256k1()
	if _, err := c.MultiScalarMultFixed(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	fb := c.NewFixedBase(c.Generator())
	if _, err := c.MultiScalarMultFixed([]*FixedBase{fb}, nil); err == nil {
		t.Fatal("expected error on length mismatch")
	}
}
