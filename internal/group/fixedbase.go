package group

import (
	"errors"
	"fmt"
	"math/big"
)

// fixedBaseWindow is the digit width of a FixedBase table. 4 bits gives a
// 16-entry table (15 stored points beyond the identity): ~2–3.6 KB per
// generator with math/big coordinates. Pedersen generator sets are
// per-session and long-lived, so the table amortizes across every
// commitment of a training run.
const fixedBaseWindow = 4

// FixedBase is a precomputed window table for one long-lived base point.
// Entry d holds d·P in Jacobian form, so a multiexp over fixed bases
// skips the per-call table build that multiExpWindowed pays. The table is
// immutable after NewFixedBase returns and safe for concurrent readers.
type FixedBase struct {
	table [1 << fixedBaseWindow]jacobianPoint
}

// NewFixedBase precomputes the window table for p. An infinity base yields
// a table of infinities, contributing nothing to any multiexp.
func (c *Curve) NewFixedBase(p Point) *FixedBase {
	fb := &FixedBase{}
	jp := toJacobian(p)
	fb.table[0] = jacobianInfinity()
	fb.table[1] = jp
	for t := 2; t < len(fb.table); t++ {
		if t%2 == 0 {
			fb.table[t] = c.jacDouble(fb.table[t/2])
		} else {
			fb.table[t] = c.jacAdd(fb.table[t-1], jp)
		}
	}
	return fb
}

// jacNeg negates a Jacobian point: (X, Y, Z) → (X, P−Y, Z). Needed because
// signed recoding flips some bases, and a FixedBase stores multiples of the
// un-negated generator only.
func (c *Curve) jacNeg(p jacobianPoint) jacobianPoint {
	if p.isInfinity() || p.y.Sign() == 0 {
		return p
	}
	return jacobianPoint{x: p.x, y: new(big.Int).Sub(c.P, p.y), z: p.z}
}

// MultiScalarMultFixed computes ∑ kᵢ·basesᵢ using precomputed window
// tables. It is the fixed-base analogue of MultiScalarMult: same result,
// but the shared-doubling walk reads table entries instead of building
// per-base tables per call.
func (c *Curve) MultiScalarMultFixed(bases []*FixedBase, scalars []*big.Int) (Point, error) {
	if len(bases) != len(scalars) {
		return Point{}, fmt.Errorf("group: %d bases but %d scalars", len(bases), len(scalars))
	}
	if len(bases) == 0 {
		return Point{}, errors.New("group: empty multi-scalar multiplication")
	}
	defer accountOp("multiexp_precomputed", len(bases))()
	return c.multiExpFixed(bases, scalars), nil
}

// multiExpFixed is the shared-doubling windowed walk over precomputed
// tables. Signed recoding still applies — scalars in the top half of the
// order flip to (order−k, −d·P) — with the negation applied lazily to the
// table entry at lookup time via jacNeg (a single field subtraction, far
// cheaper than doubling the stored table).
func (c *Curve) multiExpFixed(bases []*FixedBase, scalars []*big.Int) Point {
	const w = fixedBaseWindow
	n := len(bases)
	recoded := make([]*big.Int, n)
	negate := make([]bool, n)
	half := new(big.Int).Rsh(c.N, 1)
	maxBits := 0
	for i := range scalars {
		kr := new(big.Int).Mod(scalars[i], c.N)
		if kr.Cmp(half) > 0 {
			kr.Sub(c.N, kr)
			negate[i] = true
		}
		recoded[i] = kr
		if bl := kr.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	if maxBits == 0 {
		return Infinity()
	}
	windows := (maxBits + w - 1) / w
	acc := jacobianInfinity()
	for win := windows - 1; win >= 0; win-- {
		if !acc.isInfinity() {
			for d := 0; d < w; d++ {
				acc = c.jacDouble(acc)
			}
		}
		for i := range recoded {
			digit := windowDigit(recoded[i], win, w)
			if digit == 0 {
				continue
			}
			entry := bases[i].table[digit]
			if negate[i] {
				entry = c.jacNeg(entry)
			}
			acc = c.jacAdd(acc, entry)
		}
	}
	return c.fromJacobian(acc)
}
