package group

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzDecode checks the uncompressed point decoder: no panics, and
// anything accepted is on the curve and re-encodes identically.
func FuzzDecode(f *testing.F) {
	c := Secp256k1()
	f.Add(c.Encode(c.Generator()))
	f.Add(c.Encode(Infinity()))
	f.Add(make([]byte, EncodedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.Decode(data)
		if err != nil {
			return
		}
		if !c.IsOnCurve(p) {
			t.Fatal("decoder accepted an off-curve point")
		}
		if string(c.Encode(p)) != string(data) {
			t.Fatal("point encoding not canonical")
		}
	})
}

// FuzzMultiExpParallel cross-checks the parallel Pippenger path against
// the sequential one on fuzzer-shaped scalar vectors. Points are derived
// deterministically from an index seed so the fuzzer explores the scalar
// space (where the recoding and bucket logic lives), not curve membership.
func FuzzMultiExpParallel(f *testing.F) {
	c := Secp256k1()
	f.Add([]byte{1})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Add(append(c.N.Bytes(), 0, 1, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Each 8-byte chunk (last one may be short) becomes one scalar,
		// stretched over the full order via multiplication with a fixed
		// wide constant so high-bit and signed-recoding paths are hit.
		stretch := new(big.Int).Lsh(big.NewInt(0x9e3779b9), 160)
		var scalars []*big.Int
		for i := 0; i < len(data) && len(scalars) < 64; i += 8 {
			end := i + 8
			if end > len(data) {
				end = len(data)
			}
			k := new(big.Int).SetBytes(data[i:end])
			if data[i]&1 == 1 {
				k.Mul(k, stretch)
			}
			scalars = append(scalars, k)
		}
		points := make([]Point, len(scalars))
		for i := range points {
			points[i] = c.ScalarBaseMult(big.NewInt(int64(i)*7919 + 1))
		}
		seq, err := c.MultiScalarMult(points, scalars, StrategyPippenger)
		if err != nil {
			t.Fatal(err)
		}
		par, err := c.MultiScalarMult(points, scalars, StrategyParallel)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Fatalf("parallel disagrees with sequential on %d scalars", len(scalars))
		}
	})
}

// FuzzDecodeCompressed does the same for the 33-byte form.
func FuzzDecodeCompressed(f *testing.F) {
	c := Secp256r1()
	f.Add(c.EncodeCompressed(c.Generator()))
	f.Add(c.EncodeCompressed(Infinity()))
	g2 := c.ScalarMult(c.Generator(), big.NewInt(2))
	f.Add(c.EncodeCompressed(g2))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.DecodeCompressed(data)
		if err != nil {
			return
		}
		if !c.IsOnCurve(p) {
			t.Fatal("compressed decoder accepted an off-curve point")
		}
		if string(c.EncodeCompressed(p)) != string(data) {
			t.Fatal("compressed encoding not canonical")
		}
	})
}
