package group

import (
	"math/big"
	"testing"
)

// FuzzDecode checks the uncompressed point decoder: no panics, and
// anything accepted is on the curve and re-encodes identically.
func FuzzDecode(f *testing.F) {
	c := Secp256k1()
	f.Add(c.Encode(c.Generator()))
	f.Add(c.Encode(Infinity()))
	f.Add(make([]byte, EncodedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.Decode(data)
		if err != nil {
			return
		}
		if !c.IsOnCurve(p) {
			t.Fatal("decoder accepted an off-curve point")
		}
		if string(c.Encode(p)) != string(data) {
			t.Fatal("point encoding not canonical")
		}
	})
}

// FuzzDecodeCompressed does the same for the 33-byte form.
func FuzzDecodeCompressed(f *testing.F) {
	c := Secp256r1()
	f.Add(c.EncodeCompressed(c.Generator()))
	f.Add(c.EncodeCompressed(Infinity()))
	g2 := c.ScalarMult(c.Generator(), big.NewInt(2))
	f.Add(c.EncodeCompressed(g2))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := c.DecodeCompressed(data)
		if err != nil {
			return
		}
		if !c.IsOnCurve(p) {
			t.Fatal("compressed decoder accepted an off-curve point")
		}
		if string(c.EncodeCompressed(p)) != string(data) {
			t.Fatal("compressed encoding not canonical")
		}
	})
}
