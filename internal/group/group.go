// Package group implements prime-order elliptic-curve groups in short
// Weierstrass form (y² = x³ + ax + b over GF(p)) with the two curves the
// paper evaluates: secp256k1 and secp256r1 (NIST P-256).
//
// The generic implementation uses Jacobian coordinates over math/big, which
// mirrors the paper's "rather straight-forward" Bouncy Castle usage. An
// additional stdlib-accelerated secp256r1 variant (Secp256r1Fast) shows the
// headroom available from optimized curve arithmetic, one of the future-work
// directions the paper identifies.
package group

import (
	"crypto/elliptic"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"
)

// Point is an affine curve point. The zero value (nil coordinates)
// represents the point at infinity (the group identity).
type Point struct {
	X, Y *big.Int
}

// Infinity returns the group identity.
func Infinity() Point { return Point{} }

// IsInfinity reports whether p is the identity.
func (p Point) IsInfinity() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two points are the same group element.
func (p Point) Equal(q Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() && q.IsInfinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	if p.IsInfinity() {
		return Point{}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
}

// Curve describes a short Weierstrass curve y² = x³ + ax + b over GF(P) with
// a base point (Gx, Gy) of prime order N.
type Curve struct {
	Name string
	P    *big.Int // field prime
	N    *big.Int // group order
	A    *big.Int // curve coefficient a (mod P)
	B    *big.Int // curve coefficient b
	Gx   *big.Int // base point x
	Gy   *big.Int // base point y

	fast elliptic.Curve // optional stdlib-backed arithmetic

	// par bounds StrategyParallel worker goroutines (0 = GOMAXPROCS).
	// Atomic because the constructors return shared singletons and the
	// knob may be flipped while multiexps are in flight.
	par atomic.Int32
}

// EncodedSize is the size of an uncompressed encoded point: a one-byte tag
// followed by two 32-byte coordinates.
const EncodedSize = 65

var (
	secp256k1  = newSecp256k1()
	secp256r1  = newSecp256r1(false)
	secp256r1F = newSecp256r1(true)
)

// Secp256k1 returns the secp256k1 curve (a=0, b=7), as used by Bitcoin.
func Secp256k1() *Curve { return secp256k1 }

// Secp256r1 returns the NIST P-256 curve with generic big.Int arithmetic,
// matching the paper's unoptimized implementation.
func Secp256r1() *Curve { return secp256r1 }

// Secp256r1Fast returns NIST P-256 backed by crypto/elliptic's optimized
// constant-time arithmetic.
func Secp256r1Fast() *Curve { return secp256r1F }

// ByName resolves a curve by its canonical name.
func ByName(name string) (*Curve, error) {
	switch name {
	case "secp256k1":
		return Secp256k1(), nil
	case "secp256r1":
		return Secp256r1(), nil
	case "secp256r1-fast", "p256-fast":
		return Secp256r1Fast(), nil
	default:
		return nil, fmt.Errorf("group: unknown curve %q", name)
	}
}

func newSecp256k1() *Curve {
	hexInt := mustHex
	return &Curve{
		Name: "secp256k1",
		P:    hexInt("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"),
		N:    hexInt("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"),
		A:    big.NewInt(0),
		B:    big.NewInt(7),
		Gx:   hexInt("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
		Gy:   hexInt("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
	}
}

func newSecp256r1(fast bool) *Curve {
	std := elliptic.P256()
	params := std.Params()
	a := new(big.Int).Sub(params.P, big.NewInt(3)) // a = -3 mod p
	c := &Curve{
		Name: "secp256r1",
		P:    params.P,
		N:    params.N,
		A:    a,
		B:    params.B,
		Gx:   params.Gx,
		Gy:   params.Gy,
	}
	if fast {
		c.Name = "secp256r1-fast"
		c.fast = std
	}
	return c
}

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("group: bad hex constant " + s)
	}
	return v
}

// Generator returns the curve's base point.
func (c *Curve) Generator() Point {
	return Point{X: new(big.Int).Set(c.Gx), Y: new(big.Int).Set(c.Gy)}
}

// IsOnCurve reports whether p satisfies the curve equation (the identity is
// considered on-curve).
func (c *Curve) IsOnCurve(p Point) bool {
	if p.IsInfinity() {
		return true
	}
	if p.X.Sign() < 0 || p.X.Cmp(c.P) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(c.P) >= 0 {
		return false
	}
	// y² == x³ + ax + b (mod p)
	lhs := new(big.Int).Mul(p.Y, p.Y)
	lhs.Mod(lhs, c.P)
	rhs := new(big.Int).Mul(p.X, p.X)
	rhs.Mul(rhs, p.X)
	ax := new(big.Int).Mul(c.A, p.X)
	rhs.Add(rhs, ax)
	rhs.Add(rhs, c.B)
	rhs.Mod(rhs, c.P)
	return lhs.Cmp(rhs) == 0
}

// Add returns p + q.
func (c *Curve) Add(p, q Point) Point {
	if p.IsInfinity() {
		return q.Clone()
	}
	if q.IsInfinity() {
		return p.Clone()
	}
	if c.fast != nil {
		x, y := c.fast.Add(p.X, p.Y, q.X, q.Y)
		return fromStd(x, y)
	}
	jp := toJacobian(p)
	jq := toJacobian(q)
	return c.fromJacobian(c.jacAdd(jp, jq))
}

// Neg returns -p.
func (c *Curve) Neg(p Point) Point {
	if p.IsInfinity() {
		return Point{}
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Sub(c.P, p.Y)}
}

// Double returns 2p.
func (c *Curve) Double(p Point) Point {
	if p.IsInfinity() {
		return Point{}
	}
	if c.fast != nil {
		x, y := c.fast.Double(p.X, p.Y)
		return fromStd(x, y)
	}
	return c.fromJacobian(c.jacDouble(toJacobian(p)))
}

// ScalarMult returns k·p. The scalar is reduced modulo the group order.
func (c *Curve) ScalarMult(p Point, k *big.Int) Point {
	kr := new(big.Int).Mod(k, c.N)
	if kr.Sign() == 0 || p.IsInfinity() {
		return Point{}
	}
	if c.fast != nil {
		x, y := c.fast.ScalarMult(p.X, p.Y, kr.Bytes())
		return fromStd(x, y)
	}
	return c.fromJacobian(c.jacScalarMult(toJacobian(p), kr))
}

// ScalarBaseMult returns k·G.
func (c *Curve) ScalarBaseMult(k *big.Int) Point {
	if c.fast != nil {
		kr := new(big.Int).Mod(k, c.N)
		if kr.Sign() == 0 {
			return Point{}
		}
		x, y := c.fast.ScalarBaseMult(kr.Bytes())
		return fromStd(x, y)
	}
	return c.ScalarMult(c.Generator(), k)
}

func fromStd(x, y *big.Int) Point {
	if x.Sign() == 0 && y.Sign() == 0 {
		return Point{}
	}
	return Point{X: x, Y: y}
}

// Encode serializes a point as a 65-byte uncompressed encoding. The identity
// encodes as 65 zero bytes.
func (c *Curve) Encode(p Point) []byte {
	buf := make([]byte, EncodedSize)
	if p.IsInfinity() {
		return buf
	}
	buf[0] = 4
	p.X.FillBytes(buf[1:33])
	p.Y.FillBytes(buf[33:65])
	return buf
}

// Decode parses an encoding produced by Encode and validates curve
// membership.
func (c *Curve) Decode(b []byte) (Point, error) {
	if len(b) != EncodedSize {
		return Point{}, fmt.Errorf("group: point must be %d bytes, got %d", EncodedSize, len(b))
	}
	if b[0] == 0 {
		for _, v := range b[1:] {
			if v != 0 {
				return Point{}, errors.New("group: malformed identity encoding")
			}
		}
		return Point{}, nil
	}
	if b[0] != 4 {
		return Point{}, fmt.Errorf("group: unsupported point tag %#x", b[0])
	}
	p := Point{
		X: new(big.Int).SetBytes(b[1:33]),
		Y: new(big.Int).SetBytes(b[33:65]),
	}
	if !c.IsOnCurve(p) {
		return Point{}, errors.New("group: point not on curve")
	}
	return p, nil
}

// HashToPoint derives a curve point from a label and an index using
// try-and-increment: candidate x coordinates are produced by hashing
// (label, index, counter) until one lies on the curve. The even-y root is
// chosen so the mapping is deterministic. Nothing about the discrete log of
// the result is known to anyone, which is what Pedersen generators require.
func (c *Curve) HashToPoint(label string, index int) Point {
	var ctrBuf [8]byte
	var idxBuf [8]byte
	binary.BigEndian.PutUint64(idxBuf[:], uint64(index))
	for ctr := uint64(0); ; ctr++ {
		binary.BigEndian.PutUint64(ctrBuf[:], ctr)
		h := sha256.New()
		h.Write([]byte("ipls/hash-to-point/"))
		h.Write([]byte(c.Name))
		h.Write([]byte{0})
		h.Write([]byte(label))
		h.Write([]byte{0})
		h.Write(idxBuf[:])
		h.Write(ctrBuf[:])
		x := new(big.Int).SetBytes(h.Sum(nil))
		if x.Cmp(c.P) >= 0 {
			continue
		}
		y, ok := c.solveY(x)
		if !ok {
			continue
		}
		if y.Bit(0) == 1 {
			y.Sub(c.P, y)
		}
		p := Point{X: x, Y: y}
		if !c.IsOnCurve(p) { // defensive; should always hold
			continue
		}
		return p
	}
}

// solveY returns a square root of x³ + ax + b mod p if one exists. Both
// supported primes satisfy p ≡ 3 (mod 4), so the root is t^((p+1)/4).
func (c *Curve) solveY(x *big.Int) (*big.Int, bool) {
	t := new(big.Int).Mul(x, x)
	t.Mul(t, x)
	ax := new(big.Int).Mul(c.A, x)
	t.Add(t, ax)
	t.Add(t, c.B)
	t.Mod(t, c.P)
	exp := new(big.Int).Add(c.P, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(t, exp, c.P)
	check := new(big.Int).Mul(y, y)
	check.Mod(check, c.P)
	if check.Cmp(t) != 0 {
		return nil, false
	}
	return y, true
}
