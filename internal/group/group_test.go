package group

import (
	"math/big"
	"math/rand"
	"testing"
)

func allCurves() []*Curve {
	return []*Curve{Secp256k1(), Secp256r1(), Secp256r1Fast()}
}

func randScalar(rng *rand.Rand, c *Curve) *big.Int {
	b := make([]byte, 32)
	rng.Read(b)
	return new(big.Int).Mod(new(big.Int).SetBytes(b), c.N)
}

func TestGeneratorOnCurve(t *testing.T) {
	for _, c := range allCurves() {
		if !c.IsOnCurve(c.Generator()) {
			t.Errorf("%s: generator not on curve", c.Name)
		}
	}
}

func TestOrderTimesGeneratorIsInfinity(t *testing.T) {
	for _, c := range allCurves() {
		g := c.Generator()
		// (N-1)·G + G must be the identity.
		nm1 := new(big.Int).Sub(c.N, big.NewInt(1))
		p := c.ScalarMult(g, nm1)
		sum := c.Add(p, g)
		if !sum.IsInfinity() {
			t.Errorf("%s: (N-1)G + G != infinity", c.Name)
		}
	}
}

func TestScalarMultMatchesRepeatedAdd(t *testing.T) {
	for _, c := range allCurves() {
		g := c.Generator()
		acc := Infinity()
		for k := 1; k <= 20; k++ {
			acc = c.Add(acc, g)
			got := c.ScalarMult(g, big.NewInt(int64(k)))
			if !got.Equal(acc) {
				t.Fatalf("%s: %d·G mismatch", c.Name, k)
			}
			if !c.IsOnCurve(got) {
				t.Fatalf("%s: %d·G off curve", c.Name, k)
			}
		}
	}
}

func TestAddCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, c := range allCurves() {
		for i := 0; i < 10; i++ {
			p := c.ScalarBaseMult(randScalar(rng, c))
			q := c.ScalarBaseMult(randScalar(rng, c))
			if !c.Add(p, q).Equal(c.Add(q, p)) {
				t.Fatalf("%s: addition not commutative", c.Name)
			}
		}
	}
}

func TestAddAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range allCurves() {
		for i := 0; i < 5; i++ {
			p := c.ScalarBaseMult(randScalar(rng, c))
			q := c.ScalarBaseMult(randScalar(rng, c))
			r := c.ScalarBaseMult(randScalar(rng, c))
			lhs := c.Add(c.Add(p, q), r)
			rhs := c.Add(p, c.Add(q, r))
			if !lhs.Equal(rhs) {
				t.Fatalf("%s: addition not associative", c.Name)
			}
		}
	}
}

func TestScalarMultDistributesOverScalarAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, c := range allCurves() {
		g := c.Generator()
		for i := 0; i < 5; i++ {
			a := randScalar(rng, c)
			b := randScalar(rng, c)
			sum := new(big.Int).Add(a, b)
			lhs := c.ScalarMult(g, sum)
			rhs := c.Add(c.ScalarMult(g, a), c.ScalarMult(g, b))
			if !lhs.Equal(rhs) {
				t.Fatalf("%s: (a+b)G != aG + bG", c.Name)
			}
		}
	}
}

func TestNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range allCurves() {
		p := c.ScalarBaseMult(randScalar(rng, c))
		if !c.Add(p, c.Neg(p)).IsInfinity() {
			t.Errorf("%s: P + (-P) != infinity", c.Name)
		}
		if !c.Neg(Infinity()).IsInfinity() {
			t.Errorf("%s: -infinity != infinity", c.Name)
		}
	}
}

func TestDoubleMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, c := range allCurves() {
		for i := 0; i < 5; i++ {
			p := c.ScalarBaseMult(randScalar(rng, c))
			if !c.Double(p).Equal(c.Add(p, p)) {
				t.Fatalf("%s: 2P != P+P", c.Name)
			}
		}
		if !c.Double(Infinity()).IsInfinity() {
			t.Errorf("%s: 2·infinity != infinity", c.Name)
		}
	}
}

func TestIdentityLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, c := range allCurves() {
		p := c.ScalarBaseMult(randScalar(rng, c))
		if !c.Add(p, Infinity()).Equal(p) || !c.Add(Infinity(), p).Equal(p) {
			t.Errorf("%s: identity not neutral", c.Name)
		}
		if !c.ScalarMult(p, new(big.Int)).IsInfinity() {
			t.Errorf("%s: 0·P != infinity", c.Name)
		}
		if !c.ScalarMult(Infinity(), big.NewInt(7)).IsInfinity() {
			t.Errorf("%s: k·infinity != infinity", c.Name)
		}
	}
}

// TestGenericMatchesFastBackend cross-checks our generic Jacobian arithmetic
// against crypto/elliptic on the shared curve secp256r1.
func TestGenericMatchesFastBackend(t *testing.T) {
	generic := Secp256r1()
	fast := Secp256r1Fast()
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 10; i++ {
		k := randScalar(rng, generic)
		pg := generic.ScalarBaseMult(k)
		pf := fast.ScalarBaseMult(k)
		if !pg.Equal(pf) {
			t.Fatalf("scalar base mult mismatch for k=%v", k)
		}
		k2 := randScalar(rng, generic)
		qg := generic.ScalarMult(pg, k2)
		qf := fast.ScalarMult(pf, k2)
		if !qg.Equal(qf) {
			t.Fatalf("scalar mult mismatch")
		}
		if !generic.Add(pg, qg).Equal(fast.Add(pf, qf)) {
			t.Fatalf("add mismatch")
		}
	}
}

// TestSecp256k1KnownVector checks 2·G against the published test vector.
func TestSecp256k1KnownVector(t *testing.T) {
	c := Secp256k1()
	want := Point{
		X: mustHex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"),
		Y: mustHex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"),
	}
	if got := c.Double(c.Generator()); !got.Equal(want) {
		t.Fatalf("2G mismatch: got (%x, %x)", got.X, got.Y)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range allCurves() {
		for i := 0; i < 10; i++ {
			p := c.ScalarBaseMult(randScalar(rng, c))
			enc := c.Encode(p)
			got, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.Name, err)
			}
			if !got.Equal(p) {
				t.Fatalf("%s: round trip mismatch", c.Name)
			}
		}
		// Identity round trip.
		enc := c.Encode(Infinity())
		got, err := c.Decode(enc)
		if err != nil || !got.IsInfinity() {
			t.Fatalf("%s: identity round trip failed: %v", c.Name, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	c := Secp256k1()
	if _, err := c.Decode(make([]byte, 10)); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]byte, EncodedSize)
	bad[0] = 4
	bad[10] = 0xff
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("expected off-curve error")
	}
	bad2 := make([]byte, EncodedSize)
	bad2[0] = 2
	if _, err := c.Decode(bad2); err == nil {
		t.Fatal("expected unsupported-tag error")
	}
	bad3 := make([]byte, EncodedSize)
	bad3[5] = 1 // tag 0 but non-zero body
	if _, err := c.Decode(bad3); err == nil {
		t.Fatal("expected malformed-identity error")
	}
}

func TestHashToPointDeterministicAndOnCurve(t *testing.T) {
	for _, c := range allCurves() {
		p1 := c.HashToPoint("generators", 0)
		p2 := c.HashToPoint("generators", 0)
		if !p1.Equal(p2) {
			t.Errorf("%s: hash-to-point not deterministic", c.Name)
		}
		if !c.IsOnCurve(p1) {
			t.Errorf("%s: hashed point off curve", c.Name)
		}
		q := c.HashToPoint("generators", 1)
		if p1.Equal(q) {
			t.Errorf("%s: distinct indices mapped to the same point", c.Name)
		}
		r := c.HashToPoint("other-label", 0)
		if p1.Equal(r) {
			t.Errorf("%s: distinct labels mapped to the same point", c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"secp256k1", "secp256r1", "secp256r1-fast"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("ed25519"); err == nil {
		t.Fatal("expected error for unknown curve")
	}
}

func TestIsOnCurveRejectsOutOfRange(t *testing.T) {
	c := Secp256k1()
	p := Point{X: new(big.Int).Set(c.P), Y: big.NewInt(1)}
	if c.IsOnCurve(p) {
		t.Fatal("x >= p accepted")
	}
	q := Point{X: big.NewInt(-1), Y: big.NewInt(1)}
	if c.IsOnCurve(q) {
		t.Fatal("negative coordinate accepted")
	}
}
