package group

import "math/big"

// jacobianPoint is a point in Jacobian projective coordinates:
// (X, Y, Z) represents the affine point (X/Z², Y/Z³). Z = 0 is the identity.
type jacobianPoint struct {
	x, y, z *big.Int
}

func jacobianInfinity() jacobianPoint {
	return jacobianPoint{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
}

func (j jacobianPoint) isInfinity() bool { return j.z.Sign() == 0 }

func toJacobian(p Point) jacobianPoint {
	if p.IsInfinity() {
		return jacobianInfinity()
	}
	return jacobianPoint{
		x: new(big.Int).Set(p.X),
		y: new(big.Int).Set(p.Y),
		z: big.NewInt(1),
	}
}

func (c *Curve) fromJacobian(j jacobianPoint) Point {
	if j.isInfinity() {
		return Point{}
	}
	zInv := new(big.Int).ModInverse(j.z, c.P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, c.P)
	x := new(big.Int).Mul(j.x, zInv2)
	x.Mod(x, c.P)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, c.P)
	y := new(big.Int).Mul(j.y, zInv3)
	y.Mod(y, c.P)
	return Point{X: x, Y: y}
}

// jacDouble computes 2p using the generic-a doubling formula:
// S = 4XY², M = 3X² + aZ⁴, X' = M² − 2S, Y' = M(S − X') − 8Y⁴, Z' = 2YZ.
func (c *Curve) jacDouble(p jacobianPoint) jacobianPoint {
	if p.isInfinity() || p.y.Sign() == 0 {
		return jacobianInfinity()
	}
	mod := c.P

	y2 := new(big.Int).Mul(p.y, p.y)
	y2.Mod(y2, mod)

	s := new(big.Int).Mul(p.x, y2)
	s.Lsh(s, 2)
	s.Mod(s, mod)

	x2 := new(big.Int).Mul(p.x, p.x)
	x2.Mod(x2, mod)
	m := new(big.Int).Lsh(x2, 1)
	m.Add(m, x2) // 3X²
	if c.A.Sign() != 0 {
		z2 := new(big.Int).Mul(p.z, p.z)
		z2.Mod(z2, mod)
		z4 := z2.Mul(z2, z2)
		z4.Mod(z4, mod)
		az4 := z4.Mul(z4, c.A)
		m.Add(m, az4)
	}
	m.Mod(m, mod)

	x3 := new(big.Int).Mul(m, m)
	x3.Sub(x3, new(big.Int).Lsh(s, 1))
	x3.Mod(x3, mod)
	if x3.Sign() < 0 {
		x3.Add(x3, mod)
	}

	y4 := y2.Mul(y2, y2) // y2 now holds Y⁴
	y4.Mod(y4, mod)
	y3 := new(big.Int).Sub(s, x3)
	y3.Mul(y3, m)
	y3.Sub(y3, new(big.Int).Lsh(y4, 3))
	y3.Mod(y3, mod)
	if y3.Sign() < 0 {
		y3.Add(y3, mod)
	}

	z3 := new(big.Int).Mul(p.y, p.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, mod)

	return jacobianPoint{x: x3, y: y3, z: z3}
}

// jacAdd computes p + q using the standard Jacobian addition formula.
func (c *Curve) jacAdd(p, q jacobianPoint) jacobianPoint {
	if p.isInfinity() {
		return q
	}
	if q.isInfinity() {
		return p
	}
	mod := c.P

	z1z1 := new(big.Int).Mul(p.z, p.z)
	z1z1.Mod(z1z1, mod)
	z2z2 := new(big.Int).Mul(q.z, q.z)
	z2z2.Mod(z2z2, mod)

	u1 := new(big.Int).Mul(p.x, z2z2)
	u1.Mod(u1, mod)
	u2 := new(big.Int).Mul(q.x, z1z1)
	u2.Mod(u2, mod)

	s1 := new(big.Int).Mul(p.y, q.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, mod)
	s2 := new(big.Int).Mul(q.y, p.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, mod)

	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			return jacobianInfinity()
		}
		return c.jacDouble(p)
	}

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, mod)
	if h.Sign() < 0 {
		h.Add(h, mod)
	}
	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, mod)
	if r.Sign() < 0 {
		r.Add(r, mod)
	}

	h2 := new(big.Int).Mul(h, h)
	h2.Mod(h2, mod)
	h3 := new(big.Int).Mul(h2, h)
	h3.Mod(h3, mod)
	u1h2 := new(big.Int).Mul(u1, h2)
	u1h2.Mod(u1h2, mod)

	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, h3)
	x3.Sub(x3, new(big.Int).Lsh(u1h2, 1))
	x3.Mod(x3, mod)
	if x3.Sign() < 0 {
		x3.Add(x3, mod)
	}

	y3 := new(big.Int).Sub(u1h2, x3)
	y3.Mul(y3, r)
	s1h3 := new(big.Int).Mul(s1, h3)
	y3.Sub(y3, s1h3)
	y3.Mod(y3, mod)
	if y3.Sign() < 0 {
		y3.Add(y3, mod)
	}

	z3 := new(big.Int).Mul(p.z, q.z)
	z3.Mul(z3, h)
	z3.Mod(z3, mod)

	return jacobianPoint{x: x3, y: y3, z: z3}
}

// jacScalarMult computes k·p with a 4-bit fixed window. k must already be
// reduced modulo the group order and non-zero.
func (c *Curve) jacScalarMult(p jacobianPoint, k *big.Int) jacobianPoint {
	// Precompute 1p..15p.
	var table [16]jacobianPoint
	table[0] = jacobianInfinity()
	table[1] = p
	for i := 2; i < 16; i++ {
		if i%2 == 0 {
			table[i] = c.jacDouble(table[i/2])
		} else {
			table[i] = c.jacAdd(table[i-1], p)
		}
	}

	acc := jacobianInfinity()
	bytes := k.Bytes()
	for _, b := range bytes {
		for _, nibble := range [2]byte{b >> 4, b & 0x0f} {
			if !acc.isInfinity() {
				acc = c.jacDouble(acc)
				acc = c.jacDouble(acc)
				acc = c.jacDouble(acc)
				acc = c.jacDouble(acc)
			}
			if nibble != 0 {
				acc = c.jacAdd(acc, table[nibble])
			}
		}
	}
	return acc
}
