package group

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime/pprof"
)

// MultiExpStrategy selects the multi-scalar-multiplication algorithm used to
// evaluate ∏ pᵢ^{kᵢ}. The paper's commitment implementation is the Naive
// one; Windowed and Pippenger implement the multi-exponentiation
// optimizations it cites as future work (Möller '01; Borges et al. '17).
// Parallel splits Pippenger's per-window bucket accumulation across
// cores, and Precomputed uses fixed-base window tables (see FixedBase) —
// the two optimizations that matter when the bases are long-lived Pedersen
// generators committed to every iteration.
type MultiExpStrategy int

const (
	// StrategyAuto picks a strategy based on input size and curve backend.
	StrategyAuto MultiExpStrategy = iota + 1
	// StrategyNaive computes each scalar multiplication independently.
	StrategyNaive
	// StrategyWindowed uses shared-doubling with per-base 4-bit tables.
	StrategyWindowed
	// StrategyPippenger uses the bucket method with signed-scalar recoding.
	StrategyPippenger
	// StrategyParallel is Pippenger with the window bucket sums computed
	// concurrently by up to Curve.SetParallelism workers.
	StrategyParallel
	// StrategyPrecomputed uses fixed-base window tables. Through
	// MultiScalarMult the tables are built ad hoc (useful for differential
	// testing); callers with long-lived bases should build FixedBase
	// tables once and use MultiScalarMultFixed instead.
	StrategyPrecomputed
)

// String returns the strategy name.
func (s MultiExpStrategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naive"
	case StrategyWindowed:
		return "windowed"
	case StrategyPippenger:
		return "pippenger"
	case StrategyParallel:
		return "parallel"
	case StrategyPrecomputed:
		return "precomputed"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Accelerated reports whether the curve uses an optimized stdlib backend.
func (c *Curve) Accelerated() bool { return c.fast != nil }

// autoStrategy resolves StrategyAuto for an input of n points: stdlib
// backends stay naive (their constant-time scalar mult beats the generic
// big.Int paths), tiny inputs skip shared-table setup, mid-size inputs use
// windowed sharing, and large inputs use Pippenger — parallelized across
// windows when the curve's parallelism allows it.
func (c *Curve) autoStrategy(n int) MultiExpStrategy {
	switch {
	case c.fast != nil || n < 4:
		return StrategyNaive
	case n < 32:
		return StrategyWindowed
	case n >= parallelMinPoints && c.workers() > 1:
		return StrategyParallel
	default:
		return StrategyPippenger
	}
}

// MultiScalarMult computes ∑ kᵢ·pᵢ (written multiplicatively in the paper:
// ∏ pᵢ^{kᵢ}). Scalars are reduced modulo the group order.
func (c *Curve) MultiScalarMult(points []Point, scalars []*big.Int, strategy MultiExpStrategy) (Point, error) {
	if len(points) != len(scalars) {
		return Point{}, fmt.Errorf("group: %d points but %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return Point{}, errors.New("group: empty multi-scalar multiplication")
	}
	if strategy == StrategyAuto {
		strategy = c.autoStrategy(len(points))
	}
	defer accountOp("multiexp_"+strategy.String(), len(points))()
	var pt Point
	err := fmt.Errorf("group: unknown strategy %v", strategy)
	// pprof.Do labels the CPU samples of the dominant cost (Fig. 3:
	// commitment computation) so profiles slice by strategy. It replaces
	// any caller-set span labels for the duration — the crypto hot path
	// is deliberately attributed to itself, not its calling phase.
	pprof.Do(context.Background(), pprof.Labels(
		"phase", "multiexp", "strategy", strategy.String(),
	), func(context.Context) {
		switch strategy {
		case StrategyNaive:
			pt, err = c.multiExpNaive(points, scalars), nil
		case StrategyWindowed:
			pt, err = c.multiExpWindowed(points, scalars), nil
		case StrategyPippenger:
			pt, err = c.multiExpPippenger(points, scalars), nil
		case StrategyParallel:
			pt, err = c.multiExpPippengerParallel(points, scalars), nil
		case StrategyPrecomputed:
			bases := make([]*FixedBase, len(points))
			for i := range points {
				bases[i] = c.NewFixedBase(points[i])
			}
			pt, err = c.multiExpFixed(bases, scalars), nil
		}
	})
	if err != nil {
		return Point{}, err
	}
	return pt, nil
}

func (c *Curve) multiExpNaive(points []Point, scalars []*big.Int) Point {
	acc := Infinity()
	for i := range points {
		term := c.ScalarMult(points[i], scalars[i])
		acc = c.Add(acc, term)
	}
	return acc
}

// recodeSigned reduces k modulo the order and, when the result lies in the
// top half of the field, replaces (k, p) by (order−k, −p). This keeps the
// effective scalar bit-length small for fixed-point-encoded gradients, where
// negative values would otherwise wrap to ~256-bit scalars.
func (c *Curve) recodeSigned(p Point, k *big.Int) (Point, *big.Int) {
	kr := new(big.Int).Mod(k, c.N)
	half := new(big.Int).Rsh(c.N, 1)
	if kr.Cmp(half) > 0 {
		kr.Sub(c.N, kr)
		p = c.Neg(p)
	}
	return p, kr
}

func (c *Curve) multiExpWindowed(points []Point, scalars []*big.Int) Point {
	const w = 4
	n := len(points)
	tables := make([][16]jacobianPoint, n)
	maxBits := 0
	recoded := make([]*big.Int, n)
	for i := range points {
		p, k := c.recodeSigned(points[i], scalars[i])
		recoded[i] = k
		if bl := k.BitLen(); bl > maxBits {
			maxBits = bl
		}
		jp := toJacobian(p)
		tables[i][0] = jacobianInfinity()
		tables[i][1] = jp
		for t := 2; t < 16; t++ {
			if t%2 == 0 {
				tables[i][t] = c.jacDouble(tables[i][t/2])
			} else {
				tables[i][t] = c.jacAdd(tables[i][t-1], jp)
			}
		}
	}
	if maxBits == 0 {
		return Infinity()
	}
	windows := (maxBits + w - 1) / w
	acc := jacobianInfinity()
	for win := windows - 1; win >= 0; win-- {
		if !acc.isInfinity() {
			for d := 0; d < w; d++ {
				acc = c.jacDouble(acc)
			}
		}
		for i := range recoded {
			digit := windowDigit(recoded[i], win, w)
			if digit != 0 {
				acc = c.jacAdd(acc, tables[i][digit])
			}
		}
	}
	return c.fromJacobian(acc)
}

// pippengerMinPoints is the crossover below which Pippenger's 2^w bucket
// setup costs more than it saves: with n ≤ 2 every bucket holds at most
// one point, so the bucket pass degenerates into the windowed walk plus
// pure overhead. Such inputs fall through to the windowed strategy.
const pippengerMinPoints = 3

// recodeAll signed-recodes every (point, scalar) pair into Jacobian form,
// returning the recoded scalars and the maximum scalar bit length.
func (c *Curve) recodeAll(points []Point, scalars []*big.Int) ([]jacobianPoint, []*big.Int, int) {
	n := len(points)
	jpoints := make([]jacobianPoint, n)
	recoded := make([]*big.Int, n)
	maxBits := 0
	for i := range points {
		p, k := c.recodeSigned(points[i], scalars[i])
		recoded[i] = k
		jpoints[i] = toJacobian(p)
		if bl := k.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	return jpoints, recoded, maxBits
}

func (c *Curve) multiExpPippenger(points []Point, scalars []*big.Int) Point {
	if len(points) < pippengerMinPoints {
		return c.multiExpWindowed(points, scalars)
	}
	jpoints, recoded, maxBits := c.recodeAll(points, scalars)
	if maxBits == 0 {
		return Infinity()
	}
	w := pippengerWindow(len(points))
	windows := (maxBits + w - 1) / w
	buckets := make([]jacobianPoint, 1<<w)
	acc := jacobianInfinity()
	for win := windows - 1; win >= 0; win-- {
		if !acc.isInfinity() {
			for d := 0; d < w; d++ {
				acc = c.jacDouble(acc)
			}
		}
		sum := c.windowBucketSum(jpoints, recoded, win, w, buckets)
		if !sum.isInfinity() {
			acc = c.jacAdd(acc, sum)
		}
	}
	return c.fromJacobian(acc)
}

// windowBucketSum computes one window's contribution ∑ digit·bucket[digit]
// over all points: bucket accumulation followed by the running-sum trick.
// The caller provides the bucket scratch (reused across windows); jpoints
// and recoded are only read, so concurrent calls on disjoint windows with
// per-worker scratch are safe.
func (c *Curve) windowBucketSum(jpoints []jacobianPoint, recoded []*big.Int, win, w int, buckets []jacobianPoint) jacobianPoint {
	for b := range buckets {
		buckets[b] = jacobianInfinity()
	}
	used := false
	for i := range recoded {
		digit := windowDigit(recoded[i], win, w)
		if digit != 0 {
			buckets[digit] = c.jacAdd(buckets[digit], jpoints[i])
			used = true
		}
	}
	if !used {
		return jacobianInfinity()
	}
	// Bucket aggregation: ∑ b·bucket[b] via the running-sum trick.
	running := jacobianInfinity()
	sum := jacobianInfinity()
	for b := len(buckets) - 1; b >= 1; b-- {
		if !buckets[b].isInfinity() {
			running = c.jacAdd(running, buckets[b])
		}
		if !running.isInfinity() {
			sum = c.jacAdd(sum, running)
		}
	}
	return sum
}

// pippengerWindow picks a bucket window size that balances the per-window
// bucket-aggregation cost (2^w adds) against the per-point cost.
func pippengerWindow(n int) int {
	switch {
	case n < 64:
		return 4
	case n < 512:
		return 6
	case n < 4096:
		return 8
	case n < 65536:
		return 10
	default:
		return 12
	}
}

// windowDigit extracts the win-th w-bit digit of k (little-endian windows).
func windowDigit(k *big.Int, win, w int) int {
	digit := 0
	base := win * w
	for bit := 0; bit < w; bit++ {
		if k.Bit(base+bit) == 1 {
			digit |= 1 << bit
		}
	}
	return digit
}
