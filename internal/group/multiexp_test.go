package group

import (
	"math/big"
	"math/rand"
	"testing"
)

func randomInputs(rng *rand.Rand, c *Curve, n int) ([]Point, []*big.Int) {
	points := make([]Point, n)
	scalars := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		points[i] = c.ScalarBaseMult(randScalar(rng, c))
		scalars[i] = randScalar(rng, c)
	}
	return points, scalars
}

func TestMultiExpStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, c := range []*Curve{Secp256k1(), Secp256r1()} {
		for _, n := range []int{1, 2, 7, 33} {
			points, scalars := randomInputs(rng, c, n)
			want, err := c.MultiScalarMult(points, scalars, StrategyNaive)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []MultiExpStrategy{StrategyWindowed, StrategyPippenger, StrategyAuto} {
				got, err := c.MultiScalarMult(points, scalars, s)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s n=%d: %v disagrees with naive", c.Name, n, s)
				}
			}
		}
	}
}

func TestMultiExpSmallScalars(t *testing.T) {
	// Fixed-point gradient encodings are tiny positive values or huge
	// negative-wrapped values; both must be handled by all strategies.
	c := Secp256k1()
	rng := rand.New(rand.NewSource(21))
	n := 16
	points := make([]Point, n)
	scalars := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		points[i] = c.ScalarBaseMult(randScalar(rng, c))
		v := big.NewInt(int64(rng.Intn(1 << 20)))
		if rng.Intn(2) == 0 { // negative-wrapped value near the order
			v.Sub(c.N, v)
		}
		scalars[i] = v
	}
	want, _ := c.MultiScalarMult(points, scalars, StrategyNaive)
	for _, s := range []MultiExpStrategy{StrategyWindowed, StrategyPippenger} {
		got, err := c.MultiScalarMult(points, scalars, s)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v disagrees with naive on signed-wrapped scalars", s)
		}
	}
}

func TestMultiExpZeroScalars(t *testing.T) {
	c := Secp256r1()
	rng := rand.New(rand.NewSource(22))
	points, _ := randomInputs(rng, c, 5)
	scalars := make([]*big.Int, 5)
	for i := range scalars {
		scalars[i] = new(big.Int)
	}
	for _, s := range []MultiExpStrategy{StrategyNaive, StrategyWindowed, StrategyPippenger} {
		got, err := c.MultiScalarMult(points, scalars, s)
		if err != nil {
			t.Fatal(err)
		}
		if !got.IsInfinity() {
			t.Fatalf("%v: all-zero scalars should give identity", s)
		}
	}
}

func TestMultiExpFastCurve(t *testing.T) {
	fast := Secp256r1Fast()
	generic := Secp256r1()
	rng := rand.New(rand.NewSource(23))
	points, scalars := randomInputs(rng, generic, 8)
	want, err := generic.MultiScalarMult(points, scalars, StrategyPippenger)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.MultiScalarMult(points, scalars, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("fast backend disagrees with generic pippenger")
	}
}

func TestMultiExpErrors(t *testing.T) {
	c := Secp256k1()
	if _, err := c.MultiScalarMult(nil, nil, StrategyNaive); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := c.MultiScalarMult([]Point{c.Generator()}, nil, StrategyNaive); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := c.MultiScalarMult([]Point{c.Generator()}, []*big.Int{big.NewInt(1)}, MultiExpStrategy(99)); err == nil {
		t.Fatal("expected error on unknown strategy")
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[MultiExpStrategy]string{
		StrategyAuto:         "auto",
		StrategyNaive:        "naive",
		StrategyWindowed:     "windowed",
		StrategyPippenger:    "pippenger",
		StrategyParallel:     "parallel",
		StrategyPrecomputed:  "precomputed",
		MultiExpStrategy(42): "strategy(42)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}
