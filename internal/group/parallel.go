package group

import (
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMinPoints is the input size at which StrategyAuto starts
// considering the parallel Pippenger path. Below it the per-goroutine
// bucket scratch and scheduling overhead eat the win; above it each
// window carries enough bucket additions to amortize a worker.
const parallelMinPoints = 128

// SetParallelism bounds the number of worker goroutines StrategyParallel
// uses for this curve. n ≤ 0 restores the default (runtime.GOMAXPROCS).
// n = 1 forces the parallel strategy to run sequentially, which also stops
// StrategyAuto from ever selecting it. Safe to call concurrently with
// in-flight multiexps; they pick up the value at dispatch time.
//
// The knob is per-Curve and the curve constructors return shared
// singletons, so a process-wide setting is one call; tests that lower it
// should restore the previous value.
func (c *Curve) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	c.par.Store(int32(n))
}

// Parallelism returns the currently configured worker bound (0 means the
// GOMAXPROCS default).
func (c *Curve) Parallelism() int { return int(c.par.Load()) }

// workers resolves the effective worker count for a parallel multiexp.
func (c *Curve) workers() int {
	if n := int(c.par.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// multiExpPippengerParallel is Pippenger's method with the per-window
// bucket sums computed concurrently. Windows are independent: each worker
// claims window indices from an atomic counter and accumulates that
// window's buckets in its own scratch, writing the partial into sums[win].
// The final Horner-style reduction (w doublings between windows) is
// inherently sequential but only O(maxBits) curve ops, so the caller runs
// it after the workers drain. The affine result is identical to the
// sequential path: the same per-window sums combine in the same order.
func (c *Curve) multiExpPippengerParallel(points []Point, scalars []*big.Int) Point {
	if len(points) < pippengerMinPoints {
		return c.multiExpWindowed(points, scalars)
	}
	jpoints, recoded, maxBits := c.recodeAll(points, scalars)
	if maxBits == 0 {
		return Infinity()
	}
	w := pippengerWindow(len(points))
	windows := (maxBits + w - 1) / w

	workers := c.workers()
	if workers > windows {
		workers = windows
	}
	sums := make([]jacobianPoint, windows)
	if workers <= 1 {
		buckets := make([]jacobianPoint, 1<<w)
		for win := 0; win < windows; win++ {
			sums[win] = c.windowBucketSum(jpoints, recoded, win, w, buckets)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for g := 0; g < workers; g++ {
			go func() {
				defer wg.Done()
				// Per-worker bucket scratch; jpoints/recoded are read-only.
				buckets := make([]jacobianPoint, 1<<w)
				for {
					win := int(next.Add(1)) - 1
					if win >= windows {
						return
					}
					sums[win] = c.windowBucketSum(jpoints, recoded, win, w, buckets)
				}
			}()
		}
		wg.Wait()
	}

	acc := jacobianInfinity()
	for win := windows - 1; win >= 0; win-- {
		if !acc.isInfinity() {
			for d := 0; d < w; d++ {
				acc = c.jacDouble(acc)
			}
		}
		if !sums[win].isInfinity() {
			acc = c.jacAdd(acc, sums[win])
		}
	}
	return c.fromJacobian(acc)
}
