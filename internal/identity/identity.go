// Package identity provides participant identities for the protocol:
// Ed25519 keypairs, a public-key registry maintained by the bootstrapper,
// and deterministic key derivation for tests and demos.
//
// The paper's directory service implicitly trusts the uploader ID attached
// to each record. Without authentication, a malicious participant could
// impersonate a trainer (publishing a bogus "gradient from t3" and thereby
// corrupting the partition accumulator so that every honest update fails
// verification — a denial of service the commitments alone cannot
// prevent). Signed records close that gap: the registry is distributed by
// the bootstrapper at task setup, exactly like the rest of the task
// configuration.
package identity

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// KeyPair is a participant's signing identity.
type KeyPair struct {
	ID      string
	public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// Generate creates a fresh random keypair for a participant.
func Generate(id string) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("identity: %w", err)
	}
	return &KeyPair{ID: id, public: pub, private: priv}, nil
}

// Deterministic derives a keypair from (label, id) — for tests, demos and
// the iplsd deployment where all parties derive the task wiring from
// shared flags. Real deployments should use Generate and distribute public
// keys out of band.
func Deterministic(label, id string) *KeyPair {
	seed := sha256.Sum256([]byte("ipls/identity/" + label + "/" + id))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &KeyPair{
		ID:      id,
		public:  priv.Public().(ed25519.PublicKey),
		private: priv,
	}
}

// Public returns the public key.
func (k *KeyPair) Public() ed25519.PublicKey { return k.public }

// Sign signs a message.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify checks a signature.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// Registry maps participant IDs to their public keys; the bootstrapper
// builds it at task setup and the directory consults it on every publish.
type Registry struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// ErrUnknownParticipant indicates a record from an unregistered ID.
var ErrUnknownParticipant = errors.New("identity: unknown participant")

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]ed25519.PublicKey)}
}

// Register records a participant's public key (a copy).
func (r *Registry) Register(id string, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[id] = append(ed25519.PublicKey(nil), pub...)
}

// Lookup returns a participant's public key.
func (r *Registry) Lookup(id string) (ed25519.PublicKey, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownParticipant, id)
	}
	return pub, nil
}

// Len returns the number of registered participants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// Keyring holds the private keys a process controls (one per role it
// plays; a test session may hold all of them).
type Keyring struct {
	mu   sync.RWMutex
	keys map[string]*KeyPair
}

// NewKeyring creates an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string]*KeyPair)}
}

// Add stores a keypair.
func (k *Keyring) Add(kp *KeyPair) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[kp.ID] = kp
}

// Signer returns the keypair for an ID, or nil.
func (k *Keyring) Signer(id string) *KeyPair {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.keys[id]
}

// DeterministicSetup derives a keyring holding every listed participant's
// key plus the matching registry — the test/demo path.
func DeterministicSetup(label string, ids []string) (*Keyring, *Registry) {
	ring := NewKeyring()
	reg := NewRegistry()
	for _, id := range ids {
		kp := Deterministic(label, id)
		ring.Add(kp)
		reg.Register(id, kp.Public())
	}
	return ring, reg
}
