package identity

import (
	"errors"
	"testing"
)

func TestGenerateSignVerify(t *testing.T) {
	kp, err := Generate("alice")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("gradient record bytes")
	sig := kp.Sign(msg)
	if !Verify(kp.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public(), []byte("other message"), sig) {
		t.Fatal("signature valid for a different message")
	}
	other, err := Generate("bob")
	if err != nil {
		t.Fatal(err)
	}
	if Verify(other.Public(), msg, sig) {
		t.Fatal("signature valid under a different key")
	}
	if Verify(nil, msg, sig) {
		t.Fatal("nil key accepted")
	}
	if Verify(kp.Public()[:5], msg, sig) {
		t.Fatal("truncated key accepted")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := Deterministic("task-1", "t0")
	b := Deterministic("task-1", "t0")
	if string(a.Public()) != string(b.Public()) {
		t.Fatal("deterministic derivation is not deterministic")
	}
	c := Deterministic("task-1", "t1")
	d := Deterministic("task-2", "t0")
	if string(a.Public()) == string(c.Public()) || string(a.Public()) == string(d.Public()) {
		t.Fatal("distinct identities derived the same key")
	}
	msg := []byte("x")
	if !Verify(b.Public(), msg, a.Sign(msg)) {
		t.Fatal("cross-instance signature failed")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	kp := Deterministic("task", "t0")
	reg.Register("t0", kp.Public())
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}
	pub, err := reg.Lookup("t0")
	if err != nil {
		t.Fatal(err)
	}
	if string(pub) != string(kp.Public()) {
		t.Fatal("registry returned a different key")
	}
	if _, err := reg.Lookup("ghost"); !errors.Is(err, ErrUnknownParticipant) {
		t.Fatalf("expected ErrUnknownParticipant, got %v", err)
	}
}

func TestKeyringAndSetup(t *testing.T) {
	ring, reg := DeterministicSetup("task", []string{"t0", "t1", "agg-0"})
	if reg.Len() != 3 {
		t.Fatalf("registry has %d keys", reg.Len())
	}
	if ring.Signer("t1") == nil {
		t.Fatal("keyring missing t1")
	}
	if ring.Signer("ghost") != nil {
		t.Fatal("keyring invented a key")
	}
	// Ring and registry agree.
	msg := []byte("m")
	sig := ring.Signer("agg-0").Sign(msg)
	pub, err := reg.Lookup("agg-0")
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(pub, msg, sig) {
		t.Fatal("setup keyring/registry mismatch")
	}
}
