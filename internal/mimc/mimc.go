// Package mimc implements the MiMC block cipher and a Miyaguchi–Preneel
// hash over a prime field — a "proof-friendly" hash in the sense of the
// paper's §VI: its circuit is a few hundred field multiplications, so an
// aggregator could efficiently prove in zero knowledge that a content ID
// and a Pedersen commitment bind the same gradient vector, delegating
// update verification away from the directory service. (The paper cites
// Poseidon for this role; MiMC is its simpler, well-studied predecessor
// from Albrecht et al., ASIACRYPT 2016.)
//
// Natively MiMC is orders of magnitude slower than SHA-256 — that is the
// price of algebraic friendliness, and the trade-off the benchmarks
// quantify.
package mimc

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Hasher is a MiMC permutation and hash over GF(p).
type Hasher struct {
	p         *big.Int
	exponent  *big.Int
	rounds    int
	constants []*big.Int
}

// candidate exponents tried in order; e must be coprime with p−1 for x^e
// to be a permutation of GF(p).
var candidateExponents = []int64{3, 5, 7, 11, 13, 17, 19, 23}

// New derives a MiMC instance for the prime field p. The label
// domain-separates the round constants. The exponent is the smallest
// candidate coprime with p−1, and the round count is ⌈log_e p⌉, matching
// the MiMC security analysis.
func New(p *big.Int, label string) (*Hasher, error) {
	if p.Sign() <= 0 || !p.ProbablyPrime(32) {
		return nil, errors.New("mimc: modulus must be a prime")
	}
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	var exponent *big.Int
	for _, e := range candidateExponents {
		be := big.NewInt(e)
		if new(big.Int).GCD(nil, nil, be, pm1).Cmp(big.NewInt(1)) == 0 {
			exponent = be
			break
		}
	}
	if exponent == nil {
		return nil, errors.New("mimc: no suitable exponent for this field")
	}
	bits := float64(p.BitLen())
	rounds := int(math.Ceil(bits * math.Ln2 / math.Log(float64(exponent.Int64()))))
	h := &Hasher{
		p:         p,
		exponent:  exponent,
		rounds:    rounds,
		constants: make([]*big.Int, rounds),
	}
	for i := 0; i < rounds; i++ {
		h.constants[i] = deriveConstant(p, label, i)
	}
	// The first round constant is zero by convention.
	h.constants[0] = new(big.Int)
	return h, nil
}

// deriveConstant hashes (label, index, counter) into GF(p) by rejection
// sampling, so constants are nothing-up-my-sleeve.
func deriveConstant(p *big.Int, label string, index int) *big.Int {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(index))
	for ctr := uint64(0); ; ctr++ {
		var cb [8]byte
		binary.BigEndian.PutUint64(cb[:], ctr)
		d := sha256.New()
		d.Write([]byte("ipls/mimc/"))
		d.Write([]byte(label))
		d.Write([]byte{0})
		d.Write(idx[:])
		d.Write(cb[:])
		c := new(big.Int).SetBytes(d.Sum(nil))
		if c.Cmp(p) < 0 {
			return c
		}
	}
}

// Exponent returns the permutation exponent e.
func (h *Hasher) Exponent() int64 { return h.exponent.Int64() }

// Rounds returns the round count.
func (h *Hasher) Rounds() int { return h.rounds }

// Permute evaluates the MiMC block cipher E_k(x): rounds of
// x ← (x + k + cᵢ)^e mod p, followed by a final key addition.
func (h *Hasher) Permute(x, k *big.Int) *big.Int {
	t := new(big.Int).Mod(x, h.p)
	kr := new(big.Int).Mod(k, h.p)
	for i := 0; i < h.rounds; i++ {
		t.Add(t, kr)
		t.Add(t, h.constants[i])
		t.Exp(t, h.exponent, h.p)
	}
	t.Add(t, kr)
	t.Mod(t, h.p)
	return t
}

// Hash absorbs field elements through a Miyaguchi–Preneel chain:
// hᵢ₊₁ = E_{hᵢ}(mᵢ) + hᵢ + mᵢ. The element count is absorbed first so
// vectors of different lengths never collide trivially.
func (h *Hasher) Hash(elems []*big.Int) *big.Int {
	state := new(big.Int)
	absorb := func(m *big.Int) {
		mr := new(big.Int).Mod(m, h.p)
		next := h.Permute(mr, state)
		next.Add(next, state)
		next.Add(next, mr)
		next.Mod(next, h.p)
		state = next
	}
	absorb(big.NewInt(int64(len(elems))))
	for _, m := range elems {
		absorb(m)
	}
	return state
}

// chunkSize is the number of bytes absorbed per field element; 31 bytes
// always fit below a 256-bit prime.
const chunkSize = 31

// HashBytes hashes arbitrary bytes by packing them into field elements
// (31 bytes each, length-prefixed).
func (h *Hasher) HashBytes(data []byte) *big.Int {
	elems := make([]*big.Int, 0, len(data)/chunkSize+2)
	elems = append(elems, big.NewInt(int64(len(data))))
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		elems = append(elems, new(big.Int).SetBytes(data[off:end]))
	}
	if len(data) == 0 {
		elems = append(elems, new(big.Int))
	}
	return h.Hash(elems)
}

// Sum returns HashBytes serialized as a fixed 32-byte digest, the shape a
// MiMC-based content ID would have inside the storage network.
func (h *Hasher) Sum(data []byte) [32]byte {
	var out [32]byte
	h.HashBytes(data).FillBytes(out[:])
	return out
}

// String describes the instance.
func (h *Hasher) String() string {
	return fmt.Sprintf("MiMC(e=%d, rounds=%d, %d-bit field)", h.Exponent(), h.rounds, h.p.BitLen())
}
