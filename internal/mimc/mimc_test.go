package mimc

import (
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"ipls/internal/group"
)

func newTestHasher(t testing.TB) *Hasher {
	t.Helper()
	h, err := New(group.Secp256k1().N, "test")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(big.NewInt(16), "x"); err == nil {
		t.Fatal("composite modulus accepted")
	}
	if _, err := New(big.NewInt(-7), "x"); err == nil {
		t.Fatal("negative modulus accepted")
	}
}

func TestParametersForBothCurves(t *testing.T) {
	for _, curve := range []*group.Curve{group.Secp256k1(), group.Secp256r1()} {
		h, err := New(curve.N, "params")
		if err != nil {
			t.Fatalf("%s: %v", curve.Name, err)
		}
		// The exponent must be coprime with p-1 (a permutation).
		pm1 := new(big.Int).Sub(curve.N, big.NewInt(1))
		g := new(big.Int).GCD(nil, nil, big.NewInt(h.Exponent()), pm1)
		if g.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("%s: exponent %d shares a factor with p-1", curve.Name, h.Exponent())
		}
		// Round count must meet the MiMC bound log_e(p).
		minRounds := 256.0 / (1.4427 * logf(float64(h.Exponent())))
		if float64(h.Rounds()) < minRounds-1 {
			t.Fatalf("%s: %d rounds below the security bound %.0f", curve.Name, h.Rounds(), minRounds)
		}
	}
}

func logf(x float64) float64 {
	// ln via big-free math; avoid importing math twice in tests.
	switch {
	case x == 3:
		return 1.0986
	case x == 5:
		return 1.6094
	case x == 7:
		return 1.9459
	default:
		return 1
	}
}

func TestPermuteIsDeterministicAndKeyed(t *testing.T) {
	h := newTestHasher(t)
	x := big.NewInt(12345)
	k1 := big.NewInt(1)
	k2 := big.NewInt(2)
	if h.Permute(x, k1).Cmp(h.Permute(x, k1)) != 0 {
		t.Fatal("permutation not deterministic")
	}
	if h.Permute(x, k1).Cmp(h.Permute(x, k2)) == 0 {
		t.Fatal("different keys gave the same ciphertext")
	}
}

func TestPermuteInjectiveSample(t *testing.T) {
	// E_k is a permutation, so no collisions can appear on any sample.
	h := newTestHasher(t)
	k := big.NewInt(99)
	seen := make(map[string]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x := new(big.Int).Rand(rng, h.p)
		y := h.Permute(x, k).String()
		if seen[y] {
			t.Fatal("collision in a permutation sample")
		}
		seen[y] = true
	}
}

func TestHashDistinguishesLengths(t *testing.T) {
	h := newTestHasher(t)
	a := h.Hash([]*big.Int{big.NewInt(0)})
	b := h.Hash([]*big.Int{big.NewInt(0), big.NewInt(0)})
	if a.Cmp(b) == 0 {
		t.Fatal("length extension collision")
	}
	empty := h.Hash(nil)
	if empty.Cmp(a) == 0 {
		t.Fatal("empty input collides with single zero")
	}
}

func TestHashBytesCollisionSmoke(t *testing.T) {
	h := newTestHasher(t)
	check := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return h.HashBytes(a).Cmp(h.HashBytes(b)) != 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashBytesEmptyAndBoundarySizes(t *testing.T) {
	h := newTestHasher(t)
	seen := make(map[string]bool)
	for _, n := range []int{0, 1, 30, 31, 32, 61, 62, 63} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + n)
		}
		d := h.HashBytes(data).String()
		if seen[d] {
			t.Fatalf("size-%d input collided", n)
		}
		seen[d] = true
	}
}

func TestDiffusion(t *testing.T) {
	// Flipping one bit of the input must change the digest.
	h := newTestHasher(t)
	data := []byte("gradient partition block bytes for diffusion test")
	base := h.Sum(data)
	for i := 0; i < len(data); i += 7 {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 1
		if h.Sum(mutated) == base {
			t.Fatalf("bit flip at byte %d did not change the digest", i)
		}
	}
}

func TestDifferentLabelsDifferentHashes(t *testing.T) {
	h1, err := New(group.Secp256k1().N, "task-a")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(group.Secp256k1().N, "task-b")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("same bytes")
	if h1.Sum(data) == h2.Sum(data) {
		t.Fatal("labels do not domain-separate")
	}
}

func TestSumShape(t *testing.T) {
	h := newTestHasher(t)
	if got := h.Sum([]byte("x")); len(got) != 32 {
		t.Fatal("digest must be 32 bytes")
	}
	if h.String() == "" {
		t.Fatal("String() empty")
	}
}

func BenchmarkMiMCvsSHA256(b *testing.B) {
	h, err := New(group.Secp256k1().N, "bench")
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	b.Run("mimc", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			h.Sum(data)
		}
	})
	b.Run("sha256", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sha256.Sum256(data)
		}
	})
}
