// Package ml is the machine-learning substrate for the federated-learning
// protocol: synthetic datasets, two differentiable classifiers (softmax
// regression and a one-hidden-layer MLP), local SGD for trainers, and a
// centralized FedAvg reference implementation used to demonstrate the
// paper's claim that the decentralized protocol converges identically to
// centralized FL (§V, "Convergence and Accuracy").
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dataset is a labelled classification dataset.
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Features returns the input dimensionality (0 for an empty dataset).
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Blobs generates an isotropic-Gaussian-blobs dataset: one cluster per
// class with centers spread on a seeded random layout. It is linearly
// separable for small spread and increasingly hard as spread grows.
func Blobs(n, features, classes int, spread float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, features)
		for f := range centers[c] {
			centers[c][f] = rng.Float64()*8 - 4
		}
	}
	d := &Dataset{
		X:       make([][]float64, n),
		Y:       make([]int, n),
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, features)
		for f := range x {
			x[f] = centers[c][f] + rng.NormFloat64()*spread
		}
		d.X[i] = x
		d.Y[i] = c
	}
	// Shuffle so class labels are not interleaved deterministically.
	rng.Shuffle(n, func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
	return d
}

// Rings generates a non-linearly-separable dataset of concentric 2D rings,
// one radius band per class — a workload the MLP solves but softmax
// regression cannot.
func Rings(n, classes int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		X:       make([][]float64, n),
		Y:       make([]int, n),
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		c := i % classes
		r := 1.0 + 1.5*float64(c) + rng.NormFloat64()*noise
		theta := rng.Float64() * 2 * math.Pi
		d.X[i] = []float64{r * math.Cos(theta), r * math.Sin(theta)}
		d.Y[i] = c
	}
	rng.Shuffle(n, func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
	return d
}

// Subset returns a view of the dataset restricted to the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:       make([][]float64, len(idx)),
		Y:       make([]int, len(idx)),
		Classes: d.Classes,
	}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
	}
	return sub
}

// SplitIID partitions the dataset uniformly at random into parts shards of
// near-equal size: the IID federated setting.
func (d *Dataset) SplitIID(parts int, seed int64) ([]*Dataset, error) {
	if parts <= 0 || parts > d.Len() {
		return nil, fmt.Errorf("ml: cannot split %d examples into %d parts", d.Len(), parts)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	out := make([]*Dataset, parts)
	for p := 0; p < parts; p++ {
		lo := p * d.Len() / parts
		hi := (p + 1) * d.Len() / parts
		out[p] = d.Subset(idx[lo:hi])
	}
	return out, nil
}

// SplitLabelSkew partitions the dataset non-IID: examples are sorted by
// label, cut into parts·shardsPer shards, and each participant receives
// shardsPer random shards. With shardsPer=1 every trainer sees (mostly) a
// single class — the pathological non-IID federated setting.
func (d *Dataset) SplitLabelSkew(parts, shardsPer int, seed int64) ([]*Dataset, error) {
	total := parts * shardsPer
	if parts <= 0 || shardsPer <= 0 || total > d.Len() {
		return nil, fmt.Errorf("ml: cannot cut %d examples into %d shards", d.Len(), total)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d.Y[idx[a]] < d.Y[idx[b]] })
	shards := make([][]int, total)
	for s := 0; s < total; s++ {
		lo := s * d.Len() / total
		hi := (s + 1) * d.Len() / total
		shards[s] = idx[lo:hi]
	}
	order := rng.Perm(total)
	out := make([]*Dataset, parts)
	for p := 0; p < parts; p++ {
		var mine []int
		for s := 0; s < shardsPer; s++ {
			mine = append(mine, shards[order[p*shardsPer+s]]...)
		}
		out[p] = d.Subset(mine)
	}
	return out, nil
}

// LabelDistribution returns the per-class example counts.
func (d *Dataset) LabelDistribution() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}
