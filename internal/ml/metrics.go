package ml

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit randomly partitions a dataset into a training and a test
// set, with testFrac of the examples held out.
func TrainTestSplit(d *Dataset, testFrac float64, seed int64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: test fraction must be in (0,1), got %v", testFrac)
	}
	n := d.Len()
	nTest := int(float64(n) * testFrac)
	if nTest == 0 || nTest == n {
		return nil, nil, fmt.Errorf("ml: split of %d examples at %v leaves an empty side", n, testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)
	return d.Subset(idx[nTest:]), d.Subset(idx[:nTest]), nil
}

// ConfusionMatrix returns counts[true][predicted] over the dataset.
func ConfusionMatrix(m Model, d *Dataset) [][]int {
	counts := make([][]int, d.Classes)
	for i := range counts {
		counts[i] = make([]int, d.Classes)
	}
	for i, x := range d.X {
		pred := m.Predict(x)
		if d.Y[i] >= 0 && d.Y[i] < d.Classes && pred >= 0 && pred < d.Classes {
			counts[d.Y[i]][pred]++
		}
	}
	return counts
}

// PrecisionRecall returns per-class precision and recall from a confusion
// matrix. Classes with no predictions (or no examples) score zero.
func PrecisionRecall(confusion [][]int) (precision, recall []float64) {
	k := len(confusion)
	precision = make([]float64, k)
	recall = make([]float64, k)
	for c := 0; c < k; c++ {
		var predicted, actual, hit int
		for t := 0; t < k; t++ {
			predicted += confusion[t][c]
			actual += confusion[c][t]
		}
		hit = confusion[c][c]
		if predicted > 0 {
			precision[c] = float64(hit) / float64(predicted)
		}
		if actual > 0 {
			recall[c] = float64(hit) / float64(actual)
		}
	}
	return precision, recall
}

// MacroF1 averages the per-class F1 scores.
func MacroF1(confusion [][]int) float64 {
	precision, recall := PrecisionRecall(confusion)
	var sum float64
	for c := range precision {
		if precision[c]+recall[c] > 0 {
			sum += 2 * precision[c] * recall[c] / (precision[c] + recall[c])
		}
	}
	if len(precision) == 0 {
		return 0
	}
	return sum / float64(len(precision))
}
