package ml

import (
	"math"
	"testing"
)

func TestTrainTestSplit(t *testing.T) {
	d := Blobs(200, 3, 2, 1.0, 60)
	train, test, err := TrainTestSplit(d, 0.25, 61)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 150 || test.Len() != 50 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Deterministic.
	train2, test2, err := TrainTestSplit(d, 0.25, 61)
	if err != nil {
		t.Fatal(err)
	}
	for i := range test.Y {
		if test.Y[i] != test2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
	_ = train2
	if _, _, err := TrainTestSplit(d, 0, 1); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, _, err := TrainTestSplit(d, 1, 1); err == nil {
		t.Fatal("expected fraction error")
	}
	tiny := d.Subset([]int{0, 1})
	if _, _, err := TrainTestSplit(tiny, 0.01, 1); err == nil {
		t.Fatal("expected empty-side error")
	}
}

func TestConfusionMatrixAndMetrics(t *testing.T) {
	d := Blobs(400, 4, 3, 0.6, 62)
	train, test, err := TrainTestSplit(d, 0.25, 63)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLogistic(4, 3)
	global := m.Params()
	delta, _, err := LocalDelta(m, train, global, SGDConfig{LearningRate: 0.5, Epochs: 25, BatchSize: 32, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := range global {
		global[i] += delta[i]
	}
	if err := m.SetParams(global); err != nil {
		t.Fatal(err)
	}
	confusion := ConfusionMatrix(m, test)
	// Totals match the dataset.
	total := 0
	diag := 0
	for i := range confusion {
		for j := range confusion[i] {
			total += confusion[i][j]
			if i == j {
				diag += confusion[i][j]
			}
		}
	}
	if total != test.Len() {
		t.Fatalf("confusion total %d != %d", total, test.Len())
	}
	// Diagonal fraction equals accuracy.
	acc := Accuracy(m, test)
	if math.Abs(float64(diag)/float64(total)-acc) > 1e-9 {
		t.Fatal("confusion diagonal disagrees with Accuracy")
	}
	precision, recall := PrecisionRecall(confusion)
	for c := range precision {
		if precision[c] < 0.7 || recall[c] < 0.7 {
			t.Fatalf("class %d precision/recall too low: %v/%v", c, precision[c], recall[c])
		}
	}
	if f1 := MacroF1(confusion); f1 < 0.8 || f1 > 1 {
		t.Fatalf("macro F1 = %v", f1)
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	// A class that is never predicted scores zero precision, not NaN.
	confusion := [][]int{
		{5, 0},
		{5, 0}, // class 1 never predicted
	}
	precision, recall := PrecisionRecall(confusion)
	if precision[1] != 0 || recall[1] != 0 {
		t.Fatalf("unpredicted class should score zero: %v %v", precision[1], recall[1])
	}
	if precision[0] != 0.5 || recall[0] != 1 {
		t.Fatalf("class 0 metrics wrong: %v %v", precision[0], recall[0])
	}
	f1 := MacroF1(confusion)
	if math.IsNaN(f1) || f1 <= 0 {
		t.Fatalf("macro F1 = %v", f1)
	}
	if MacroF1(nil) != 0 {
		t.Fatal("empty confusion should score 0")
	}
}
