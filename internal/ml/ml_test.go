package ml

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGradientCheck compares analytic gradients against central
// finite differences.
func numericalGradientCheck(t *testing.T, m Model, x [][]float64, y []int) {
	t.Helper()
	grad, _ := m.Gradient(x, y)
	params := m.Params()
	const h = 1e-5
	worst := 0.0
	for i := 0; i < len(params); i += 1 + len(params)/50 { // sample ~50 coords
		orig := params[i]
		params[i] = orig + h
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		_, lossPlus := m.Gradient(x, y)
		params[i] = orig - h
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		_, lossMinus := m.Gradient(x, y)
		params[i] = orig
		numeric := (lossPlus - lossMinus) / (2 * h)
		diff := math.Abs(numeric - grad[i])
		scale := math.Max(1, math.Abs(numeric)+math.Abs(grad[i]))
		if diff/scale > worst {
			worst = diff / scale
		}
	}
	if err := m.SetParams(params); err != nil {
		t.Fatal(err)
	}
	if worst > 1e-4 {
		t.Fatalf("gradient check failed: worst relative error %v", worst)
	}
}

func smallBatch(d *Dataset, n int) ([][]float64, []int) {
	if n > d.Len() {
		n = d.Len()
	}
	return d.X[:n], d.Y[:n]
}

func TestLogisticGradientCheck(t *testing.T) {
	d := Blobs(40, 3, 3, 1.0, 1)
	m := NewLogistic(3, 3)
	// Non-zero params make the check meaningful.
	rng := rand.New(rand.NewSource(2))
	p := m.Params()
	for i := range p {
		p[i] = rng.NormFloat64() * 0.1
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	x, y := smallBatch(d, 20)
	numericalGradientCheck(t, m, x, y)
}

func TestMLPGradientCheck(t *testing.T) {
	d := Blobs(40, 4, 3, 1.0, 3)
	m := NewMLP(4, 8, 3, 4)
	x, y := smallBatch(d, 20)
	numericalGradientCheck(t, m, x, y)
}

func TestLogisticLearnsBlobs(t *testing.T) {
	d := Blobs(300, 4, 3, 0.7, 5)
	m := NewLogistic(4, 3)
	global := m.Params()
	cfg := SGDConfig{LearningRate: 0.5, Epochs: 30, BatchSize: 32, Seed: 6}
	delta, _, err := LocalDelta(m, d, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trained := make([]float64, len(global))
	for i := range trained {
		trained[i] = global[i] + delta[i]
	}
	if err := m.SetParams(trained); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, d); acc < 0.9 {
		t.Fatalf("logistic accuracy %v < 0.9 on separable blobs", acc)
	}
}

func TestMLPSolvesRingsWhereLogisticCannot(t *testing.T) {
	d := Rings(400, 2, 0.15, 7)
	cfg := SGDConfig{LearningRate: 0.3, Epochs: 120, BatchSize: 32, Seed: 8}

	logistic := NewLogistic(2, 2)
	lg := logistic.Params()
	ld, _, err := LocalDelta(logistic, d, lg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lg {
		lg[i] += ld[i]
	}
	if err := logistic.SetParams(lg); err != nil {
		t.Fatal(err)
	}
	logAcc := Accuracy(logistic, d)

	mlp := NewMLP(2, 16, 2, 9)
	mg := mlp.Params()
	md, _, err := LocalDelta(mlp, d, mg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mg {
		mg[i] += md[i]
	}
	if err := mlp.SetParams(mg); err != nil {
		t.Fatal(err)
	}
	mlpAcc := Accuracy(mlp, d)

	if mlpAcc < 0.9 {
		t.Fatalf("MLP accuracy %v < 0.9 on rings", mlpAcc)
	}
	if logAcc > mlpAcc-0.1 {
		t.Fatalf("rings should separate models: logistic %v, mlp %v", logAcc, mlpAcc)
	}
}

func TestLocalDeltaDeterministic(t *testing.T) {
	d := Blobs(100, 3, 2, 1.0, 10)
	m := NewMLP(3, 5, 2, 11)
	global := m.Params()
	cfg := SGDConfig{LearningRate: 0.1, Epochs: 3, BatchSize: 16, Seed: 12}
	d1, l1, err := LocalDelta(m, d, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, l2, err := LocalDelta(m, d, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("losses differ across identical runs")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delta %d differs across identical runs", i)
		}
	}
}

func TestFedAvgRoundImprovesAccuracy(t *testing.T) {
	d := Blobs(400, 4, 4, 0.8, 13)
	locals, err := d.SplitIID(8, 14)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLogistic(4, 4)
	global := m.Params()
	cfg := SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}
	var lastLoss float64
	for round := 0; round < 10; round++ {
		roundCfg := cfg
		roundCfg.Seed = int64(round)
		next, loss, err := FedAvgRound(m, global, locals, roundCfg)
		if err != nil {
			t.Fatal(err)
		}
		global = next
		lastLoss = loss
	}
	if err := m.SetParams(global); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, d); acc < 0.85 {
		t.Fatalf("FedAvg accuracy %v < 0.85, loss %v", acc, lastLoss)
	}
}

func TestSplitIIDProperties(t *testing.T) {
	d := Blobs(100, 2, 2, 1.0, 15)
	parts, err := d.SplitIID(7, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		if p.Len() < 100/7 || p.Len() > 100/7+1 {
			t.Fatalf("unbalanced part of size %d", p.Len())
		}
		total += p.Len()
	}
	if total != 100 {
		t.Fatalf("split loses examples: %d", total)
	}
	if _, err := d.SplitIID(0, 1); err == nil {
		t.Fatal("expected error for 0 parts")
	}
	if _, err := d.SplitIID(101, 1); err == nil {
		t.Fatal("expected error for too many parts")
	}
}

func TestSplitLabelSkewIsSkewed(t *testing.T) {
	d := Blobs(400, 2, 4, 1.0, 17)
	parts, err := d.SplitLabelSkew(8, 1, 18)
	if err != nil {
		t.Fatal(err)
	}
	// With one shard each, a participant should be dominated by few labels.
	for i, p := range parts {
		dist := p.LabelDistribution()
		nonzero := 0
		for _, c := range dist {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero > 2 {
			t.Fatalf("participant %d sees %d classes; label skew too weak: %v", i, nonzero, dist)
		}
	}
	if _, err := d.SplitLabelSkew(0, 1, 1); err == nil {
		t.Fatal("expected error for invalid parts")
	}
	if _, err := d.SplitLabelSkew(500, 1, 1); err == nil {
		t.Fatal("expected error for too many shards")
	}
}

func TestSetParamsValidation(t *testing.T) {
	if err := NewLogistic(2, 2).SetParams(make([]float64, 3)); err == nil {
		t.Fatal("logistic should reject wrong-length params")
	}
	if err := NewMLP(2, 3, 2, 1).SetParams(make([]float64, 3)); err == nil {
		t.Fatal("mlp should reject wrong-length params")
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	d := Rings(400, 2, 0.15, 30)
	run := func(momentum float64) float64 {
		m := NewMLP(2, 16, 2, 31)
		_, loss, err := LocalDelta(m, d, m.Params(), SGDConfig{
			LearningRate: 0.03, Epochs: 8, BatchSize: 32, Momentum: momentum, Seed: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	plain := run(0)
	withMomentum := run(0.9)
	if withMomentum >= plain {
		t.Fatalf("momentum should reduce the training loss faster: %v vs %v", withMomentum, plain)
	}
}

func TestWeightDecayShrinksParameters(t *testing.T) {
	d := Blobs(200, 4, 2, 1.0, 33)
	norm := func(decay float64) float64 {
		m := NewLogistic(4, 2)
		g := m.Params()
		delta, _, err := LocalDelta(m, d, g, SGDConfig{
			LearningRate: 0.3, Epochs: 30, BatchSize: 32, WeightDecay: decay, Seed: 34,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range delta {
			v := g[i] + delta[i]
			sum += v * v
		}
		return math.Sqrt(sum)
	}
	if decayed, plain := norm(0.1), norm(0); decayed >= plain {
		t.Fatalf("weight decay should shrink the solution: %v vs %v", decayed, plain)
	}
}

func TestSGDConfigValidatesNewFields(t *testing.T) {
	d := Blobs(10, 2, 2, 1.0, 35)
	m := NewLogistic(2, 2)
	g := m.Params()
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0.1, Epochs: 1, Momentum: -0.1}); err == nil {
		t.Fatal("negative momentum accepted")
	}
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0.1, Epochs: 1, Momentum: 1}); err == nil {
		t.Fatal("momentum 1 accepted")
	}
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0.1, Epochs: 1, WeightDecay: -1}); err == nil {
		t.Fatal("negative weight decay accepted")
	}
}

func TestLocalDeltaValidation(t *testing.T) {
	d := Blobs(10, 2, 2, 1.0, 19)
	m := NewLogistic(2, 2)
	g := m.Params()
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0, Epochs: 1}); err == nil {
		t.Fatal("expected learning rate error")
	}
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0.1, Epochs: 0}); err == nil {
		t.Fatal("expected epochs error")
	}
	if _, _, err := LocalDelta(m, d, g, SGDConfig{LearningRate: 0.1, Epochs: 1, BatchSize: -1}); err == nil {
		t.Fatal("expected batch size error")
	}
	empty := &Dataset{Classes: 2}
	if _, _, err := LocalDelta(m, empty, g, SGDConfig{LearningRate: 0.1, Epochs: 1}); err == nil {
		t.Fatal("expected empty dataset error")
	}
	if _, _, err := FedAvgRound(m, g, nil, SGDConfig{LearningRate: 0.1, Epochs: 1}); err == nil {
		t.Fatal("expected no-participants error")
	}
}

func TestAccuracyAndLossEdgeCases(t *testing.T) {
	m := NewLogistic(2, 2)
	empty := &Dataset{Classes: 2}
	if Accuracy(m, empty) != 0 || Loss(m, empty) != 0 {
		t.Fatal("empty dataset metrics should be zero")
	}
	d := Blobs(10, 2, 2, 0.5, 20)
	if l := Loss(m, d); math.Abs(l-math.Log(2)) > 1e-9 {
		t.Fatalf("uniform model loss = %v, want ln(2)", l)
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := Blobs(60, 3, 3, 1.0, 21)
	if d.Features() != 3 {
		t.Fatalf("Features() = %d", d.Features())
	}
	if (&Dataset{}).Features() != 0 {
		t.Fatal("empty Features() should be 0")
	}
	dist := d.LabelDistribution()
	sum := 0
	for _, c := range dist {
		sum += c
	}
	if sum != 60 {
		t.Fatalf("label distribution loses examples: %v", dist)
	}
	sub := d.Subset([]int{0, 5, 10})
	if sub.Len() != 3 || sub.Classes != 3 {
		t.Fatal("Subset wrong shape")
	}
}

func TestParticipantSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for round := 0; round < 5; round++ {
		for p := 0; p < 20; p++ {
			s := ParticipantSeed(int64(round), p)
			if seen[s] {
				t.Fatalf("seed collision at round %d participant %d", round, p)
			}
			seen[s] = true
		}
	}
}
