package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a differentiable classifier with a flat parameter vector — the
// shape the IPLS protocol segments into partitions.
type Model interface {
	// Dim returns the length of the parameter vector.
	Dim() int
	// Params returns a copy of the parameter vector.
	Params() []float64
	// SetParams overwrites the parameters from a vector of length Dim.
	SetParams(p []float64) error
	// Gradient returns the mean cross-entropy gradient and loss over the
	// batch.
	Gradient(x [][]float64, y []int) ([]float64, float64)
	// Predict returns the most likely class for one input.
	Predict(x []float64) int
}

// softmax writes the softmax of z into p (both length k) and returns
// nothing; it is numerically stabilized by max subtraction.
func softmax(z, p []float64) {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - maxZ)
		p[i] = e
		sum += e
	}
	for i := range p {
		p[i] /= sum
	}
}

// Logistic is multinomial logistic (softmax) regression. Parameters are
// packed row-major: weights[class][feature] then biases[class].
type Logistic struct {
	features int
	classes  int
	w        []float64 // classes*features
	b        []float64 // classes
}

var _ Model = (*Logistic)(nil)

// NewLogistic creates a zero-initialized softmax regression model.
func NewLogistic(features, classes int) *Logistic {
	return &Logistic{
		features: features,
		classes:  classes,
		w:        make([]float64, classes*features),
		b:        make([]float64, classes),
	}
}

// Dim returns classes*(features+1).
func (m *Logistic) Dim() int { return m.classes * (m.features + 1) }

// Params returns [w..., b...].
func (m *Logistic) Params() []float64 {
	out := make([]float64, 0, m.Dim())
	out = append(out, m.w...)
	return append(out, m.b...)
}

// SetParams loads a packed parameter vector.
func (m *Logistic) SetParams(p []float64) error {
	if len(p) != m.Dim() {
		return fmt.Errorf("ml: logistic wants %d params, got %d", m.Dim(), len(p))
	}
	copy(m.w, p[:len(m.w)])
	copy(m.b, p[len(m.w):])
	return nil
}

func (m *Logistic) scores(x []float64, z []float64) {
	for c := 0; c < m.classes; c++ {
		s := m.b[c]
		row := m.w[c*m.features : (c+1)*m.features]
		for f, xf := range x {
			s += row[f] * xf
		}
		z[c] = s
	}
}

// Gradient returns the mean softmax cross-entropy gradient over the batch.
func (m *Logistic) Gradient(x [][]float64, y []int) ([]float64, float64) {
	grad := make([]float64, m.Dim())
	gw := grad[:len(m.w)]
	gb := grad[len(m.w):]
	z := make([]float64, m.classes)
	p := make([]float64, m.classes)
	var loss float64
	inv := 1.0 / float64(len(x))
	for i, xi := range x {
		m.scores(xi, z)
		softmax(z, p)
		loss += -math.Log(math.Max(p[y[i]], 1e-12)) * inv
		for c := 0; c < m.classes; c++ {
			d := p[c]
			if c == y[i] {
				d -= 1
			}
			d *= inv
			row := gw[c*m.features : (c+1)*m.features]
			for f, xf := range xi {
				row[f] += d * xf
			}
			gb[c] += d
		}
	}
	return grad, loss
}

// Predict returns the argmax class.
func (m *Logistic) Predict(x []float64) int {
	z := make([]float64, m.classes)
	m.scores(x, z)
	best := 0
	for c := 1; c < m.classes; c++ {
		if z[c] > z[best] {
			best = c
		}
	}
	return best
}

// MLP is a one-hidden-layer tanh network with a softmax output, parameters
// packed as [W1 (hidden×features), b1, W2 (classes×hidden), b2].
type MLP struct {
	features, hidden, classes int
	w1, b1, w2, b2            []float64
}

var _ Model = (*MLP)(nil)

// NewMLP creates an MLP with seeded Xavier-style initialization so that all
// parties derive the same initial global model from the task seed.
func NewMLP(features, hidden, classes int, seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{
		features: features,
		hidden:   hidden,
		classes:  classes,
		w1:       make([]float64, hidden*features),
		b1:       make([]float64, hidden),
		w2:       make([]float64, classes*hidden),
		b2:       make([]float64, classes),
	}
	s1 := math.Sqrt(1.0 / float64(features))
	for i := range m.w1 {
		m.w1[i] = rng.NormFloat64() * s1
	}
	s2 := math.Sqrt(1.0 / float64(hidden))
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * s2
	}
	return m
}

// Dim returns the total number of parameters.
func (m *MLP) Dim() int {
	return len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2)
}

// Params returns the packed parameter vector.
func (m *MLP) Params() []float64 {
	out := make([]float64, 0, m.Dim())
	out = append(out, m.w1...)
	out = append(out, m.b1...)
	out = append(out, m.w2...)
	return append(out, m.b2...)
}

// SetParams loads a packed parameter vector.
func (m *MLP) SetParams(p []float64) error {
	if len(p) != m.Dim() {
		return fmt.Errorf("ml: mlp wants %d params, got %d", m.Dim(), len(p))
	}
	o := 0
	copy(m.w1, p[o:o+len(m.w1)])
	o += len(m.w1)
	copy(m.b1, p[o:o+len(m.b1)])
	o += len(m.b1)
	copy(m.w2, p[o:o+len(m.w2)])
	o += len(m.w2)
	copy(m.b2, p[o:])
	return nil
}

// forward computes hidden activations h and output probabilities p.
func (m *MLP) forward(x []float64, h, z, p []float64) {
	for j := 0; j < m.hidden; j++ {
		s := m.b1[j]
		row := m.w1[j*m.features : (j+1)*m.features]
		for f, xf := range x {
			s += row[f] * xf
		}
		h[j] = math.Tanh(s)
	}
	for c := 0; c < m.classes; c++ {
		s := m.b2[c]
		row := m.w2[c*m.hidden : (c+1)*m.hidden]
		for j, hj := range h {
			s += row[j] * hj
		}
		z[c] = s
	}
	softmax(z, p)
}

// Gradient returns the mean cross-entropy gradient over the batch via
// backpropagation.
func (m *MLP) Gradient(x [][]float64, y []int) ([]float64, float64) {
	grad := make([]float64, m.Dim())
	o1 := len(m.w1)
	o2 := o1 + len(m.b1)
	o3 := o2 + len(m.w2)
	gw1, gb1, gw2, gb2 := grad[:o1], grad[o1:o2], grad[o2:o3], grad[o3:]

	h := make([]float64, m.hidden)
	z := make([]float64, m.classes)
	p := make([]float64, m.classes)
	dz := make([]float64, m.classes)
	dh := make([]float64, m.hidden)
	var loss float64
	inv := 1.0 / float64(len(x))
	for i, xi := range x {
		m.forward(xi, h, z, p)
		loss += -math.Log(math.Max(p[y[i]], 1e-12)) * inv
		for c := range dz {
			dz[c] = p[c]
			if c == y[i] {
				dz[c] -= 1
			}
			dz[c] *= inv
		}
		for j := range dh {
			dh[j] = 0
		}
		for c := 0; c < m.classes; c++ {
			row := m.w2[c*m.hidden : (c+1)*m.hidden]
			grow := gw2[c*m.hidden : (c+1)*m.hidden]
			for j, hj := range h {
				grow[j] += dz[c] * hj
				dh[j] += dz[c] * row[j]
			}
			gb2[c] += dz[c]
		}
		for j := 0; j < m.hidden; j++ {
			da := dh[j] * (1 - h[j]*h[j])
			grow := gw1[j*m.features : (j+1)*m.features]
			for f, xf := range xi {
				grow[f] += da * xf
			}
			gb1[j] += da
		}
	}
	return grad, loss
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int {
	h := make([]float64, m.hidden)
	z := make([]float64, m.classes)
	p := make([]float64, m.classes)
	m.forward(x, h, z, p)
	best := 0
	for c := 1; c < m.classes; c++ {
		if p[c] > p[best] {
			best = c
		}
	}
	return best
}

// Accuracy returns the fraction of the dataset the model classifies
// correctly.
func Accuracy(m Model, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if m.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// Loss returns the mean cross-entropy loss on the dataset.
func Loss(m Model, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	_, l := m.Gradient(d.X, d.Y)
	return l
}
