package ml

import (
	"fmt"
	"math/rand"
)

// SGDConfig configures local training on one federated participant.
type SGDConfig struct {
	// LearningRate is the SGD step size.
	LearningRate float64
	// Epochs is the number of passes over the local data per FL round.
	Epochs int
	// BatchSize is the mini-batch size (0 means full batch).
	BatchSize int
	// Momentum is the classical momentum coefficient (0 disables it).
	Momentum float64
	// WeightDecay is the L2 regularization coefficient (0 disables it).
	WeightDecay float64
	// Seed makes shuffling deterministic: the decentralized protocol and
	// the centralized reference must compute identical local updates for
	// the equivalence experiment.
	Seed int64
}

func (c SGDConfig) validate() error {
	if c.LearningRate <= 0 {
		return fmt.Errorf("ml: learning rate must be positive, got %v", c.LearningRate)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("ml: epochs must be positive, got %d", c.Epochs)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("ml: batch size must be non-negative, got %d", c.BatchSize)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("ml: momentum must be in [0,1), got %v", c.Momentum)
	}
	if c.WeightDecay < 0 {
		return fmt.Errorf("ml: weight decay must be non-negative, got %v", c.WeightDecay)
	}
	return nil
}

// LocalDelta runs cfg.Epochs of mini-batch SGD on the local dataset,
// starting from the global parameter vector, and returns the model delta
// (w_local − w_global) together with the final epoch's mean loss. This is
// the "gradU ← train(M)" step of Algorithm 1: the delta is what the trainer
// partitions, quantizes and uploads.
//
// The computation is fully deterministic given (global, d, cfg).
func LocalDelta(m Model, d *Dataset, global []float64, cfg SGDConfig) ([]float64, float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	if d.Len() == 0 {
		return nil, 0, fmt.Errorf("ml: empty local dataset")
	}
	if err := m.SetParams(global); err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Params()
	batch := cfg.BatchSize
	if batch == 0 || batch > d.Len() {
		batch = d.Len()
	}
	var velocity []float64
	if cfg.Momentum > 0 {
		velocity = make([]float64, len(params))
	}
	var lastLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		order := rng.Perm(d.Len())
		var epochLoss float64
		batches := 0
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			bx := make([][]float64, hi-lo)
			by := make([]int, hi-lo)
			for i, j := range order[lo:hi] {
				bx[i] = d.X[j]
				by[i] = d.Y[j]
			}
			grad, loss := m.Gradient(bx, by)
			for i := range params {
				g := grad[i] + cfg.WeightDecay*params[i]
				if velocity != nil {
					velocity[i] = cfg.Momentum*velocity[i] + g
					g = velocity[i]
				}
				params[i] -= cfg.LearningRate * g
			}
			if err := m.SetParams(params); err != nil {
				return nil, 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	delta := make([]float64, len(params))
	for i := range delta {
		delta[i] = params[i] - global[i]
	}
	return delta, lastLoss, nil
}

// FedAvgRound is the centralized reference: every participant computes its
// local delta from the same global model, and the server averages them.
// It returns the new global parameters and the mean training loss.
func FedAvgRound(m Model, global []float64, locals []*Dataset, cfg SGDConfig) ([]float64, float64, error) {
	if len(locals) == 0 {
		return nil, 0, fmt.Errorf("ml: no participants")
	}
	sum := make([]float64, len(global))
	var totalLoss float64
	for i, d := range locals {
		localCfg := cfg
		localCfg.Seed = ParticipantSeed(cfg.Seed, i)
		delta, loss, err := LocalDelta(m, d, global, localCfg)
		if err != nil {
			return nil, 0, fmt.Errorf("ml: participant %d: %w", i, err)
		}
		for j := range sum {
			sum[j] += delta[j]
		}
		totalLoss += loss
	}
	next := make([]float64, len(global))
	inv := 1.0 / float64(len(locals))
	for j := range next {
		next[j] = global[j] + sum[j]*inv
	}
	return next, totalLoss * inv, nil
}

// ParticipantSeed derives a per-participant shuffling seed from the round
// seed, identically in the centralized and decentralized paths.
func ParticipantSeed(roundSeed int64, participant int) int64 {
	return roundSeed*1_000_003 + int64(participant)*97 + 13
}
