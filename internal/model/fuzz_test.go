package model

import (
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

// FuzzDecodeBlock hammers the block decoder with arbitrary bytes: it must
// never panic, and any block it accepts must re-encode to the same bytes
// (canonical encoding).
func FuzzDecodeBlock(f *testing.F) {
	field := scalar.NewField(group.Secp256k1().N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		f.Fatal(err)
	}
	good, err := Quantize(quant, []float64{1.5, -2.25, 0})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := good.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		block, err := DecodeBlock(data)
		if err != nil {
			return
		}
		re, err := block.Encode()
		if err != nil {
			t.Fatalf("accepted block failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("decode/encode round trip is not canonical")
		}
	})
}

// FuzzDecodeFloats checks the float-vector codec never panics and round
// trips canonically.
func FuzzDecodeFloats(f *testing.F) {
	f.Add(EncodeFloats([]float64{1, -2, 3.5}))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vec, err := DecodeFloats(data)
		if err != nil {
			return
		}
		if string(EncodeFloats(vec)) != string(data) {
			t.Fatal("float codec not canonical")
		}
	})
}
