// Package model handles the machine-learning parameter vector as the IPLS
// protocol sees it: a flat float64 vector that is segmented into partitions
// (§II), quantized into scalar-field elements, and serialized into
// content-addressed blocks for the storage network.
//
// Every gradient block carries an extra trailing element, the averaging
// counter: trainers append the value 1 to each partition (Algorithm 1 line
// 14), aggregation sums the counters along with the gradients, and trainers
// divide the downloaded update by the summed counter to recover the average
// (lines 20-21).
package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"

	"ipls/internal/scalar"
)

// Spec describes the layout of a model's parameter vector.
type Spec struct {
	// Dim is the total number of parameters.
	Dim int
	// Partitions is the number of contiguous segments the vector is split
	// into; each partition is aggregated independently (§II).
	Partitions int
}

// Validate checks that the spec is usable.
func (s Spec) Validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("model: dimension must be positive, got %d", s.Dim)
	}
	if s.Partitions <= 0 || s.Partitions > s.Dim {
		return fmt.Errorf("model: partitions must be in [1, %d], got %d", s.Dim, s.Partitions)
	}
	return nil
}

// Range returns the half-open parameter index range [lo, hi) covered by
// partition i. Partitions differ in size by at most one element.
func (s Spec) Range(i int) (lo, hi int) {
	base := s.Dim / s.Partitions
	rem := s.Dim % s.Partitions
	if i < rem {
		lo = i * (base + 1)
		hi = lo + base + 1
		return lo, hi
	}
	lo = rem*(base+1) + (i-rem)*base
	return lo, lo + base
}

// PartitionLen returns the number of parameters in partition i.
func (s Spec) PartitionLen(i int) int {
	lo, hi := s.Range(i)
	return hi - lo
}

// Split segments a parameter vector into its partitions. The returned slices
// alias vec.
func Split(s Spec, vec []float64) ([][]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(vec) != s.Dim {
		return nil, fmt.Errorf("model: vector length %d != dim %d", len(vec), s.Dim)
	}
	parts := make([][]float64, s.Partitions)
	for i := 0; i < s.Partitions; i++ {
		lo, hi := s.Range(i)
		parts[i] = vec[lo:hi]
	}
	return parts, nil
}

// Join reassembles partitions into a full parameter vector.
func Join(s Spec, parts [][]float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(parts) != s.Partitions {
		return nil, fmt.Errorf("model: got %d partitions, want %d", len(parts), s.Partitions)
	}
	vec := make([]float64, s.Dim)
	for i, p := range parts {
		lo, hi := s.Range(i)
		if len(p) != hi-lo {
			return nil, fmt.Errorf("model: partition %d has length %d, want %d", i, len(p), hi-lo)
		}
		copy(vec[lo:hi], p)
	}
	return vec, nil
}

// Block is a quantized partition as it travels through the storage network:
// gradient values followed by the averaging counter as the final element.
type Block struct {
	Values []*big.Int
}

// Counter returns the averaging counter (the trailing element).
func (b Block) Counter() *big.Int {
	if len(b.Values) == 0 {
		return new(big.Int)
	}
	return b.Values[len(b.Values)-1]
}

// Dim returns the number of gradient values (excluding the counter).
func (b Block) Dim() int {
	if len(b.Values) == 0 {
		return 0
	}
	return len(b.Values) - 1
}

// BlockSize returns the serialized size in bytes of a block holding dim
// gradient values plus the counter.
func BlockSize(dim int) int {
	return 4 + scalar.ElementSize*(dim+1)
}

// Encode serializes the block deterministically: a big-endian element count
// followed by fixed 32-byte big-endian elements. Deterministic bytes are
// what make content addressing (CID = SHA-256 of the block) meaningful.
func (b Block) Encode() ([]byte, error) {
	buf := make([]byte, 4, 4+scalar.ElementSize*len(b.Values))
	binary.BigEndian.PutUint32(buf, uint32(len(b.Values)))
	for i, v := range b.Values {
		elem, err := scalar.MarshalElement(v)
		if err != nil {
			return nil, fmt.Errorf("model: element %d: %w", i, err)
		}
		buf = append(buf, elem...)
	}
	return buf, nil
}

// DecodeBlock parses a serialized block.
func DecodeBlock(data []byte) (Block, error) {
	if len(data) < 4 {
		return Block{}, errors.New("model: block too short")
	}
	n := binary.BigEndian.Uint32(data)
	want := 4 + int(n)*scalar.ElementSize
	if len(data) != want {
		return Block{}, fmt.Errorf("model: block length %d != expected %d for %d elements", len(data), want, n)
	}
	values := make([]*big.Int, n)
	for i := 0; i < int(n); i++ {
		off := 4 + i*scalar.ElementSize
		v, err := scalar.UnmarshalElement(data[off : off+scalar.ElementSize])
		if err != nil {
			return Block{}, err
		}
		values[i] = v
	}
	return Block{Values: values}, nil
}

// Quantize converts a float partition into a block, appending the averaging
// counter 1 (Algorithm 1 line 14).
func Quantize(q *scalar.Quantizer, part []float64) (Block, error) {
	values := make([]*big.Int, 0, len(part)+1)
	enc, err := q.EncodeVec(part)
	if err != nil {
		return Block{}, err
	}
	values = append(values, enc...)
	one, err := q.Encode(1)
	if err != nil {
		return Block{}, err
	}
	values = append(values, one)
	return Block{Values: values}, nil
}

// Dequantize recovers the averaged float partition from an aggregated
// update block by dividing the decoded sum by the decoded counter
// (Algorithm 1 lines 20-21).
func Dequantize(q *scalar.Quantizer, b Block) ([]float64, error) {
	if len(b.Values) < 2 {
		return nil, errors.New("model: update block must hold at least one value and the counter")
	}
	count := q.Decode(b.Counter())
	if count <= 0 || math.Abs(count-math.Round(count)) > 1e-6 {
		return nil, fmt.Errorf("model: invalid averaging counter %v", count)
	}
	vals := q.DecodeVec(b.Values[:len(b.Values)-1])
	for i := range vals {
		vals[i] /= count
	}
	return vals, nil
}

// Sum returns the element-wise field sum of blocks (gradients and counters
// alike). This is exactly the aggregation step the paper's aggregators and
// merge-and-download providers perform.
func Sum(f *scalar.Field, blocks ...Block) (Block, error) {
	if len(blocks) == 0 {
		return Block{}, errors.New("model: no blocks to sum")
	}
	vecs := make([][]*big.Int, len(blocks))
	for i, b := range blocks {
		vecs[i] = b.Values
	}
	sum, err := f.SumVecs(vecs...)
	if err != nil {
		return Block{}, fmt.Errorf("model: %w", err)
	}
	return Block{Values: sum}, nil
}

// EncodeFloats serializes a float64 vector (used for checkpoints and
// baseline payloads; not content-addressed protocol data).
func EncodeFloats(vec []float64) []byte {
	buf := make([]byte, 4+8*len(vec))
	binary.BigEndian.PutUint32(buf, uint32(len(vec)))
	for i, v := range vec {
		binary.BigEndian.PutUint64(buf[4+8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeFloats parses a vector produced by EncodeFloats.
func DecodeFloats(data []byte) ([]float64, error) {
	if len(data) < 4 {
		return nil, errors.New("model: float vector too short")
	}
	n := binary.BigEndian.Uint32(data)
	if len(data) != 4+8*int(n) {
		return nil, fmt.Errorf("model: float vector length %d != expected %d", len(data), 4+8*int(n))
	}
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = math.Float64frombits(binary.BigEndian.Uint64(data[4+8*i:]))
	}
	return vec, nil
}
