package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

func testQuantizer(t *testing.T) *scalar.Quantizer {
	t.Helper()
	f := scalar.NewField(group.Secp256k1().N)
	q, err := scalar.NewQuantizer(f, scalar.DefaultShift)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Dim: 10, Partitions: 4}, true},
		{Spec{Dim: 10, Partitions: 10}, true},
		{Spec{Dim: 10, Partitions: 1}, true},
		{Spec{Dim: 0, Partitions: 1}, false},
		{Spec{Dim: 10, Partitions: 0}, false},
		{Spec{Dim: 10, Partitions: 11}, false},
		{Spec{Dim: -5, Partitions: 1}, false},
	}
	for _, tt := range tests {
		err := tt.spec.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("Validate(%+v) error = %v, want ok=%v", tt.spec, err, tt.ok)
		}
	}
}

func TestRangeCoversVectorExactly(t *testing.T) {
	check := func(dim8, parts8 uint8) bool {
		dim := int(dim8)%500 + 1
		parts := int(parts8)%dim + 1
		s := Spec{Dim: dim, Partitions: parts}
		covered := 0
		prevHi := 0
		for i := 0; i < parts; i++ {
			lo, hi := s.Range(i)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo < dim/parts || hi-lo > dim/parts+1 {
				return false // partitions must be near-equal
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == dim && prevHi == dim
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []Spec{
		{Dim: 16, Partitions: 4},
		{Dim: 17, Partitions: 4},
		{Dim: 5, Partitions: 5},
		{Dim: 100, Partitions: 7},
	} {
		vec := make([]float64, tc.Dim)
		for i := range vec {
			vec[i] = rng.NormFloat64()
		}
		parts, err := Split(tc, vec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Join(tc, parts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vec {
			if got[i] != vec[i] {
				t.Fatalf("spec %+v: element %d mismatch", tc, i)
			}
		}
	}
}

func TestSplitJoinErrors(t *testing.T) {
	s := Spec{Dim: 10, Partitions: 2}
	if _, err := Split(s, make([]float64, 9)); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Split(Spec{Dim: 0, Partitions: 1}, nil); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := Join(s, make([][]float64, 3)); err == nil {
		t.Fatal("expected partition count error")
	}
	if _, err := Join(s, [][]float64{make([]float64, 5), make([]float64, 4)}); err == nil {
		t.Fatal("expected partition length error")
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	q := testQuantizer(t)
	rng := rand.New(rand.NewSource(2))
	part := make([]float64, 33)
	for i := range part {
		part[i] = rng.NormFloat64()
	}
	b, err := Quantize(q, part)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != BlockSize(len(part)) {
		t.Fatalf("encoded size %d != BlockSize %d", len(data), BlockSize(len(part)))
	}
	got, err := DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != len(b.Values) {
		t.Fatal("value count mismatch")
	}
	for i := range got.Values {
		if got.Values[i].Cmp(b.Values[i]) != 0 {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, err := DecodeBlock([]byte{1, 2}); err == nil {
		t.Fatal("expected short-block error")
	}
	if _, err := DecodeBlock([]byte{0, 0, 0, 2, 1, 2, 3}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestQuantizeAppendsCounter(t *testing.T) {
	q := testQuantizer(t)
	b, err := Quantize(q, []float64{0.5, -0.25})
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() != 2 {
		t.Fatalf("Dim() = %d", b.Dim())
	}
	if got := q.Decode(b.Counter()); got != 1 {
		t.Fatalf("counter decodes to %v, want 1", got)
	}
}

func TestSumAndDequantizeAverages(t *testing.T) {
	// The core Algorithm 1 data path: N trainers quantize, blocks are
	// field-summed, the trainer divides by the summed counter.
	q := testQuantizer(t)
	f := q.Field()
	rng := rand.New(rand.NewSource(3))
	const n = 16
	const dim = 20
	trueAvg := make([]float64, dim)
	blocks := make([]Block, n)
	for tr := 0; tr < n; tr++ {
		part := make([]float64, dim)
		for i := range part {
			part[i] = rng.NormFloat64()
			trueAvg[i] += part[i] / n
		}
		b, err := Quantize(q, part)
		if err != nil {
			t.Fatal(err)
		}
		blocks[tr] = b
	}
	sum, err := Sum(f, blocks...)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Decode(sum.Counter()); got != n {
		t.Fatalf("summed counter = %v, want %d", got, n)
	}
	avg, err := Dequantize(q, sum)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0 / math.Ldexp(1, scalar.DefaultShift-2)
	for i := range avg {
		if math.Abs(avg[i]-trueAvg[i]) > eps {
			t.Fatalf("element %d: avg %v, want %v", i, avg[i], trueAvg[i])
		}
	}
}

func TestSumErrors(t *testing.T) {
	f := scalar.NewField(group.Secp256k1().N)
	if _, err := Sum(f); err == nil {
		t.Fatal("expected error summing nothing")
	}
	q := testQuantizer(t)
	b1, _ := Quantize(q, []float64{1})
	b2, _ := Quantize(q, []float64{1, 2})
	if _, err := Sum(f, b1, b2); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestDequantizeErrors(t *testing.T) {
	q := testQuantizer(t)
	if _, err := Dequantize(q, Block{}); err == nil {
		t.Fatal("expected error on empty block")
	}
	// A zero counter must be rejected.
	zero, _ := Quantize(q, []float64{1.0})
	zero.Values[len(zero.Values)-1].SetInt64(0)
	if _, err := Dequantize(q, zero); err == nil {
		t.Fatal("expected error on zero counter")
	}
}

func TestEncodeFloatsRoundTrip(t *testing.T) {
	check := func(raw []uint64) bool {
		vec := make([]float64, len(raw))
		for i, u := range raw {
			vec[i] = math.Float64frombits(u)
		}
		got, err := DecodeFloats(EncodeFloats(vec))
		if err != nil || len(got) != len(vec) {
			return false
		}
		for i := range vec {
			if math.Float64bits(got[i]) != math.Float64bits(vec[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFloats([]byte{1}); err == nil {
		t.Fatal("expected short-input error")
	}
	if _, err := DecodeFloats([]byte{0, 0, 0, 2, 9}); err == nil {
		t.Fatal("expected length error")
	}
}
