package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSumCommutativeAssociative: block aggregation order must never matter
// — aggregators, providers and takeover peers fold blocks in different
// orders and must produce identical aggregates.
func TestSumCommutativeAssociative(t *testing.T) {
	q := testQuantizer(t)
	f := q.Field()
	rng := rand.New(rand.NewSource(7))
	mkBlock := func(dim int) Block {
		part := make([]float64, dim)
		for i := range part {
			part[i] = rng.NormFloat64()
		}
		b, err := Quantize(q, part)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(20)
		a, b, c := mkBlock(dim), mkBlock(dim), mkBlock(dim)

		ab, _ := Sum(f, a, b)
		ba, _ := Sum(f, b, a)
		for i := range ab.Values {
			if ab.Values[i].Cmp(ba.Values[i]) != 0 {
				t.Fatal("sum not commutative")
			}
		}
		abc1, _ := Sum(f, ab, c)
		bc, _ := Sum(f, b, c)
		abc2, _ := Sum(f, a, bc)
		abc3, _ := Sum(f, a, b, c)
		for i := range abc1.Values {
			if abc1.Values[i].Cmp(abc2.Values[i]) != 0 || abc1.Values[i].Cmp(abc3.Values[i]) != 0 {
				t.Fatal("sum not associative")
			}
		}
	}
}

// TestBlockEncodeIsCanonical: identical blocks encode to identical bytes
// (content addressing depends on it), and any single-element change
// produces different bytes.
func TestBlockEncodeIsCanonical(t *testing.T) {
	q := testQuantizer(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(16)
		part := make([]float64, dim)
		for i := range part {
			part[i] = rng.NormFloat64()
		}
		b1, err := Quantize(q, part)
		if err != nil {
			return false
		}
		b2, err := Quantize(q, part)
		if err != nil {
			return false
		}
		e1, err := b1.Encode()
		if err != nil {
			return false
		}
		e2, err := b2.Encode()
		if err != nil {
			return false
		}
		if string(e1) != string(e2) {
			return false
		}
		// Mutate one element: encoding must change.
		b2.Values[rng.Intn(len(b2.Values))] = q.Field().Add(b2.Values[0], b2.Values[len(b2.Values)-1])
		e3, err := b2.Encode()
		if err != nil {
			return false
		}
		return string(e1) != string(e3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitQuantizeSumJoinPipeline runs the whole trainer→aggregator→
// trainer data path for random shapes and checks the end-to-end average.
func TestSplitQuantizeSumJoinPipeline(t *testing.T) {
	q := testQuantizer(t)
	f := q.Field()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		dim := 2 + rng.Intn(40)
		partitions := 1 + rng.Intn(dim)
		trainers := 1 + rng.Intn(8)
		spec := Spec{Dim: dim, Partitions: partitions}

		trueAvg := make([]float64, dim)
		// Per-partition aggregated blocks.
		aggregates := make([]Block, partitions)
		for tr := 0; tr < trainers; tr++ {
			vec := make([]float64, dim)
			for i := range vec {
				vec[i] = rng.NormFloat64()
				trueAvg[i] += vec[i] / float64(trainers)
			}
			parts, err := Split(spec, vec)
			if err != nil {
				t.Fatal(err)
			}
			for p, part := range parts {
				block, err := Quantize(q, part)
				if err != nil {
					t.Fatal(err)
				}
				if aggregates[p].Values == nil {
					aggregates[p] = block
				} else {
					aggregates[p], err = Sum(f, aggregates[p], block)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		outParts := make([][]float64, partitions)
		for p, block := range aggregates {
			avg, err := Dequantize(q, block)
			if err != nil {
				t.Fatal(err)
			}
			outParts[p] = avg
		}
		got, err := Join(spec, outParts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			diff := got[i] - trueAvg[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6 {
				t.Fatalf("trial %d (dim=%d parts=%d trainers=%d): element %d off by %v",
					trial, dim, partitions, trainers, i, diff)
			}
		}
	}
}
