package netsim

import (
	"fmt"
	"strings"
	"time"
)

// LossWindow describes a scheduled degradation of one node's links: during
// the virtual-time window [From, To) both the uplink and downlink run at
// Factor times their configured capacity. Factor 0 severs the node's links
// completely — in-flight transfers stall and resume when the window ends.
type LossWindow struct {
	Node     string
	From, To time.Duration
	Factor   float64
}

// ScheduleLinkLoss registers a loss window, to be enacted by a watcher
// process over the virtual clock: at From the node's capacities are scaled
// and every active flow's fair-share rate is recomputed, at To they are
// restored. Must be called before Run. Windows for the same node must not
// overlap (each watcher restores the capacities it saw at its start).
func (e *Env) ScheduleLinkLoss(w LossWindow) error {
	n, ok := e.nodes[w.Node]
	if !ok {
		return fmt.Errorf("netsim: link loss for unknown node %q", w.Node)
	}
	if w.From < 0 || w.To <= w.From {
		return fmt.Errorf("netsim: link loss window [%v, %v) is empty", w.From, w.To)
	}
	if w.Factor < 0 || w.Factor >= 1 {
		return fmt.Errorf("netsim: link loss factor %v outside [0, 1)", w.Factor)
	}
	e.Go(fmt.Sprintf("linkloss:%s", w.Node), func() {
		e.Sleep(w.From)
		up, down := n.UpBps, n.DownBps
		n.UpBps, n.DownBps = up*w.Factor, down*w.Factor
		e.recomputeRates()
		e.Sleep(w.To - w.From)
		n.UpBps, n.DownBps = up, down
		e.recomputeRates()
	})
	return nil
}

// ParseLossWindow parses a textual loss window of the form
// "NODE@FROM-TO:FACTOR" with durations in Go syntax, e.g.
// "trainer-00@2s-6s:0.1" (one tenth capacity between virtual seconds 2
// and 6) or "ipfs-01@1s-3s:0" (links severed). The node's existence is
// checked at ScheduleLinkLoss time, not here.
func ParseLossWindow(s string) (LossWindow, error) {
	node, rest, ok := strings.Cut(s, "@")
	if !ok || node == "" {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: want NODE@FROM-TO:FACTOR", s)
	}
	span, factorStr, ok := strings.Cut(rest, ":")
	if !ok {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: missing :FACTOR", s)
	}
	fromStr, toStr, ok := strings.Cut(span, "-")
	if !ok {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: want FROM-TO durations", s)
	}
	from, err := time.ParseDuration(fromStr)
	if err != nil {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: bad start: %v", s, err)
	}
	to, err := time.ParseDuration(toStr)
	if err != nil {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: bad end: %v", s, err)
	}
	var factor float64
	if _, err := fmt.Sscanf(factorStr, "%g", &factor); err != nil {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: bad factor %q", s, factorStr)
	}
	w := LossWindow{Node: node, From: from, To: to, Factor: factor}
	if w.From < 0 || w.To <= w.From {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q is empty", s)
	}
	if w.Factor < 0 || w.Factor >= 1 {
		return LossWindow{}, fmt.Errorf("netsim: loss window %q: factor outside [0, 1)", s)
	}
	return w, nil
}
