package netsim

import (
	"testing"
	"time"
)

// A 1 MB transfer over a 8 Mbps link takes 1 virtual second. With the
// sender's link degraded to one tenth for the first second, the first
// 100 KB-worth of seconds transfer slowly: the flow moves 0.1 MB in the
// window, leaving 0.9 MB at full rate afterwards → 1s + 0.9s.
func TestLinkLossSlowsTransfer(t *testing.T) {
	env := NewEnv()
	a := env.AddNode("a", Mbps(8), Mbps(8))
	b := env.AddNode("b", Mbps(8), Mbps(8))
	if err := env.ScheduleLinkLoss(LossWindow{Node: "a", From: 0, To: time.Second, Factor: 0.1}); err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	env.Go("sender", func() {
		env.Transfer(a, b, 1_000_000)
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1900 * time.Millisecond
	if diff := done - want; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
		t.Fatalf("transfer finished at %v, want ~%v", done, want)
	}
}

// Factor 0 severs the link: the transfer makes no progress inside the
// window and completes exactly one window-length late.
func TestLinkLossSeveredLinkStallsAndResumes(t *testing.T) {
	env := NewEnv()
	a := env.AddNode("a", Mbps(8), Mbps(8))
	b := env.AddNode("b", Mbps(8), Mbps(8))
	if err := env.ScheduleLinkLoss(LossWindow{Node: "b", From: 200 * time.Millisecond, To: 700 * time.Millisecond, Factor: 0}); err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	env.Go("sender", func() {
		env.Transfer(a, b, 1_000_000)
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1500 * time.Millisecond
	if diff := done - want; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
		t.Fatalf("transfer finished at %v, want ~%v (1s + 500ms outage)", done, want)
	}
}

// A transfer outside the window is untouched, and determinism holds: two
// identical runs finish at identical virtual times.
func TestLinkLossWindowIsDeterministicAndScoped(t *testing.T) {
	run := func() (time.Duration, time.Duration) {
		env := NewEnv()
		a := env.AddNode("a", Mbps(80), Mbps(80))
		b := env.AddNode("b", Mbps(80), Mbps(80))
		if err := env.ScheduleLinkLoss(LossWindow{Node: "a", From: time.Second, To: 2 * time.Second, Factor: 0.5}); err != nil {
			t.Fatal(err)
		}
		var early, late time.Duration
		env.Go("early", func() {
			env.Transfer(a, b, 100_000) // 10ms at 80 Mbps, done before the window
			early = env.Now()
		})
		env.Go("late", func() {
			env.Sleep(3 * time.Second) // starts after the window closed
			start := env.Now()
			env.Transfer(a, b, 100_000)
			late = env.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return early, late
	}
	early1, late1 := run()
	early2, late2 := run()
	if early1 != early2 || late1 != late2 {
		t.Fatalf("non-deterministic: (%v, %v) vs (%v, %v)", early1, late1, early2, late2)
	}
	if early1 > 20*time.Millisecond {
		t.Fatalf("pre-window transfer took %v, should be unaffected", early1)
	}
	if late1 > 20*time.Millisecond {
		t.Fatalf("post-window transfer took %v, capacity was not restored", late1)
	}
}

func TestParseLossWindow(t *testing.T) {
	w, err := ParseLossWindow("trainer-00@2s-6s:0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := LossWindow{Node: "trainer-00", From: 2 * time.Second, To: 6 * time.Second, Factor: 0.1}
	if w != want {
		t.Fatalf("got %+v, want %+v", w, want)
	}
	if w, err := ParseLossWindow("ipfs-01@500ms-1s:0"); err != nil || w.Factor != 0 {
		t.Fatalf("severed-link window: %+v, %v", w, err)
	}
	bad := []string{
		"", "x", "@1s-2s:0.5", "a@1s:0.5", "a@1s-2s", "a@2s-1s:0.5",
		"a@1s-2s:1", "a@1s-2s:-0.1", "a@x-2s:0.5", "a@1s-y:0.5", "a@1s-2s:zz",
	}
	for _, s := range bad {
		if _, err := ParseLossWindow(s); err == nil {
			t.Errorf("ParseLossWindow(%q) accepted", s)
		}
	}
	if err := NewEnv().ScheduleLinkLoss(LossWindow{Node: "ghost", From: 0, To: time.Second, Factor: 0.5}); err == nil {
		t.Error("unknown node accepted")
	}
}
