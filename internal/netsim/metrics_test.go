package netsim

import (
	"testing"

	"ipls/internal/obs"
)

func TestTransferMirrorsIntoRegistry(t *testing.T) {
	env := NewEnv()
	reg := obs.NewRegistry()
	env.SetMetrics(reg)
	a := env.AddNode("a", Mbps(8), Mbps(8))
	b := env.AddNode("b", Mbps(8), Mbps(8))
	env.Go("xfer", func() {
		env.Transfer(a, b, 1000)
		env.Transfer(a, b, 500)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("bytes_uploaded_total", "node", "a").Value(); got != 1500 {
		t.Fatalf("bytes_uploaded_total{a} = %d, want 1500", got)
	}
	if got := reg.Counter("bytes_downloaded_total", "node", "b").Value(); got != 1500 {
		t.Fatalf("bytes_downloaded_total{b} = %d, want 1500", got)
	}
	if got := reg.Counter("transfers_total").Value(); got != 2 {
		t.Fatalf("transfers_total = %d, want 2", got)
	}
	if a.BytesSent != 1500 || b.BytesReceived != 1500 {
		t.Fatalf("legacy counters diverged: sent=%d recv=%d", a.BytesSent, b.BytesReceived)
	}
	if reg.Gauge("sim_virtual_time_seconds").Value() <= 0 {
		t.Fatal("virtual clock gauge never advanced")
	}
}

func TestSetMetricsAfterAddNode(t *testing.T) {
	env := NewEnv()
	a := env.AddNode("a", Mbps(8), Mbps(8))
	b := env.AddNode("b", Mbps(8), Mbps(8))
	reg := obs.NewRegistry()
	env.SetMetrics(reg) // must re-resolve existing nodes
	env.Go("xfer", func() { env.Transfer(a, b, 100) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("bytes_uploaded_total", "node", "a").Value(); got != 100 {
		t.Fatalf("bytes_uploaded_total{a} = %d, want 100", got)
	}
}
