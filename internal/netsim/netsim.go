// Package netsim is a deterministic discrete-event network simulator, the
// stand-in for the mininet emulation used in the paper's testbed (§V).
//
// It models nodes with independent uplink and downlink capacities and
// point-to-point transfers that share bottleneck bandwidth max-min fairly,
// which is how concurrent bulk TCP flows behave under mininet. Protocol
// logic runs as cooperative processes over a virtual clock: exactly one
// process executes at a time, and virtual time advances only while every
// process is blocked, so simulations are fully reproducible.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"ipls/internal/obs"
)

// Env is a simulation environment: a virtual clock, a set of nodes, the
// active transfers and the scheduler for cooperative processes.
type Env struct {
	now     time.Duration
	latency time.Duration

	ready   []*proc
	timers  timerHeap
	flows   []*flow
	seq     int
	blocked int // processes waiting on signals (not timers/flows)

	yield   chan struct{}
	current *proc

	nodes map[string]*Node

	reg       *obs.Registry
	transfers *obs.Counter
	clock     *obs.Gauge

	onAdvance []func(now time.Duration)
}

// NewEnv creates an empty simulation environment.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		nodes: make(map[string]*Node),
	}
}

// SetLatency sets a fixed per-transfer latency added before the
// bandwidth-limited phase of every Transfer.
func (e *Env) SetLatency(d time.Duration) { e.latency = d }

// SetMetrics mirrors transfer accounting into a registry under the same
// metric names real-TCP runs use (bytes_uploaded_total{node=...},
// bytes_downloaded_total{node=...}), so simulated and emulated experiments
// produce comparable snapshots. It also exposes transfers_total and a
// sim_virtual_time_seconds gauge. Call it before Run; nil detaches.
func (e *Env) SetMetrics(reg *obs.Registry) {
	e.reg = reg
	e.transfers = reg.Counter("transfers_total")
	e.clock = reg.Gauge("sim_virtual_time_seconds")
	for _, n := range e.nodes {
		n.resolveMetrics(reg)
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Clock returns a wall-clock view of the virtual time, anchored at base:
// each call reports base plus the current virtual offset. Hand it to
// consumers that stamp absolute timestamps (core.Session.SetClock, span
// emitters) so their output lands on the simulation's timeline.
func (e *Env) Clock(base time.Time) func() time.Time {
	return func() time.Time { return base.Add(e.now) }
}

// Node is a simulated host with independent uplink and downlink capacities
// in bits per second.
type Node struct {
	Name    string
	UpBps   float64
	DownBps float64

	// BytesSent and BytesReceived accumulate completed transfer sizes.
	BytesSent     int64
	BytesReceived int64

	env      *Env
	sentCtr  *obs.Counter
	recvCtr  *obs.Counter
	cpuCtr   *obs.Counter
	allocCtr *obs.Counter
}

func (n *Node) resolveMetrics(reg *obs.Registry) {
	n.sentCtr = reg.Counter("bytes_uploaded_total", "node", n.Name)
	n.recvCtr = reg.Counter("bytes_downloaded_total", "node", n.Name)
	n.cpuCtr = reg.Counter("sim_cpu_ns_total", "node", n.Name)
	n.allocCtr = reg.Counter("sim_alloc_bytes_total", "node", n.Name)
}

// chargeModel charges the node the modeled resource cost of handling a
// payload (see ModelCost).
func (n *Node) chargeModel(bytes int64) {
	cpu, alloc := ModelCost(bytes)
	n.cpuCtr.Add(cpu)
	n.allocCtr.Add(alloc)
}

// ModelCost is the deterministic resource model of handling a payload:
// the CPU nanoseconds and heap bytes charged per transfer endpoint
// (serialize on send, deserialize on receive). The model is deliberately
// simple — half a nanosecond of CPU per byte (a memcpy-dominated path at
// ~2 GB/s) and one allocated byte per payload byte — because its job is
// not realism but determinism: simulated spans and the scoreboard's
// sim_cpu_ns_total/sim_alloc_bytes_total counters must fold to
// byte-identical budget baselines run after run, which process-wide
// runtime meters cannot give. Real deployments meter actual usage via
// obs.RuntimeMeter instead.
func ModelCost(bytes int64) (cpuNanos, allocBytes int64) {
	if bytes <= 0 {
		return 0, 0
	}
	return bytes / 2, bytes
}

// AddNode registers a node with the given link capacities (bits/second).
func (e *Env) AddNode(name string, upBps, downBps float64) *Node {
	if upBps <= 0 || downBps <= 0 {
		panic(fmt.Sprintf("netsim: node %q must have positive bandwidth", name))
	}
	if _, dup := e.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	n := &Node{Name: name, UpBps: upBps, DownBps: downBps, env: e}
	n.resolveMetrics(e.reg)
	e.nodes[name] = n
	return n
}

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return v * 1e6 }

type procState int

const (
	procReady procState = iota + 1
	procRunning
	procBlocked
	procDone
)

type proc struct {
	name   string
	resume chan struct{}
	state  procState
}

type flow struct {
	seq       int
	from, to  *Node
	remaining float64 // bits
	rate      float64 // bits per second, set by recomputeRates
	bytes     int64
	waiter    *proc
}

type timer struct {
	at  time.Duration
	seq int
	p   *proc
	// cancelled, when non-nil and true at fire time, suppresses the
	// wake-up (used by deadline-bounded waits that were satisfied early).
	cancelled *bool
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Go spawns a cooperative process. It must be called before Run or from
// within another process.
func (e *Env) Go(name string, fn func()) {
	p := &proc{name: name, resume: make(chan struct{}), state: procReady}
	e.ready = append(e.ready, p)
	go func() {
		<-p.resume
		fn()
		p.state = procDone
		e.yield <- struct{}{}
	}()
}

// Run drives the simulation until every process has finished. It returns an
// error if processes remain blocked with no pending event to wake them
// (a deadlock in the simulated protocol).
func (e *Env) Run() error {
	for {
		if len(e.ready) > 0 {
			p := e.ready[0]
			e.ready = e.ready[1:]
			e.runProc(p)
			continue
		}
		tTimer, hasTimer := e.nextTimer()
		tFlow, hasFlow := e.nextFlowCompletion()
		switch {
		case hasTimer && (!hasFlow || tTimer <= tFlow):
			e.advanceTo(tTimer)
			e.fireTimers()
		case hasFlow:
			e.advanceTo(tFlow)
			e.completeFlows()
		default:
			if e.blocked > 0 {
				return fmt.Errorf("netsim: deadlock: %d process(es) blocked with no pending events", e.blocked)
			}
			return nil
		}
	}
}

func (e *Env) runProc(p *proc) {
	p.state = procRunning
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = nil
}

// block suspends the current process until it is made ready again. The
// caller must have registered a wake-up (timer, flow or signal) first.
func (e *Env) block() {
	p := e.current
	if p == nil {
		panic("netsim: blocking call outside a simulation process")
	}
	p.state = procBlocked
	e.yield <- struct{}{}
	<-p.resume
	p.state = procRunning
}

func (e *Env) makeReady(p *proc) {
	p.state = procReady
	e.ready = append(e.ready, p)
}

// Sleep suspends the current process for d of virtual time.
func (e *Env) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.timers, timer{at: e.now + d, seq: e.seq, p: e.current})
	e.block()
}

// Transfer moves bytes from one node to another, blocking the calling
// process for the bandwidth-limited transfer duration. Concurrent transfers
// through the same uplink or downlink share it max-min fairly. Transfers
// between a node and itself complete instantly.
func (e *Env) Transfer(from, to *Node, bytes int64) {
	if from.env != e || to.env != e {
		panic("netsim: transfer between foreign nodes")
	}
	if bytes < 0 {
		panic("netsim: negative transfer size")
	}
	from.BytesSent += bytes
	to.BytesReceived += bytes
	from.sentCtr.Add(bytes)
	to.recvCtr.Add(bytes)
	from.chargeModel(bytes)
	to.chargeModel(bytes)
	e.transfers.Inc()
	if from == to || bytes == 0 {
		if e.latency > 0 {
			e.Sleep(e.latency)
		}
		return
	}
	if e.latency > 0 {
		e.Sleep(e.latency)
	}
	e.seq++
	f := &flow{
		seq:       e.seq,
		from:      from,
		to:        to,
		remaining: float64(bytes) * 8,
		bytes:     bytes,
		waiter:    e.current,
	}
	e.flows = append(e.flows, f)
	e.recomputeRates()
	e.block()
}

func (e *Env) nextTimer() (time.Duration, bool) {
	if len(e.timers) == 0 {
		return 0, false
	}
	return e.timers[0].at, true
}

func (e *Env) nextFlowCompletion() (time.Duration, bool) {
	best := time.Duration(math.MaxInt64)
	found := false
	for _, f := range e.flows {
		if f.rate <= 0 {
			continue
		}
		// Round up to the next nanosecond so the flow's remainder is
		// guaranteed to reach zero when the clock advances there.
		t := e.now + time.Duration(math.Ceil(f.remaining/f.rate*float64(time.Second)))
		if t <= e.now {
			t = e.now
		}
		if t < best {
			best = t
			found = true
		}
	}
	return best, found
}

// advanceTo moves the clock forward, draining flow remainders at current
// rates.
func (e *Env) advanceTo(t time.Duration) {
	if t < e.now {
		t = e.now
	}
	dt := (t - e.now).Seconds()
	for _, f := range e.flows {
		f.remaining -= f.rate * dt
	}
	e.now = t
	e.clock.Set(t.Seconds())
	for _, fn := range e.onAdvance {
		fn(t)
	}
}

// OnAdvance registers fn to run (on the scheduler goroutine) every time
// the virtual clock moves. Watchdogs and alert monitors hook here so
// rule evaluation happens at deterministic virtual instants instead of
// on a wall-clock ticker. Call before Run.
func (e *Env) OnAdvance(fn func(now time.Duration)) {
	e.onAdvance = append(e.onAdvance, fn)
}

func (e *Env) fireTimers() {
	for len(e.timers) > 0 && e.timers[0].at <= e.now {
		tm := heap.Pop(&e.timers).(timer)
		if tm.cancelled != nil && *tm.cancelled {
			continue
		}
		e.makeReady(tm.p)
	}
}

// completeFlows finishes every flow whose remaining volume has drained
// (within a sub-bit epsilon to absorb float error) and recomputes rates.
func (e *Env) completeFlows() {
	const eps = 1e-6
	var remaining []*flow
	finished := false
	for _, f := range e.flows {
		if f.remaining <= eps {
			e.makeReady(f.waiter)
			finished = true
		} else {
			remaining = append(remaining, f)
		}
	}
	if !finished && len(remaining) > 0 {
		// Defensive: finish the flow closest to completion so the
		// simulation always makes progress.
		minIdx := 0
		for i, f := range remaining {
			if f.remaining < remaining[minIdx].remaining {
				minIdx = i
			}
		}
		e.makeReady(remaining[minIdx].waiter)
		remaining = append(remaining[:minIdx], remaining[minIdx+1:]...)
		finished = true
	}
	e.flows = remaining
	if finished {
		e.recomputeRates()
	}
}

// recomputeRates assigns max-min fair rates to all active flows via
// progressive filling over the uplink/downlink capacities.
func (e *Env) recomputeRates() {
	type link struct {
		cap   float64
		count int
	}
	// Deterministic link table: indexed by node in first-appearance order.
	var links []*[2]link // [0]=uplink, [1]=downlink
	index := make(map[*Node]int)
	getLinks := func(n *Node) *[2]link {
		i, ok := index[n]
		if !ok {
			i = len(links)
			index[n] = i
			links = append(links, &[2]link{{cap: n.UpBps}, {cap: n.DownBps}})
		}
		return links[i]
	}
	frozen := make([]bool, len(e.flows))
	left := len(e.flows)
	for _, f := range e.flows {
		getLinks(f.from)[0].count++
		getLinks(f.to)[1].count++
	}
	for left > 0 {
		// Find the bottleneck link: the one with the smallest fair share.
		minShare := math.MaxFloat64
		for _, l := range links {
			for i := 0; i < 2; i++ {
				if l[i].count > 0 {
					share := l[i].cap / float64(l[i].count)
					if share < minShare {
						minShare = share
					}
				}
			}
		}
		if minShare == math.MaxFloat64 {
			break
		}
		// Freeze every flow crossing a bottlenecked link at that share.
		frozeAny := false
		for i, f := range e.flows {
			if frozen[i] {
				continue
			}
			up := getLinks(f.from)
			down := getLinks(f.to)
			upShare := up[0].cap / float64(up[0].count)
			downShare := down[1].cap / float64(down[1].count)
			if upShare <= minShare+1e-9 || downShare <= minShare+1e-9 {
				f.rate = minShare
				frozen[i] = true
				left--
				up[0].cap -= minShare
				up[0].count--
				down[1].cap -= minShare
				down[1].count--
				frozeAny = true
			}
		}
		if !frozeAny { // numerical safety; should not happen
			for i, f := range e.flows {
				if !frozen[i] {
					f.rate = minShare
					frozen[i] = true
					left--
				}
			}
		}
	}
}

// Signal is a one-shot broadcast event for inter-process coordination.
// Processes that Wait before Fire are suspended; Fire wakes all of them and
// subsequent Waits return immediately.
type Signal struct {
	env     *Env
	fired   bool
	waiters []*proc
}

// NewSignal creates an unfired signal.
func (e *Env) NewSignal() *Signal { return &Signal{env: e} }

// Wait blocks the current process until the signal fires.
func (s *Signal) Wait() {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, s.env.current)
	s.env.blocked++
	s.env.block()
}

// Fire wakes all waiting processes. Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, p := range s.waiters {
		s.env.blocked--
		s.env.makeReady(p)
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Counter is a countdown latch: processes wait until Add has been called a
// target number of times.
type Counter struct {
	env             *Env
	count           int
	target          int
	waiters         []*proc
	deadlineWaiters []deadlineWaiter
	// quorumWaiters wake on every Add (not only at target) so partial
	// thresholds can be rechecked — see WaitQuorum.
	quorumWaiters []*proc
}

type deadlineWaiter struct {
	p         *proc
	satisfied *bool
}

// NewCounter creates a latch that releases waiters once Add has been called
// target times.
func (e *Env) NewCounter(target int) *Counter {
	return &Counter{env: e, target: target}
}

// Add increments the counter, waking waiters when the target is reached.
func (c *Counter) Add() {
	c.count++
	for _, p := range c.quorumWaiters {
		c.env.blocked--
		c.env.makeReady(p)
	}
	c.quorumWaiters = nil
	if c.count >= c.target {
		for _, p := range c.waiters {
			c.env.blocked--
			c.env.makeReady(p)
		}
		c.waiters = nil
		for _, w := range c.deadlineWaiters {
			*w.satisfied = true
			c.env.makeReady(w.p)
		}
		c.deadlineWaiters = nil
	}
}

// Count returns the number of Add calls so far.
func (c *Counter) Count() int { return c.count }

// Target returns the count that releases plain waiters.
func (c *Counter) Target() int { return c.target }

// WaitQuorum blocks until the full target is reached, or until the
// virtual clock has passed at AND at least need arrivals have landed —
// the m-of-n quorum primitive behind §III-D quorum rounds. It reports
// whether the full target was reached.
func (c *Counter) WaitQuorum(need int, at time.Duration) bool {
	if need >= c.target {
		c.Wait()
		return true
	}
	for {
		if c.count >= c.target {
			return true
		}
		if c.env.Now() < at {
			// Before the deadline: sleep until it; an early full
			// target wakes us sooner via the deadline-waiter path.
			if c.WaitDeadline(at) {
				return true
			}
			continue
		}
		if c.count >= need {
			return false
		}
		// Past the deadline but below quorum: wait for the next arrival
		// before rechecking.
		c.quorumWaiters = append(c.quorumWaiters, c.env.current)
		c.env.blocked++
		c.env.block()
	}
}

// Wait blocks the current process until the target is reached.
func (c *Counter) Wait() {
	if c.count >= c.target {
		return
	}
	c.waiters = append(c.waiters, c.env.current)
	c.env.blocked++
	c.env.block()
}

// WaitDeadline blocks until the target is reached or the virtual clock
// reaches the absolute deadline, whichever comes first. It reports whether
// the target was reached — the primitive behind t_train-style cutoffs.
func (c *Counter) WaitDeadline(at time.Duration) bool {
	if c.count >= c.target {
		return true
	}
	if c.env.Now() >= at {
		return false
	}
	p := c.env.current
	satisfied := false
	// Deadline timer; suppressed if the counter fires first.
	c.env.seq++
	heap.Push(&c.env.timers, timer{at: at, seq: c.env.seq, p: p, cancelled: &satisfied})
	c.deadlineWaiters = append(c.deadlineWaiters, deadlineWaiter{p: p, satisfied: &satisfied})
	c.env.block()
	if satisfied {
		return true
	}
	// Deadline fired: withdraw from the waiter list so a later Add does
	// not wake this process again.
	for i, w := range c.deadlineWaiters {
		if w.p == p {
			c.deadlineWaiters = append(c.deadlineWaiters[:i], c.deadlineWaiters[i+1:]...)
			break
		}
	}
	return c.count >= c.target
}
