package netsim

import (
	"math"
	"testing"
	"time"
)

const mb = 1 << 20

func approx(t *testing.T, got, want time.Duration, tolFrac float64, msg string) {
	t.Helper()
	diff := math.Abs(got.Seconds() - want.Seconds())
	if diff > want.Seconds()*tolFrac+1e-6 {
		t.Fatalf("%s: got %v, want ~%v", msg, got, want)
	}
}

func TestSingleTransferDuration(t *testing.T) {
	e := NewEnv()
	a := e.AddNode("a", Mbps(10), Mbps(10))
	b := e.AddNode("b", Mbps(10), Mbps(10))
	var done time.Duration
	e.Go("xfer", func() {
		e.Transfer(a, b, 10*mb)
		done = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 MiB over 10 Mbps = 10·2^20·8 / 10^7 s ≈ 8.39 s.
	want := time.Duration(float64(10*mb*8) / Mbps(10) * float64(time.Second))
	approx(t, done, want, 0.001, "transfer duration")
}

func TestAsymmetricLinksUseBottleneck(t *testing.T) {
	e := NewEnv()
	a := e.AddNode("a", Mbps(100), Mbps(100))
	b := e.AddNode("b", Mbps(100), Mbps(5)) // 5 Mbps downlink is the bottleneck
	var done time.Duration
	e.Go("xfer", func() {
		e.Transfer(a, b, mb)
		done = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(mb*8) / Mbps(5) * float64(time.Second))
	approx(t, done, want, 0.001, "bottleneck duration")
}

func TestFairSharingAtReceiver(t *testing.T) {
	// Two senders into one receiver downlink: each gets half the capacity,
	// so both complete at 2x the solo duration.
	e := NewEnv()
	recv := e.AddNode("recv", Mbps(10), Mbps(10))
	s1 := e.AddNode("s1", Mbps(10), Mbps(10))
	s2 := e.AddNode("s2", Mbps(10), Mbps(10))
	var d1, d2 time.Duration
	e.Go("s1", func() { e.Transfer(s1, recv, 5*mb); d1 = e.Now() })
	e.Go("s2", func() { e.Transfer(s2, recv, 5*mb); d2 = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(5*mb*8) / Mbps(5) * float64(time.Second))
	approx(t, d1, want, 0.001, "s1 shared duration")
	approx(t, d2, want, 0.001, "s2 shared duration")
}

func TestBandwidthReleasedAfterCompletion(t *testing.T) {
	// A short and a long flow share a downlink; after the short one ends,
	// the long one speeds back up.
	e := NewEnv()
	recv := e.AddNode("recv", Mbps(10), Mbps(10))
	s1 := e.AddNode("s1", Mbps(10), Mbps(10))
	s2 := e.AddNode("s2", Mbps(10), Mbps(10))
	var dShort, dLong time.Duration
	e.Go("short", func() { e.Transfer(s1, recv, mb); dShort = e.Now() })
	e.Go("long", func() { e.Transfer(s2, recv, 3*mb); dLong = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Short: 1MB at 5 Mbps → t1 = 8·2^20/5e6 ≈ 1.678 s.
	t1 := float64(mb*8) / Mbps(5)
	approx(t, dShort, time.Duration(t1*float64(time.Second)), 0.001, "short flow")
	// Long: transferred t1·5e6 bits while sharing, remainder at 10 Mbps.
	rem := float64(3*mb*8) - t1*Mbps(5)
	want := t1 + rem/Mbps(10)
	approx(t, dLong, time.Duration(want*float64(time.Second)), 0.001, "long flow")
}

func TestManyUploadersOneProvider(t *testing.T) {
	// 16 trainers uploading 1.3 MB each into one 10 Mbps provider: the
	// provider's downlink serializes the aggregate, so everyone finishes
	// at ~16·S·8/10e6 seconds (the Fig. 1 P=1 upload regime).
	e := NewEnv()
	provider := e.AddNode("provider", Mbps(10), Mbps(10))
	size := int64(13 * mb / 10)
	const trainers = 16
	times := make([]time.Duration, trainers)
	for i := 0; i < trainers; i++ {
		i := i
		tr := e.AddNode("t"+string(rune('a'+i)), Mbps(10), Mbps(10))
		e.Go(tr.Name, func() {
			e.Transfer(tr, provider, size)
			times[i] = e.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(trainers) * float64(size*8) / Mbps(10) * float64(time.Second))
	for i, d := range times {
		approx(t, d, want, 0.01, "trainer completion "+string(rune('a'+i)))
	}
}

func TestSleepAndNow(t *testing.T) {
	e := NewEnv()
	var at1, at2 time.Duration
	e.Go("sleeper", func() {
		e.Sleep(3 * time.Second)
		at1 = e.Now()
		e.Sleep(2 * time.Second)
		at2 = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 3*time.Second || at2 != 5*time.Second {
		t.Fatalf("sleep times wrong: %v, %v", at1, at2)
	}
	// Negative sleeps are clamped to zero.
	e2 := NewEnv()
	e2.Go("neg", func() { e2.Sleep(-time.Second) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e2.Now() != 0 {
		t.Fatalf("negative sleep advanced time to %v", e2.Now())
	}
}

func TestSelfTransferInstant(t *testing.T) {
	e := NewEnv()
	n := e.AddNode("n", Mbps(1), Mbps(1))
	e.Go("self", func() { e.Transfer(n, n, 100*mb) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Fatalf("self transfer took %v", e.Now())
	}
	if n.BytesSent != 100*mb || n.BytesReceived != 100*mb {
		t.Fatal("self transfer not accounted")
	}
}

func TestLatencyApplied(t *testing.T) {
	e := NewEnv()
	e.SetLatency(50 * time.Millisecond)
	a := e.AddNode("a", Mbps(8), Mbps(8))
	b := e.AddNode("b", Mbps(8), Mbps(8))
	e.Go("xfer", func() { e.Transfer(a, b, mb) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := 50*time.Millisecond + time.Duration(float64(mb*8)/Mbps(8)*float64(time.Second))
	approx(t, e.Now(), want, 0.001, "latency+transfer")
}

func TestByteAccounting(t *testing.T) {
	e := NewEnv()
	a := e.AddNode("a", Mbps(10), Mbps(10))
	b := e.AddNode("b", Mbps(10), Mbps(10))
	c := e.AddNode("c", Mbps(10), Mbps(10))
	e.Go("x1", func() { e.Transfer(a, b, 100) })
	e.Go("x2", func() { e.Transfer(a, c, 200) })
	e.Go("x3", func() { e.Transfer(b, c, 300) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.BytesSent != 300 || b.BytesReceived != 100 || c.BytesReceived != 500 || b.BytesSent != 300 {
		t.Fatalf("accounting wrong: a.sent=%d b.recv=%d b.sent=%d c.recv=%d",
			a.BytesSent, b.BytesReceived, b.BytesSent, c.BytesReceived)
	}
	sent := a.BytesSent + b.BytesSent + c.BytesSent
	recv := a.BytesReceived + b.BytesReceived + c.BytesReceived
	if sent != recv {
		t.Fatalf("bytes not conserved: sent=%d recv=%d", sent, recv)
	}
}

func TestSignal(t *testing.T) {
	e := NewEnv()
	sig := e.NewSignal()
	var wokenAt time.Duration
	e.Go("waiter", func() {
		sig.Wait()
		wokenAt = e.Now()
		sig.Wait() // already fired: returns immediately
	})
	e.Go("firer", func() {
		e.Sleep(7 * time.Second)
		sig.Fire()
		sig.Fire() // double fire is a no-op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 7*time.Second {
		t.Fatalf("waiter woke at %v", wokenAt)
	}
	if !sig.Fired() {
		t.Fatal("signal should report fired")
	}
}

func TestCounter(t *testing.T) {
	e := NewEnv()
	ctr := e.NewCounter(3)
	var wokenAt time.Duration
	e.Go("waiter", func() {
		ctr.Wait()
		wokenAt = e.Now()
		ctr.Wait() // already satisfied
	})
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Second
		e.Go("adder", func() {
			e.Sleep(d)
			ctr.Add()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt != 3*time.Second {
		t.Fatalf("counter released at %v", wokenAt)
	}
	if ctr.Count() != 3 {
		t.Fatalf("count = %d", ctr.Count())
	}
}

func TestCounterWaitDeadline(t *testing.T) {
	e := NewEnv()
	ctr := e.NewCounter(2)
	var reachedEarly, reachedLate bool
	var wokeAt1, wokeAt2 time.Duration
	e.Go("waiter-early", func() {
		// Target reached (at 2s) before the 5s deadline.
		reachedEarly = ctr.WaitDeadline(5 * time.Second)
		wokeAt1 = e.Now()
	})
	e.Go("adder", func() {
		e.Sleep(time.Second)
		ctr.Add()
		e.Sleep(time.Second)
		ctr.Add()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reachedEarly || wokeAt1 != 2*time.Second {
		t.Fatalf("early waiter: reached=%v at %v", reachedEarly, wokeAt1)
	}

	// Second scenario: the deadline fires first.
	e2 := NewEnv()
	ctr2 := e2.NewCounter(2)
	e2.Go("waiter-late", func() {
		reachedLate = ctr2.WaitDeadline(time.Second)
		wokeAt2 = e2.Now()
	})
	e2.Go("slow-adder", func() {
		e2.Sleep(10 * time.Second)
		ctr2.Add()
		ctr2.Add() // after the waiter withdrew; must not wake anyone
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if reachedLate || wokeAt2 != time.Second {
		t.Fatalf("late waiter: reached=%v at %v", reachedLate, wokeAt2)
	}
}

func TestCounterWaitDeadlineAlreadySatisfied(t *testing.T) {
	e := NewEnv()
	ctr := e.NewCounter(1)
	var ok, okPast bool
	e.Go("p", func() {
		ctr.Add()
		ok = ctr.WaitDeadline(time.Second) // already satisfied
		e.Sleep(2 * time.Second)
		okPast = e.NewCounter(1).WaitDeadline(time.Second) // deadline already past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("satisfied counter should return true immediately")
	}
	if okPast {
		t.Fatal("past deadline should return false immediately")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	sig := e.NewSignal()
	e.Go("stuck", func() { sig.Wait() })
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEnv()
		recv := e.AddNode("recv", Mbps(10), Mbps(10))
		var times []time.Duration
		for i := 0; i < 8; i++ {
			src := e.AddNode("s"+string(rune('0'+i)), Mbps(10), Mbps(10))
			delay := time.Duration(i) * 100 * time.Millisecond
			e.Go(src.Name, func() {
				e.Sleep(delay)
				e.Transfer(src, recv, 2*mb)
				times = append(times, e.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
}

func TestAddNodeValidation(t *testing.T) {
	e := NewEnv()
	e.AddNode("x", 1, 1)
	assertPanics(t, func() { e.AddNode("x", 1, 1) }, "duplicate node")
	assertPanics(t, func() { e.AddNode("y", 0, 1) }, "zero bandwidth")
}

func assertPanics(t *testing.T, fn func(), msg string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", msg)
		}
	}()
	fn()
}

func TestClockAnchorsVirtualTime(t *testing.T) {
	e := NewEnv()
	base := time.Unix(0, 0).UTC()
	clock := e.Clock(base)
	if got := clock(); !got.Equal(base) {
		t.Fatalf("clock before run = %v, want %v", got, base)
	}
	var during time.Time
	e.Go("sleeper", func() {
		e.Sleep(7 * time.Second)
		during = clock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := base.Add(7 * time.Second); !during.Equal(want) {
		t.Fatalf("clock mid-run = %v, want %v", during, want)
	}
	if got := clock(); !got.Equal(base.Add(7 * time.Second)) {
		t.Fatalf("clock after run = %v", got)
	}
}
