package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestRandomTopologyConservation drives random transfer patterns and checks
// global invariants: bytes are conserved, no transfer completes faster than
// its bottleneck allows, and the simulation terminates.
func TestRandomTopologyConservation(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEnv()
		nNodes := 2 + rng.Intn(6)
		nodes := make([]*Node, nNodes)
		for i := range nodes {
			up := Mbps(1 + rng.Float64()*99)
			down := Mbps(1 + rng.Float64()*99)
			nodes[i] = e.AddNode(fmt.Sprintf("n%d", i), up, down)
		}
		type xfer struct {
			from, to   int
			bytes      int64
			start      time.Duration
			completeAt time.Duration
		}
		nX := 1 + rng.Intn(12)
		xfers := make([]*xfer, nX)
		var totalBytes int64
		for i := range xfers {
			x := &xfer{
				from:  rng.Intn(nNodes),
				to:    rng.Intn(nNodes),
				bytes: int64(1 + rng.Intn(1<<20)),
				start: time.Duration(rng.Intn(1000)) * time.Millisecond,
			}
			if x.from != x.to {
				totalBytes += x.bytes
			}
			xfers[i] = x
			e.Go(fmt.Sprintf("x%d", i), func() {
				e.Sleep(x.start)
				e.Transfer(nodes[x.from], nodes[x.to], x.bytes)
				x.completeAt = e.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sent, recv int64
		for _, n := range nodes {
			sent += n.BytesSent
			recv += n.BytesReceived
		}
		if sent != recv {
			t.Fatalf("trial %d: bytes not conserved: %d sent, %d received", trial, sent, recv)
		}
		for i, x := range xfers {
			if x.from == x.to {
				continue
			}
			// A transfer can never beat its bottleneck running alone.
			bottleneck := nodes[x.from].UpBps
			if nodes[x.to].DownBps < bottleneck {
				bottleneck = nodes[x.to].DownBps
			}
			minDur := time.Duration(float64(x.bytes*8) / bottleneck * float64(time.Second))
			if got := x.completeAt - x.start; got < minDur-time.Millisecond {
				t.Fatalf("trial %d xfer %d: finished in %v, below bottleneck minimum %v",
					trial, i, got, minDur)
			}
		}
	}
}

// TestAggregateThroughputNeverExceedsCapacity checks that n concurrent
// flows into one receiver never finish before the receiver's downlink
// could have carried their total volume.
func TestAggregateThroughputNeverExceedsCapacity(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		e := NewEnv()
		recv := e.AddNode("recv", Mbps(1000), Mbps(10))
		var total int64
		last := time.Duration(0)
		for i := 0; i < n; i++ {
			src := e.AddNode(fmt.Sprintf("s%d", i), Mbps(1000), Mbps(1000))
			size := int64((i + 1) * 100_000)
			total += size
			e.Go(src.Name, func() {
				e.Transfer(src, recv, size)
				if e.Now() > last {
					last = e.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		floor := time.Duration(float64(total*8) / Mbps(10) * float64(time.Second))
		if last < floor-time.Millisecond {
			t.Fatalf("n=%d: all flows done at %v, below capacity floor %v", n, last, floor)
		}
	}
}

// TestWorkConservation: a single flow through otherwise idle links must
// finish exactly at the bottleneck rate (the scheduler must not waste
// capacity).
func TestWorkConservation(t *testing.T) {
	e := NewEnv()
	a := e.AddNode("a", Mbps(50), Mbps(50))
	b := e.AddNode("b", Mbps(50), Mbps(25))
	e.Go("x", func() { e.Transfer(a, b, 5_000_000) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(5_000_000*8) / Mbps(25) * float64(time.Second))
	diff := e.Now() - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("single flow took %v, want %v", e.Now(), want)
	}
}
