package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Declarative alert rules evaluated against sliding windows. This is the
// online counterpart of the offline bench-gate budgets: the same
// per-phase numbers that fail a CI run post-hoc become rules an operator
// can watch fire in real time. Rules follow the Prometheus alerting
// model — a condition over a windowed statistic, held For a duration
// before it fires — with state transitions exported as metrics, callback
// events and the /alerts endpoint.

// Well-known metric names fed into a Monitor by the core watchdog.
const (
	// MetricPhaseLatency carries per-phase span durations in seconds;
	// the phase dimension is the span name (upload, merge_download, …).
	MetricPhaseLatency = "phase_latency"
	// MetricHeartbeatGap carries gaps between consecutive heartbeats in
	// seconds, observed only when a gap exceeds the watchdog deadline.
	MetricHeartbeatGap = "heartbeat_gap"
)

// AlertRule is one declarative alerting condition: a windowed statistic
// of a metric (optionally restricted to one phase) compared against a
// limit. The limit is either an absolute Threshold or Budget×BurnRate —
// the latter expresses "this phase is running at N times the latency the
// bench baseline budgeted for it".
type AlertRule struct {
	// Name identifies the alert in metrics, events and /alerts.
	Name string `json:"name"`
	// Metric selects the observation stream (e.g. MetricPhaseLatency).
	Metric string `json:"metric"`
	// Phase restricts the rule to one phase; empty matches every phase
	// merged together.
	Phase string `json:"phase,omitempty"`
	// Stat picks the window statistic to compare: p50, p90, max, rate,
	// count or sum. Empty means max.
	Stat string `json:"stat,omitempty"`
	// Window is the sliding-window width; <= 0 uses the monitor default.
	Window time.Duration `json:"window,omitempty"`
	// Threshold is the absolute limit in the metric's unit.
	Threshold float64 `json:"threshold,omitempty"`
	// Budget and BurnRate express the limit as a multiple of a budget
	// (typically a bench-baseline phase budget): limit = Budget×BurnRate.
	// Used when Threshold is zero; BurnRate defaults to 1.
	Budget   float64 `json:"budget,omitempty"`
	BurnRate float64 `json:"burn_rate,omitempty"`
	// For holds the condition in Pending for this long before it fires;
	// zero fires immediately.
	For time.Duration `json:"for,omitempty"`
	// MinCount suppresses evaluation until the window holds at least
	// this many observations (default 1).
	MinCount uint64 `json:"min_count,omitempty"`
}

// Limit is the effective threshold the windowed statistic is compared
// against.
func (r AlertRule) Limit() float64 {
	if r.Threshold != 0 {
		return r.Threshold
	}
	burn := r.BurnRate
	if burn <= 0 {
		burn = 1
	}
	return r.Budget * burn
}

func (r AlertRule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("obs: alert rule needs a name")
	}
	if r.Metric == "" {
		return fmt.Errorf("obs: alert rule %q needs a metric", r.Name)
	}
	if r.Threshold == 0 && r.Budget == 0 {
		return fmt.Errorf("obs: alert rule %q needs a threshold or budget", r.Name)
	}
	if _, err := (WindowSnapshot{}).Stat(r.Stat); err != nil {
		return fmt.Errorf("obs: alert rule %q: %v", r.Name, err)
	}
	return nil
}

// AlertState is the lifecycle state of one rule.
type AlertState string

const (
	AlertOK      AlertState = "ok"
	AlertPending AlertState = "pending" // condition true, waiting out For
	AlertFiring  AlertState = "firing"
)

// Alert is the evaluated state of one rule at the last Evaluate call.
type Alert struct {
	Rule  AlertRule  `json:"rule"`
	State AlertState `json:"state"`
	// Value is the windowed statistic at the last evaluation; Limit the
	// effective threshold it was compared against.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// Since is when the alert entered its current state.
	Since time.Time `json:"since,omitempty"`
	// FiredCount is how many times the alert has transitioned to firing.
	FiredCount int `json:"fired_count,omitempty"`
}

// ruleState is the mutable evaluation state behind one rule.
type ruleState struct {
	rule  AlertRule
	win   *Window
	state AlertState
	since time.Time
	value float64
	fired int
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Window is the default sliding-window width for rules and dashboard
	// series; <= 0 means 30s.
	Window time.Duration
	// Slices is the ring granularity per window; <= 0 means 6.
	Slices int
	// Buckets are the histogram bounds for windows; nil means DefBuckets.
	Buckets []float64
	// Metrics, when set, receives alert_firing gauges and
	// alerts_fired_total / alerts_resolved_total counters.
	Metrics *Registry
	// OnTransition is called (under no monitor lock) whenever a rule
	// transitions to firing or back to ok.
	OnTransition func(Alert)
}

// Monitor feeds observations into sliding windows and evaluates alert
// rules against them. Safe for concurrent use. The nil *Monitor is a
// valid no-op, so instrumented code needs no nil checks.
type Monitor struct {
	cfg MonitorConfig

	mu     sync.Mutex
	series map[string]*Window // dashboard windows, key metric or metric/phase
	rules  []*ruleState
}

// NewMonitor creates a Monitor with the given configuration.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.Slices <= 0 {
		cfg.Slices = 6
	}
	return &Monitor{cfg: cfg, series: make(map[string]*Window)}
}

// AddRule registers a rule. Duplicate names are rejected.
func (m *Monitor) AddRule(r AlertRule) error {
	if m == nil {
		return fmt.Errorf("obs: AddRule on nil Monitor")
	}
	if err := r.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rs := range m.rules {
		if rs.rule.Name == r.Name {
			return fmt.Errorf("obs: duplicate alert rule %q", r.Name)
		}
	}
	width := r.Window
	if width <= 0 {
		width = m.cfg.Window
	}
	m.rules = append(m.rules, &ruleState{
		rule:  r,
		win:   NewWindow(width, m.cfg.Slices, m.cfg.Buckets),
		state: AlertOK,
	})
	return nil
}

// seriesKey names the dashboard window for a metric/phase pair.
func seriesKey(metric, phase string) string {
	if phase == "" {
		return metric
	}
	return metric + "/" + phase
}

// Observe records one observation at the given instant, feeding both the
// dashboard window of (metric, phase) and the window of every rule
// matching the pair.
func (m *Monitor) Observe(now time.Time, metric, phase string, v float64) {
	if m == nil {
		return
	}
	key := seriesKey(metric, phase)
	m.mu.Lock()
	win, ok := m.series[key]
	if !ok {
		win = NewWindow(m.cfg.Window, m.cfg.Slices, m.cfg.Buckets)
		m.series[key] = win
	}
	var matched []*Window
	for _, rs := range m.rules {
		if rs.rule.Metric == metric && (rs.rule.Phase == "" || rs.rule.Phase == phase) {
			matched = append(matched, rs.win)
		}
	}
	m.mu.Unlock()
	win.Observe(now, v)
	for _, rw := range matched {
		rw.Observe(now, v)
	}
}

// Series returns the dashboard window snapshot for a metric/phase pair
// as of now (zero snapshot if the pair was never observed).
func (m *Monitor) Series(now time.Time, metric, phase string) WindowSnapshot {
	if m == nil {
		return WindowSnapshot{}
	}
	m.mu.Lock()
	win := m.series[seriesKey(metric, phase)]
	m.mu.Unlock()
	if win == nil {
		return WindowSnapshot{}
	}
	return win.Snapshot(now)
}

// Evaluate runs every rule's state machine against its window as of now.
// Deterministic given the observation and evaluation timestamps, so the
// same alerts fire under netsim virtual time as in a live run.
func (m *Monitor) Evaluate(now time.Time) {
	if m == nil {
		return
	}
	var transitions []Alert
	m.mu.Lock()
	for _, rs := range m.rules {
		snap := rs.win.Snapshot(now)
		value, _ := snap.Stat(rs.rule.Stat)
		rs.value = value
		minCount := rs.rule.MinCount
		if minCount == 0 {
			minCount = 1
		}
		exceeded := snap.Count >= minCount && value > rs.rule.Limit()
		switch {
		case exceeded && rs.state == AlertOK:
			rs.state, rs.since = AlertPending, now
			fallthrough
		case exceeded && rs.state == AlertPending:
			if now.Sub(rs.since) >= rs.rule.For {
				rs.state, rs.since = AlertFiring, now
				rs.fired++
				transitions = append(transitions, rs.alert())
			}
		case !exceeded && rs.state == AlertPending:
			rs.state, rs.since = AlertOK, now
		case !exceeded && rs.state == AlertFiring:
			rs.state, rs.since = AlertOK, now
			transitions = append(transitions, rs.alert())
		}
	}
	m.mu.Unlock()
	for _, a := range transitions {
		name := a.Rule.Name
		if a.State == AlertFiring {
			m.cfg.Metrics.Counter("alerts_fired_total", "alert", name).Inc()
			m.cfg.Metrics.Gauge("alert_firing", "alert", name).Set(1)
		} else {
			m.cfg.Metrics.Counter("alerts_resolved_total", "alert", name).Inc()
			m.cfg.Metrics.Gauge("alert_firing", "alert", name).Set(0)
		}
		if m.cfg.OnTransition != nil {
			m.cfg.OnTransition(a)
		}
	}
}

// alert copies rs into its exported form. Caller holds m.mu.
func (rs *ruleState) alert() Alert {
	return Alert{
		Rule:       rs.rule,
		State:      rs.state,
		Value:      rs.value,
		Limit:      rs.rule.Limit(),
		Since:      rs.since,
		FiredCount: rs.fired,
	}
}

// Alerts returns the state of every rule as of the last Evaluate,
// sorted by name.
func (m *Monitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]Alert, 0, len(m.rules))
	for _, rs := range m.rules {
		out = append(out, rs.alert())
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// Firing returns the names of currently firing alerts, sorted.
func (m *Monitor) Firing() []string {
	var names []string
	for _, a := range m.Alerts() {
		if a.State == AlertFiring {
			names = append(names, a.Rule.Name)
		}
	}
	return names
}

// Straggler is one actor whose recent phase latency stands out from the
// window distribution of its phase.
type Straggler struct {
	Actor string `json:"actor"`
	Phase string `json:"phase"`
	// LastSeconds is the actor's most recent phase latency; P90Seconds
	// the window p90 it is compared against; Ratio their quotient.
	LastSeconds float64   `json:"last_seconds"`
	P90Seconds  float64   `json:"p90_seconds"`
	Ratio       float64   `json:"ratio"`
	At          time.Time `json:"at"`
}

// HealthStatus is the document served at /alerts: every rule's state,
// the dashboard windows, and any stragglers the watchdog flagged.
type HealthStatus struct {
	GeneratedAt time.Time                 `json:"generated_at"`
	Firing      []string                  `json:"firing,omitempty"`
	Alerts      []Alert                   `json:"alerts"`
	Windows     map[string]WindowSnapshot `json:"windows,omitempty"`
	Stragglers  []Straggler               `json:"stragglers,omitempty"`
}

// Status assembles the HealthStatus as of now (without stragglers —
// the core watchdog layers those on).
func (m *Monitor) Status(now time.Time) HealthStatus {
	st := HealthStatus{GeneratedAt: now, Alerts: m.Alerts(), Firing: m.Firing()}
	if m == nil {
		return st
	}
	m.mu.Lock()
	wins := make(map[string]*Window, len(m.series))
	for k, w := range m.series {
		wins[k] = w
	}
	m.mu.Unlock()
	st.Windows = make(map[string]WindowSnapshot, len(wins))
	for k, w := range wins {
		st.Windows[k] = w.Snapshot(now)
	}
	return st
}

// RulesFromBaseline converts the per-phase Max budgets of one bench-gate
// scenario into phase_latency alert rules: each phase fires when its
// windowed max latency burns past burnRate times the budgeted max. This
// is the bridge from the offline gates to live alerting — the committed
// baseline file doubles as the alert policy. Synthetic phases (the
// critical-path gap pseudo-phase) are skipped.
func RulesFromBaseline(b Baseline, scenario string, burnRate float64, window, forDur time.Duration) ([]AlertRule, error) {
	sc, ok := b.Scenarios[scenario]
	if !ok {
		known := make([]string, 0, len(b.Scenarios))
		for k := range b.Scenarios {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("obs: baseline has no scenario %q (have %s)", scenario, strings.Join(known, ", "))
	}
	phases := make([]string, 0, len(sc.Phases))
	for name := range sc.Phases {
		if strings.HasPrefix(name, "(") { // synthetic, e.g. GapPhase
			continue
		}
		phases = append(phases, name)
	}
	sort.Strings(phases)
	rules := make([]AlertRule, 0, len(phases))
	for _, name := range phases {
		pb := sc.Phases[name]
		if pb.Max <= 0 {
			continue
		}
		rules = append(rules, AlertRule{
			Name:     scenario + "/" + name + "_latency",
			Metric:   MetricPhaseLatency,
			Phase:    name,
			Stat:     "max",
			Window:   window,
			Budget:   pb.Max.Seconds(),
			BurnRate: burnRate,
			For:      forDur,
		})
	}
	return rules, nil
}
