package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAlertRuleLimit(t *testing.T) {
	if got := (AlertRule{Threshold: 1.5}).Limit(); got != 1.5 {
		t.Fatalf("threshold limit = %v", got)
	}
	if got := (AlertRule{Budget: 0.25, BurnRate: 4}).Limit(); got != 1.0 {
		t.Fatalf("budget limit = %v", got)
	}
	if got := (AlertRule{Budget: 0.2}).Limit(); got != 0.2 {
		t.Fatalf("default burn-rate limit = %v", got)
	}
}

func TestMonitorFiresAndResolves(t *testing.T) {
	reg := NewRegistry()
	var transitions []Alert
	m := NewMonitor(MonitorConfig{
		Window:       10 * time.Second,
		Metrics:      reg,
		OnTransition: func(a Alert) { transitions = append(transitions, a) },
	})
	err := m.AddRule(AlertRule{
		Name: "slow_upload", Metric: MetricPhaseLatency, Phase: "upload",
		Stat: "max", Threshold: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := windowBase.Add(time.Minute)
	m.Observe(t0, MetricPhaseLatency, "upload", 0.2)
	m.Evaluate(t0)
	if got := m.Alerts()[0].State; got != AlertOK {
		t.Fatalf("state = %v, want ok", got)
	}
	m.Observe(t0.Add(time.Second), MetricPhaseLatency, "upload", 2.5)
	m.Evaluate(t0.Add(time.Second))
	a := m.Alerts()[0]
	if a.State != AlertFiring || a.Value != 2.5 || a.Limit != 1.0 {
		t.Fatalf("alert = %+v, want firing at 2.5 > 1.0", a)
	}
	if reg.Gauge("alert_firing", "alert", "slow_upload").Value() != 1 {
		t.Fatal("alert_firing gauge not set")
	}
	if reg.Counter("alerts_fired_total", "alert", "slow_upload").Value() != 1 {
		t.Fatal("alerts_fired_total not incremented")
	}
	// Once the window slides past the bad observation, the alert resolves.
	tEnd := t0.Add(30 * time.Second)
	m.Evaluate(tEnd)
	if got := m.Alerts()[0].State; got != AlertOK {
		t.Fatalf("state after window slide = %v, want ok", got)
	}
	if reg.Gauge("alert_firing", "alert", "slow_upload").Value() != 0 {
		t.Fatal("alert_firing gauge not cleared")
	}
	if len(transitions) != 2 || transitions[0].State != AlertFiring || transitions[1].State != AlertOK {
		t.Fatalf("transitions = %+v", transitions)
	}
	if len(m.Firing()) != 0 {
		t.Fatalf("firing = %v", m.Firing())
	}
}

func TestMonitorForHoldsPending(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 30 * time.Second})
	if err := m.AddRule(AlertRule{
		Name: "sustained", Metric: MetricPhaseLatency,
		Stat: "max", Threshold: 1.0, For: 5 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	t0 := windowBase.Add(time.Minute)
	m.Observe(t0, MetricPhaseLatency, "upload", 3.0)
	m.Evaluate(t0)
	if got := m.Alerts()[0].State; got != AlertPending {
		t.Fatalf("state = %v, want pending during For", got)
	}
	// Still exceeded after For elapses: fires.
	m.Observe(t0.Add(4*time.Second), MetricPhaseLatency, "upload", 3.0)
	m.Evaluate(t0.Add(5 * time.Second))
	if got := m.Alerts()[0].State; got != AlertFiring {
		t.Fatalf("state = %v, want firing after For", got)
	}
}

func TestMonitorPhaseScoping(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 30 * time.Second})
	if err := m.AddRule(AlertRule{
		Name: "upload_only", Metric: MetricPhaseLatency, Phase: "upload",
		Stat: "max", Threshold: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	t0 := windowBase.Add(time.Minute)
	// A slow *aggregate* phase must not trip an upload-scoped rule.
	m.Observe(t0, MetricPhaseLatency, "aggregate", 9.0)
	m.Evaluate(t0)
	if got := m.Alerts()[0].State; got != AlertOK {
		t.Fatalf("state = %v after unrelated phase, want ok", got)
	}
	if m.Series(t0, MetricPhaseLatency, "aggregate").Count != 1 {
		t.Fatal("dashboard window for aggregate missing")
	}
}

func TestMonitorRejectsBadRules(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	for _, r := range []AlertRule{
		{},
		{Name: "x"},
		{Name: "x", Metric: "m"},
		{Name: "x", Metric: "m", Threshold: 1, Stat: "p42"},
	} {
		if err := m.AddRule(r); err == nil {
			t.Fatalf("rule %+v accepted", r)
		}
	}
	if err := m.AddRule(AlertRule{Name: "dup", Metric: "m", Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRule(AlertRule{Name: "dup", Metric: "m", Threshold: 2}); err == nil {
		t.Fatal("duplicate rule name accepted")
	}
}

func TestNilMonitorIsNoop(t *testing.T) {
	var m *Monitor
	m.Observe(windowBase, "m", "", 1)
	m.Evaluate(windowBase)
	if m.Alerts() != nil || m.Firing() != nil {
		t.Fatal("nil monitor returned state")
	}
	st := m.Status(windowBase)
	if len(st.Alerts) != 0 {
		t.Fatal("nil monitor status has alerts")
	}
}

func TestMonitorStatusWindows(t *testing.T) {
	m := NewMonitor(MonitorConfig{Window: 30 * time.Second})
	t0 := windowBase.Add(time.Minute)
	m.Observe(t0, MetricPhaseLatency, "upload", 0.5)
	m.Observe(t0, MetricPhaseLatency, "", 0.5)
	st := m.Status(t0)
	if st.Windows["phase_latency/upload"].Count != 1 {
		t.Fatalf("windows = %+v", st.Windows)
	}
	if st.Windows["phase_latency"].Count != 1 {
		t.Fatalf("unphased series key wrong: %+v", st.Windows)
	}
}

func TestRulesFromBaseline(t *testing.T) {
	b := Baseline{
		Version: BaselineVersion,
		Scenarios: map[string]ScenarioBudget{
			"sim-merge": {Phases: map[string]PhaseBudget{
				"upload":     {Max: 200 * time.Millisecond},
				"aggregate":  {Max: 50 * time.Millisecond},
				"(untraced)": {Max: time.Second},
			}},
		},
	}
	rules, err := RulesFromBaseline(b, "sim-merge", 2, 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %+v, want 2 (synthetic phase skipped)", rules)
	}
	byPhase := map[string]AlertRule{}
	for _, r := range rules {
		byPhase[r.Phase] = r
		if r.Metric != MetricPhaseLatency || r.Stat != "max" {
			t.Fatalf("rule = %+v", r)
		}
	}
	up := byPhase["upload"]
	if up.Limit() != 0.2*2 {
		t.Fatalf("upload limit = %v, want budget 0.2 × burn 2", up.Limit())
	}
	if _, err := RulesFromBaseline(b, "nope", 2, 0, 0); err == nil || !strings.Contains(err.Error(), "sim-merge") {
		t.Fatalf("unknown scenario error = %v", err)
	}
}
