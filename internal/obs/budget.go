package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Per-phase benchmark budgets: the regression-gate half of the span
// substrate. The paper's headline results (Figs. 5-8) are *per-phase*
// transfer-bound delays — upload, merge-and-download, sync wait — not just
// end-to-end wall time, so a benchmark that gates only on total latency
// lets a regression in one phase hide behind an improvement in another.
// This file turns Breakdown's proven invariant (phase durations sum
// exactly to iteration latency) into an enforced contract: fold a span
// stream into a ScenarioBudget, record it as a JSON baseline, and compare
// later runs phase by phase under an explicit tolerance. Under the netsim
// virtual clock the fold is exact, so baselines admit zero-tolerance
// comparison.

// TotalPhase is the pseudo-phase naming the end-to-end latency row in a
// budget comparison, so the old whole-iteration gate survives alongside
// the per-phase ones.
const TotalPhase = "(total)"

// PhaseBudget is one phase's allowance within a scenario: the median and
// worst critical-path time charged to the phase across the scenario's
// traces, and the largest byte volume its spans moved.
type PhaseBudget struct {
	P50   time.Duration `json:"p50_ns"`
	Max   time.Duration `json:"max_ns"`
	Bytes int64         `json:"bytes,omitempty"`
	// CPU and Alloc are the largest CPU time and heap allocation charged
	// to the phase across the scenario's traces (zero when the span
	// stream carried no resource deltas — the fields are omitted so
	// pre-resource baselines stay readable after upgrading).
	CPU   time.Duration `json:"cpu_ns,omitempty"`
	Alloc int64         `json:"alloc_bytes,omitempty"`
}

// ScenarioBudget is the per-phase budget of one benchmark scenario,
// folded from the per-trace breakdowns of its span stream.
type ScenarioBudget struct {
	// Traces is how many (session, iter) traces the budget was folded
	// from.
	Traces int `json:"traces"`
	// Latency is the end-to-end budget (the pre-existing gate signal).
	Latency PhaseBudget `json:"latency"`
	// Phases maps phase name (span name, or GapPhase) to its budget.
	Phases map[string]PhaseBudget `json:"phases"`
}

// Baseline is the committed form of a benchmark run: one ScenarioBudget
// per named scenario. It round-trips through JSON with sorted keys, so a
// deterministic run re-records byte-identical baselines.
type Baseline struct {
	Version   int                       `json:"version"`
	Scenarios map[string]ScenarioBudget `json:"scenarios"`
}

// BaselineVersion is the current baseline schema version. Version 2
// added the per-phase cpu_ns/alloc_bytes resource dimensions.
const BaselineVersion = 2

// NewScenarioBudget folds per-trace breakdowns into a scenario budget.
// A phase absent from some traces contributes zeros for them, so p50 is
// taken over all traces, not just the ones where the phase appeared.
func NewScenarioBudget(breakdowns []IterationBreakdown) ScenarioBudget {
	b := ScenarioBudget{Traces: len(breakdowns), Phases: make(map[string]PhaseBudget)}
	if len(breakdowns) == 0 {
		return b
	}
	latencies := make([]time.Duration, 0, len(breakdowns))
	totalBytes := make([]int64, 0, len(breakdowns))
	totalCPU := make([]int64, 0, len(breakdowns))
	totalAlloc := make([]int64, 0, len(breakdowns))
	durs := make(map[string][]time.Duration)
	bytes := make(map[string][]int64)
	cpus := make(map[string][]int64)
	allocs := make(map[string][]int64)
	for _, bd := range breakdowns {
		latencies = append(latencies, bd.Latency)
		var tb, tc, ta int64
		for _, p := range bd.Phases {
			durs[p.Phase] = append(durs[p.Phase], p.Duration)
			bytes[p.Phase] = append(bytes[p.Phase], p.Bytes)
			cpus[p.Phase] = append(cpus[p.Phase], p.CPUNanos)
			allocs[p.Phase] = append(allocs[p.Phase], p.AllocBytes)
			tb += p.Bytes
			tc += p.CPUNanos
			ta += p.AllocBytes
		}
		totalBytes = append(totalBytes, tb)
		totalCPU = append(totalCPU, tc)
		totalAlloc = append(totalAlloc, ta)
	}
	b.Latency = PhaseBudget{
		P50: p50Duration(latencies), Max: maxDuration(latencies),
		Bytes: maxInt64(totalBytes), CPU: time.Duration(maxInt64(totalCPU)), Alloc: maxInt64(totalAlloc),
	}
	for phase, ds := range durs {
		// Pad with zeros for traces the phase did not appear in, so the
		// median reflects the whole scenario.
		for len(ds) < len(breakdowns) {
			ds = append(ds, 0)
		}
		b.Phases[phase] = PhaseBudget{
			P50: p50Duration(ds), Max: maxDuration(ds),
			Bytes: maxInt64(bytes[phase]), CPU: time.Duration(maxInt64(cpus[phase])), Alloc: maxInt64(allocs[phase]),
		}
	}
	return b
}

// p50Duration is the lower median of vs (exact for deterministic runs).
func p50Duration(vs []time.Duration) time.Duration {
	if len(vs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

func maxDuration(vs []time.Duration) time.Duration {
	var m time.Duration
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

func maxInt64(vs []int64) int64 {
	var m int64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// WriteBaseline serializes the baseline as indented JSON (map keys sort,
// so the output is deterministic).
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return b, fmt.Errorf("obs: baseline: %w", err)
	}
	if b.Version != BaselineVersion {
		return b, fmt.Errorf("obs: baseline version %d, want %d", b.Version, BaselineVersion)
	}
	if len(b.Scenarios) == 0 {
		return b, fmt.Errorf("obs: baseline has no scenarios")
	}
	return b, nil
}

// MetricDelta is one (phase, metric) comparison row. Base and Got are in
// nanoseconds for duration metrics and bytes for the bytes metric.
type MetricDelta struct {
	Metric string `json:"metric"` // "p50" | "max" | "bytes" | "cpu" | "alloc"
	Base   int64  `json:"base"`
	Got    int64  `json:"got"`
	// Violation is set when Got exceeds Base beyond the tolerance.
	Violation bool `json:"violation,omitempty"`
}

// Pct is the relative delta in percent (+inf encoded as +100 per zero
// base convention: a zero budget that grew is reported as +100%).
func (d MetricDelta) Pct() float64 {
	if d.Base == 0 {
		if d.Got == 0 {
			return 0
		}
		return 100
	}
	return float64(d.Got-d.Base) / float64(d.Base) * 100
}

// PhaseDelta compares one phase of a scenario against its budget.
type PhaseDelta struct {
	Phase string `json:"phase"`
	// InBase/InRun report presence on each side; when either is false
	// Metrics is empty and Problem explains the mismatch.
	InBase  bool          `json:"in_base"`
	InRun   bool          `json:"in_run"`
	Metrics []MetricDelta `json:"metrics,omitempty"`
	Problem string        `json:"problem,omitempty"`
}

// BudgetReport is the outcome of checking one scenario against its
// baseline budget.
type BudgetReport struct {
	Scenario  string       `json:"scenario"`
	Tolerance float64      `json:"tolerance"`
	Deltas    []PhaseDelta `json:"deltas,omitempty"`
	// Problems records scenario-level failures (e.g. the scenario is
	// missing from the run or the baseline entirely).
	Problems []string `json:"problems,omitempty"`
}

// OK reports whether the scenario stayed within budget: no metric
// violations, no phase-set mismatches, no scenario-level problems.
func (r BudgetReport) OK() bool {
	if len(r.Problems) > 0 {
		return false
	}
	for _, d := range r.Deltas {
		if d.Problem != "" {
			return false
		}
		for _, m := range d.Metrics {
			if m.Violation {
				return false
			}
		}
	}
	return true
}

// Violations lists every failure as "scenario/phase: reason" strings,
// suitable for an error message naming the regressed phases.
func (r BudgetReport) Violations() []string {
	var out []string
	for _, p := range r.Problems {
		out = append(out, fmt.Sprintf("%s: %s", r.Scenario, p))
	}
	for _, d := range r.Deltas {
		if d.Problem != "" {
			out = append(out, fmt.Sprintf("%s/%s: %s", r.Scenario, d.Phase, d.Problem))
			continue
		}
		for _, m := range d.Metrics {
			if m.Violation {
				out = append(out, fmt.Sprintf("%s/%s: %s %s exceeds budget %s by %+.1f%% (tolerance %.1f%%)",
					r.Scenario, d.Phase, m.Metric, formatMetric(m.Metric, m.Got),
					formatMetric(m.Metric, m.Base), m.Pct(), r.Tolerance*100))
			}
		}
	}
	return out
}

// allowed is the budget ceiling for a base value under the tolerance.
func allowed(base int64, tol float64) int64 {
	if tol <= 0 {
		return base
	}
	return base + int64(tol*float64(base))
}

// compareMetric builds one row, flagging got > base*(1+tol). Improvements
// (got < base) always pass; they surface as negative deltas in the table.
func compareMetric(name string, base, got int64, tol float64) MetricDelta {
	return MetricDelta{Metric: name, Base: base, Got: got, Violation: got > allowed(base, tol)}
}

func comparePhase(phase string, base, got PhaseBudget, tol float64) PhaseDelta {
	return PhaseDelta{
		Phase: phase, InBase: true, InRun: true,
		Metrics: []MetricDelta{
			compareMetric("p50", int64(base.P50), int64(got.P50), tol),
			compareMetric("max", int64(base.Max), int64(got.Max), tol),
			compareMetric("bytes", base.Bytes, got.Bytes, tol),
			compareMetric("cpu", int64(base.CPU), int64(got.CPU), tol),
			compareMetric("alloc", base.Alloc, got.Alloc, tol),
		},
	}
}

// CompareBudget checks one scenario's folded budget against its baseline.
// Every phase of the union is compared: a phase budgeted but absent from
// the run fails (the instrumentation regressed or the phase vanished —
// either way the budget cannot be verified), and a phase present in the
// run but absent from the baseline fails (unbudgeted critical-path work).
// The end-to-end latency is compared first under the TotalPhase row.
func CompareBudget(scenario string, base, got ScenarioBudget, tol float64) BudgetReport {
	r := BudgetReport{Scenario: scenario, Tolerance: tol}
	r.Deltas = append(r.Deltas, comparePhase(TotalPhase, base.Latency, got.Latency, tol))
	names := make(map[string]bool, len(base.Phases)+len(got.Phases))
	for n := range base.Phases {
		names[n] = true
	}
	for n := range got.Phases {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		b, inBase := base.Phases[n]
		g, inRun := got.Phases[n]
		switch {
		case inBase && inRun:
			r.Deltas = append(r.Deltas, comparePhase(n, b, g, tol))
		case inBase:
			r.Deltas = append(r.Deltas, PhaseDelta{
				Phase: n, InBase: true,
				Problem: "budgeted phase missing from the run",
			})
		default:
			r.Deltas = append(r.Deltas, PhaseDelta{
				Phase: n, InRun: true,
				Problem: "phase not in the baseline (record a new baseline to budget it)",
			})
		}
	}
	return r
}

// CompareBaselines checks a freshly folded baseline against the committed
// one, scenario by scenario, in sorted order. Scenario-set mismatches
// fail on the affected scenario's report.
func CompareBaselines(base, got Baseline, tol float64) []BudgetReport {
	names := make(map[string]bool, len(base.Scenarios)+len(got.Scenarios))
	for n := range base.Scenarios {
		names[n] = true
	}
	for n := range got.Scenarios {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	var out []BudgetReport
	for _, n := range ordered {
		b, inBase := base.Scenarios[n]
		g, inRun := got.Scenarios[n]
		switch {
		case inBase && inRun:
			out = append(out, CompareBudget(n, b, g, tol))
		case inBase:
			out = append(out, BudgetReport{Scenario: n, Tolerance: tol,
				Problems: []string{"baselined scenario missing from the run"}})
		default:
			out = append(out, BudgetReport{Scenario: n, Tolerance: tol,
				Problems: []string{"scenario not in the baseline (re-record to budget it)"}})
		}
	}
	return out
}

// formatMetric renders a metric value: durations rounded to the
// microsecond, byte metrics as plain integers.
func formatMetric(metric string, v int64) string {
	if metric == "bytes" || metric == "alloc" {
		return fmt.Sprintf("%dB", v)
	}
	return time.Duration(v).Round(time.Microsecond).String()
}

// WriteBudgetReport renders the per-phase delta table for one scenario —
// the shared renderer behind `iplsbench -baseline` and
// `iplstrace -baseline`. Violating rows are marked with '!', and every
// violation is restated on its own line after the table.
func WriteBudgetReport(w io.Writer, r BudgetReport) {
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "scenario %s: %s (tolerance %.1f%%)\n", r.Scenario, status, r.Tolerance*100)
	if len(r.Deltas) > 0 {
		fmt.Fprintf(w, "  %-20s %-6s %14s %14s %9s\n", "phase", "metric", "base", "run", "delta")
	}
	for _, d := range r.Deltas {
		if d.Problem != "" {
			fmt.Fprintf(w, "  ! %-18s %s\n", d.Phase, d.Problem)
			continue
		}
		for _, m := range d.Metrics {
			mark := " "
			if m.Violation {
				mark = "!"
			}
			fmt.Fprintf(w, "%s %-20s %-6s %14s %14s %+8.1f%%\n",
				mark, d.Phase, m.Metric, formatMetric(m.Metric, m.Base), formatMetric(m.Metric, m.Got), m.Pct())
		}
	}
	for _, v := range r.Violations() {
		fmt.Fprintf(w, "  violation: %s\n", v)
	}
}
