package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files instead of comparing")

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

// budgetSpans builds a three-trace stream with upload/aggregate/
// merge_download phases whose per-trace critical-path durations are easy
// to compute by hand.
func budgetSpans() []Span {
	var spans []Span
	for iter := 0; iter < 3; iter++ {
		// Iteration latency 100/110/120 ms; merge_download grows with iter.
		// The root keeps [30,35] for itself so the "iteration" phase shows
		// up in the fold.
		stretch := int64(iter * 10)
		root := mkSpan("bench", iter, "root", "", "iteration", 0, 100+stretch)
		up := mkSpan("bench", iter, "up", "root", "upload", 0, 30)
		agg := mkSpan("bench", iter, "agg", "root", "aggregate", 35, 100+stretch)
		md := mkSpan("bench", iter, "md", "agg", "merge_download", 40, 60+stretch)
		md.Bytes = 1000 + int64(iter)
		spans = append(spans, root, up, agg, md)
	}
	return spans
}

func TestNewScenarioBudgetFoldsPerPhase(t *testing.T) {
	b := NewScenarioBudget(BreakdownTrace(budgetSpans()))
	if b.Traces != 3 {
		t.Fatalf("traces = %d, want 3", b.Traces)
	}
	if b.Latency.P50 != ms(110) || b.Latency.Max != ms(120) {
		t.Fatalf("latency budget = %+v, want p50=110ms max=120ms", b.Latency)
	}
	// merge_download durations: 20, 30, 40 ms.
	md, ok := b.Phases["merge_download"]
	if !ok {
		t.Fatalf("no merge_download budget: %v", b.Phases)
	}
	if md.P50 != ms(30) || md.Max != ms(40) {
		t.Fatalf("merge_download budget = %+v, want p50=30ms max=40ms", md)
	}
	if md.Bytes != 1002 {
		t.Fatalf("merge_download bytes = %d, want 1002 (max across traces)", md.Bytes)
	}
	// upload is on the path only for [0,30]: constant 30ms per trace.
	up := b.Phases["upload"]
	if up.P50 != ms(30) || up.Max != ms(30) {
		t.Fatalf("upload budget = %+v", up)
	}
	// Per-trace phase durations sum to the latency, so the budget's
	// phases at p50 cannot exceed the p50 latency by construction of any
	// single trace; sanity-check the fold kept every phase.
	want := []string{"aggregate", "iteration", "merge_download", "upload"}
	for _, phase := range want {
		if _, ok := b.Phases[phase]; !ok {
			t.Fatalf("missing phase %q in %v", phase, b.Phases)
		}
	}
}

func TestNewScenarioBudgetEmpty(t *testing.T) {
	b := NewScenarioBudget(nil)
	if b.Traces != 0 || len(b.Phases) != 0 || b.Latency != (PhaseBudget{}) {
		t.Fatalf("empty budget: %+v", b)
	}
}

func TestNewScenarioBudgetPadsAbsentPhases(t *testing.T) {
	// Phase "extra" appears in one of three traces, ending after every
	// other span so it owns critical-path time there: the median over
	// (0, 0, >0) must be 0, the max positive.
	spans := budgetSpans()
	extra := mkSpan("bench", 2, "ex", "root", "extra", 60, 130)
	spans = append(spans, extra)
	b := NewScenarioBudget(BreakdownTrace(spans))
	got := b.Phases["extra"]
	if got.P50 != 0 {
		t.Fatalf("extra p50 = %v, want 0 (absent from 2 of 3 traces)", got.P50)
	}
	if got.Max == 0 {
		t.Fatalf("extra max = 0, want > 0")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := Baseline{Version: BaselineVersion, Scenarios: map[string]ScenarioBudget{
		"s1": NewScenarioBudget(BreakdownTrace(budgetSpans())),
	}}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != b.Version || len(got.Scenarios) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Scenarios["s1"].Latency != b.Scenarios["s1"].Latency {
		t.Fatalf("latency budget changed: %+v vs %+v", got.Scenarios["s1"].Latency, b.Scenarios["s1"].Latency)
	}
	for phase, pb := range b.Scenarios["s1"].Phases {
		if got.Scenarios["s1"].Phases[phase] != pb {
			t.Fatalf("phase %q changed: %+v vs %+v", phase, got.Scenarios["s1"].Phases[phase], pb)
		}
	}
	// Serialization is deterministic: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteBaseline(&buf2, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteBaseline is not deterministic")
	}
}

func TestReadBaselineRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"version": 99, "scenarios": {"s": {"traces": 1, "latency": {"p50_ns": 1, "max_ns": 1}, "phases": {}}}}`,
		"no scenarios":  `{"version": 1, "scenarios": {}}`,
		"unknown field": `{"version": 1, "scenarios": {}, "surprise": true}`,
	}
	for name, in := range cases {
		if _, err := ReadBaseline(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func budget(p50, max time.Duration, b int64) PhaseBudget {
	return PhaseBudget{P50: p50, Max: max, Bytes: b}
}

func scenario(phases map[string]PhaseBudget, latency PhaseBudget) ScenarioBudget {
	return ScenarioBudget{Traces: 1, Latency: latency, Phases: phases}
}

// TestCompareBudgetTable is the table-driven edge-case matrix: exact
// match, regression beyond tolerance, regression absorbed by tolerance,
// improvement, byte growth, missing phase, new phase.
func TestCompareBudgetTable(t *testing.T) {
	base := scenario(map[string]PhaseBudget{
		"upload":         budget(ms(100), ms(120), 5000),
		"merge_download": budget(ms(40), ms(50), 2600),
	}, budget(ms(200), ms(220), 7600))

	cases := []struct {
		name    string
		got     ScenarioBudget
		tol     float64
		ok      bool
		failing []string // phases expected to carry a violation or problem
	}{
		{
			name: "exact match zero tolerance",
			got:  base, tol: 0, ok: true,
		},
		{
			name: "p50 regression beyond tolerance",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(120), ms(120), 5000),
				"merge_download": budget(ms(40), ms(50), 2600),
			}, budget(ms(200), ms(220), 7600)),
			tol: 0.1, ok: false, failing: []string{"upload"},
		},
		{
			name: "regression absorbed by tolerance",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(104), ms(125), 5000),
				"merge_download": budget(ms(40), ms(50), 2600),
			}, budget(ms(208), ms(228), 7600)),
			tol: 0.05, ok: true,
		},
		{
			name: "improvement always passes",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(50), ms(60), 2000),
				"merge_download": budget(ms(10), ms(20), 100),
			}, budget(ms(80), ms(90), 2100)),
			tol: 0, ok: true,
		},
		{
			name: "byte growth is a regression",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(100), ms(120), 9000),
				"merge_download": budget(ms(40), ms(50), 2600),
			}, budget(ms(200), ms(220), 7600)),
			tol: 0.05, ok: false, failing: []string{"upload"},
		},
		{
			name: "budgeted phase missing from run",
			got: scenario(map[string]PhaseBudget{
				"upload": budget(ms(100), ms(120), 5000),
			}, budget(ms(200), ms(220), 7600)),
			tol: 0.5, ok: false, failing: []string{"merge_download"},
		},
		{
			name: "new phase not in baseline",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(100), ms(120), 5000),
				"merge_download": budget(ms(40), ms(50), 2600),
				"(untraced)":     budget(ms(5), ms(5), 0),
			}, budget(ms(200), ms(220), 7600)),
			tol: 0.5, ok: false, failing: []string{"(untraced)"},
		},
		{
			name: "total latency regression caught even when phases shift",
			got: scenario(map[string]PhaseBudget{
				"upload":         budget(ms(100), ms(120), 5000),
				"merge_download": budget(ms(40), ms(50), 2600),
			}, budget(ms(260), ms(280), 7600)),
			tol: 0.1, ok: false, failing: []string{TotalPhase},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := CompareBudget("sc", base, tc.got, tc.tol)
			if r.OK() != tc.ok {
				t.Fatalf("OK() = %v, want %v; violations: %v", r.OK(), tc.ok, r.Violations())
			}
			for _, phase := range tc.failing {
				found := false
				for _, d := range r.Deltas {
					if d.Phase != phase {
						continue
					}
					if d.Problem != "" {
						found = true
					}
					for _, m := range d.Metrics {
						if m.Violation {
							found = true
						}
					}
				}
				if !found {
					t.Fatalf("expected phase %q to fail; report: %+v", phase, r)
				}
			}
			// The error surface names every failing phase.
			for _, phase := range tc.failing {
				hit := false
				for _, v := range r.Violations() {
					if strings.Contains(v, phase) {
						hit = true
					}
				}
				if !hit {
					t.Fatalf("Violations() does not name %q: %v", phase, r.Violations())
				}
			}
		})
	}
}

func TestCompareBaselinesScenarioSets(t *testing.T) {
	sc := scenario(map[string]PhaseBudget{"upload": budget(ms(10), ms(10), 0)}, budget(ms(10), ms(10), 0))
	base := Baseline{Version: 1, Scenarios: map[string]ScenarioBudget{"a": sc, "b": sc}}
	got := Baseline{Version: 1, Scenarios: map[string]ScenarioBudget{"b": sc, "c": sc}}
	reports := CompareBaselines(base, got, 0)
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3 (union of scenarios)", len(reports))
	}
	byName := map[string]BudgetReport{}
	for _, r := range reports {
		byName[r.Scenario] = r
	}
	if byName["a"].OK() {
		t.Fatal("scenario a missing from run must fail")
	}
	if !byName["b"].OK() {
		t.Fatalf("scenario b identical must pass: %v", byName["b"].Violations())
	}
	if byName["c"].OK() {
		t.Fatal("scenario c not in baseline must fail")
	}
}

// TestBudgetReportGolden locks the delta table rendering — the report CI
// publishes — against a golden file. Regenerate with -update-golden.
func TestBudgetReportGolden(t *testing.T) {
	base := scenario(map[string]PhaseBudget{
		"upload":         budget(ms(100), ms(120), 5200000),
		"merge_download": budget(ms(40), ms(50), 2600000),
		"sync_wait":      budget(ms(25), ms(30), 0),
	}, budget(ms(200), ms(220), 7800000))
	got := scenario(map[string]PhaseBudget{
		"upload":         budget(ms(130), ms(150), 5200000),
		"merge_download": budget(ms(38), ms(50), 2600000),
		"(untraced)":     budget(ms(2), ms(3), 0),
	}, budget(ms(230), ms(250), 7800000))
	r := CompareBudget("fig1-merge-p4", base, got, 0.05)

	var buf bytes.Buffer
	WriteBudgetReport(&buf, r)
	golden := filepath.Join("testdata", "budget_report.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run TestBudgetReportGolden -update-golden` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRecordCheckRoundTrip is the end-to-end contract at the obs level: a
// budget folded from a span stream, written as a baseline, re-read and
// compared against a re-fold of the same stream passes with zero delta;
// shrinking any single phase budget makes the check fail naming that
// phase.
func TestRecordCheckRoundTrip(t *testing.T) {
	spans := budgetSpans()
	record := Baseline{Version: BaselineVersion, Scenarios: map[string]ScenarioBudget{
		"sim": NewScenarioBudget(BreakdownTrace(spans)),
	}}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, record); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check := Baseline{Version: BaselineVersion, Scenarios: map[string]ScenarioBudget{
		"sim": NewScenarioBudget(BreakdownTrace(spans)),
	}}
	for _, r := range CompareBaselines(loaded, check, 0) {
		if !r.OK() {
			t.Fatalf("round trip not zero-delta: %v", r.Violations())
		}
		for _, d := range r.Deltas {
			for _, m := range d.Metrics {
				if m.Base != m.Got {
					t.Fatalf("delta on %s/%s: %d vs %d", d.Phase, m.Metric, m.Base, m.Got)
				}
			}
		}
	}

	// Tighten one phase's max below the measured value: the check must
	// fail and the violation must name the phase.
	tight := loaded
	md := tight.Scenarios["sim"].Phases["merge_download"]
	md.Max = md.Max / 2
	tight.Scenarios["sim"].Phases["merge_download"] = md
	failed := false
	for _, r := range CompareBaselines(tight, check, 0) {
		if !r.OK() {
			failed = true
			named := false
			for _, v := range r.Violations() {
				if strings.Contains(v, "merge_download") {
					named = true
				}
			}
			if !named {
				t.Fatalf("violations do not name merge_download: %v", r.Violations())
			}
		}
	}
	if !failed {
		t.Fatal("tightened budget did not fail the check")
	}
}
