package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export: renders a span stream in the Trace Event
// Format (the JSON object form with a traceEvents array), which Perfetto
// and chrome://tracing open directly. Each trace (session, iter) becomes
// a process row and each actor a named thread row, so an iteration's
// per-role timelines sit side by side.

// chromeEvent is one Trace Event Format entry. Complete events ("X")
// carry a microsecond timestamp and duration; metadata events ("M") name
// the process and thread rows.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans in Chrome trace-event JSON. Timestamps
// are microseconds relative to the earliest span start, so virtual-clock
// and wall-clock traces both render sensibly.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if len(spans) > 0 {
		base := spans[0].Start
		for _, s := range spans {
			if s.Start.Before(base) {
				base = s.Start
			}
		}

		// Deterministic pid per trace and tid per actor within it.
		type row struct {
			key   TraceKey
			actor string
		}
		pids := make(map[TraceKey]int)
		tids := make(map[row]int)
		for _, k := range TraceKeys(spans) {
			pids[k] = len(pids) + 1
		}
		var rows []row
		seen := make(map[row]bool)
		for _, s := range spans {
			r := row{key: TraceKey{Session: s.Context.Session, Iter: s.Context.Iter}, actor: s.Actor}
			if !seen[r] {
				seen[r] = true
				rows = append(rows, r)
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].key != rows[j].key {
				if rows[i].key.Session != rows[j].key.Session {
					return rows[i].key.Session < rows[j].key.Session
				}
				return rows[i].key.Iter < rows[j].key.Iter
			}
			return rows[i].actor < rows[j].actor
		})
		for _, r := range rows {
			tids[r] = len(tids) + 1
		}

		for k, pid := range pids {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": trackName(k)},
			})
		}
		for r, tid := range tids {
			name := r.actor
			if name == "" {
				name = "(no actor)"
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pids[r.key], TID: tid,
				Args: map[string]any{"name": name},
			})
		}
		// Metadata order is map-dependent above; fix it for diffable output.
		meta := trace.TraceEvents
		sort.Slice(meta, func(i, j int) bool {
			if meta[i].PID != meta[j].PID {
				return meta[i].PID < meta[j].PID
			}
			if meta[i].TID != meta[j].TID {
				return meta[i].TID < meta[j].TID
			}
			return meta[i].Name < meta[j].Name
		})

		for _, s := range spans {
			k := TraceKey{Session: s.Context.Session, Iter: s.Context.Iter}
			args := map[string]any{
				"span_id": s.Context.SpanID,
			}
			if s.Context.Parent != "" {
				args["parent_id"] = s.Context.Parent
			}
			if s.Bytes > 0 {
				args["bytes"] = s.Bytes
			}
			for key, v := range s.Attrs {
				args[key] = v
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name:  s.Name,
				Cat:   "ipls",
				Phase: "X",
				TS:    float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
				Dur:   float64(s.Duration().Nanoseconds()) / 1e3,
				PID:   pids[k],
				TID:   tids[row{key: k, actor: s.Actor}],
				Args:  args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// trackName renders a trace key as the Perfetto process-row label.
func trackName(k TraceKey) string {
	session := k.Session
	if session == "" {
		session = "trace"
	}
	return session + " iter " + strconv.Itoa(k.Iter)
}
