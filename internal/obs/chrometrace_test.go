package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		mkSpan("s", 0, "root", "", "iteration", 0, 100),
		mkSpan("s", 0, "up", "root", "upload", 5, 30),
		mkSpan("s", 1, "r2", "", "iteration", 0, 50),
	}
	spans[0].Actor = "session"
	spans[1].Actor = "trainer-00"
	spans[1].Bytes = 612
	spans[1].Attrs = map[string]string{"partition": "0"}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	var complete, meta int
	pids := map[int]bool{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "X":
			complete++
			pids[e.PID] = true
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", e)
			}
			if e.Args["span_id"] == "" {
				t.Fatalf("X event missing span_id: %+v", e)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if complete != len(spans) {
		t.Fatalf("X events = %d, want %d", complete, len(spans))
	}
	// One process row per trace: (s,0) and (s,1).
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2", len(pids))
	}
	if meta == 0 {
		t.Fatal("no metadata rows")
	}

	// The upload span carries parent, bytes and attrs in args; ts is
	// microseconds relative to the earliest start (5ms -> 5000).
	for _, e := range out.TraceEvents {
		if e.Phase == "X" && e.Name == "upload" {
			if e.Args["parent_id"] != "root" {
				t.Fatalf("upload parent_id = %v", e.Args["parent_id"])
			}
			if e.Args["bytes"] != float64(612) {
				t.Fatalf("upload bytes = %v", e.Args["bytes"])
			}
			if e.Args["partition"] != "0" {
				t.Fatalf("upload attr = %v", e.Args["partition"])
			}
			if e.TS != 5000 {
				t.Fatalf("upload ts = %v, want 5000us", e.TS)
			}
			if e.Dur != 25000 {
				t.Fatalf("upload dur = %v, want 25000us", e.Dur)
			}
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty export not valid JSON: %v", err)
	}
	if evs, ok := out["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("traceEvents = %v, want empty array", out["traceEvents"])
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	spans := []Span{
		mkSpan("s", 0, "a", "", "x", 0, 10),
		mkSpan("s", 0, "b", "", "y", 2, 8),
		mkSpan("t", 1, "c", "", "z", 0, 4),
	}
	spans[0].Actor, spans[1].Actor, spans[2].Actor = "n1", "n2", "n3"
	var one, two bytes.Buffer
	if err := WriteChromeTrace(&one, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&two, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("chrome export is not deterministic")
	}
}
