package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSpanAndScoreboardReads exercises the introspection
// surface the way a live deployment does: writer goroutines emit spans
// and bump per-node labeled metrics while readers hit /spans and
// /scoreboard through the HTTP handler. Run under -race (the Makefile's
// `race` target covers this package) it proves the SpanCollector ring,
// the sharded Registry, and the snapshot/merge pipeline behind the
// scoreboard are safe to read mid-write.
func TestConcurrentSpanAndScoreboardReads(t *testing.T) {
	reg := NewRegistry()
	col := NewSpanCollector(256)
	h := NewHandler(HandlerConfig{
		Registry:   reg,
		Spans:      func() any { return col.Spans() },
		Scoreboard: func() any { return MergeSnapshots(SplitByLabel(reg.Snapshot(), "node"), 3) },
	})

	const writers, readers, iters = 8, 4, 200
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			node := fmt.Sprintf("node-%d", w%4)
			t0 := time.Unix(0, 0).UTC()
			for i := 0; i < iters; i++ {
				reg.Counter("bytes_uploaded_total", "node", node).Add(int64(i))
				reg.Histogram("phase_seconds", DefBuckets, "node", node).Observe(float64(i) / 1000)
				col.EmitSpan(Span{
					Name:    "upload",
					Actor:   node,
					Context: SpanContext{Session: "race", Iter: i, SpanID: NewSpanID()},
					Start:   t0, End: t0.Add(time.Millisecond),
				})
			}
		}(w)
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			paths := []string{"/spans", "/scoreboard", "/metrics.json"}
			for i := 0; i < iters/4; i++ {
				req := httptest.NewRequest("GET", paths[(r+i)%len(paths)], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					errs <- fmt.Errorf("%s = %d", req.URL.Path, rec.Code)
					return
				}
				if !json.Valid(rec.Body.Bytes()) && req.URL.Path != "/metrics" {
					errs <- fmt.Errorf("%s returned invalid JSON mid-write", req.URL.Path)
					return
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the scoreboard must see all four nodes.
	req := httptest.NewRequest("GET", "/scoreboard", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var sb Scoreboard
	if err := json.Unmarshal(rec.Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Nodes != 4 {
		t.Fatalf("scoreboard nodes = %d, want 4", sb.Nodes)
	}
}
