package obs

import (
	"sort"
	"time"
)

// Critical-path analysis: fold a trace's spans into the chain of work
// that determined the iteration's end-to-end latency, and a per-phase
// breakdown of that chain — the shape of the paper's Figs. 5-7, computed
// from a recorded run instead of hand-instrumented experiments.
//
// The algorithm is the standard walk-back over the span forest: starting
// from the interval [first span start, last span end], recursively
// attribute each stretch of time to the deepest span active on the path
// that ends last. The resulting segments tile the interval exactly, so
// the per-phase durations always sum to the end-to-end latency.

// GapPhase names the synthetic phase charged for stretches of an
// iteration not covered by any recorded span (scheduling gaps, untraced
// work between roles).
const GapPhase = "(untraced)"

// PathSegment is one stretch of the critical path, attributed to a span.
type PathSegment struct {
	// Phase is the owning span's name (GapPhase for uncovered time).
	Phase string `json:"phase"`
	Actor string `json:"actor,omitempty"`
	// SpanID identifies the owning span (empty for gaps).
	SpanID string    `json:"span_id,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// Duration is the segment's length.
func (p PathSegment) Duration() time.Duration { return p.End.Sub(p.Start) }

// PhaseDuration aggregates the critical-path time charged to one phase.
type PhaseDuration struct {
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
	// Fraction is Duration over the iteration's end-to-end latency.
	Fraction float64 `json:"fraction"`
	Segments int     `json:"segments"`
	// Bytes sums the byte counts of the spans charged (a span's bytes are
	// counted once even if it contributes several segments).
	Bytes int64 `json:"bytes,omitempty"`
	// CPUNanos and AllocBytes sum the resource deltas of the spans
	// charged, counted once per span like Bytes.
	CPUNanos   int64 `json:"cpu_ns,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// IterationBreakdown is one trace's critical path and phase breakdown.
type IterationBreakdown struct {
	Session string    `json:"session"`
	Iter    int       `json:"iter"`
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	// Latency is the end-to-end iteration latency (End - Start). The
	// Phases durations sum to it exactly.
	Latency time.Duration   `json:"latency_ns"`
	Phases  []PhaseDuration `json:"phases"`
	Path    []PathSegment   `json:"critical_path"`
}

// CriticalPath computes the critical path through one trace's spans. The
// returned segments are in chronological order and tile
// [min start, max end] exactly; an empty input yields nil.
func CriticalPath(spans []Span) []PathSegment {
	if len(spans) == 0 {
		return nil
	}
	// Children indexed by parent span ID; spans with an absent parent are
	// treated as roots (their causal parent ran in a process whose spans
	// were not merged into this stream).
	present := make(map[string]bool, len(spans))
	for _, s := range spans {
		if s.Context.Valid() {
			present[s.Context.SpanID] = true
		}
	}
	children := make(map[string][]Span)
	var roots []Span
	t0, t1 := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start.Before(t0) {
			t0 = s.Start
		}
		if s.End.After(t1) {
			t1 = s.End
		}
		if p := s.Context.Parent; p != "" && present[p] && p != s.Context.SpanID {
			children[p] = append(children[p], s)
		} else {
			roots = append(roots, s)
		}
	}
	if t1.Before(t0) {
		t1 = t0
	}

	// Ties on End break on stable span fields (Start, Name, Actor) before
	// the randomly minted span ID, so two runs of the same deterministic
	// simulation — which agree on every timestamp but mint different IDs —
	// attribute exact ties identically. Budget baselines rely on this.
	byEndDesc := func(ss []Span) {
		sort.Slice(ss, func(i, j int) bool {
			if !ss[i].End.Equal(ss[j].End) {
				return ss[i].End.After(ss[j].End)
			}
			if !ss[i].Start.Equal(ss[j].Start) {
				return ss[i].Start.After(ss[j].Start)
			}
			if ss[i].Name != ss[j].Name {
				return ss[i].Name < ss[j].Name
			}
			if ss[i].Actor != ss[j].Actor {
				return ss[i].Actor < ss[j].Actor
			}
			return ss[i].Context.SpanID < ss[j].Context.SpanID
		})
	}
	for _, ss := range children {
		byEndDesc(ss)
	}
	byEndDesc(roots)

	// attribute charges [lo, hi] to span s, descending into the children
	// that end latest first; time not covered by a child is s's own.
	// Segments are appended newest-first and reversed at the end.
	var segs []PathSegment
	var attribute func(s Span, lo, hi time.Time)
	charge := func(s Span, lo, hi time.Time) {
		if hi.After(lo) {
			segs = append(segs, PathSegment{
				Phase: s.Name, Actor: s.Actor, SpanID: s.Context.SpanID,
				Start: lo, End: hi,
			})
		}
	}
	attribute = func(s Span, lo, hi time.Time) {
		t := hi
		for _, c := range children[s.Context.SpanID] {
			if !t.After(lo) {
				break
			}
			end := c.End
			if end.After(t) {
				end = t
			}
			start := c.Start
			if start.Before(lo) {
				start = lo
			}
			if !end.After(start) {
				continue
			}
			charge(s, end, t) // s's own time after this child
			attribute(c, start, end)
			t = start
		}
		charge(s, lo, t)
	}

	// Synthetic root spanning the whole iteration, with every real root as
	// a child: the same walk then yields the cross-role critical path, and
	// uncovered stretches surface as GapPhase.
	t := t1
	for _, r := range roots {
		if !t.After(t0) {
			break
		}
		end := r.End
		if end.After(t) {
			end = t
		}
		start := r.Start
		if start.Before(t0) {
			start = t0
		}
		if !end.After(start) {
			continue
		}
		if t.After(end) {
			segs = append(segs, PathSegment{Phase: GapPhase, Start: end, End: t})
		}
		attribute(r, start, end)
		t = start
	}
	if t.After(t0) {
		segs = append(segs, PathSegment{Phase: GapPhase, Start: t0, End: t})
	}

	// Reverse into chronological order and merge adjacent segments that
	// belong to the same span.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	merged := segs[:0]
	for _, seg := range segs {
		if n := len(merged); n > 0 && merged[n-1].SpanID == seg.SpanID &&
			merged[n-1].Phase == seg.Phase && merged[n-1].End.Equal(seg.Start) {
			merged[n-1].End = seg.End
			continue
		}
		merged = append(merged, seg)
	}
	return merged
}

// Breakdown folds one trace's spans into its critical path and per-phase
// durations. The spans must all belong to one (session, iter) trace;
// BreakdownTrace groups a mixed stream first.
func Breakdown(spans []Span) IterationBreakdown {
	var b IterationBreakdown
	if len(spans) == 0 {
		return b
	}
	b.Session = spans[0].Context.Session
	b.Iter = spans[0].Context.Iter
	b.Spans = len(spans)
	b.Path = CriticalPath(spans)
	if len(b.Path) == 0 {
		return b
	}
	b.Start = b.Path[0].Start
	b.End = b.Path[len(b.Path)-1].End
	b.Latency = b.End.Sub(b.Start)

	spanOf := make(map[string]Span, len(spans))
	for _, s := range spans {
		spanOf[s.Context.SpanID] = s
	}
	agg := make(map[string]*PhaseDuration)
	var order []string
	counted := make(map[string]bool)
	for _, seg := range b.Path {
		p, ok := agg[seg.Phase]
		if !ok {
			p = &PhaseDuration{Phase: seg.Phase}
			agg[seg.Phase] = p
			order = append(order, seg.Phase)
		}
		p.Duration += seg.Duration()
		p.Segments++
		if seg.SpanID != "" && !counted[seg.SpanID] {
			counted[seg.SpanID] = true
			s := spanOf[seg.SpanID]
			p.Bytes += s.Bytes
			p.CPUNanos += s.CPUNanos
			p.AllocBytes += s.AllocBytes
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if agg[order[i]].Duration != agg[order[j]].Duration {
			return agg[order[i]].Duration > agg[order[j]].Duration
		}
		return order[i] < order[j]
	})
	for _, name := range order {
		p := *agg[name]
		if b.Latency > 0 {
			p.Fraction = float64(p.Duration) / float64(b.Latency)
		}
		b.Phases = append(b.Phases, p)
	}
	return b
}

// BreakdownTrace groups a mixed span stream by trace (session, iter) and
// returns one breakdown per trace, sorted by session then iteration.
func BreakdownTrace(spans []Span) []IterationBreakdown {
	byTrace := make(map[TraceKey][]Span)
	for _, s := range spans {
		k := TraceKey{Session: s.Context.Session, Iter: s.Context.Iter}
		byTrace[k] = append(byTrace[k], s)
	}
	keys := TraceKeys(spans)
	out := make([]IterationBreakdown, 0, len(keys))
	for _, k := range keys {
		out = append(out, Breakdown(byTrace[k]))
	}
	return out
}
