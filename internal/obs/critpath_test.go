package obs

import (
	"testing"
	"time"
)

// sumSegments adds up the critical-path segment durations.
func sumSegments(segs []PathSegment) time.Duration {
	var total time.Duration
	for _, s := range segs {
		total += s.Duration()
	}
	return total
}

func TestCriticalPathEmpty(t *testing.T) {
	if segs := CriticalPath(nil); segs != nil {
		t.Fatalf("empty input: %v", segs)
	}
}

func TestCriticalPathTilesInterval(t *testing.T) {
	// root [0,100] with children up [5,30] and agg [20,90]; agg has child
	// md [30,50]. Walk-back attributes [90,100] to root, agg's own time
	// around md, and md itself; up is shadowed by agg except [5,20].
	spans := []Span{
		mkSpan("s", 0, "root", "", "iteration", 0, 100),
		mkSpan("s", 0, "up", "root", "upload", 5, 30),
		mkSpan("s", 0, "agg", "root", "aggregate", 20, 90),
		mkSpan("s", 0, "md", "agg", "merge_download", 30, 50),
	}
	segs := CriticalPath(spans)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Segments tile [t0, t1] exactly: chronological, contiguous, summing
	// to the end-to-end latency.
	if !segs[0].Start.Equal(spans[0].Start) || !segs[len(segs)-1].End.Equal(spans[0].End) {
		t.Fatalf("segments do not cover [t0,t1]: %v .. %v", segs[0].Start, segs[len(segs)-1].End)
	}
	for i := 1; i < len(segs); i++ {
		if !segs[i].Start.Equal(segs[i-1].End) {
			t.Fatalf("gap between segment %d and %d: %v != %v", i-1, i, segs[i-1].End, segs[i].Start)
		}
	}
	if got := sumSegments(segs); got != 100*time.Millisecond {
		t.Fatalf("segments sum to %v, want 100ms", got)
	}
	// The deepest span on the path appears: merge_download owns [30,50].
	var mdTime time.Duration
	for _, seg := range segs {
		if seg.Phase == "merge_download" {
			mdTime += seg.Duration()
		}
	}
	if mdTime != 20*time.Millisecond {
		t.Fatalf("merge_download on path for %v, want 20ms", mdTime)
	}
}

func TestCriticalPathGap(t *testing.T) {
	// Two roots with uncovered time between and before them.
	spans := []Span{
		mkSpan("s", 0, "a", "", "upload", 10, 20),
		mkSpan("s", 0, "b", "", "aggregate", 40, 60),
	}
	segs := CriticalPath(spans)
	var gap time.Duration
	for _, seg := range segs {
		if seg.Phase == GapPhase {
			gap += seg.Duration()
			if seg.SpanID != "" {
				t.Fatalf("gap segment carries a span ID: %+v", seg)
			}
		}
	}
	// [20,40] is untraced; total interval [10,60] = 50ms.
	if gap != 20*time.Millisecond {
		t.Fatalf("gap time = %v, want 20ms", gap)
	}
	if got := sumSegments(segs); got != 50*time.Millisecond {
		t.Fatalf("segments sum to %v, want 50ms", got)
	}
}

func TestCriticalPathAbsentParentTreatedAsRoot(t *testing.T) {
	// A span whose parent was never merged in (cross-process trace with a
	// missing file) must still contribute as a root.
	spans := []Span{
		mkSpan("s", 0, "m", "elsewhere", "merge", 0, 30),
	}
	segs := CriticalPath(spans)
	if len(segs) != 1 || segs[0].Phase != "merge" {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestBreakdownPhasesSumToLatency(t *testing.T) {
	spans := []Span{
		mkSpan("s", 2, "root", "", "iteration", 0, 100),
		mkSpan("s", 2, "up", "root", "upload", 5, 30),
		mkSpan("s", 2, "agg", "root", "aggregate", 20, 90),
		mkSpan("s", 2, "md", "agg", "merge_download", 30, 50),
	}
	spans[3].Bytes = 612
	b := Breakdown(spans)
	if b.Session != "s" || b.Iter != 2 || b.Spans != 4 {
		t.Fatalf("header: %+v", b)
	}
	if b.Latency != 100*time.Millisecond {
		t.Fatalf("latency = %v, want 100ms", b.Latency)
	}
	var phaseSum time.Duration
	var fracSum float64
	for _, p := range b.Phases {
		phaseSum += p.Duration
		fracSum += p.Fraction
	}
	if phaseSum != b.Latency {
		t.Fatalf("phases sum to %v, latency %v", phaseSum, b.Latency)
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Fatalf("fractions sum to %v, want 1", fracSum)
	}
	// Sorted by duration descending.
	for i := 1; i < len(b.Phases); i++ {
		if b.Phases[i].Duration > b.Phases[i-1].Duration {
			t.Fatalf("phases not sorted: %v", b.Phases)
		}
	}
	for _, p := range b.Phases {
		if p.Phase == "merge_download" && p.Bytes != 612 {
			t.Fatalf("merge_download bytes = %d, want 612", p.Bytes)
		}
	}
}

func TestBreakdownCountsBytesOncePerSpan(t *testing.T) {
	// agg's own time is split around its child into two segments; its
	// bytes must still be charged once.
	spans := []Span{
		mkSpan("s", 0, "agg", "", "aggregate", 0, 100),
		mkSpan("s", 0, "md", "agg", "merge_download", 40, 60),
	}
	spans[0].Bytes = 1000
	b := Breakdown(spans)
	for _, p := range b.Phases {
		if p.Phase == "aggregate" {
			if p.Segments != 2 {
				t.Fatalf("aggregate segments = %d, want 2 (split by child)", p.Segments)
			}
			if p.Bytes != 1000 {
				t.Fatalf("aggregate bytes = %d, want 1000 (counted once)", p.Bytes)
			}
		}
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := Breakdown(nil)
	if b.Spans != 0 || b.Latency != 0 || len(b.Phases) != 0 {
		t.Fatalf("empty breakdown: %+v", b)
	}
}

func TestBreakdownTraceGroups(t *testing.T) {
	spans := []Span{
		mkSpan("s", 1, "b1", "", "iteration", 0, 10),
		mkSpan("s", 0, "a1", "", "iteration", 0, 20),
		mkSpan("t", 0, "c1", "", "iteration", 0, 30),
	}
	out := BreakdownTrace(spans)
	if len(out) != 3 {
		t.Fatalf("breakdowns = %d, want 3", len(out))
	}
	// Sorted by session then iteration.
	want := []TraceKey{{"s", 0}, {"s", 1}, {"t", 0}}
	for i, b := range out {
		if (TraceKey{b.Session, b.Iter}) != want[i] {
			t.Fatalf("out[%d] = (%s,%d), want %v", i, b.Session, b.Iter, want[i])
		}
	}
	if out[0].Latency != 20*time.Millisecond || out[1].Latency != 10*time.Millisecond {
		t.Fatalf("latencies: %v, %v", out[0].Latency, out[1].Latency)
	}
}
