package obs

import (
	"testing"
	"time"
)

// FuzzBreakdown decodes arbitrary bytes into a span forest — overlapping
// intervals, gaps, dangling parents, self-parents, multiple traces — and
// checks the invariants Breakdown promises: the critical-path segments
// tile [start, end] in chronological order, per-phase durations are
// never negative, and they always sum exactly to the iteration latency.
func FuzzBreakdown(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 1, 5, 1, 1, 6, 12, 0, 2})
	f.Add([]byte{3, 3, 9, 0, 0, 0, 0, 1})
	f.Add([]byte{255, 0, 255, 255, 7, 7, 2, 3, 0, 200, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each 4-byte record is one span: start, end (swapped if needed,
		// so spans are well-formed), parent selector, name selector. The
		// parent selector picks an earlier span, the synthetic missing ID
		// "ghost", or none; the high bit routes the span to a second trace.
		const rec = 4
		n := len(data) / rec
		if n == 0 || n > 64 {
			return
		}
		base := time.Unix(0, 0).UTC()
		names := []string{"upload", "aggregate", "merge_download", "sync_wait"}
		ids := make([]string, n)
		spans := make([]Span, n)
		for i := 0; i < n; i++ {
			lo, hi := int64(data[i*rec]), int64(data[i*rec+1])
			if hi < lo {
				lo, hi = hi, lo
			}
			psel := data[i*rec+2]
			nsel := data[i*rec+3]
			iter := 0
			if psel&0x80 != 0 {
				iter = 1
			}
			ids[i] = string(rune('a' + i%26)) + string(rune('0'+i/26))
			parent := ""
			switch {
			case psel&0x7f == 0x7f:
				parent = "ghost" // present nowhere: treated as a root
			case psel&0x7f != 0 && i > 0:
				parent = ids[int(psel&0x7f)%i]
			}
			spans[i] = Span{
				Name:  names[int(nsel)%len(names)],
				Actor: "node",
				Context: SpanContext{
					Session: "fuzz", Iter: iter,
					SpanID: ids[i], Parent: parent,
				},
				Start: base.Add(time.Duration(lo) * time.Millisecond),
				End:   base.Add(time.Duration(hi) * time.Millisecond),
				Bytes: int64(nsel),
			}
		}

		for _, b := range BreakdownTrace(spans) {
			if b.Latency < 0 {
				t.Fatalf("negative latency %v", b.Latency)
			}
			// Segments tile [Start, End] exactly, in order.
			cursor := b.Start
			for i, seg := range b.Path {
				if !seg.Start.Equal(cursor) {
					t.Fatalf("segment %d starts at %v, want %v (gap or overlap)", i, seg.Start, cursor)
				}
				if seg.End.Before(seg.Start) {
					t.Fatalf("segment %d ends before it starts: %+v", i, seg)
				}
				cursor = seg.End
			}
			if len(b.Path) > 0 && !cursor.Equal(b.End) {
				t.Fatalf("path ends at %v, want %v", cursor, b.End)
			}
			// Phase durations are non-negative and sum to the latency.
			var sum time.Duration
			for _, p := range b.Phases {
				if p.Duration < 0 {
					t.Fatalf("negative phase duration: %+v", p)
				}
				sum += p.Duration
			}
			if sum != b.Latency {
				t.Fatalf("phase sum %v != latency %v (spans=%d)", sum, b.Latency, b.Spans)
			}
		}
	})
}
