package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// WriteJSON renders a snapshot of the registry as indented JSON — the
// machine-readable companion to WriteProm, used for diffable benchmark
// metric files.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// HandlerConfig wires the introspection endpoints.
type HandlerConfig struct {
	// Registry backs /metrics (Prometheus text) and /metrics.json.
	Registry *Registry
	// Events, when non-nil, backs /events with a JSON-marshalable value
	// (typically a recorder's recent trace events).
	Events func() any
	// Spans, when non-nil, backs /spans with a JSON-marshalable value
	// (typically a span collector's recent spans).
	Spans func() any
	// Scoreboard, when non-nil, backs /scoreboard with a JSON-marshalable
	// value (typically MergeSnapshots over the per-node split of the
	// registry).
	Scoreboard func() any
	// Alerts, when non-nil, backs /alerts with a JSON-marshalable value
	// (typically a Monitor's or watchdog's HealthStatus).
	Alerts func() any
	// Health, when non-nil, backs /healthz; an error answers 503.
	// Typically Readiness.Check when Readiness is also set.
	Health func() error
	// Readiness, when non-nil, backs /readyz with the per-component
	// check results; any failing check answers 503.
	Readiness *Readiness
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: profiling endpoints expose heap contents and should
	// be opted into per process.
	Pprof bool
}

// BuildInfo is the /buildinfo payload: enough to pin down exactly which
// binary produced a metrics snapshot or trace.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Main      string `json:"main,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// ReadBuildInfo collects the running binary's build identity from the
// embedded module and VCS metadata ("go build" stamps VCS settings for
// repository builds; test binaries have none, which leaves those fields
// empty).
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Main = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// NewHandler builds the live-introspection handler:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  JSON snapshot of the registry
//	/events        recent trace events as JSON
//	/spans         recent spans as JSON
//	/scoreboard    cluster resource scoreboard as JSON
//	/alerts        alert-rule states, sliding windows and stragglers as JSON
//	/buildinfo     go version and VCS identity of the binary
//	/healthz       liveness probe (composed readiness when wired)
//	/readyz        per-component readiness checks as JSON; 503 on failure
//	/debug/pprof/  runtime profiles (only with cfg.Pprof)
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ipls introspection\n\n/metrics\n/metrics.json\n/events\n/spans\n/scoreboard\n/alerts\n/buildinfo\n/healthz\n/readyz\n")
		if cfg.Pprof {
			fmt.Fprint(w, "/debug/pprof/\n")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any = []any{}
		if cfg.Events != nil {
			payload = cfg.Events()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any = []any{}
		if cfg.Spans != nil {
			payload = cfg.Spans()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/scoreboard", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any = Scoreboard{}
		if cfg.Scoreboard != nil {
			payload = cfg.Scoreboard()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any = HealthStatus{}
		if cfg.Alerts != nil {
			payload = cfg.Alerts()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		report := cfg.Readiness.Report()
		ready := true
		for _, res := range report {
			if !res.OK {
				ready = false
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Ready  bool          `json:"ready"`
			Checks []CheckResult `json:"checks"`
		}{ready, report}); err != nil && ready {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ReadBuildInfo()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// HTTPServer is a running introspection server.
type HTTPServer struct {
	// Addr is the bound address (useful with ":0" listens).
	Addr string
	srv  *http.Server
}

// StartHTTP binds addr and serves the introspection handler in the
// background. Close the returned server to stop it.
func StartHTTP(addr string, cfg HandlerConfig) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(cfg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &HTTPServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server, interrupting in-flight requests.
func (s *HTTPServer) Close() error { return s.srv.Close() }
