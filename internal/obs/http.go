package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
)

// WriteJSON renders a snapshot of the registry as indented JSON — the
// machine-readable companion to WriteProm, used for diffable benchmark
// metric files.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// HandlerConfig wires the introspection endpoints.
type HandlerConfig struct {
	// Registry backs /metrics (Prometheus text) and /metrics.json.
	Registry *Registry
	// Events, when non-nil, backs /events with a JSON-marshalable value
	// (typically a recorder's recent trace events).
	Events func() any
	// Health, when non-nil, backs /healthz; an error answers 503.
	Health func() error
}

// NewHandler builds the live-introspection handler:
//
//	/metrics       Prometheus text exposition of the registry
//	/metrics.json  JSON snapshot of the registry
//	/events        recent trace events as JSON
//	/healthz       liveness probe
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "ipls introspection\n\n/metrics\n/metrics.json\n/events\n/healthz\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Registry.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any = []any{}
		if cfg.Events != nil {
			payload = cfg.Events()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if cfg.Health != nil {
			if err := cfg.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// HTTPServer is a running introspection server.
type HTTPServer struct {
	// Addr is the bound address (useful with ":0" listens).
	Addr string
	srv  *http.Server
}

// StartHTTP binds addr and serves the introspection handler in the
// background. Close the returned server to stop it.
func StartHTTP(addr string, cfg HandlerConfig) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(cfg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &HTTPServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close stops the server, interrupting in-flight requests.
func (s *HTTPServer) Close() error { return s.srv.Close() }
