package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bytes_uploaded_total", "node", "s0").Add(42)
	h := NewHandler(HandlerConfig{
		Registry: reg,
		Events:   func() any { return []string{"e1", "e2"} },
	})

	code, body := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, `bytes_uploaded_total{node="s0"} 42`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	code, body = get(t, h, "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[`bytes_uploaded_total{node="s0"}`] != 42 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}

	code, body = get(t, h, "/events")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	var events []string
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "e1" {
		t.Fatalf("events = %v", events)
	}

	code, body = get(t, h, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, _ = get(t, h, "/nope")
	if code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestHandlerSpansAndBuildInfo(t *testing.T) {
	c := NewSpanCollector(0)
	c.EmitSpan(mkSpan("s", 0, "a", "", "upload", 0, 10))
	h := NewHandler(HandlerConfig{Spans: func() any { return c.Spans() }})

	code, body := get(t, h, "/spans")
	if code != 200 {
		t.Fatalf("/spans = %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "upload" {
		t.Fatalf("/spans = %v", spans)
	}

	code, body = get(t, h, "/buildinfo")
	if code != 200 {
		t.Fatalf("/buildinfo = %d", code)
	}
	var info BuildInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.GoVersion == "" || info.OS == "" || info.Arch == "" {
		t.Fatalf("/buildinfo missing runtime identity: %+v", info)
	}
}

func TestHandlerPprofGated(t *testing.T) {
	off := NewHandler(HandlerConfig{})
	if code, _ := get(t, off, "/debug/pprof/"); code != 404 {
		t.Fatalf("pprof without opt-in = %d, want 404", code)
	}
	on := NewHandler(HandlerConfig{Pprof: true})
	code, body := get(t, on, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Fatalf("pprof with opt-in = %d %q", code, body)
	}
	if code, _ := get(t, on, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d", code)
	}
	// The index page advertises pprof only when mounted.
	if _, body := get(t, on, "/"); !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("index does not list pprof: %q", body)
	}
	if _, body := get(t, off, "/"); strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("index lists pprof while disabled: %q", body)
	}
}

func TestHandlerHealthFailure(t *testing.T) {
	h := NewHandler(HandlerConfig{Health: func() error { return errors.New("directory down") }})
	code, body := get(t, h, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "directory down") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestHandlerWithoutEventsOrRegistry(t *testing.T) {
	h := NewHandler(HandlerConfig{})
	if code, _ := get(t, h, "/metrics"); code != 200 {
		t.Fatalf("/metrics without registry = %d", code)
	}
	code, body := get(t, h, "/events")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/events without source = %d %q", code, body)
	}
}

func TestStartHTTPServesOverTCP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	srv, err := StartHTTP("127.0.0.1:0", HandlerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("served metrics = %q", body)
	}
}
