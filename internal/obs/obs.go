// Package obs is the repo's observability substrate: a concurrent metrics
// registry (counters, gauges, fixed-bucket histograms), a bounded event
// ring, and HTTP introspection handlers. It is stdlib-only and imports
// nothing else from this module, so every layer — storage, netsim,
// transport, protocol core, commands — can depend on it.
//
// The paper's contribution is quantitative (iteration latency, bytes moved
// per aggregation, merge-and-download savings, §V), so the registry is the
// shared measurement substrate every experiment and optimisation reports
// against. Metric names are identical between the in-memory storage
// network, the discrete-event simulator and the TCP transport, which makes
// simulated and real runs directly comparable.
//
// All instruments are safe for concurrent use. A nil *Registry and nil
// instruments are valid no-ops, so instrumented code needs no "is
// observability on?" branches.
package obs

import (
	"fmt"
	"hash/maphash"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond phase timings to minute-long iterations.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing int64. The nil Counter discards.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
}

// Add increments the counter by n (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The nil Gauge discards.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. The nil
// Histogram discards.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	total  uint64
	name   string
	labels string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns how many values were observed (zero for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values (zero for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper limits; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the observed
// distribution by linear interpolation within the owning bucket, the
// same estimator as Prometheus's histogram_quantile. Values in the
// implicit +Inf bucket are reported as the highest finite bound (the
// estimate saturates there — pick wider buckets if that happens). An
// empty histogram reports 0.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	cum := uint64(0)
	for i, bound := range s.Bounds {
		prev := float64(cum)
		cum += s.Counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			if s.Counts[i] == 0 {
				return lower
			}
			return lower + (bound-lower)*(rank-prev)/float64(s.Counts[i])
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.total,
	}
}

// registryShards is the number of lock stripes in a Registry. Instrument
// keys hash onto shards, so concurrent lookups of unrelated metrics take
// unrelated locks; a power of two keeps the index a mask. 64 shards keep
// the contention of 10k concurrent writers off any single mutex while the
// empty registry stays small (a few KB of maps).
const registryShards = 64

// DefaultMaxCardinality is the default bound on the number of distinct
// instruments (name + label combination) a Registry will create. A
// misbehaving label (e.g. a per-request ID) otherwise grows the registry
// without bound; past the limit new identities are dropped and counted in
// DroppedMetricName instead. SetMaxCardinality overrides it.
const DefaultMaxCardinality = 1 << 16

// DroppedMetricName is the counter reporting instruments refused because
// the registry hit its cardinality limit. It is maintained outside the
// limit and appears in snapshots and Prometheus output once non-zero.
const DroppedMetricName = "obs_dropped_metrics_total"

// registryShard is one lock stripe: a mutex and the instrument maps of
// every key hashing onto it.
type registryShard struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Registry holds named instruments. Instruments are identified by name
// plus an optional set of label pairs; asking for the same identity twice
// returns the same instrument. The nil *Registry hands out nil (no-op)
// instruments, so components can be built uninstrumented at zero cost.
//
// Storage is lock-striped: keys hash onto registryShards independent
// mutex-guarded maps, so lookups from thousands of concurrent writers do
// not serialize on one lock. Total cardinality is bounded (see
// SetMaxCardinality); identities past the limit yield nil (no-op)
// instruments and are counted in DroppedMetricName.
type Registry struct {
	shards  [registryShards]registryShard
	size    atomic.Int64 // live instruments across all shards
	limit   atomic.Int64 // max instruments; <= 0 means unbounded
	dropped atomic.Int64 // identities refused at the limit
}

// NewRegistry creates an empty registry bounded at DefaultMaxCardinality.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].counters = make(map[string]*Counter)
		r.shards[i].gauges = make(map[string]*Gauge)
		r.shards[i].histograms = make(map[string]*Histogram)
	}
	r.limit.Store(DefaultMaxCardinality)
	return r
}

// SetMaxCardinality bounds the number of distinct instruments the registry
// will create (n <= 0 removes the bound). Existing instruments are kept
// even if they exceed a newly lowered limit; only new identities are
// refused, each refusal counted in DroppedMetricName.
func (r *Registry) SetMaxCardinality(n int) {
	if r == nil {
		return
	}
	r.limit.Store(int64(n))
}

// Cardinality reports how many distinct instruments the registry holds.
func (r *Registry) Cardinality() int {
	if r == nil {
		return 0
	}
	return int(r.size.Load())
}

// Dropped reports how many instrument identities were refused because the
// registry was at its cardinality limit.
func (r *Registry) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// shardSeed randomizes the shard hash per process; shard choice only has
// to be stable within one process.
var shardSeed = maphash.MakeSeed()

// shardFor picks the lock stripe owning key.
func (r *Registry) shardFor(key string) *registryShard {
	return &r.shards[maphash.String(shardSeed, key)&(registryShards-1)]
}

// admit reserves one instrument slot, or counts a drop and reports false
// when the registry is at its cardinality limit. The reserve-then-undo
// scheme keeps the bound exact under concurrent creation across shards.
func (r *Registry) admit() bool {
	limit := r.limit.Load()
	if limit > 0 && r.size.Add(1) > limit {
		r.size.Add(-1)
		r.dropped.Add(1)
		return false
	}
	if limit <= 0 {
		r.size.Add(1)
	}
	return true
}

// fmtLabels renders alternating key/value pairs as a canonical (sorted)
// Prometheus label block, e.g. {node="ipfs-00"}. Empty input yields "".
func fmtLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: label pairs must alternate key, value")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		pairs = append(pairs, kv{labelPairs[i], labelPairs[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter with the given name and
// label pairs. At the cardinality limit a new identity returns the nil
// (no-op) counter and is counted in DroppedMetricName.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	sh := r.shardFor(key)
	sh.mu.RLock()
	c, ok := sh.counters[key]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok = sh.counters[key]; ok {
		return c
	}
	if !r.admit() {
		return nil
	}
	c = &Counter{name: name, labels: labels}
	sh.counters[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge with the given name and
// label pairs. At the cardinality limit a new identity returns the nil
// (no-op) gauge and is counted in DroppedMetricName.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	sh := r.shardFor(key)
	sh.mu.RLock()
	g, ok := sh.gauges[key]
	sh.mu.RUnlock()
	if ok {
		return g
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if g, ok = sh.gauges[key]; ok {
		return g
	}
	if !r.admit() {
		return nil
	}
	g = &Gauge{name: name, labels: labels}
	sh.gauges[key] = g
	return g
}

// Histogram returns (creating if needed) the histogram with the given name
// and label pairs. buckets are ascending upper bounds; nil uses
// DefBuckets. The buckets of the first registration win. At the
// cardinality limit a new identity returns the nil (no-op) histogram and
// is counted in DroppedMetricName.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	sh := r.shardFor(key)
	sh.mu.RLock()
	h, ok := sh.histograms[key]
	sh.mu.RUnlock()
	if ok {
		return h
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if h, ok = sh.histograms[key]; ok {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be ascending", name))
	}
	if !r.admit() {
		return nil
	}
	h = &Histogram{name: name, labels: labels, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	sh.histograms[key] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument, keyed by
// name{labels}. It marshals deterministically (encoding/json sorts map
// keys), so snapshots are diffable across runs.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every instrument. Once any
// identity has been dropped at the cardinality limit, the drop count
// appears as the DroppedMetricName counter.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		counters := make(map[string]*Counter, len(sh.counters))
		for k, c := range sh.counters {
			counters[k] = c
		}
		gauges := make(map[string]*Gauge, len(sh.gauges))
		for k, g := range sh.gauges {
			gauges[k] = g
		}
		hists := make(map[string]*Histogram, len(sh.histograms))
		for k, h := range sh.histograms {
			hists[k] = h
		}
		sh.mu.RUnlock()
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
		for k, h := range hists {
			snap.Histograms[k] = h.snapshot()
		}
	}
	if d := r.dropped.Load(); d > 0 {
		snap.Counters[DroppedMetricName] = d
	}
	return snap
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # TYPE line per metric family, histograms with
// cumulative _bucket/_sum/_count series.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var counters []*Counter
	var gauges []*Gauge
	var hists []*Histogram
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, c := range sh.counters {
			counters = append(counters, c)
		}
		for _, g := range sh.gauges {
			gauges = append(gauges, g)
		}
		for _, h := range sh.histograms {
			hists = append(hists, h)
		}
		sh.mu.RUnlock()
	}
	if d := r.dropped.Load(); d > 0 {
		syn := &Counter{name: DroppedMetricName}
		syn.v.Store(d)
		counters = append(counters, syn)
	}

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].labels < gauges[j].name+gauges[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	lastType := ""
	typeLine := func(name, kind string) string {
		if name == lastType {
			return ""
		}
		lastType = name
		return fmt.Sprintf("# TYPE %s %s\n", name, kind)
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "%s%s%s %d\n", typeLine(c.name, "counter"), c.name, c.labels, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "%s%s%s %v\n", typeLine(g.name, "gauge"), g.name, g.labels, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		snap := h.snapshot()
		if _, err := fmt.Fprint(w, typeLine(h.name, "histogram")); err != nil {
			return err
		}
		cum := uint64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			if err := writeBucket(w, h, fmt.Sprintf("%v", bound), cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Bounds)]
		if err := writeBucket(w, h, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %v\n%s_count%s %d\n",
			h.name, h.labels, snap.Sum, h.name, h.labels, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket, splicing le into any
// existing label block.
func writeBucket(w io.Writer, h *Histogram, le string, cum uint64) error {
	labels := h.labels
	if labels == "" {
		labels = fmt.Sprintf("{le=%q}", le)
	} else {
		labels = strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labels, cum)
	return err
}
