// Package obs is the repo's observability substrate: a concurrent metrics
// registry (counters, gauges, fixed-bucket histograms), a bounded event
// ring, and HTTP introspection handlers. It is stdlib-only and imports
// nothing else from this module, so every layer — storage, netsim,
// transport, protocol core, commands — can depend on it.
//
// The paper's contribution is quantitative (iteration latency, bytes moved
// per aggregation, merge-and-download savings, §V), so the registry is the
// shared measurement substrate every experiment and optimisation reports
// against. Metric names are identical between the in-memory storage
// network, the discrete-event simulator and the TCP transport, which makes
// simulated and real runs directly comparable.
//
// All instruments are safe for concurrent use. A nil *Registry and nil
// instruments are valid no-ops, so instrumented code needs no "is
// observability on?" branches.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond phase timings to minute-long iterations.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing int64. The nil Counter discards.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
}

// Add increments the counter by n (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. The nil Gauge discards.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. The nil
// Histogram discards.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1
	sum    float64
	total  uint64
	name   string
	labels string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns how many values were observed (zero for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values (zero for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper limits; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.total,
	}
}

// Registry holds named instruments. Instruments are identified by name
// plus an optional set of label pairs; asking for the same identity twice
// returns the same instrument. The nil *Registry hands out nil (no-op)
// instruments, so components can be built uninstrumented at zero cost.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// fmtLabels renders alternating key/value pairs as a canonical (sorted)
// Prometheus label block, e.g. {node="ipfs-00"}. Empty input yields "".
func fmtLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: label pairs must alternate key, value")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		pairs = append(pairs, kv{labelPairs[i], labelPairs[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter with the given name and
// label pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: labels}
	r.counters[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge with the given name and
// label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: labels}
	r.gauges[key] = g
	return g
}

// Histogram returns (creating if needed) the histogram with the given name
// and label pairs. buckets are ascending upper bounds; nil uses
// DefBuckets. The buckets of the first registration win.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := fmtLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	h, ok := r.histograms[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[key]; ok {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be ascending", name))
	}
	h = &Histogram{name: name, labels: labels, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.histograms[key] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument, keyed by
// name{labels}. It marshals deterministically (encoding/json sorts map
// keys), so snapshots are diffable across runs.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		hists[k] = h
	}
	r.mu.RUnlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.snapshot()
	}
	return snap
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # TYPE line per metric family, histograms with
// cumulative _bucket/_sum/_count series.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].labels < gauges[j].name+gauges[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	lastType := ""
	typeLine := func(name, kind string) string {
		if name == lastType {
			return ""
		}
		lastType = name
		return fmt.Sprintf("# TYPE %s %s\n", name, kind)
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "%s%s%s %d\n", typeLine(c.name, "counter"), c.name, c.labels, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "%s%s%s %v\n", typeLine(g.name, "gauge"), g.name, g.labels, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		snap := h.snapshot()
		if _, err := fmt.Fprint(w, typeLine(h.name, "histogram")); err != nil {
			return err
		}
		cum := uint64(0)
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			if err := writeBucket(w, h, fmt.Sprintf("%v", bound), cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Bounds)]
		if err := writeBucket(w, h, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %v\n%s_count%s %d\n",
			h.name, h.labels, snap.Sum, h.name, h.labels, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket, splicing le into any
// existing label block.
func writeBucket(w io.Writer, h *Histogram, le string, cum uint64) error {
	labels := h.labels
	if labels == "" {
		labels = fmt.Sprintf("{le=%q}", le)
	} else {
		labels = strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labels, cum)
	return err
}
