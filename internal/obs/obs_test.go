package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bytes_uploaded_total", "node", "s0")
	c.Add(10)
	c.Inc()
	if got := c.Value(); got != 11 {
		t.Fatalf("counter = %d, want 11", got)
	}
	if r.Counter("bytes_uploaded_total", "node", "s0") != c {
		t.Fatal("same identity must return the same counter")
	}
	if r.Counter("bytes_uploaded_total", "node", "s1") == c {
		t.Fatal("different labels must return a different counter")
	}
	c.Add(-5) // negative deltas ignored: counters are monotonic
	if got := c.Value(); got != 11 {
		t.Fatalf("counter after negative add = %d, want 11", got)
	}

	g := r.Gauge("active_flows")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["latency_seconds"]
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive), 0.5 in le=1,
	// 5 in le=10, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if snap.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], n, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-105.65) > 1e-9 {
		t.Fatalf("sum = %v, want 105.65", snap.Sum)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes_uploaded_total", "node", "s1").Add(7)
	r.Counter("bytes_uploaded_total", "node", "s0").Add(3)
	r.Gauge("blocks_stored").Set(2)
	h := r.Histogram("agg_seconds", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(7)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bytes_uploaded_total counter",
		`bytes_uploaded_total{node="s0"} 3`,
		`bytes_uploaded_total{node="s1"} 7`,
		"# TYPE blocks_stored gauge",
		"blocks_stored 2",
		"# TYPE agg_seconds histogram",
		`agg_seconds_bucket{le="1"} 1`,
		`agg_seconds_bucket{le="5"} 1`,
		`agg_seconds_bucket{le="+Inf"} 2`,
		"agg_seconds_sum 7.5",
		"agg_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a family with several label sets appears once.
	if strings.Count(out, "# TYPE bytes_uploaded_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "b", "2", "a", "1")
	b := r.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create distinct instruments")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j) / 100)
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(i)
	}
	items := r.Items()
	if len(items) != 3 {
		t.Fatalf("ring holds %d items, want 3", len(items))
	}
	for i, want := range []int{2, 3, 4} {
		if items[i] != want {
			t.Fatalf("items = %v, want [2 3 4]", items)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRingConcurrency(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Add(j)
				if j%50 == 0 {
					r.Items()
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("len = %d, want 64", r.Len())
	}
	if r.Dropped() != 4*500-64 {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), 4*500-64)
	}
}
