package obs

import "testing"

func TestQuantileEmptySnapshot(t *testing.T) {
	var s HistogramSnapshot
	for _, p := range []float64{0, 0.5, 1} {
		if got := s.Quantile(p); got != 0 {
			t.Fatalf("Quantile(%v) on empty = %v, want 0", p, got)
		}
	}
	// Bounds but no observations.
	s = HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on zero-count = %v, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All 10 observations in the first bucket (0, 1]: interpolation runs
	// from the implicit lower bound 0 up to 1.
	s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{10, 0, 0}, Count: 10}
	if got := s.Quantile(0.5); got != 0.5 {
		t.Fatalf("Quantile(0.5) = %v, want 0.5 by interpolation", got)
	}
	if got := s.Quantile(1); got != 1 {
		t.Fatalf("Quantile(1) = %v, want bucket bound", got)
	}
}

func TestQuantileAllMassInInfBucket(t *testing.T) {
	// Every observation beyond the highest finite bound: the estimate
	// saturates at that bound instead of inventing +Inf.
	s := HistogramSnapshot{Bounds: []float64{1, 5}, Counts: []uint64{0, 0, 7}, Count: 7}
	for _, p := range []float64{0.1, 0.9, 1} {
		if got := s.Quantile(p); got != 5 {
			t.Fatalf("Quantile(%v) = %v, want saturation at 5", p, got)
		}
	}
}

func TestQuantileClamping(t *testing.T) {
	s := HistogramSnapshot{Bounds: []float64{1, 2, 4}, Counts: []uint64{2, 2, 2, 0}, Count: 6}
	// Out-of-range p clamps to [0, 1] instead of extrapolating.
	if got, want := s.Quantile(-3), s.Quantile(0); got != want {
		t.Fatalf("Quantile(-3) = %v, Quantile(0) = %v", got, want)
	}
	if got, want := s.Quantile(7), s.Quantile(1); got != want {
		t.Fatalf("Quantile(7) = %v, Quantile(1) = %v", got, want)
	}
	// q=0 sits at the distribution's floor, q=1 at its ceiling.
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
}
