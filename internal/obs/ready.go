package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Readiness composes named component health checks (storage reachable,
// directory syncing, round progressing, …) into one probe. Check plugs
// into HandlerConfig.Health so /healthz reflects the composite, while
// /readyz reports each component separately.

// CheckResult is the outcome of one component check.
type CheckResult struct {
	Name      string    `json:"name"`
	OK        bool      `json:"ok"`
	Err       string    `json:"error,omitempty"`
	CheckedAt time.Time `json:"checked_at"`
}

// Readiness runs registered component checks on demand. Safe for
// concurrent use. The nil *Readiness reports ready.
type Readiness struct {
	mu     sync.Mutex
	order  []string
	checks map[string]func() error
}

// NewReadiness creates an empty probe (ready until checks are added).
func NewReadiness() *Readiness {
	return &Readiness{checks: make(map[string]func() error)}
}

// Register adds (or replaces) a named component check. fn should return
// quickly; it runs on every probe.
func (r *Readiness) Register(name string, fn func() error) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.checks[name]; !ok {
		r.order = append(r.order, name)
	}
	r.checks[name] = fn
}

// snapshot copies the registered checks in registration order.
func (r *Readiness) snapshot() ([]string, []func() error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	fns := make([]func() error, len(names))
	for i, n := range names {
		fns[i] = r.checks[n]
	}
	return names, fns
}

// Report runs every check and returns per-component results in
// registration order.
func (r *Readiness) Report() []CheckResult {
	if r == nil {
		return nil
	}
	names, fns := r.snapshot()
	now := time.Now()
	out := make([]CheckResult, len(names))
	for i, fn := range fns {
		res := CheckResult{Name: names[i], OK: true, CheckedAt: now}
		if err := fn(); err != nil {
			res.OK = false
			res.Err = err.Error()
		}
		out[i] = res
	}
	return out
}

// Check runs every check and returns nil when all pass, or one error
// naming every failing component. It has the signature of
// HandlerConfig.Health.
func (r *Readiness) Check() error {
	if r == nil {
		return nil
	}
	var failed []string
	for _, res := range r.Report() {
		if !res.OK {
			failed = append(failed, fmt.Sprintf("%s: %s", res.Name, res.Err))
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("not ready: %s", strings.Join(failed, "; "))
}
