package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestReadinessComposition(t *testing.T) {
	r := NewReadiness()
	if err := r.Check(); err != nil {
		t.Fatalf("empty probe not ready: %v", err)
	}
	healthy := true
	r.Register("storage", func() error {
		if !healthy {
			return errors.New("2/5 nodes live")
		}
		return nil
	})
	r.Register("directory", func() error { return nil })
	if err := r.Check(); err != nil {
		t.Fatalf("all-healthy probe failed: %v", err)
	}
	healthy = false
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "storage: 2/5 nodes live") {
		t.Fatalf("failing check not named: %v", err)
	}
	rep := r.Report()
	if len(rep) != 2 || rep[0].Name != "storage" || rep[0].OK || rep[1].Name != "directory" || !rep[1].OK {
		t.Fatalf("report = %+v", rep)
	}
	var nilProbe *Readiness
	if nilProbe.Check() != nil || nilProbe.Report() != nil {
		t.Fatal("nil probe not a no-op")
	}
}

func TestAlertsAndReadyzEndpoints(t *testing.T) {
	mon := NewMonitor(MonitorConfig{Window: 30e9})
	if err := mon.AddRule(AlertRule{Name: "hot", Metric: MetricPhaseLatency, Stat: "max", Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	now := windowBase.Add(60e9)
	mon.Observe(now, MetricPhaseLatency, "upload", 2.0)
	mon.Evaluate(now)

	ready := NewReadiness()
	broken := errors.New("no heartbeat for 7s")
	ready.Register("round_progressing", func() error { return broken })

	srv, err := StartHTTP("127.0.0.1:0", HandlerConfig{
		Registry:  NewRegistry(),
		Alerts:    func() any { return mon.Status(now) },
		Health:    ready.Check,
		Readiness: ready,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/alerts"); code != 200 || !strings.Contains(body, `"hot"`) || !strings.Contains(body, `"firing"`) {
		t.Fatalf("/alerts = %d %s", code, body)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "round_progressing") || !strings.Contains(body, "no heartbeat") {
		t.Fatalf("/readyz = %d %s", code, body)
	}
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz = %d, want 503 behind failing readiness", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/alerts") || !strings.Contains(body, "/readyz") {
		t.Fatalf("index missing new endpoints: %d %s", code, body)
	}
	broken = nil
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("/readyz after recovery = %d %s", code, body)
	}
}
