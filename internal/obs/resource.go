package obs

import (
	"runtime/metrics"
)

// Resource attribution: CPU-time and allocation deltas sampled at span
// boundaries, so the span pipeline can say not only how long a phase
// took but where the compute and memory churn went. The paper's dominant
// cost is commitment computation (Fig. 3, linear in model size); wall
// clock alone cannot distinguish "waiting on the network" from "burning
// CPU in multiexp", and the ROADMAP's crypto-hot-path and scale work
// needs that attribution before it can shard or parallelize anything.
//
// Go exposes no public per-goroutine CPU or allocation counters, so
// RuntimeMeter reads process-wide totals: the delta over a span is an
// upper bound on the span's own use, and exact when the phase is the
// only thing running (single-threaded benchmarks, the commitment bench).
// Deterministic simulations instead charge modeled costs (see
// netsim.ModelCost), which keeps committed budget baselines exact.

// ResourceSample is a point-in-time reading of cumulative resource
// counters. Samples themselves are meaningless; subtract two to get the
// cost of the interval between them.
type ResourceSample struct {
	// CPUNanos is cumulative CPU time (user+system) in nanoseconds.
	CPUNanos int64 `json:"cpu_ns"`
	// AllocBytes is cumulative heap allocation in bytes.
	AllocBytes int64 `json:"alloc_bytes"`
}

// Sub returns the interval cost from earlier sample old to s, clamping
// negative deltas (counter resets, cross-process confusion) to zero.
func (s ResourceSample) Sub(old ResourceSample) ResourceSample {
	d := ResourceSample{CPUNanos: s.CPUNanos - old.CPUNanos, AllocBytes: s.AllocBytes - old.AllocBytes}
	if d.CPUNanos < 0 {
		d.CPUNanos = 0
	}
	if d.AllocBytes < 0 {
		d.AllocBytes = 0
	}
	return d
}

// IsZero reports whether the sample carries no readings.
func (s ResourceSample) IsZero() bool { return s.CPUNanos == 0 && s.AllocBytes == 0 }

// ResourceMeter samples cumulative resource counters. Implementations
// must be safe for concurrent use; Sample is called on span open and
// close, so it must be cheap (no stop-the-world).
type ResourceMeter interface {
	Sample() ResourceSample
}

// allocSample reads cumulative heap allocation via runtime/metrics —
// unlike runtime.ReadMemStats this does not stop the world, so it is
// safe on span hot paths.
var allocSample = func() func() int64 {
	const name = "/gc/heap/allocs:bytes"
	sample := []metrics.Sample{{Name: name}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindBad {
		return func() int64 { return 0 }
	}
	return func() int64 {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		return int64(s[0].Value.Uint64())
	}
}()

// RuntimeMeter meters the running process: CPU time from the OS rusage
// counters (zero on platforms without them) and allocation from the Go
// runtime. Process-wide, so span deltas are upper bounds under
// concurrency and exact for single-threaded phases.
type RuntimeMeter struct{}

var _ ResourceMeter = RuntimeMeter{}

// Sample reads the process counters.
func (RuntimeMeter) Sample() ResourceSample {
	return ResourceSample{CPUNanos: processCPUNanos(), AllocBytes: allocSample()}
}
