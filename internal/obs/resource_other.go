//go:build !unix

package obs

// processCPUNanos is unavailable without rusage; CPU attribution reads
// as zero and only allocation deltas are reported.
func processCPUNanos() int64 { return 0 }
