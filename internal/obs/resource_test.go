package obs

import (
	"strings"
	"testing"
	"time"
)

func TestResourceSampleSub(t *testing.T) {
	a := ResourceSample{CPUNanos: 100, AllocBytes: 1000}
	b := ResourceSample{CPUNanos: 150, AllocBytes: 1800}
	d := b.Sub(a)
	if d.CPUNanos != 50 || d.AllocBytes != 800 {
		t.Fatalf("Sub = %+v, want {50 800}", d)
	}
	// Counter resets clamp to zero instead of going negative.
	d = a.Sub(b)
	if d.CPUNanos != 0 || d.AllocBytes != 0 {
		t.Fatalf("Sub after reset = %+v, want zeros", d)
	}
	if !d.IsZero() {
		t.Fatal("clamped delta should be zero")
	}
}

func TestRuntimeMeterMonotonicAlloc(t *testing.T) {
	m := RuntimeMeter{}
	before := m.Sample()
	// Allocate something the compiler cannot elide.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	after := m.Sample()
	if after.AllocBytes < before.AllocBytes {
		t.Fatalf("alloc counter went backwards: %d -> %d", before.AllocBytes, after.AllocBytes)
	}
	if d := after.Sub(before); d.AllocBytes < 64*4096 {
		t.Fatalf("alloc delta %d bytes, want >= %d", d.AllocBytes, 64*4096)
	}
	_ = sink
	if after.CPUNanos < before.CPUNanos {
		t.Fatalf("cpu counter went backwards: %d -> %d", before.CPUNanos, after.CPUNanos)
	}
}

// TestBreakdownFoldsResources checks the critical-path fold carries span
// CPU/alloc deltas into the per-phase rows, counted once per span.
func TestBreakdownFoldsResources(t *testing.T) {
	t0 := time.Unix(0, 0)
	ctx := SpanContext{Session: "s", Iter: 1, SpanID: "root"}
	spans := []Span{
		{
			Name: "iteration", Context: ctx,
			Start: t0, End: t0.Add(100 * time.Millisecond),
			CPUNanos: 10_000, AllocBytes: 4096,
		},
		{
			Name: "commit", Context: SpanContext{Session: "s", Iter: 1, SpanID: "c1", Parent: "root"},
			Start: t0.Add(10 * time.Millisecond), End: t0.Add(60 * time.Millisecond),
			CPUNanos: 40_000, AllocBytes: 65536,
		},
	}
	b := Breakdown(spans)
	byPhase := map[string]PhaseDuration{}
	for _, p := range b.Phases {
		byPhase[p.Phase] = p
	}
	if got := byPhase["commit"]; got.CPUNanos != 40_000 || got.AllocBytes != 65536 {
		t.Fatalf("commit phase resources = %+v", got)
	}
	if got := byPhase["iteration"]; got.CPUNanos != 10_000 || got.AllocBytes != 4096 {
		t.Fatalf("iteration phase resources = %+v", got)
	}
	// And the budget fold exposes them as the cpu/alloc gate dimensions.
	sb := NewScenarioBudget([]IterationBreakdown{b})
	if got := sb.Phases["commit"]; got.CPU != 40_000*time.Nanosecond || got.Alloc != 65536 {
		t.Fatalf("commit budget = %+v", got)
	}
	if sb.Latency.CPU != 50_000*time.Nanosecond || sb.Latency.Alloc != 4096+65536 {
		t.Fatalf("latency budget = %+v", sb.Latency)
	}
	// A grown alloc in one phase trips the gate on that phase's alloc row.
	worse := sb
	worse.Phases = map[string]PhaseBudget{}
	for k, v := range sb.Phases {
		worse.Phases[k] = v
	}
	p := worse.Phases["commit"]
	p.Alloc *= 3
	worse.Phases["commit"] = p
	r := CompareBudget("bench", sb, worse, 0.5)
	if r.OK() {
		t.Fatal("tripled commit alloc must fail the gate")
	}
	found := false
	for _, v := range r.Violations() {
		if v == "" {
			continue
		}
		found = found || (strings.Contains(v, "commit") && strings.Contains(v, "alloc"))
	}
	if !found {
		t.Fatalf("violations do not name commit/alloc: %v", r.Violations())
	}
}
