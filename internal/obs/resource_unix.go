//go:build unix

package obs

import "syscall"

// processCPUNanos reads the process's cumulative user+system CPU time
// from getrusage(2).
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
