package obs

import "sync"

// Ring is a bounded, concurrency-safe buffer of recent items (the backing
// store for the /events introspection endpoint). When full, the oldest
// item is evicted; Dropped reports how many were lost that way.
type Ring struct {
	mu      sync.Mutex
	buf     []any
	start   int // index of the oldest item once the ring is full
	full    bool
	dropped uint64
}

// NewRing creates a ring holding at most capacity items (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]any, 0, capacity)}
}

// Add appends an item, evicting the oldest when the ring is full.
func (r *Ring) Add(v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		r.buf = append(r.buf, v)
		r.full = len(r.buf) == cap(r.buf)
		if r.full {
			r.buf = r.buf[:cap(r.buf)]
		}
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Items returns the retained items, oldest first.
func (r *Ring) Items() []any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]any, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// Dropped reports how many items were evicted to make room.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of retained items.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
