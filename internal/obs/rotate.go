package obs

import (
	"fmt"
	"os"
	"sync"
)

// RotatingFile is an io.WriteCloser for append-only line-oriented sinks
// (JSONL spans and traces) that caps file growth: when the current file
// would exceed maxBytes it is renamed to path+".1" (replacing any
// previous rotation) and a fresh file is started. Long-lived daemon runs
// therefore hold at most ~2×maxBytes of sink output on disk.
//
// Rotation only happens at line boundaries. The upstream writers go
// through bufio, whose flushes can split a JSON line across Write calls,
// so RotatingFile buffers any trailing partial line internally and only
// counts and rotates around complete lines — both the rotated and the
// live file always end with a full JSON document.
type RotatingFile struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	maxBytes int64
	size     int64
	partial  []byte // trailing bytes of an incomplete line
	rotated  int
}

// NewRotatingFile creates (truncating) path. maxBytes <= 0 disables
// rotation — the file grows without bound, exactly like os.Create.
func NewRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RotatingFile{f: f, path: path, maxBytes: maxBytes}, nil
}

// Write appends p, rotating before complete lines that would push the
// current file past the cap.
func (w *RotatingFile) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.maxBytes <= 0 {
		n, err := w.f.Write(p)
		w.size += int64(n)
		return n, err
	}
	buf := append(w.partial, p...)
	// Split off the trailing partial line; everything before cut is
	// whole lines and safe to rotate around.
	cut := -1
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i] == '\n' {
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		w.partial = buf
		return len(p), nil
	}
	lines := buf[:cut]
	w.partial = append([]byte(nil), buf[cut:]...)
	if w.size > 0 && w.size+int64(len(lines)) > w.maxBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(lines); err != nil {
		return 0, err
	}
	w.size += int64(len(lines))
	return len(p), nil
}

// rotate renames the live file to path+".1" and reopens path fresh.
// Caller holds w.mu.
func (w *RotatingFile) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("obs: rotate %s: %w", w.path, err)
	}
	f, err := os.Create(w.path)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	w.rotated++
	return nil
}

// Rotations reports how many times the file has been rotated.
func (w *RotatingFile) Rotations() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotated
}

// Close flushes any buffered partial line and closes the file.
func (w *RotatingFile) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.partial) > 0 {
		if _, err := w.f.Write(w.partial); err != nil {
			return err
		}
		w.partial = nil
	}
	return w.f.Close()
}
