package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRotatingFileUnboundedByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	w, err := NewRotatingFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 4096) + "\n"
	for i := 0; i < 10; i++ {
		if _, err := w.Write([]byte(big)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Rotations() != 0 {
		t.Fatalf("rotations = %d with cap off", w.Rotations())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 10*len(big) {
		t.Fatalf("file size = %d, want %d", len(data), 10*len(big))
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("rotation file exists with cap off")
	}
}

func TestRotatingFileCapsAtLineBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	w, err := NewRotatingFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.Repeat("y", 255) + "\n" // 256 bytes per line
	// Feed lines split mid-line across Write calls, the way bufio
	// flushes split JSON documents.
	var all []byte
	for i := 0; i < 40; i++ {
		all = append(all, line...)
	}
	for off := 0; off < len(all); off += 100 {
		end := off + 100
		if end > len(all) {
			end = len(all)
		}
		if _, err := w.Write(all[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Rotations() == 0 {
		t.Fatal("no rotation despite exceeding the cap")
	}
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 || data[len(data)-1] != '\n' {
			t.Fatalf("%s does not end at a line boundary", p)
		}
		for _, l := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
			if len(l) != 255 {
				t.Fatalf("%s holds a torn line of %d bytes", p, len(l))
			}
		}
	}
}

func TestRotatingFileSpanJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	rf, err := NewRotatingFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w := NewSpanJSONLWriter(rf)
	base := time.Unix(0, 0).UTC()
	for i := 0; i < 5; i++ {
		w.EmitSpan(Span{
			Name: "upload", Actor: "trainer-00",
			Context: SpanContext{Session: "s", SpanID: NewSpanID()},
			Start:   base, End: base.Add(time.Second),
		})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := ReadSpanJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 || spans[0].Name != "upload" {
		t.Fatalf("spans = %+v", spans)
	}
}
