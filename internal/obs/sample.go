package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpanSampler is a SpanSink decorator that forwards only a sample of the
// span stream to the wrapped sink, for long runs where full traces are too
// heavy. Sampling is trace-coherent: a trace (session, iter) is kept or
// dropped whole, never split, so anything downstream that folds spans into
// per-trace breakdowns (BreakdownTrace, iplstrace, the bench gate) sees
// complete traces only — a partially sampled trace would silently produce
// a wrong critical path. Two complementary selections compose:
//
//   - head sampling: a seeded hash of the trace key admits a fraction
//     (rate) of traces up front, preserving an unbiased cross-section.
//     The decision is a pure function of (key, seed), so per-node
//     samplers of a distributed run configured with the same seed agree
//     on which traces pass even though each sees different spans;
//   - tail sampling: the slowest N traces seen so far — ranked by their
//     slowest span — are buffered and emitted whole on Flush, so the
//     outliers that explain a slow run always survive, exactly the traces
//     random sampling is most likely to miss.
//
// A trace admitted by the head is never buffered again by the tail, so
// nothing is emitted twice. Flush must be called at the end of the run to
// release the tail; a trace evicted from the tail buffer is excluded
// permanently (a late span cannot resurrect it — its early spans are
// already gone, and emitting the remainder would be a partial trace).
type SpanSampler struct {
	mu      sync.Mutex
	inner   SpanSink
	rate    float64
	slowest int
	seed    int64
	seen    int
	passed  int
	// tail buffers candidate slow traces whole; dropped records traces
	// evicted from (or never admitted to) the buffer, permanently.
	tail    map[TraceKey]*tailTrace
	dropped map[TraceKey]bool
}

// tailTrace is one buffered candidate: all its spans in arrival order and
// the slowest span duration seen, which ranks the trace.
type tailTrace struct {
	spans []Span
	max   time.Duration
}

var _ SpanSink = (*SpanSampler)(nil)

// NewSpanSampler builds a sampler forwarding to inner. slowest <= 0
// disables tail sampling; rate <= 0 disables head sampling (rate >= 1
// forwards everything). The seed makes the head selection reproducible
// and coherent across samplers (0 uses a fixed default, still
// deterministic).
func NewSpanSampler(inner SpanSink, slowest int, rate float64, seed int64) *SpanSampler {
	if seed == 0 {
		seed = 1
	}
	return &SpanSampler{
		inner:   inner,
		rate:    rate,
		slowest: slowest,
		seed:    seed,
		tail:    make(map[TraceKey]*tailTrace),
		dropped: make(map[TraceKey]bool),
	}
}

// headPass decides whether the trace passes head sampling — a pure
// function of (key, seed), identical across processes.
func (s *SpanSampler) headPass(key TraceKey) bool {
	if s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d", s.seed, key.Session, key.Iter)
	// FNV mixes short sequential keys poorly, so finish with a
	// splitmix64-style avalanche before mapping to [0, 1).
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return u < s.rate
}

// EmitSpan applies both sampling rules to the span's trace.
func (s *SpanSampler) EmitSpan(sp Span) {
	key := TraceKey{Session: sp.Context.Session, Iter: sp.Context.Iter}
	s.mu.Lock()
	s.seen++
	if s.headPass(key) {
		s.passed++
		s.mu.Unlock()
		s.inner.EmitSpan(sp)
		return
	}
	if s.slowest <= 0 || s.dropped[key] {
		s.mu.Unlock()
		return
	}
	if t, ok := s.tail[key]; ok {
		t.spans = append(t.spans, sp)
		if d := sp.Duration(); d > t.max {
			t.max = d
		}
		s.mu.Unlock()
		return
	}
	// New candidate trace. If the buffer is full, it competes with the
	// cheapest buffered trace; the loser is excluded permanently.
	if len(s.tail) >= s.slowest {
		var victim TraceKey
		first := true
		for k, t := range s.tail {
			if first || t.max < s.tail[victim].max ||
				(t.max == s.tail[victim].max && less(k, victim)) {
				victim, first = k, false
			}
		}
		if sp.Duration() <= s.tail[victim].max {
			s.dropped[key] = true
			s.mu.Unlock()
			return
		}
		delete(s.tail, victim)
		s.dropped[victim] = true
	}
	s.tail[key] = &tailTrace{spans: []Span{sp}, max: sp.Duration()}
	s.mu.Unlock()
}

// less orders trace keys for deterministic victim selection on ties.
func less(a, b TraceKey) bool {
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	return a.Iter < b.Iter
}

// Flush emits the buffered slow traces whole, slowest trace last, spans in
// arrival order within each trace. The buffer is cleared, so a sampler can
// be flushed once per run segment; spans arriving after Flush for an
// already-emitted trace start a fresh buffer, so Flush belongs at the end
// of the run.
func (s *SpanSampler) Flush() {
	s.mu.Lock()
	traces := make([]*tailTrace, 0, len(s.tail))
	for _, t := range s.tail {
		traces = append(traces, t)
	}
	s.tail = make(map[TraceKey]*tailTrace)
	s.mu.Unlock()
	sort.SliceStable(traces, func(i, j int) bool {
		if traces[i].max != traces[j].max {
			return traces[i].max < traces[j].max
		}
		ki := TraceKey{Session: traces[i].spans[0].Context.Session, Iter: traces[i].spans[0].Context.Iter}
		kj := TraceKey{Session: traces[j].spans[0].Context.Session, Iter: traces[j].spans[0].Context.Iter}
		return less(ki, kj)
	})
	for _, t := range traces {
		for _, sp := range t.spans {
			s.inner.EmitSpan(sp)
		}
	}
}

// Stats reports how many spans were seen and how many passed the head
// sample so far (the tail adds whole traces on top at Flush).
func (s *SpanSampler) Stats() (seen, passed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen, s.passed
}

// ParseSpanSample parses a -span-sample flag value of the form
// "slowest=N,rate=F". Either part may be omitted: "slowest=20" keeps only
// the 20 slowest traces, "rate=0.1" only a hash-selected tenth of traces,
// and combining them keeps both selections. "off" or an empty string
// disables sampling entirely, returning slowest=0 and rate=1 (forward
// everything); callers should skip the sampler in that case.
func ParseSpanSample(s string) (slowest int, rate float64, err error) {
	if s == "" || s == "off" {
		return 0, 1, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("obs: span sample %q: want key=value, got %q", s, part)
		}
		switch key {
		case "slowest":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, 0, fmt.Errorf("obs: span sample %q: slowest needs a non-negative integer, got %q", s, val)
			}
			slowest = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, 0, fmt.Errorf("obs: span sample %q: rate needs a fraction in [0,1], got %q", s, val)
			}
			rate = f
		default:
			return 0, 0, fmt.Errorf("obs: span sample %q: unknown key %q", s, key)
		}
	}
	return slowest, rate, nil
}
