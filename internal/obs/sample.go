package obs

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// SpanSampler is a SpanSink decorator that forwards only a sample of the
// span stream to the wrapped sink, for long runs where full traces are too
// heavy. Two complementary selections compose:
//
//   - head sampling: a seeded random fraction (rate) of spans passes
//     through immediately, preserving an unbiased cross-section;
//   - tail sampling: the slowest N spans seen so far are retained and
//     emitted on Flush, so the outliers that explain a slow run always
//     survive — exactly the spans random sampling is most likely to miss.
//
// A span picked by both rules is emitted once. Flush must be called at the
// end of the run to release the tail.
type SpanSampler struct {
	mu      sync.Mutex
	inner   SpanSink
	rate    float64
	slowest int
	rng     *rand.Rand
	tail    spanHeap
	seen    int
	passed  int
}

var _ SpanSink = (*SpanSampler)(nil)

// NewSpanSampler builds a sampler forwarding to inner. slowest <= 0
// disables tail sampling; rate <= 0 disables head sampling (rate >= 1
// forwards everything). The seed makes the random selection reproducible
// (0 uses a fixed default, still deterministic).
func NewSpanSampler(inner SpanSink, slowest int, rate float64, seed int64) *SpanSampler {
	if seed == 0 {
		seed = 1
	}
	return &SpanSampler{
		inner:   inner,
		rate:    rate,
		slowest: slowest,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// EmitSpan applies both sampling rules to the span.
func (s *SpanSampler) EmitSpan(sp Span) {
	s.mu.Lock()
	s.seen++
	pass := s.rate > 0 && (s.rate >= 1 || s.rng.Float64() < s.rate)
	if pass {
		s.passed++
	}
	if s.slowest > 0 {
		entry := tailEntry{span: sp, forwarded: pass}
		if len(s.tail) < s.slowest {
			heap.Push(&s.tail, entry)
		} else if sp.Duration() > s.tail[0].span.Duration() {
			s.tail[0] = entry
			heap.Fix(&s.tail, 0)
		}
	}
	s.mu.Unlock()
	if pass {
		s.inner.EmitSpan(sp)
	}
}

// Flush emits the retained slowest spans that the random fraction did not
// already forward, slowest last. The tail is cleared, so a sampler can be
// flushed once per run segment.
func (s *SpanSampler) Flush() {
	s.mu.Lock()
	entries := make([]tailEntry, 0, len(s.tail))
	for len(s.tail) > 0 {
		entries = append(entries, heap.Pop(&s.tail).(tailEntry))
	}
	s.mu.Unlock()
	for _, e := range entries {
		if !e.forwarded {
			s.inner.EmitSpan(e.span)
		}
	}
}

// Stats reports how many spans were seen and how many passed the head
// sample so far (the tail adds up to `slowest` more at Flush).
func (s *SpanSampler) Stats() (seen, passed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen, s.passed
}

// tailEntry is one retained slow span; forwarded records whether head
// sampling already emitted it.
type tailEntry struct {
	span      Span
	forwarded bool
}

// spanHeap is a min-heap by duration, so the root is the cheapest retained
// span — the one to evict when a slower span arrives.
type spanHeap []tailEntry

func (h spanHeap) Len() int            { return len(h) }
func (h spanHeap) Less(i, j int) bool  { return h[i].span.Duration() < h[j].span.Duration() }
func (h spanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spanHeap) Push(x interface{}) { *h = append(*h, x.(tailEntry)) }
func (h *spanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ParseSpanSample parses a -span-sample flag value of the form
// "slowest=N,rate=F". Either part may be omitted: "slowest=20" keeps only
// the 20 slowest spans, "rate=0.1" only a random tenth, and combining
// them keeps both selections. "off" or an empty string disables sampling
// entirely, returning slowest=0 and rate=1 (forward everything); callers
// should skip the sampler in that case.
func ParseSpanSample(s string) (slowest int, rate float64, err error) {
	if s == "" || s == "off" {
		return 0, 1, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, fmt.Errorf("obs: span sample %q: want key=value, got %q", s, part)
		}
		switch key {
		case "slowest":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, 0, fmt.Errorf("obs: span sample %q: slowest needs a non-negative integer, got %q", s, val)
			}
			slowest = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, 0, fmt.Errorf("obs: span sample %q: rate needs a fraction in [0,1], got %q", s, val)
			}
			rate = f
		default:
			return 0, 0, fmt.Errorf("obs: span sample %q: unknown key %q", s, key)
		}
	}
	return slowest, rate, nil
}
