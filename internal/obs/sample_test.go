package obs

import (
	"fmt"
	"testing"
	"time"
)

// traceSpans builds one small trace (root + child + grandchild) whose
// slowest span is d. Iter distinguishes traces within a session.
func traceSpans(session string, iter int, d time.Duration) []Span {
	base := time.Unix(int64(iter), 0).UTC()
	id := func(n string) string { return fmt.Sprintf("%s-%d-%s", session, iter, n) }
	mk := func(n, parent string, start time.Time, dur time.Duration) Span {
		return Span{
			Name: n,
			Context: SpanContext{
				Session: session, Iter: iter,
				SpanID: id(n), Parent: parent,
			},
			Start: start,
			End:   start.Add(dur),
		}
	}
	return []Span{
		mk("iteration", "", base, d),
		mk("upload", id("iteration"), base, d/2),
		mk("aggregate", id("upload"), base, d/4),
	}
}

func TestSpanSamplerKeepsSlowestTracesWhole(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 3, 0, 1)
	// Ten traces with scrambled root durations 10ms..100ms, spans
	// interleaved across traces the way concurrent actors emit them.
	var all [][]Span
	for i := 0; i < 10; i++ {
		d := time.Duration((i*7)%10+1) * 10 * time.Millisecond
		all = append(all, traceSpans("run", i, d))
	}
	for level := 0; level < 3; level++ {
		for _, tr := range all {
			s.EmitSpan(tr[level])
		}
	}
	if got := len(sink.Spans()); got != 0 {
		t.Fatalf("tail sampling leaked %d spans before Flush", got)
	}
	s.Flush()
	spans := sink.Spans()
	if len(spans) != 9 {
		t.Fatalf("retained %d spans, want 9 (3 whole traces of 3)", len(spans))
	}
	// Each retained trace is complete, and only slowest traces survive.
	byIter := map[int]int{}
	for _, sp := range spans {
		byIter[sp.Context.Iter]++
	}
	for iter, n := range byIter {
		if n != 3 {
			t.Fatalf("trace iter %d retained with %d of 3 spans (partial trace)", iter, n)
		}
		d := all[iter][0].Duration()
		if d < 80*time.Millisecond {
			t.Fatalf("trace iter %d (slowest span %v) is not among the slowest three", iter, d)
		}
	}
	// Slowest trace last — tail ordering mirrors "most interesting at the end".
	last := spans[len(spans)-1]
	if all[last.Context.Iter][0].Duration() != 100*time.Millisecond {
		t.Fatalf("last flushed trace is iter %d, want the 100ms one", last.Context.Iter)
	}
	// Flush drained the tail; a second flush emits nothing.
	s.Flush()
	if got := len(sink.Spans()); got != 9 {
		t.Fatalf("second Flush re-emitted spans: %d", got)
	}
}

func TestSpanSamplerHeadIsTraceCoherent(t *testing.T) {
	const traces = 200
	run := func(seed int64) map[int]int {
		var sink SpanCollector
		s := NewSpanSampler(&sink, 0, 0.2, seed)
		for i := 0; i < traces; i++ {
			for _, sp := range traceSpans("run", i, 10*time.Millisecond) {
				s.EmitSpan(sp)
			}
		}
		got := map[int]int{}
		for _, sp := range sink.Spans() {
			got[sp.Context.Iter]++
		}
		return got
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == traces {
		t.Fatalf("rate 0.2 passed %d of %d traces", len(a), traces)
	}
	// Coherent: a passing trace passes with all its spans.
	for iter, n := range a {
		if n != 3 {
			t.Fatalf("trace %d passed with %d of 3 spans (partial trace)", iter, n)
		}
	}
	// Deterministic: same seed, same trace set.
	if len(a) != len(b) {
		t.Fatalf("same seed passed %d vs %d traces", len(a), len(b))
	}
	for iter := range a {
		if _, ok := b[iter]; !ok {
			t.Fatalf("same seed diverged on trace %d", iter)
		}
	}
	// Roughly a fifth should pass (hash-uniform, wide tolerance).
	if len(a) < 20 || len(a) > 80 {
		t.Fatalf("rate 0.2 passed %d of %d traces, far from expectation", len(a), traces)
	}
	// A different seed picks a different set (overwhelmingly likely).
	c := run(1234)
	same := 0
	for iter := range a {
		if _, ok := c[iter]; ok {
			same++
		}
	}
	if same == len(a) && len(a) == len(c) {
		t.Fatal("different seeds selected the identical trace set")
	}
}

// TestSpanSamplerCrossProcessAgreement: two samplers with the same seed,
// each seeing a different slice of the same traces (per-node span files of
// a distributed run), admit the same traces — so the merged sampled stream
// still has whole traces only.
func TestSpanSamplerCrossProcessAgreement(t *testing.T) {
	var sinkA, sinkB SpanCollector
	a := NewSpanSampler(&sinkA, 0, 0.3, 42)
	b := NewSpanSampler(&sinkB, 0, 0.3, 42)
	for i := 0; i < 100; i++ {
		tr := traceSpans("run", i, 10*time.Millisecond)
		a.EmitSpan(tr[0]) // node A records the root...
		b.EmitSpan(tr[1]) // ...node B the children
		b.EmitSpan(tr[2])
	}
	passedA := map[int]bool{}
	for _, sp := range sinkA.Spans() {
		passedA[sp.Context.Iter] = true
	}
	passedB := map[int]bool{}
	for _, sp := range sinkB.Spans() {
		passedB[sp.Context.Iter] = true
	}
	if len(passedA) == 0 {
		t.Fatal("no traces passed")
	}
	for iter := range passedA {
		if !passedB[iter] {
			t.Fatalf("node A passed trace %d but node B did not", iter)
		}
	}
	for iter := range passedB {
		if !passedA[iter] {
			t.Fatalf("node B passed trace %d but node A did not", iter)
		}
	}
}

func TestSpanSamplerDoesNotDoubleEmit(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 5, 1, 1) // rate 1: every trace head-sampled
	for i := 0; i < 20; i++ {
		for _, sp := range traceSpans("run", i, time.Duration(i+1)*time.Millisecond) {
			s.EmitSpan(sp)
		}
	}
	s.Flush()
	if got := len(sink.Spans()); got != 60 {
		t.Fatalf("got %d spans, want 60 (no duplicates from the tail)", got)
	}
	seen, passed := s.Stats()
	if seen != 60 || passed != 60 {
		t.Fatalf("stats = (%d, %d), want (60, 60)", seen, passed)
	}
}

// TestSpanSamplerBreakdownsAreComplete is the contract the bench gate and
// iplstrace rely on: folding a sampled stream through BreakdownTrace
// yields only complete per-trace breakdowns — every surviving trace has
// all its spans, so phase durations still sum to the latency.
func TestSpanSamplerBreakdownsAreComplete(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 2, 0.5, 9)
	want := map[int]int{}
	for i := 0; i < 40; i++ {
		tr := traceSpans("run", i, time.Duration((i*13)%40+1)*time.Millisecond)
		want[i] = len(tr)
		for _, sp := range tr {
			s.EmitSpan(sp)
		}
	}
	s.Flush()
	breakdowns := BreakdownTrace(sink.Spans())
	if len(breakdowns) == 0 {
		t.Fatal("nothing sampled")
	}
	for _, b := range breakdowns {
		if b.Spans != want[b.Iter] {
			t.Fatalf("trace %d folded from %d of %d spans (partial trace)", b.Iter, b.Spans, want[b.Iter])
		}
		var sum time.Duration
		for _, p := range b.Phases {
			sum += p.Duration
		}
		if sum != b.Latency {
			t.Fatalf("trace %d: phase sum %v != latency %v", b.Iter, sum, b.Latency)
		}
	}
}

// TestSpanSamplerEvictedTraceStaysExcluded: a trace evicted from the tail
// buffer cannot re-enter with a later span — that would emit it partially.
func TestSpanSamplerEvictedTraceStaysExcluded(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 1, 0, 1)
	fast := traceSpans("run", 0, 10*time.Millisecond)
	slow := traceSpans("run", 1, 100*time.Millisecond)
	s.EmitSpan(fast[0]) // fast trace admitted first...
	s.EmitSpan(slow[0]) // ...evicted by the slow one
	s.EmitSpan(fast[1]) // late span of the evicted trace: dropped
	s.EmitSpan(slow[1])
	s.EmitSpan(slow[2])
	s.Flush()
	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("flushed %d spans, want 3 (the slow trace whole)", len(spans))
	}
	for _, sp := range spans {
		if sp.Context.Iter != 1 {
			t.Fatalf("evicted trace leaked span %s", sp.Name)
		}
	}
}

func TestParseSpanSample(t *testing.T) {
	cases := []struct {
		in      string
		slowest int
		rate    float64
		wantErr bool
	}{
		{"", 0, 1, false},
		{"off", 0, 1, false},
		{"slowest=20", 20, 0, false},
		{"rate=0.25", 0, 0.25, false},
		{"slowest=5,rate=0.1", 5, 0.1, false},
		{"rate=1", 0, 1, false},
		{"slowest=-1", 0, 0, true},
		{"rate=1.5", 0, 0, true},
		{"rate=x", 0, 0, true},
		{"bogus", 0, 0, true},
		{"depth=3", 0, 0, true},
	}
	for _, tc := range cases {
		slowest, rate, err := ParseSpanSample(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpanSample(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpanSample(%q): %v", tc.in, err)
			continue
		}
		if slowest != tc.slowest || rate != tc.rate {
			t.Errorf("ParseSpanSample(%q) = (%d, %v), want (%d, %v)", tc.in, slowest, rate, tc.slowest, tc.rate)
		}
	}
}
