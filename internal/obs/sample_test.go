package obs

import (
	"fmt"
	"testing"
	"time"
)

func sampleSpan(i int, d time.Duration) Span {
	start := time.Unix(0, int64(i)*int64(time.Second))
	return Span{
		Name:    fmt.Sprintf("span-%d", i),
		Context: SpanContext{Session: "s", SpanID: fmt.Sprintf("id-%d", i)},
		Start:   start,
		End:     start.Add(d),
	}
}

func TestSpanSamplerKeepsSlowest(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 3, 0, 1)
	// Durations 1ms..100ms in a scrambled order.
	for i := 0; i < 100; i++ {
		d := time.Duration((i*37)%100+1) * time.Millisecond
		s.EmitSpan(sampleSpan(i, d))
	}
	if got := len(sink.Spans()); got != 0 {
		t.Fatalf("tail sampling leaked %d spans before Flush", got)
	}
	s.Flush()
	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Duration() < 98*time.Millisecond {
			t.Fatalf("span %s (%v) is not among the slowest three", sp.Name, sp.Duration())
		}
	}
	// Flush drained the tail; a second flush emits nothing.
	s.Flush()
	if got := len(sink.Spans()); got != 3 {
		t.Fatalf("second Flush re-emitted spans: %d", got)
	}
}

func TestSpanSamplerRandomFractionIsSeeded(t *testing.T) {
	run := func(seed int64) []string {
		var sink SpanCollector
		s := NewSpanSampler(&sink, 0, 0.2, seed)
		for i := 0; i < 200; i++ {
			s.EmitSpan(sampleSpan(i, time.Millisecond))
		}
		var names []string
		for _, sp := range sink.Spans() {
			names = append(names, sp.Name)
		}
		return names
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("rate 0.2 passed %d of 200 spans", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed passed %d vs %d spans", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Roughly a fifth should pass (binomial, wide tolerance).
	if len(a) < 20 || len(a) > 80 {
		t.Fatalf("rate 0.2 passed %d of 200 spans, far from expectation", len(a))
	}
}

func TestSpanSamplerDoesNotDoubleEmit(t *testing.T) {
	var sink SpanCollector
	s := NewSpanSampler(&sink, 5, 1, 1) // rate 1: everything head-sampled
	for i := 0; i < 20; i++ {
		s.EmitSpan(sampleSpan(i, time.Duration(i+1)*time.Millisecond))
	}
	s.Flush()
	if got := len(sink.Spans()); got != 20 {
		t.Fatalf("got %d spans, want 20 (no duplicates from the tail)", got)
	}
	seen, passed := s.Stats()
	if seen != 20 || passed != 20 {
		t.Fatalf("stats = (%d, %d), want (20, 20)", seen, passed)
	}
}

func TestParseSpanSample(t *testing.T) {
	cases := []struct {
		in      string
		slowest int
		rate    float64
		wantErr bool
	}{
		{"", 0, 1, false},
		{"off", 0, 1, false},
		{"slowest=20", 20, 0, false},
		{"rate=0.25", 0, 0.25, false},
		{"slowest=5,rate=0.1", 5, 0.1, false},
		{"rate=1", 0, 1, false},
		{"slowest=-1", 0, 0, true},
		{"rate=1.5", 0, 0, true},
		{"rate=x", 0, 0, true},
		{"bogus", 0, 0, true},
		{"depth=3", 0, 0, true},
	}
	for _, tc := range cases {
		slowest, rate, err := ParseSpanSample(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpanSample(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpanSample(%q): %v", tc.in, err)
			continue
		}
		if slowest != tc.slowest || rate != tc.rate {
			t.Errorf("ParseSpanSample(%q) = (%d, %v), want (%d, %v)", tc.in, slowest, rate, tc.slowest, tc.rate)
		}
	}
}
