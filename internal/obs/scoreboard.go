package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Cluster scoreboard: fold the registry snapshots of many nodes into
// percentile summaries and top-K outlier tables. CFL-style P2P FL lives
// on per-cluster aggregate health — at 100k+ nodes nobody reads 100k
// metric lines, but "p90 iteration latency and the five slowest nodes"
// still fits on a screen. The fold is pure snapshot arithmetic, so it
// runs the same over live /metrics.json scrapes, simulator registries
// and recorded benchmark output.

// NodeValue is one node's value for a metric, used in top-K tables.
type NodeValue struct {
	Node  string  `json:"node"`
	Value float64 `json:"value"`
}

// MetricSummary aggregates one counter or gauge family across nodes.
type MetricSummary struct {
	Name  string  `json:"name"`
	Nodes int     `json:"nodes"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	// Top holds the topK largest per-node values, descending — for
	// counters like sim_cpu_ns_total these are the cluster's hottest
	// nodes.
	Top []NodeValue `json:"top,omitempty"`
}

// HistogramSummary aggregates one histogram family across nodes: the
// cluster-wide distribution (buckets merged, then interpolated) and the
// nodes whose own p90 is worst.
type HistogramSummary struct {
	Name  string  `json:"name"`
	Nodes int     `json:"nodes"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Top holds the topK worst per-node p90s, descending — the
	// cluster's slowest nodes for latency histograms.
	Top []NodeValue `json:"top,omitempty"`
}

// Scoreboard is the cluster roll-up of per-node snapshots.
type Scoreboard struct {
	Nodes      int                `json:"nodes"`
	Counters   []MetricSummary    `json:"counters,omitempty"`
	Gauges     []MetricSummary    `json:"gauges,omitempty"`
	Histograms []HistogramSummary `json:"histograms,omitempty"`
}

// parseKey splits a snapshot key "name{k=\"v\",...}" into the bare name
// and its label pairs. Keys without labels yield a nil map.
func parseKey(key string) (name string, labels map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:i]
	labels = make(map[string]string)
	for _, part := range splitLabels(key[i+1 : len(key)-1]) {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		v, err := strconv.Unquote(part[eq+1:])
		if err != nil {
			v = part[eq+1:]
		}
		labels[part[:eq]] = v
	}
	return name, labels
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// rebuildKey renders name plus labels back into canonical snapshot-key
// form (sorted labels, matching fmtLabels).
func rebuildKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, 0, 2*len(labels))
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pairs = append(pairs, k, labels[k])
	}
	return name + fmtLabels(pairs)
}

// SplitByLabel groups a snapshot's instruments by the value of one
// label, stripping that label from the grouped keys. Instruments
// without the label land under the empty string. Splitting a merged
// all-nodes registry by "node" yields the per-node snapshots
// MergeSnapshots wants.
func SplitByLabel(snap Snapshot, label string) map[string]Snapshot {
	out := make(map[string]Snapshot)
	group := func(key string) (string, Snapshot) {
		name, labels := parseKey(key)
		val := labels[label]
		delete(labels, label)
		g, ok := out[val]
		if !ok {
			g = Snapshot{
				Counters:   make(map[string]int64),
				Gauges:     make(map[string]float64),
				Histograms: make(map[string]HistogramSnapshot),
			}
			out[val] = g
		}
		return rebuildKey(name, labels), g
	}
	for key, v := range snap.Counters {
		k, g := group(key)
		g.Counters[k] = v
	}
	for key, v := range snap.Gauges {
		k, g := group(key)
		g.Gauges[k] = v
	}
	for key, v := range snap.Histograms {
		k, g := group(key)
		g.Histograms[k] = v
	}
	return out
}

// rankQuantile is the nearest-rank p-quantile of sorted vs.
func rankQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// topK returns the k largest node values, descending (node name breaks
// ties, so the table is deterministic).
func topK(values map[string]float64, k int) []NodeValue {
	out := make([]NodeValue, 0, len(values))
	for n, v := range values {
		out = append(out, NodeValue{Node: n, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func summarize(name string, values map[string]float64, k int) MetricSummary {
	s := MetricSummary{Name: name, Nodes: len(values)}
	sorted := make([]float64, 0, len(values))
	for _, v := range values {
		sorted = append(sorted, v)
		s.Sum += v
	}
	sort.Float64s(sorted)
	if len(sorted) > 0 {
		s.Min = sorted[0]
		s.Max = sorted[len(sorted)-1]
		s.P50 = rankQuantile(sorted, 0.5)
		s.P90 = rankQuantile(sorted, 0.9)
	}
	s.Top = topK(values, k)
	return s
}

// MergeSnapshots folds per-node snapshots (as from SplitByLabel, or one
// /metrics.json scrape per node) into a cluster scoreboard: per-family
// cross-node percentiles, plus top-K tables naming the hottest nodes
// (largest counter values) and slowest nodes (worst per-node histogram
// p90). Histogram families merge bucket-wise when bounds agree; nodes
// with mismatched bounds still count toward Count but not the merged
// distribution.
func MergeSnapshots(byNode map[string]Snapshot, k int) Scoreboard {
	sb := Scoreboard{Nodes: len(byNode)}

	counterVals := make(map[string]map[string]float64)
	gaugeVals := make(map[string]map[string]float64)
	histSnaps := make(map[string]map[string]HistogramSnapshot)
	collect := func(m map[string]map[string]float64, key, node string, v float64) {
		if m[key] == nil {
			m[key] = make(map[string]float64)
		}
		m[key][node] = v
	}
	for node, snap := range byNode {
		for key, v := range snap.Counters {
			collect(counterVals, key, node, float64(v))
		}
		for key, v := range snap.Gauges {
			collect(gaugeVals, key, node, v)
		}
		for key, h := range snap.Histograms {
			if histSnaps[key] == nil {
				histSnaps[key] = make(map[string]HistogramSnapshot)
			}
			histSnaps[key][node] = h
		}
	}

	for _, key := range sortedKeys(counterVals) {
		sb.Counters = append(sb.Counters, summarize(key, counterVals[key], k))
	}
	for _, key := range sortedKeys(gaugeVals) {
		sb.Gauges = append(sb.Gauges, summarize(key, gaugeVals[key], k))
	}
	histKeys := make([]string, 0, len(histSnaps))
	for key := range histSnaps {
		histKeys = append(histKeys, key)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		perNode := histSnaps[key]
		hs := HistogramSummary{Name: key, Nodes: len(perNode)}
		var merged HistogramSnapshot
		p90s := make(map[string]float64, len(perNode))
		for node, h := range perNode {
			hs.Count += h.Count
			p90s[node] = h.Quantile(0.9)
			if merged.Bounds == nil {
				merged = HistogramSnapshot{
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
					Sum:    h.Sum,
					Count:  h.Count,
				}
				continue
			}
			if !boundsEqual(merged.Bounds, h.Bounds) {
				continue
			}
			for i, c := range h.Counts {
				merged.Counts[i] += c
			}
			merged.Sum += h.Sum
			merged.Count += h.Count
		}
		hs.P50 = merged.Quantile(0.5)
		hs.P90 = merged.Quantile(0.9)
		hs.P99 = merged.Quantile(0.99)
		hs.Top = topK(p90s, k)
		sb.Histograms = append(sb.Histograms, hs)
	}
	return sb
}

func sortedKeys(m map[string]map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteScoreboard renders the scoreboard as the human table behind
// `iplssim -scoreboard` and `iplstrace -resources`.
func WriteScoreboard(w io.Writer, sb Scoreboard) {
	fmt.Fprintf(w, "cluster scoreboard: %d nodes\n", sb.Nodes)
	if len(sb.Counters)+len(sb.Gauges) > 0 {
		fmt.Fprintf(w, "  %-40s %5s %12s %12s %12s %14s\n", "metric", "nodes", "p50", "p90", "max", "sum")
	}
	row := func(s MetricSummary) {
		fmt.Fprintf(w, "  %-40s %5d %12.6g %12.6g %12.6g %14.6g\n", s.Name, s.Nodes, s.P50, s.P90, s.Max, s.Sum)
		for _, t := range s.Top {
			fmt.Fprintf(w, "      top %-34s %12.6g\n", t.Node, t.Value)
		}
	}
	for _, s := range sb.Counters {
		row(s)
	}
	for _, s := range sb.Gauges {
		row(s)
	}
	if len(sb.Histograms) > 0 {
		fmt.Fprintf(w, "  %-40s %5s %12s %12s %12s %14s\n", "histogram", "nodes", "p50", "p90", "p99", "count")
	}
	for _, h := range sb.Histograms {
		fmt.Fprintf(w, "  %-40s %5d %12.6g %12.6g %12.6g %14d\n", h.Name, h.Nodes, h.P50, h.P90, h.P99, h.Count)
		for _, t := range h.Top {
			fmt.Fprintf(w, "      slowest %-30s %12.6g\n", t.Node, t.Value)
		}
	}
}
