package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	// Buckets [0,1], (1,2], (2,4], (4,+Inf] with 10 observations per
	// finite bucket.
	s := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []uint64{10, 10, 10, 0},
		Count:  30,
	}
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %v, want 1.5", got)
	}
	// p=1/3 lands exactly on the first bucket's upper bound.
	if got := s.Quantile(1.0 / 3.0); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Quantile(1/3) = %v, want 1", got)
	}
	// Interpolation inside the (2,4] bucket: rank 27 of 30 is 70% into it.
	if got := s.Quantile(0.9); math.Abs(got-3.4) > 1e-9 {
		t.Fatalf("Quantile(0.9) = %v, want 3.4", got)
	}
	// Out-of-range p clamps.
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want clamp to p=0", got)
	}
	// Mass in +Inf saturates at the highest finite bound.
	inf := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 5}, Count: 5}
	if got := inf.Quantile(0.99); got != 2 {
		t.Fatalf("Quantile into +Inf = %v, want 2", got)
	}
	// Empty histogram reports zero.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestSplitByLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes_total", "node", "a").Add(10)
	r.Counter("bytes_total", "node", "b").Add(20)
	r.Counter("bytes_total", "node", "a", "dir", "up").Add(5)
	r.Gauge("load", "node", "b").Set(0.5)
	r.Counter("global_total").Add(7)
	groups := SplitByLabel(r.Snapshot(), "node")

	a, b, rest := groups["a"], groups["b"], groups[""]
	if a.Counters["bytes_total"] != 10 {
		t.Fatalf("node a bytes_total = %v", a.Counters)
	}
	if a.Counters[`bytes_total{dir="up"}`] != 5 {
		t.Fatalf("node a labeled counter = %v", a.Counters)
	}
	if b.Counters["bytes_total"] != 20 || b.Gauges["load"] != 0.5 {
		t.Fatalf("node b = %+v", b)
	}
	if rest.Counters["global_total"] != 7 {
		t.Fatalf("unlabeled group = %v", rest.Counters)
	}
}

func TestMergeSnapshotsScoreboard(t *testing.T) {
	byNode := make(map[string]Snapshot)
	for i, cpu := range []int64{100, 200, 300, 400, 1000} {
		r := NewRegistry()
		r.Counter("sim_cpu_ns_total").Add(cpu)
		h := r.Histogram("iter_seconds", []float64{1, 2, 4})
		h.Observe(float64(i) + 0.5)
		byNode[string(rune('a'+i))] = r.Snapshot()
	}
	sb := MergeSnapshots(byNode, 2)
	if sb.Nodes != 5 {
		t.Fatalf("Nodes = %d, want 5", sb.Nodes)
	}
	if len(sb.Counters) != 1 || sb.Counters[0].Name != "sim_cpu_ns_total" {
		t.Fatalf("counters = %+v", sb.Counters)
	}
	c := sb.Counters[0]
	if c.Min != 100 || c.Max != 1000 || c.Sum != 2000 || c.P50 != 300 {
		t.Fatalf("summary = %+v", c)
	}
	// Top-2 hottest nodes, descending.
	if len(c.Top) != 2 || c.Top[0].Node != "e" || c.Top[0].Value != 1000 || c.Top[1].Node != "d" {
		t.Fatalf("top = %+v", c.Top)
	}
	if len(sb.Histograms) != 1 {
		t.Fatalf("histograms = %+v", sb.Histograms)
	}
	hs := sb.Histograms[0]
	if hs.Count != 5 || hs.Nodes != 5 {
		t.Fatalf("histogram summary = %+v", hs)
	}
	if len(hs.Top) != 2 {
		t.Fatalf("histogram top = %+v", hs.Top)
	}

	var buf bytes.Buffer
	WriteScoreboard(&buf, sb)
	out := buf.String()
	for _, want := range []string{"5 nodes", "sim_cpu_ns_total", "iter_seconds", "top e"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scoreboard table missing %q:\n%s", want, out)
		}
	}
}

// TestScoreboardRoundTrip exercises the intended composition: one merged
// registry with node labels, split, merged into a scoreboard.
func TestScoreboardRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"n0", "n1", "n2"} {
		r.Counter("sim_alloc_bytes_total", "node", n).Add(int64(len(n)) * 1000)
	}
	sb := MergeSnapshots(SplitByLabel(r.Snapshot(), "node"), 1)
	// The unlabeled group is absent here, so exactly 3 node groups.
	if sb.Nodes != 3 {
		t.Fatalf("Nodes = %d, want 3", sb.Nodes)
	}
	if len(sb.Counters) != 1 || sb.Counters[0].Sum != 3*2000 {
		t.Fatalf("counters = %+v", sb.Counters)
	}
}
